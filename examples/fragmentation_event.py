#!/usr/bin/env python3
"""Fragmentation event: screening a debris cloud against a constellation.

Models the Kessler-mechanism scenario of Section I: a catastrophic breakup
(like the 2021 Yunhai 1-02 collision) seeds a debris cloud into an orbital
shell occupied by an operational constellation.  The example:

1. builds the constellation and detonates a parent object crossing it;
2. screens cloud-vs-constellation one hour after the event and again half
   a day later, showing the conjunction picture change as the cloud
   disperses along the orbit (Section III-B: fragments "immediately
   spread across the orbit due to different initial velocities");
3. reports which constellation satellites face the most debris traffic.

(The window starts an hour after the breakup on purpose: at T+0 every
fragment is within the threshold of every other, the quadratic worst case
of Section III-B — real screening starts once the cloud has sheared out.)

Run:  python examples/fragmentation_event.py
"""
from __future__ import annotations

import math

import numpy as np

from repro import ScreeningConfig, fragmentation_cloud, megaconstellation, screen
from repro.orbits.elements import KeplerElements, OrbitalElementsArray


def aged(pop: OrbitalElementsArray, dt: float) -> OrbitalElementsArray:
    """The same orbits with every mean anomaly advanced by ``dt`` seconds."""
    return OrbitalElementsArray(
        a=pop.a, e=pop.e, i=pop.i, raan=pop.raan, argp=pop.argp,
        m0=np.mod(pop.m0 + pop.n * dt, 2 * math.pi),
    )


def screen_window(combined, n_const, label):
    """Screen one 20-minute window and summarise debris-vs-constellation."""
    config = ScreeningConfig(
        threshold_km=5.0, duration_s=1200.0,
        seconds_per_sample=1.0, hybrid_seconds_per_sample=9.0,
    )
    result = screen(combined, config, method="hybrid", backend="vectorized")
    cross = [
        c for c in result.conjunctions()
        if (c.i < n_const) != (c.j < n_const)  # one constellation + one debris
    ]
    print(f"{label}: {result.n_conjunctions} conjunctions total, "
          f"{len(cross)} debris-vs-constellation")
    exposure: "dict[int, int]" = {}
    for c in cross:
        sat = c.i if c.i < n_const else c.j
        exposure[sat] = exposure.get(sat, 0) + 1
    for sat, hits in sorted(exposure.items(), key=lambda kv: -kv[1])[:5]:
        print(f"    constellation sat {sat:>4}: {hits} debris encounters")
    return len(cross)


def main() -> None:
    constellation = megaconstellation(
        n_planes=18, sats_per_plane=18, altitude_km=780.0,
        inclination_rad=math.radians(86.4),  # Iridium-like shell
    )
    n_const = len(constellation)

    # Parent on a crossing orbit through the shell altitude.
    parent = KeplerElements(
        a=6378.1363 + 780.0, e=0.002, i=math.radians(74.0),
        raan=1.0, argp=0.5, m0=0.0,
    )
    cloud = fragmentation_cloud(parent, n_fragments=300, dv_scale_kms=0.08, seed=77)
    print(f"constellation: {n_const} satellites; debris cloud: {len(cloud)} fragments")
    print(f"cloud element spread: a std {cloud.a.std():.1f} km, "
          f"e in [{cloud.e.min():.4f}, {cloud.e.max():.4f}]")

    combined = OrbitalElementsArray.concatenate([constellation, cloud])

    # Window 1: one hour after the breakup (cloud sheared along-track).
    early = screen_window(aged(combined, 3600.0), n_const, "T+1h (cloud shearing out)")

    # Window 2: half a day later (cloud spread over the whole orbit).
    late = screen_window(aged(combined, 43200.0), n_const, "T+12h (cloud dispersed)")

    print("\nas the cloud spreads along the parent orbit, debris encounters "
          f"spread across the shell: {early} -> {late} cross-conjunctions per window")

    # The analyst's view of the cloud: its Gabbard diagram ('o' apogee,
    # '.' perigee) - the X pinned at the breakup altitude.
    from repro.analysis.gabbard import gabbard_data

    data = gabbard_data(cloud)
    print(f"\nGabbard diagram of the cloud (pinned at ~{data.pinned_altitude_km:.0f} km):")
    print(data.ascii_plot(width=68, height=16))


if __name__ == "__main__":
    main()
