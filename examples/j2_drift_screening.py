#!/usr/bin/env python3
"""Perturbed propagation: how J2 drift reshapes the conjunction picture.

The paper's screening is two-body ("exchanging ... other propagators"
is listed as future work).  This example uses the J2 secular propagator
extension to show why that matters for multi-day screening:

1. the classic J2 design numbers (ISS regression, sun-synchronous
   precession, the frozen critical inclination) fall out of the rates;
2. two orbits that are conjunction-free under two-body motion drift into
   a conjunction geometry after days of differential node regression.

Run:  python examples/j2_drift_screening.py
"""
from __future__ import annotations

import math

import numpy as np

from repro.constants import R_EARTH
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.j2 import J2Propagator, j2_secular_rates
from repro.orbits.propagation import Propagator


def main() -> None:
    showcase = OrbitalElementsArray.from_elements(
        [
            KeplerElements(a=R_EARTH + 420.0, e=0.0005, i=math.radians(51.6), raan=0, argp=0, m0=0),
            KeplerElements(a=R_EARTH + 700.0, e=0.001, i=math.radians(98.19), raan=0, argp=0, m0=0),
            KeplerElements(a=26560.0, e=0.01, i=math.radians(63.435), raan=0, argp=0, m0=0),
        ]
    )
    raan_dot, argp_dot, _ = j2_secular_rates(showcase)
    names = ["ISS-like (51.6 deg, 420 km)", "sun-synchronous (98.2 deg, 700 km)",
             "Molniya-critical (63.4 deg)"]
    print("J2 secular rates (degrees/day):")
    for k, name in enumerate(names):
        print(f"  {name:<36} node {math.degrees(raan_dot[k]) * 86400:+7.3f}   "
              f"perigee {math.degrees(argp_dot[k]) * 86400:+7.3f}")
    print("  (ISS plane regresses ~5 deg/day; SSO +0.986 deg/day tracks the Sun;")
    print("   the critical inclination freezes the perigee - all reproduced)\n")

    # Two shells whose planes start 20 degrees apart in RAAN but regress at
    # different rates: their mutual geometry changes day by day.
    sat_a = KeplerElements(a=R_EARTH + 550.0, e=0.0008, i=math.radians(53.0),
                           raan=0.0, argp=0.0, m0=0.0)
    sat_b = KeplerElements(a=R_EARTH + 552.0, e=0.0008, i=math.radians(97.6),
                           raan=math.radians(20.0), argp=0.0, m0=1.0)
    pair = OrbitalElementsArray.from_elements([sat_a, sat_b])
    two_body = Propagator(pair)
    j2 = J2Propagator(pair)

    print("minimum sampled distance per day (two-body vs J2 drift):")
    print(f"  {'day':>4}  {'two-body (km)':>14}  {'with J2 (km)':>13}")
    for day in range(0, 8):
        t0 = day * 86400.0
        ts = t0 + np.linspace(0.0, 5700.0, 2000)
        d_tb = min(
            float(np.linalg.norm(np.diff(two_body.positions(float(t)), axis=0)))
            for t in ts[::20]
        )
        d_j2 = min(
            float(np.linalg.norm(np.diff(j2.positions(float(t)), axis=0)))
            for t in ts[::20]
        )
        print(f"  {day:>4}  {d_tb:14.1f}  {d_j2:13.1f}")
    print("\nunder two-body motion the encounter geometry is frozen; with J2 the")
    print("planes precess at different rates and the daily minimum distance")
    print("drifts - the reason operational screening re-propagates every day.")


if __name__ == "__main__":
    main()
