#!/usr/bin/env python3
"""A day in the life of a screening service.

Chains the library's operational layers end to end:

1. a :class:`ScreeningCampaign` re-screens an advancing catalog window by
   window, tracking events across windows (two-body epoch advance here, so
   the maneuver sizing below shares the campaign's exact timeline; see
   ``j2_drift_screening.py`` for the perturbed-epoch flavour);
2. the campaign's risk summary maps each event's lead time to a collision
   probability under growing uncertainty;
3. for the riskiest event, an avoidance maneuver is sized at two different
   burn epochs, reproducing the earlier-is-cheaper rule every operator
   lives by.

Run:  python examples/daily_operations.py
"""
from __future__ import annotations

from repro import ScreeningConfig, generate_population
from repro.analysis.avoidance import size_avoidance_maneuver
from repro.ops.campaign import ScreeningCampaign


def main() -> None:
    catalog = generate_population(1500, seed=2026)
    config = ScreeningConfig(
        threshold_km=5.0, duration_s=1800.0, hybrid_seconds_per_sample=9.0
    )
    campaign = ScreeningCampaign(
        catalog, config, method="hybrid", backend="vectorized", use_j2=False
    )

    print("running four 30-minute screening windows:")
    for day in campaign.run(4):
        print(f"  window {day.window}: [{day.start_s:7.0f}, {day.start_s + config.duration_s:7.0f}] s"
              f"  {day.result.n_conjunctions:>3} conjunctions"
              f"  ({day.new_events} new, {day.reobserved_events} re-observed)")

    print(f"\ntracked events: {len(campaign.events)} "
          f"({campaign.total_conjunctions_seen} sightings)")
    summary = campaign.risk_summary(sigma0_km=0.1, growth_km_per_day=0.4)
    for ev, sigma, poc in summary[:5]:
        print(f"  {ev.i:>5}/{ev.j:<5} TCA {ev.tca_abs_s:8.1f} s  "
              f"PCA {ev.pca_km:6.3f} km  sigma {sigma:.2f} km  P_c {poc:.2e}")

    if not summary:
        print("no events this cycle - quiet skies")
        return

    ev, _, _ = summary[0]
    print(f"\nsizing an avoidance maneuver for the top event "
          f"({ev.i} vs {ev.j}, PCA {ev.pca_km:.3f} km):")
    target = catalog[ev.i]
    chaser = catalog[ev.j]
    for lead_label, burn_time in (("half an orbit before TCA", ev.tca_abs_s - 2900.0),
                                  ("two orbits before TCA", ev.tca_abs_s - 11600.0)):
        try:
            plan = size_avoidance_maneuver(
                target, chaser, tca_s=ev.tca_abs_s, burn_time_s=burn_time,
                clearance_km=5.0,
            )
            print(f"  burn {lead_label:<26}: {plan.delta_v_cms:8.2f} cm/s "
                  f"-> miss {plan.miss_after_km:.2f} km")
        except (RuntimeError, ValueError) as exc:
            print(f"  burn {lead_label:<26}: not feasible ({exc})")
    print("\nthe earlier burn achieves the same clearance for less delta-v -")
    print("the operational payoff of early screening (Section I).")


if __name__ == "__main__":
    main()
