#!/usr/bin/env python3
"""Quickstart: screen a synthetic population for conjunctions.

Generates a realistic 2,000-object population (Fig. 9 distribution), runs
the hybrid screening variant over a 30-minute window with the paper's 2 km
threshold, and prints the detected conjunctions with the phase breakdown
of Section V-C1.

Run:  python examples/quickstart.py
"""
from __future__ import annotations

from repro import ScreeningConfig, generate_population, screen


def main() -> None:
    pop = generate_population(2000, seed=42)
    print(f"population: {len(pop)} objects, "
          f"a in [{pop.a.min():.0f}, {pop.a.max():.0f}] km, e <= {pop.e.max():.3f}")

    config = ScreeningConfig(
        threshold_km=2.0,        # the paper's rough-screening threshold
        duration_s=1800.0,       # 30-minute screening window
        hybrid_seconds_per_sample=9.0,
    )
    result = screen(pop, config, method="hybrid", backend="vectorized")

    print(result.summary())
    print(f"grid candidates -> filtered pairs: "
          f"{result.extra['grid_pairs']} -> {result.extra['filtered_pairs']}")
    print("phase breakdown:")
    for name, frac in sorted(result.timers.fractions().items(), key=lambda kv: -kv[1]):
        print(f"  {name:>6}: {100 * frac:5.1f}%")

    print("\nclosest approaches below the screening threshold:")
    for c in sorted(result.conjunctions(), key=lambda c: c.pca_km)[:10]:
        print(f"  objects {c.i:>5} / {c.j:<5}  PCA {c.pca_km:6.3f} km  at t = {c.tca_s:8.1f} s")
    if result.n_conjunctions == 0:
        print("  (none in this window - conjunctions are rare events; try a "
              "longer duration or a larger threshold)")


if __name__ == "__main__":
    main()
