#!/usr/bin/env python3
"""Anatomy of a conjunction: the distance curve of Fig. 2.

Reproduces the paper's Figure 2 for an engineered satellite pair: the
inter-satellite distance over time, its local minima (the PCAs at their
TCAs), and the screening threshold that separates reportable conjunctions
from ignorable approaches.  Rendered as an ASCII chart plus the exact
refined minima from the Brent search.

Run:  python examples/pca_tca_anatomy.py
"""
from __future__ import annotations

import math

import numpy as np

from repro import ScreeningConfig, screen
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.propagation import Propagator

THRESHOLD_KM = 5.0
SPAN_S = 6000.0


def ascii_chart(ts: np.ndarray, ds: np.ndarray, threshold: float, height: int = 18) -> str:
    """Log-scale ASCII rendering of the distance curve."""
    lo, hi = math.log10(max(ds.min(), 0.1)), math.log10(ds.max())
    rows = []
    for level in range(height, -1, -1):
        value = 10 ** (lo + (hi - lo) * level / height)
        marker = "-" if value >= threshold * 0.97 and value <= threshold * 1.03 else " "
        line = []
        for d in ds[:: max(1, len(ds) // 100)]:
            if abs(math.log10(max(d, 0.1)) - (lo + (hi - lo) * level / height)) < (hi - lo) / (2 * height):
                line.append("*")
            else:
                line.append(marker)
        rows.append(f"{value:9.1f} km |" + "".join(line))
    rows.append(" " * 13 + "+" + "-" * 100)
    rows.append(" " * 14 + f"t = 0 s {'':<84} t = {ts[-1]:.0f} s")
    return "\n".join(rows)


def main() -> None:
    el1 = KeplerElements(a=7000.0, e=0.001, i=math.radians(50), raan=0.0, argp=0.0, m0=0.0)
    el2 = KeplerElements(a=7001.0, e=0.001, i=math.radians(55), raan=0.0, argp=0.0, m0=1e-4)
    pop = OrbitalElementsArray.from_elements([el1, el2])

    prop = Propagator(pop)
    ts = np.linspace(0.0, SPAN_S, 2000)
    ds = np.array([float(np.linalg.norm(np.diff(prop.positions(t), axis=0))) for t in ts])

    print("distance between the two satellites over time "
          f"(log scale; '-' row = {THRESHOLD_KM} km screening threshold):\n")
    print(ascii_chart(ts, ds, THRESHOLD_KM))

    config = ScreeningConfig(threshold_km=THRESHOLD_KM, duration_s=SPAN_S, seconds_per_sample=1.0)
    result = screen(pop, config, method="grid", backend="vectorized")
    print("\nrefined minima below the threshold (the blue dots of Fig. 2):")
    for c in result.conjunctions():
        print(f"  TCA = {c.tca_s:8.2f} s   PCA = {c.pca_km:6.3f} km")
    print(f"\nsampled curve minimum for comparison: {ds.min():.3f} km "
          f"at t = {ts[np.argmin(ds)]:.1f} s")
    print("local minima above the threshold are approaches, not conjunctions - "
          "they are discarded by the screening (Fig. 2's dashed line).")


if __name__ == "__main__":
    main()
