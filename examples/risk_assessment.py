#!/usr/bin/env python3
"""From screening to risk: collision probability and CDM generation.

The screening phase (the paper's contribution) hands sub-threshold
encounters to "a more detailed subsequent conjunction assessment process"
(Section III).  This example runs that full pipeline:

1. screen a population with the hybrid variant;
2. compute each conjunction's collision probability from the miss
   distance under position uncertainty (encounter-plane Rice integral);
3. rank by risk and emit CDM-style records for the top events;
4. show the probability-dilution effect that drives screening-threshold
   choices.

Run:  python examples/risk_assessment.py
"""
from __future__ import annotations

import numpy as np

from repro import ScreeningConfig, generate_population, screen
from repro.analysis.poc import collision_probability, rank_conjunctions
from repro.io import format_cdm

SIGMA_KM = 0.5          # combined 1-sigma position uncertainty
HARD_BODY_KM = 0.02     # combined hard-body radius (20 m)


def main() -> None:
    pop = generate_population(3000, seed=99)
    config = ScreeningConfig(threshold_km=5.0, duration_s=1800.0, hybrid_seconds_per_sample=9.0)
    result = screen(pop, config, method="hybrid", backend="vectorized")
    print(result.summary())

    ranked = rank_conjunctions(result, sigma_km=SIGMA_KM, hard_body_radius_km=HARD_BODY_KM)
    print(f"\nrisk ranking (sigma={SIGMA_KM} km, hard body={HARD_BODY_KM * 1000:.0f} m):")
    for e in ranked[:8]:
        flag = "  << above 1e-4 maneuver threshold" if e.probability > 1e-4 else ""
        print(f"  {e.i:>5}/{e.j:<5} PCA {e.pca_km:6.3f} km  P_c = {e.probability:.3e}{flag}")

    if ranked:
        print("\nCDM records for the top 2 events:\n")
        top = result
        print(format_cdm(top, sigma_km=SIGMA_KM, hard_body_radius_km=HARD_BODY_KM)
              .split("\n\n")[0])

    # The dilution effect: for a fixed 1 km miss, P_c is NOT monotone in
    # the uncertainty - poor tracking can make a conjunction look "safe".
    print("\nprobability dilution at a fixed 1 km miss distance:")
    for sigma in (0.05, 0.2, 0.5, 1.0, 5.0, 20.0):
        p = collision_probability(1.0, sigma, HARD_BODY_KM)
        bar = "#" * int(max(0.0, 12 + np.log10(max(p, 1e-30))))
        print(f"  sigma {sigma:5.2f} km -> P_c {p:.3e}  {bar}")
    print("the peak at intermediate sigma is why screening uses a distance "
          "threshold sized to the *largest typical* uncertainty (Section III).")


if __name__ == "__main__":
    main()
