#!/usr/bin/env python3
"""Mega-constellation deployment screening.

The scenario from the paper's introduction: an operator deploys a
Starlink-like shell (53-degree inclination, 550 km altitude) into an
orbital environment already populated by thousands of objects, and must
screen the combined population for conjunctions.

The example screens shell-vs-background with the hybrid variant, then
shows the classical O(n^2) baseline hitting its wall on the same scenario
at a fraction of the population.

Run:  python examples/megaconstellation_deployment.py
"""
from __future__ import annotations

import math
import time

import numpy as np

from repro import ScreeningConfig, generate_population, megaconstellation, screen
from repro.orbits.elements import OrbitalElementsArray


def main() -> None:
    background = generate_population(3000, seed=2024)
    shell = megaconstellation(
        n_planes=24,
        sats_per_plane=22,
        altitude_km=550.0,
        inclination_rad=math.radians(53.0),
        phasing=1.0,
    )
    combined = OrbitalElementsArray.concatenate([background, shell])
    shell_ids = set(range(len(background), len(combined)))
    print(f"background {len(background)} + shell {len(shell)} = {len(combined)} objects")

    config = ScreeningConfig(threshold_km=2.0, duration_s=1800.0, hybrid_seconds_per_sample=9.0)
    t0 = time.perf_counter()
    result = screen(combined, config, method="hybrid", backend="vectorized")
    hybrid_s = time.perf_counter() - t0
    print(f"hybrid screening: {result.summary()}")

    involving_shell = [
        c for c in result.conjunctions() if c.i in shell_ids or c.j in shell_ids
    ]
    print(f"conjunctions involving the new shell: {len(involving_shell)} "
          f"of {result.n_conjunctions}")
    for c in involving_shell[:8]:
        role_i = "shell" if c.i in shell_ids else "background"
        role_j = "shell" if c.j in shell_ids else "background"
        print(f"  {c.i:>5} ({role_i}) / {c.j:<5} ({role_j})  "
              f"PCA {c.pca_km:6.3f} km at t = {c.tca_s:7.1f} s")

    # The legacy wall: run the baseline on a 1/4 slice and extrapolate.
    slice_n = len(combined) // 4
    subset = combined.subset(np.arange(slice_n))
    t0 = time.perf_counter()
    legacy = screen(subset, config, method="legacy")
    legacy_s = time.perf_counter() - t0
    projected = legacy_s * (len(combined) / slice_n) ** 2
    print(f"\nlegacy baseline on {slice_n} objects: {legacy_s:.2f} s "
          f"-> projected {projected:.1f} s at {len(combined)} objects "
          f"(O(n^2) pair generation)")
    print(f"hybrid at full size took {hybrid_s:.2f} s "
          f"({projected / max(hybrid_s, 1e-9):.0f}x faster than the projection)")


if __name__ == "__main__":
    main()
