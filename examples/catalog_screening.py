#!/usr/bin/env python3
"""Operational catalog screening with TLE I/O and memory planning.

The workflow an SSA data provider runs daily: load a catalog snapshot
(TLE format — here a synthetic one standing in for Celestrak's
``active.txt``), plan the memory budget with the Section V-B
parameterisation, screen, and export the conjunction report.

Run:  python examples/catalog_screening.py
"""
from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ScreeningConfig, generate_population, screen
from repro.orbits.elements import OrbitalElementsArray
from repro.perfmodel.memory import plan_memory
from repro.population.tle import format_tle, parse_tle_file


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_catalog_"))
    catalog_path = workdir / "active.tle"

    # --- 1. Produce / obtain a catalog snapshot --------------------------
    pop = generate_population(4000, seed=7)
    catalog_path.write_text(
        "\n".join(format_tle(k % 100000, pop[k], name=f"OBJ-{k}") for k in range(len(pop)))
        + "\n"
    )
    print(f"wrote catalog snapshot: {catalog_path} ({len(pop)} objects)")

    # --- 2. Load it back (the real-data entry point) ---------------------
    records = parse_tle_file(catalog_path.read_text())
    catalog = OrbitalElementsArray.from_elements([el for _, el in records])
    print(f"parsed {len(catalog)} TLE records")

    # --- 3. Memory plan (Section V-B) ------------------------------------
    plan = plan_memory(
        n_satellites=len(catalog),
        seconds_per_sample=9.0,
        duration_s=3600.0,
        threshold_km=2.0,
        variant="hybrid",
        budget_bytes=4 * 2**30,  # pretend we have a 4 GiB accelerator
    )
    print(
        f"memory plan: {plan.parallel_steps} grids in parallel, "
        f"{plan.computation_rounds} rounds for {plan.total_samples} samples, "
        f"footprint {plan.total_bytes / 2**20:.0f} MiB"
        + (f", s_ps auto-adjusted to {plan.seconds_per_sample}" if plan.was_adjusted else "")
    )

    # --- 4. Screen --------------------------------------------------------
    config = ScreeningConfig(
        threshold_km=2.0,
        duration_s=3600.0,
        hybrid_seconds_per_sample=plan.seconds_per_sample,
    )
    result = screen(catalog, config, method="hybrid", backend="vectorized")
    print(result.summary())

    # --- 5. Export the conjunction report --------------------------------
    report = workdir / "conjunctions.csv"
    with report.open("w") as fh:
        fh.write("object_i,object_j,tca_s,pca_km\n")
        for c in result.conjunctions():
            fh.write(f"{c.i},{c.j},{c.tca_s:.3f},{c.pca_km:.6f}\n")
    print(f"conjunction report: {report} ({result.n_conjunctions} rows)")


if __name__ == "__main__":
    main()
