"""Persistent-pool scaling sweep up to the paper's 1,024,000 objects.

Three questions, one artifact (``benchmarks/results/BENCH_scaling.json``):

1. **Does the pool win?**  Per population tier the same grid screening
   load runs single-device, then twice through one
   :class:`~repro.parallel.processes.PersistentShardPool` — a *cold*
   window (pays spawn + import + attach) and a *warm* window (workers
   resident).  The warm window is the steady-state cost of a screening
   campaign, and it is gated at >= 1.0x single-device at the largest
   timed tier.

2. **From which n?**  Power-law runtime models are fitted per executor
   over the timed tiers (Extra-P style) and
   :func:`~repro.perfmodel.extrap.crossover_point` reports the smallest
   n where the pooled model wins — the crossover table of the artifact.

3. **Does 1M fit?**  The paper-scale tier runs n = 1,024,000 check-only
   (a handful of sampling steps) under a 512 MB per-device budget: the
   streamed-round plan must fit the budget, the run must complete, and
   the merged records must be bit-identical to the serial executor.

``REPRO_BENCH_CHECK_ONLY=1`` (CI smoke) shrinks the timed tiers and the
paper-scale span so the whole module finishes in CI-smoke time.
"""
from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.obs.perf import PerfLedger, expect
from repro.obs.resources import ResourceSampler
from repro.parallel.multidevice import screen_grid_multidevice
from repro.parallel.processes import PersistentShardPool
from repro.perfmodel.extrap import crossover_point, fit_power_law

CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY", "") == "1"

N_DEVICES = 2
#: The >= 1.0x warm-window gate needs real parallel hardware: on a
#: single-core host the workers time-slice one CPU and only the pool's
#: dispatch overhead is measurable, so the gate is skipped (the
#: bit-identity and paper-scale assertions still run everywhere).
CAN_PARALLELISE = (os.cpu_count() or 1) >= 2
if CHECK_ONLY:
    TIERS = [240, 960]
    CFG = ScreeningConfig(threshold_km=5.0, duration_s=1200.0, seconds_per_sample=2.0)
    PAPER_CFG = ScreeningConfig(threshold_km=5.0, duration_s=4.0, seconds_per_sample=2.0)
else:
    TIERS = [1440, 5760, 23040]
    CFG = ScreeningConfig(threshold_km=5.0, duration_s=1800.0, seconds_per_sample=2.0)
    PAPER_CFG = ScreeningConfig(threshold_km=5.0, duration_s=12.0, seconds_per_sample=2.0)

PAPER_N = 1_024_000
PAPER_DEVICES = 4
PAPER_DEVICE_BUDGET = 512 * 2**20

_TIERS: "dict[int, dict]" = {}
_PAPER: "dict" = {}
#: Per-tier wall seconds; the warm gate reads min-of-k through repro.obs.perf.
_LEDGER = PerfLedger()


def _records(result):
    return {
        "i": result.i, "j": result.j,
        "tca": result.tca_s, "pca": result.pca_km,
        "n_conjunctions": result.n_conjunctions,
    }


def _assert_identical(got: dict, want: dict, label: str) -> None:
    np.testing.assert_array_equal(got["i"], want["i"], err_msg=label)
    np.testing.assert_array_equal(got["j"], want["j"], err_msg=label)
    np.testing.assert_array_equal(got["tca"], want["tca"], err_msg=label)
    np.testing.assert_array_equal(got["pca"], want["pca"], err_msg=label)


@pytest.mark.parametrize("n", TIERS)
def test_scaling_tier(population_factory, n):
    """One timed tier: single-device vs cold vs warm pooled windows,
    all three bit-identical."""
    pop = population_factory(n)

    t0 = time.perf_counter()
    single = screen(pop, CFG, method="grid", backend="vectorized")
    single_s = time.perf_counter() - t0

    serial, _ = screen_grid_multidevice(pop, CFG, N_DEVICES, executor="serial")

    with PersistentShardPool(N_DEVICES) as pool:
        t0 = time.perf_counter()
        cold, _ = screen_grid_multidevice(
            pop, CFG, N_DEVICES, executor="processes", pool=pool
        )
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm, _ = screen_grid_multidevice(
            pop, CFG, N_DEVICES, executor="processes", pool=pool
        )
        warm_s = time.perf_counter() - t0

    base = _records(single)
    for label, result in (("serial", serial), ("cold", cold), ("warm", warm)):
        _assert_identical(_records(result), base, f"n={n} {label}")

    _LEDGER.add(f"tier@{n}", "single", single_s)
    _LEDGER.add(f"tier@{n}", "warm", warm_s)
    _TIERS[n] = {
        "single_s": single_s,
        "procs_cold_s": cold_s,
        "procs_warm_s": warm_s,
        "warm_speedup": single_s / warm_s if warm_s > 0 else float("inf"),
        "n_conjunctions": single.n_conjunctions,
    }


def test_warm_pool_beats_single_device_at_scale():
    """The tentpole gate: with workers resident, the processes executor
    must be at least break-even at the largest timed tier."""
    if not CAN_PARALLELISE:
        pytest.skip(
            f"host has {os.cpu_count()} CPU(s); {N_DEVICES} workers cannot "
            "run in parallel, so the >= 1.0x gate is not meaningful"
        )
    n = max(_TIERS)
    gate = expect(_LEDGER).phase(f"tier@{n}").speedup_vs("single", "warm") >= 1.0
    assert gate, gate


def test_paper_scale_one_million(population_factory):
    """n = 1,024,000 check-only: the streamed plan fits 512 MB per device,
    the pooled run completes under *measured* per-worker watermarks, and
    the merge matches the serial executor."""
    pop = population_factory(PAPER_N)

    sampler = ResourceSampler(interval_s=0.05, include_children=True)
    t0 = time.perf_counter()
    with sampler:
        pooled, reports = screen_grid_multidevice(
            pop, PAPER_CFG, PAPER_DEVICES,
            device_budget_bytes=PAPER_DEVICE_BUDGET, executor="processes",
        )
    pooled_s = time.perf_counter() - t0
    marks = sampler.watermarks()

    sp = pooled.extra["stream_plan"]
    assert sp is not None
    assert sp.total_bytes <= PAPER_DEVICE_BUDGET
    assert pooled.extra["round_size"] == sp.round_size
    assert sum(r.steps_processed for r in reports) == len(PAPER_CFG.sample_times())
    for r in reports:
        assert r.peak_bytes <= PAPER_DEVICE_BUDGET

    # PR 7's 512 MB/device claim as a *measured* invariant: every pool
    # worker's peak RSS and the total /dev/shm footprint stay inside one
    # device budget (the parent holds the full population and the serial
    # comparison, so it is planned, not gated, here).
    for pid, peak in sampler.peak_child_rss_by_pid().items():
        assert peak <= PAPER_DEVICE_BUDGET, (
            f"worker {pid} peak RSS {peak / 2**20:.1f} MiB exceeds the "
            f"{PAPER_DEVICE_BUDGET / 2**20:.0f} MiB device budget"
        )
    assert marks["peak_shm_bytes"] <= PAPER_DEVICE_BUDGET, (
        f"/dev/shm peak {marks['peak_shm_bytes'] / 2**20:.1f} MiB exceeds "
        f"the {PAPER_DEVICE_BUDGET / 2**20:.0f} MiB device budget"
    )

    serial, _ = screen_grid_multidevice(
        pop, PAPER_CFG, PAPER_DEVICES,
        device_budget_bytes=PAPER_DEVICE_BUDGET, executor="serial",
    )
    _assert_identical(_records(pooled), _records(serial), "paper-scale")

    _PAPER.update(
        n=PAPER_N,
        n_devices=PAPER_DEVICES,
        device_budget_bytes=PAPER_DEVICE_BUDGET,
        duration_s=PAPER_CFG.duration_s,
        seconds_per_sample=PAPER_CFG.seconds_per_sample,
        wall_s=pooled_s,
        round_size=sp.round_size,
        streamed=sp.streamed,
        planned_total_bytes=sp.total_bytes,
        n_conjunctions=pooled.n_conjunctions,
        bit_identical_to_serial=True,
        completed=True,
        watermarks={
            "peak_rss_bytes": marks["peak_rss_bytes"],
            "peak_shm_bytes": marks["peak_shm_bytes"],
            "peak_worker_rss_bytes": marks["peak_child_rss_bytes"],
            "n_samples": marks["n_samples"],
        },
    )


def test_scaling_report(report):
    mode = " (check-only smoke)" if CHECK_ONLY else ""
    report.section(
        f"Persistent-pool scaling{mode} - {N_DEVICES} devices, "
        f"{CFG.duration_s:.0f} s span; paper scale n={PAPER_N:,}"
    )
    header = ["n", "single", "pool cold", "pool warm", "warm speedup", "conjunctions"]
    rows = []
    for n in sorted(_TIERS):
        t = _TIERS[n]
        rows.append([
            n, f"{t['single_s']:.3f}s", f"{t['procs_cold_s']:.3f}s",
            f"{t['procs_warm_s']:.3f}s", f"{t['warm_speedup']:.2f}x",
            t["n_conjunctions"],
        ])
    report.table(header, rows)

    single_model = fit_power_law(
        ["n"], [({"n": float(n)}, _TIERS[n]["single_s"]) for n in _TIERS]
    )
    warm_model = fit_power_law(
        ["n"], [({"n": float(n)}, _TIERS[n]["procs_warm_s"]) for n in _TIERS]
    )
    crossover = crossover_point(
        warm_model, single_model, "n", float(min(_TIERS)), float(2 * PAPER_N)
    )
    if crossover is None:
        report.row("  crossover: pooled never wins inside the bracket")
    else:
        report.row(
            f"  crossover: warm pool beats single-device from n ~ {crossover:,.0f}"
        )
    report.row(
        f"  paper scale: n={PAPER_N:,} in {_PAPER['wall_s']:.2f}s, "
        f"round_size={_PAPER['round_size']} "
        f"({'streamed' if _PAPER['streamed'] else 'fused'}), "
        f"planned {_PAPER['planned_total_bytes'] / 2**20:.1f} MB of "
        f"{PAPER_DEVICE_BUDGET / 2**20:.0f} MB/device"
    )
    marks = _PAPER["watermarks"]
    report.row(
        f"  measured: peak worker RSS {marks['peak_worker_rss_bytes'] / 2**20:.1f} MB, "
        f"peak /dev/shm {marks['peak_shm_bytes'] / 2**20:.1f} MB "
        f"({marks['n_samples']} samples)"
    )

    payload = {
        "check_only": CHECK_ONLY,
        "host_cpus": os.cpu_count(),
        "warm_gate_active": CAN_PARALLELISE,
        "scenario": {
            "n_devices": N_DEVICES,
            "threshold_km": CFG.threshold_km,
            "duration_s": CFG.duration_s,
            "seconds_per_sample": CFG.seconds_per_sample,
        },
        "tiers": [{"n": n, **_TIERS[n]} for n in sorted(_TIERS)],
        "models": {
            "single_device": {
                "exponents": list(single_model.exponents),
                "coefficient": single_model.coefficient,
            },
            "processes_warm": {
                "exponents": list(warm_model.exponents),
                "coefficient": warm_model.coefficient,
            },
        },
        "crossover_n": crossover,
        "paper_scale": dict(_PAPER),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_scaling.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
