"""Ablation: hash-function quality vs linear-probing behaviour.

Section IV-A1 picks MurmurHash3 and warns that linear probing "form[s]
cluster-long chains of occupied slots" that slow insertion; the conclusion
lists "faster/more fine-tuned hash methods" as future work.

The workload here is the one where hash quality actually matters: a
*compact debris cloud* occupying a contiguous block of grid cells, so the
packed cell keys are numerically adjacent.  An identity "hash" maps those
to adjacent slots, forming exactly the long occupied clusters the paper
warns about — and every conjunction-detection neighbour lookup that
*misses* (the overwhelmingly common case: 26 neighbour probes per occupied
cell, most empty) has to scan the whole cluster before hitting an EMPTY
slot.  MurmurHash3 scatters the block and keeps both metrics near ideal.
"""
from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.constants import EMPTY_KEY
from repro.spatial.grid import NEIGHBOR_OFFSETS
from repro.spatial.hashing import pack_cell_key
from repro.spatial.hashmap import FixedSizeHashMap

#: A contiguous 40 x 25 x 1 block of occupied cells — a sheared debris
#: cloud's footprint in the grid.
_BLOCK = [(cx, cy, cz) for cx in range(1000, 1040) for cy in range(1000, 1025) for cz in (1000,)]

_STATS: "dict[str, tuple[float, float, int]]" = {}


@pytest.fixture(scope="module")
def block_keys():
    rng = np.random.default_rng(7)
    coords = np.array(_BLOCK, dtype=np.int64)
    rng.shuffle(coords)  # insertion order must not hide clustering effects
    return [int(pack_cell_key(int(c[0]), int(c[1]), int(c[2]))) for c in coords]


@pytest.fixture(scope="module")
def miss_keys():
    """Unoccupied neighbour-cell keys — the CD phase's dominant lookups."""
    occupied = set(_BLOCK)
    misses = set()
    for cx, cy, cz in _BLOCK:
        for dx, dy, dz in NEIGHBOR_OFFSETS:
            cell = (cx + dx, cy + dy, cz + dz)
            if cell not in occupied:
                misses.add(cell)
    return [int(pack_cell_key(*c)) for c in sorted(misses)]


def _longest_cluster(hm: FixedSizeHashMap) -> int:
    occupied = hm.keys_array() != np.uint64(EMPTY_KEY)
    doubled = np.concatenate([occupied, occupied])
    best = run = 0
    for flag in doubled:
        run = run + 1 if flag else 0
        best = max(best, run)
    return min(best, int(occupied.sum()))


@pytest.mark.parametrize("hash_name", ["murmur3", "fnv1a", "xorshift", "identity"])
def test_ablation_hash_function(benchmark, block_keys, miss_keys, hash_name):
    def build_and_probe():
        hm = FixedSizeHashMap(2 * len(block_keys), hash_name=hash_name)
        for k in block_keys:
            hm.claim_slot(k)
        insert_probes = hm.probe_count / max(hm.insert_count, 1)
        hm.probe_count = 0
        for k in miss_keys:
            assert hm.lookup(k) == -1
        miss_probes = hm.probe_count / len(miss_keys)
        return hm, insert_probes, miss_probes

    hm, insert_probes, miss_probes = benchmark.pedantic(build_and_probe, rounds=1, iterations=1)
    _STATS[hash_name] = (insert_probes, miss_probes, _longest_cluster(hm))
    benchmark.extra_info.update(
        hash=hash_name,
        insert_probes=round(insert_probes, 3),
        miss_probes=round(miss_probes, 2),
        longest_cluster=_longest_cluster(hm),
    )
    assert hm.size == len(block_keys)  # correctness regardless of hash quality


def test_ablation_hash_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section(
        f"Ablation - hash function (contiguous {len(_BLOCK)}-cell debris block, 2x slots)"
    )
    rows = [
        [name, f"{ins:.3f}", f"{miss:.2f}", cluster]
        for name, (ins, miss, cluster) in sorted(_STATS.items(), key=lambda kv: kv[1][1])
    ]
    report.table(["hash", "probes/insert", "probes/miss-lookup", "longest cluster"], rows)
    # murmur3 keeps miss lookups near the ideal single probe; identity's
    # spatially-clustered slots force long scans before an EMPTY is found.
    assert _STATS["murmur3"][1] < 3.0
    assert _STATS["identity"][1] > 3.0 * _STATS["murmur3"][1]
    # At 50% load a random scatter already produces O(log n)-ish clusters;
    # the identity hash must exceed that noticeably (its cluster is the
    # block's full x-run length).
    assert _STATS["identity"][2] > 1.5 * _STATS["murmur3"][2]
    report.row("  identity hashing turns the cloud's cell block into probe chains that")
    report.row("  every empty-neighbour lookup must scan - murmur3 (the paper's choice)")
    report.row("  keeps both insertion and miss lookups near one probe")
