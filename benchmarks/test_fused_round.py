"""Fused-round ablation: one multi-step grid pass vs. a per-step loop.

Section V-B sizes ``p`` simultaneous grids per computation round; the
vectorized backend exploits that by packing ``(step, cell)`` compound keys
and building *one* grid over all ``p * n`` lanes of a round, landing the
whole round's candidates in the conjunction map with a single batch
insert.  This bench measures the INS+CD cost of that fused path against
the per-step reference loop (``fused=False``) on identical inputs, and
checks both paths emit the identical record set.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.gridbased import _make_conjmap, collect_grid_candidates
from repro.detection.types import ScreeningConfig
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.spatial.grid import cell_size_km

CFG = ScreeningConfig(threshold_km=5.0, duration_s=600.0, seconds_per_sample=2.0)

_RESULTS: "dict[tuple[int, bool], dict[str, float]]" = {}
_RECORDS: "dict[tuple[int, bool], set]" = {}

ROUND_SIZE = 16


def _run_collect(pop, fused: bool):
    n = len(pop)
    cell = cell_size_km(CFG.threshold_km, CFG.seconds_per_sample)
    times = CFG.sample_times()
    conj = _make_conjmap(n, CFG, "grid", CFG.seconds_per_sample)
    propagator = Propagator(pop, solver=CFG.solver)
    ids = np.arange(n, dtype=np.int64)
    timers = PhaseTimer()
    conj = collect_grid_candidates(
        propagator, ids, times, cell, conj, CFG, "vectorized", timers,
        round_size=ROUND_SIZE, fused=fused,
    )
    return conj, timers


@pytest.mark.parametrize("n", [2000, 4000])
@pytest.mark.parametrize("fused", [False, True], ids=["per-step", "fused"])
def test_fused_round_collection(benchmark, population_factory, n, fused):
    pop = population_factory(n)
    samples: "list[dict[str, float]]" = []

    def run():
        conj, timers = _run_collect(pop, fused)
        ins = timers.totals.get("INS", 0.0)
        cd = timers.totals.get("CD", 0.0)
        samples.append({"INS": ins, "CD": cd, "INS+CD": ins + cd})
        return conj, timers

    conj, timers = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    # Best-of-rounds: phase timings, like the wall clock, are noisy upward.
    _RESULTS[(n, fused)] = min(samples, key=lambda s: s["INS+CD"])
    ins, cd = _RESULTS[(n, fused)]["INS"], _RESULTS[(n, fused)]["CD"]
    i, j, s = conj.records()
    _RECORDS[(n, fused)] = set(zip(i.tolist(), j.tolist(), s.tolist()))
    benchmark.extra_info.update(
        n=n, fused=fused, ins_s=round(ins, 4), cd_s=round(cd, 4),
        records=len(_RECORDS[(n, fused)]),
    )


def test_fused_round_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section(
        f"Fused-round ablation - INS+CD seconds, vectorized, round_size={ROUND_SIZE}"
    )
    header = ["n", "per-step", "fused", "speedup"]
    rows = []
    for n in sorted({k[0] for k in _RESULTS}):
        base = _RESULTS[(n, False)]["INS+CD"]
        fus = _RESULTS[(n, True)]["INS+CD"]
        speedup = base / fus if fus > 0 else float("inf")
        rows.append([n, f"{base:.3f}s", f"{fus:.3f}s", f"{speedup:.2f}x"])
    report.table(header, rows)
    report.row("  one compound-keyed grid per round vs one grid per step; "
               "identical record sets verified")

    for n in sorted({k[0] for k in _RESULTS}):
        assert _RECORDS[(n, True)] == _RECORDS[(n, False)], (
            f"n={n}: fused round must emit the per-step record set"
        )
        base = _RESULTS[(n, False)]["INS+CD"]
        fus = _RESULTS[(n, True)]["INS+CD"]
        assert fus < base, (
            f"n={n}: fused INS+CD ({fus:.3f}s) must beat per-step ({base:.3f}s)"
        )
