"""Ablation: multi-device sharding (the paper's multi-GPU future work).

Shards the sampling steps of one screening run across 1/2/4 virtual
devices and verifies: identical results, per-device conjunction-map
capacity shrinking with the device count (the memory relief the paper
expects from multiple GPUs), and the step balance of the round-robin
partition.
"""
from __future__ import annotations

import pytest

from repro.detection.types import ScreeningConfig
from repro.parallel.multidevice import screen_grid_multidevice

CFG = ScreeningConfig(threshold_km=2.0, duration_s=600.0, seconds_per_sample=2.0)

_RUNS = {}


@pytest.mark.parametrize("n_devices", [1, 2, 4])
def test_ablation_multidevice_run(benchmark, population_factory, n_devices):
    pop = population_factory(2000)
    result, reports = benchmark.pedantic(
        lambda: screen_grid_multidevice(pop, CFG, n_devices, device_budget_bytes=2 * 2**30),
        rounds=1,
        iterations=1,
    )
    _RUNS[n_devices] = (result, reports, benchmark.stats.stats.mean)
    benchmark.extra_info.update(n_devices=n_devices, conjunctions=result.n_conjunctions)


def test_ablation_multidevice_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section("Ablation - multi-device sharding (grid variant, n=2000)")
    rows = []
    for n_devices, (result, reports, secs) in sorted(_RUNS.items()):
        per_dev_capacity = max(r.conjunction_map_capacity for r in reports)
        per_dev_peak = max(r.peak_bytes for r in reports)
        rows.append([
            n_devices, f"{secs:.2f} s", result.n_conjunctions,
            f"{per_dev_capacity:,}", f"{per_dev_peak / 2**20:.1f} MiB",
        ])
    report.table(["devices", "wall", "conjunctions", "map slots/device", "peak/device"], rows)

    # Identical science across device counts.
    ref = _RUNS[1][0]
    for n_devices, (result, reports, _) in _RUNS.items():
        assert result.unique_pairs() == ref.unique_pairs(), n_devices
        assert result.n_conjunctions == ref.n_conjunctions
    # Per-device memory shrinks with the device count.
    cap1 = max(r.conjunction_map_capacity for r in _RUNS[1][1])
    cap4 = max(r.conjunction_map_capacity for r in _RUNS[4][1])
    assert cap4 < cap1
    report.row("  device count leaves results untouched and divides per-device memory -")
    report.row("  the relief Section VI expects from multiple GPUs")
