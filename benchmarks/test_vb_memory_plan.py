"""Section V-B: the memory parameterisation across the paper's scales.

Regenerates the planning table the paper derives: for each population size
and memory budget, the parallelisation factor ``p``, total samples ``o``,
computation rounds ``r_c``, and the automatic seconds-per-sample
adjustment observed at 512k (9 -> 4) and 1M (9 -> 1) satellites on the
24 GB GPU.
"""
from __future__ import annotations

import pytest

from repro.perfmodel.memory import plan_memory

GB = 2**30

#: The paper's three memory configurations.
BUDGETS = [("RTX 3090", 24 * GB), ("Ryzen system", 64 * GB), ("Xeon system", 384 * GB)]

SIZES = (2_000, 64_000, 256_000, 512_000, 1_024_000)


def test_vb_memory_plans(benchmark, report):
    def build_plans():
        out = []
        for label, budget in BUDGETS:
            for n in SIZES:
                plan = plan_memory(
                    n_satellites=n, seconds_per_sample=9.0, duration_s=86400.0,
                    threshold_km=2.0, variant="hybrid", budget_bytes=budget,
                )
                out.append((label, n, plan))
        return out

    plans = benchmark.pedantic(build_plans, rounds=1, iterations=1)

    report.section("Section V-B - memory plans (hybrid, 24 h span, d=2 km, requested s_ps=9)")
    rows = []
    for label, n, plan in plans:
        rows.append([
            label, f"{n:,}", f"{plan.seconds_per_sample:.0f}",
            f"{plan.parallel_steps:,}", f"{plan.total_samples:,}",
            f"{plan.computation_rounds:,}",
            f"{plan.total_bytes / GB:.1f} GiB",
        ])
    report.table(["budget", "n", "s_ps", "p", "o", "r_c", "footprint"], rows)

    # The paper's observed adjustments on the 24 GB GPU.
    plan_512k = next(p for l, n, p in plans if l == "RTX 3090" and n == 512_000)
    plan_1m = next(p for l, n, p in plans if l == "RTX 3090" and n == 1_024_000)
    report.row(f"  24 GB auto-adjustment: 512k -> s_ps {plan_512k.seconds_per_sample:.0f}, "
               f"1M -> s_ps {plan_1m.seconds_per_sample:.0f} (paper: 9->4 and 9->1)")
    assert plan_512k.was_adjusted, "512k satellites must not fit at s_ps=9 in 24 GB"
    assert plan_1m.was_adjusted
    assert plan_1m.seconds_per_sample <= plan_512k.seconds_per_sample

    # Plans always fit their budget and cover all samples.
    for _, _, plan in plans:
        assert plan.total_bytes <= plan.budget_bytes
        assert plan.computation_rounds * plan.parallel_steps >= plan.total_samples

    # More memory -> more parallel steps at equal n.
    p24 = next(p for l, n, p in plans if l == "RTX 3090" and n == 64_000)
    p384 = next(p for l, n, p in plans if l == "Xeon system" and n == 64_000)
    assert p384.parallel_steps >= p24.parallel_steps
