"""Section V-C3: CPU-GPU comparability via thermal design power.

The paper compares energy efficiency by multiplying measured runtimes with
the nominal TDP of each platform (AMD 5950X: 105 W; 2x Xeon 9242: 700 W;
RTX 3090: 350 W) and concludes the GPU is the most efficient.

The reproduction maps each execution backend to its paper platform
(serial/threads -> CPU TDPs, vectorized -> GPU TDP), measures the same
workload on each, and regenerates the energy table.  The shape target:
the vectorized ("GPU") backend wins on energy despite its platform's
higher nominal power, because it is so much faster.
"""
from __future__ import annotations

import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig

CFG = ScreeningConfig(
    threshold_km=2.0, duration_s=600.0, seconds_per_sample=2.0,
    hybrid_seconds_per_sample=10.0,
)

#: backend -> (paper platform, nominal TDP in watts)
PLATFORM_TDP = {
    "serial": ("AMD Ryzen 9 5950X", 105.0),
    "threads": ("2x Intel Xeon Platinum 9242", 700.0),
    "vectorized": ("NVIDIA RTX 3090", 350.0),
}

_ENERGY: "dict[str, tuple[float, float]]" = {}


@pytest.mark.parametrize("backend", ["serial", "threads", "vectorized"])
def test_vc3_energy(benchmark, population_factory, backend):
    pop = population_factory(2000)
    benchmark.pedantic(
        lambda: screen(pop, CFG, method="hybrid", backend=backend), rounds=1, iterations=1
    )
    runtime = benchmark.stats.stats.mean
    _, tdp = PLATFORM_TDP[backend]
    _ENERGY[backend] = (runtime, runtime * tdp)
    benchmark.extra_info.update(backend=backend, tdp_w=tdp, energy_j=round(runtime * tdp, 1))


def test_vc3_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section("Section V-C3 - energy model (hybrid, n=2000, runtime x nominal TDP)")
    rows = []
    for backend, (runtime, energy) in sorted(_ENERGY.items()):
        platform, tdp = PLATFORM_TDP[backend]
        rows.append([backend, platform, f"{tdp:.0f} W", f"{runtime:.2f} s", f"{energy:.0f} J"])
    report.table(["backend", "paper platform", "TDP", "runtime", "energy"], rows)
    # Shape: the data-parallel backend is the most energy-efficient even
    # when charged with the GPU's 350 W TDP.
    vec_energy = _ENERGY["vectorized"][1]
    assert vec_energy < _ENERGY["serial"][1]
    assert vec_energy < _ENERGY["threads"][1]
    report.row("  vectorized backend wins on energy, matching the paper's GPU conclusion")
