"""Temporal-coherence CD: cached cell-pair replay vs full re-emission.

The coherent emitter diffs per-object cell memberships between steps and
re-derives candidate pairs only around cells whose neighbourhood changed;
unchanged cells replay their cached pair lists (DESIGN.md §11).  Both arms
run the identical fused vectorized collection (ALLOC -> INS -> CD) over a
Walker shell; only ``use_coherence`` differs.  Measured and asserted:

* **Byte-identical conjunction-map records** — the cache is a pure
  optimisation; every sweep point and every repetition must produce the
  exact record arrays of the coherence-off run.
* **CD speedup at the finest sampling step** — churn (the fraction of
  objects crossing a cell boundary per step) scales with the step size,
  so coherence pays off most where sampling is densest.  The gate is
  >= 2x at the 20k-object full scale and >= 1.3x at the CI smoke scale
  (``REPRO_BENCH_CHECK_ONLY=1``, 5k objects); the coarser sweep points
  are reported unguarded to show the decay.
* **Probe reduction** — ``cd.probes`` must stay below the
  every-cell-every-step equivalent and the replayed share of emitted
  pairs (``cd.coherence_hit_rate``) must be exposed through repro.obs.

Timings, per-sweep speedups and the emitter's coherence counters land in
``benchmarks/results/BENCH_cd.json``.
"""
from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.detection.gridbased import _make_conjmap, collect_grid_candidates
from repro.detection.types import ScreeningConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import PerfLedger, expect
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.population.scenarios import megaconstellation
from repro.spatial.grid import cell_size_km

CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY", "") == "1"

THRESHOLD_KM = 5.0
N_STEPS = 160
# Finest point first: it carries the speedup gate.
SWEEP = (0.03125, 0.0625, 0.125)
PLANES, SATS = 100, 200
MIN_OBJECTS = 20_000
GATE_SPEEDUP = 2.0
ROUNDS = 2
if CHECK_ONLY:
    SWEEP = (0.03125,)
    PLANES, SATS = 25, 200
    MIN_OBJECTS = 5_000
    GATE_SPEEDUP = 1.3

_POP: "dict[str, object]" = {}
_RESULTS: "dict[float, dict]" = {}
#: Every repetition's CD seconds, gated min-of-k through repro.obs.perf.
_LEDGER = PerfLedger()


def _population():
    if "pop" not in _POP:
        _POP["pop"] = megaconstellation(PLANES, SATS, 550.0, math.radians(53))
    return _POP["pop"]


def _collect(sps: float, use_coherence: bool):
    """One fused INS+CD collection; returns (cd_seconds, records, metrics)."""
    pop = _population()
    config = ScreeningConfig(
        threshold_km=THRESHOLD_KM,
        duration_s=N_STEPS * sps,
        seconds_per_sample=sps,
        use_coherence=use_coherence,
    )
    cell = cell_size_km(config.threshold_km, sps, precision=config.precision)
    times = config.sample_times()
    conj = _make_conjmap(len(pop), config, "grid", sps)
    prop = Propagator(pop, solver=config.solver, precision=config.precision)
    ids = np.arange(len(pop), dtype=np.int64)
    timers = PhaseTimer()
    metrics = MetricsRegistry()
    conj = collect_grid_candidates(
        prop, ids, times, cell, conj, config, "vectorized", timers, metrics=metrics
    )
    return timers.totals.get("CD", 0.0), conj.records(), metrics


@pytest.mark.parametrize("sps", SWEEP)
def test_cd_coherence_speedup(benchmark, sps):
    pop = _population()
    assert len(pop) >= MIN_OBJECTS
    phase = f"CD@sps={sps}"
    keep: "dict[str, object]" = {}

    def run():
        cd_off, rec_off, _ = _collect(sps, use_coherence=False)
        cd_on, rec_on, metrics = _collect(sps, use_coherence=True)
        # The identity gate holds for every repetition, not just the
        # reported one: replay must never alter the emitted records.
        for off_col, on_col in zip(rec_off, rec_on):
            np.testing.assert_array_equal(off_col, on_col)
        _LEDGER.add(phase, "off", cd_off)
        _LEDGER.add(phase, "on", cd_on)
        keep["records"] = rec_on
        keep["metrics"] = metrics
        return rec_on

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=1)
    cd_off = _LEDGER.best_s(phase, "off")
    cd_on = _LEDGER.best_s(phase, "on")
    metrics = keep["metrics"]
    counters = {k: c.value for k, c in metrics.counters.items()}
    _RESULTS[sps] = {
        "seconds_per_sample": sps,
        "steps": N_STEPS,
        "cd_off_s": cd_off,
        "cd_on_s": cd_on,
        "speedup": cd_off / cd_on if cd_on > 0 else float("inf"),
        "records": len(keep["records"][0]),
        "coherence_hit_rate": metrics.gauge("cd.coherence_hit_rate").value,
        "coherent_steps": counters.get("cd.coherent_steps", 0),
        "full_rebuilds": counters.get("cd.coherence_full_rebuilds", 0),
        "pairs_replayed": counters.get("cd.pairs_replayed", 0),
        "probes": counters.get("cd.probes", 0),
        "probes_full_equiv": counters.get("cd.probes_full_equiv", 0),
    }
    benchmark.extra_info.update(
        objects=len(pop), sps=sps,
        cd_off_s=round(cd_off, 4), cd_on_s=round(cd_on, 4),
        speedup=round(_RESULTS[sps]["speedup"], 3),
    )


def test_cd_coherence_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pop = _population()
    sweep = [_RESULTS[sps] for sps in SWEEP]

    mode = " (check-only smoke)" if CHECK_ONLY else ""
    report.section(
        f"Temporal-coherence CD{mode} - {len(pop)} objects, "
        f"threshold {THRESHOLD_KM} km, {N_STEPS} steps per sweep point"
    )
    header = ["sps", "CD off", "CD on", "speedup", "hit rate", "probes saved"]
    rows = [
        [
            r["seconds_per_sample"],
            f"{r['cd_off_s']:.3f}s",
            f"{r['cd_on_s']:.3f}s",
            f"{r['speedup']:.2f}x",
            f"{r['coherence_hit_rate']:.2f}",
            f"{1 - r['probes'] / r['probes_full_equiv']:.0%}",
        ]
        for r in sweep
    ]
    report.table(header, rows)
    report.row(
        f"  gate: >= {GATE_SPEEDUP}x at sps={SWEEP[0]} (churn grows with the "
        "step size, so coherence pays off most at fine sampling)"
    )

    payload = {
        "check_only": CHECK_ONLY,
        "scenario": {
            "planes": PLANES, "sats_per_plane": SATS, "objects": len(pop),
            "threshold_km": THRESHOLD_KM, "steps": N_STEPS,
        },
        "gate_speedup": GATE_SPEEDUP,
        "gate_sps": SWEEP[0],
        "sweep": sweep,
        "identical_records": True,  # asserted per repetition above
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_cd.json").write_text(json.dumps(payload, indent=2) + "\n")

    # Correctness gates (always on): the emitter really ran coherently and
    # did less probing than full re-emission, and the hit rate is exposed.
    gated = sweep[0]
    assert gated["coherent_steps"] > 0
    assert 0.0 < gated["coherence_hit_rate"] <= 1.0
    assert gated["probes"] < gated["probes_full_equiv"]

    # Performance gate: the documented speedup at the finest sweep point,
    # min-of-k over every recorded repetition (rtol 0 — the threshold
    # already encodes the expected margin).
    gate = (
        expect(_LEDGER).phase(f"CD@sps={SWEEP[0]}").speedup_vs("off", "on")
        >= GATE_SPEEDUP
    )
    assert gate, gate
