"""Ablation: violating the Eq. 1 cell-size rule loses conjunctions.

Fig. 4's worst case motivates ``g_c = d + 7.8 * s_ps``: with smaller
cells, a fast head-on encounter can slip between sampling steps without
the two objects ever sharing neighbouring cells at a sample.  This bench
constructs exactly that encounter (a prograde/retrograde pair closing at
~15 km/s) and shows the properly sized grid catches it while undersized
cells miss it.
"""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import MU_EARTH
from repro.detection.gridbased import screen_grid
from repro.detection.types import ScreeningConfig
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.spatial import grid as grid_module


@pytest.fixture(scope="module")
def head_on_pair():
    """Prograde and retrograde equatorial rings meeting near t=30 s."""
    a = 7000.0
    period = 2 * math.pi * math.sqrt(a**3 / MU_EARTH)
    omega = 2 * math.pi / period
    # Opposite senses: object 2 runs the same ring retrograde (i = pi).
    # Phase them so they meet (same angular position) at t = 31 s — chosen
    # to fall exactly *between* the 2 s sampling steps (samples at 30 and
    # 32 s), which is what lets undersized cells skip the encounter.
    t_meet = 31.0
    el1 = KeplerElements(a=a, e=0.0001, i=1e-6, raan=0.0, argp=0.0, m0=0.0)
    # Retrograde ring at 1 km larger radius; angular position of object 2
    # at t is -(m0_2 + omega t) in the equatorial plane (i = pi flips the
    # sense); meeting requires m0_2 = -2 * omega * t_meet.
    el2 = KeplerElements(
        a=a + 1.0, e=0.0001, i=math.pi - 1e-6, raan=0.0, argp=0.0,
        m0=(-2.0 * omega * t_meet) % (2 * math.pi),
    )
    return OrbitalElementsArray.from_elements([el1, el2])


def _screen_with_cell_factor(pop, factor: float, monkeypatch_target=None):
    """Run the grid variant with the Eq. 1 cell size scaled by ``factor``."""
    cfg = ScreeningConfig(threshold_km=2.0, duration_s=60.0, seconds_per_sample=2.0)
    original = grid_module.cell_size_km

    def scaled(threshold_km, seconds_per_sample, speed_kms=7.8):
        return original(threshold_km, seconds_per_sample, speed_kms) * factor

    import repro.detection.gridbased as gb

    saved = gb.cell_size_km
    gb.cell_size_km = scaled
    try:
        return screen_grid(pop, cfg, backend="vectorized")
    finally:
        gb.cell_size_km = saved


def test_ablation_cellsize(benchmark, head_on_pair, report):
    results = {}

    def sweep():
        for factor in (1.0, 0.5, 0.25, 0.1):
            results[factor] = _screen_with_cell_factor(head_on_pair, factor)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    report.section("Ablation - Eq. 1 cell-size rule (head-on encounter at ~15 km/s)")
    rows = []
    for factor, res in sorted(results.items(), reverse=True):
        rows.append([
            f"{factor:.2f} x g_c",
            f"{res.extra['cell_size_km'] * 1.0:.1f} km",
            res.n_conjunctions,
            res.candidates_refined,
        ])
    report.table(["cell size", "km", "conjunctions found", "candidates"], rows)

    # The compliant grid finds the encounter.
    assert results[1.0].n_conjunctions >= 1, "Eq. 1-sized grid must catch the conjunction"
    # A severely undersized grid (10% of Eq. 1) misses it: the Fig. 4 skip.
    assert results[0.1].n_conjunctions == 0, (
        "undersized cells should skip the fast encounter - otherwise the "
        "ablation scenario is not exercising Fig. 4's worst case"
    )
    report.row("  Eq. 1-sized cells catch the encounter; 0.1x cells skip it (Fig. 4)")
