"""Shared infrastructure for the benchmark harness.

Every evaluation artifact of the paper has one bench module here.  Besides
pytest-benchmark's timing table, each experiment appends human-readable
rows to a session report that is printed in the terminal summary and
written to ``benchmarks/results/report.txt`` — that report is the
regenerated "table/figure".
"""
from __future__ import annotations

import platform
from pathlib import Path

import pytest

from repro.population.generator import generate_population

RESULTS_DIR = Path(__file__).parent / "results"


class ExperimentReport:
    """Collects experiment tables across the benchmark session."""

    def __init__(self) -> None:
        self.lines: "list[str]" = []

    def section(self, title: str) -> None:
        self.lines.append("")
        self.lines.append(f"=== {title} ===")

    def row(self, text: str) -> None:
        self.lines.append(text)

    def table(self, header: "list[str]", rows: "list[list[object]]", widths: "list[int] | None" = None) -> None:
        if widths is None:
            widths = [max(len(str(h)), *(len(str(r[k])) for r in rows)) + 2 for k, h in enumerate(header)] if rows else [len(h) + 2 for h in header]
        fmt = "".join(f"{{:<{w}}}" for w in widths)
        self.lines.append(fmt.format(*header))
        for r in rows:
            self.lines.append(fmt.format(*[str(c) for c in r]))

    def dump(self) -> str:
        return "\n".join(self.lines)


_REPORT = ExperimentReport()


@pytest.fixture(scope="session")
def report() -> ExperimentReport:
    return _REPORT


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    text = _REPORT.dump()
    if text.strip():
        terminalreporter.write_sep("=", "experiment report (paper artifact reproductions)")
        terminalreporter.write_line(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "report.txt").write_text(text + "\n")
        terminalreporter.write_line(f"\n[report saved to {RESULTS_DIR / 'report.txt'}]")


_POP_CACHE: "dict[int, object]" = {}


@pytest.fixture(scope="session")
def population_factory():
    """Session-cached deterministic populations keyed by size."""

    def get(n: int):
        if n not in _POP_CACHE:
            _POP_CACHE[n] = generate_population(n, seed=42)
        return _POP_CACHE[n]

    return get


@pytest.fixture(scope="session")
def host_info() -> "dict[str, str]":
    import os

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "processor": platform.processor() or "unknown",
        "cpu_count": str(os.cpu_count()),
        "machine": platform.machine(),
    }
