"""Fig. 9: the bivariate (a, e) density of the seed catalog.

Regenerates the figure's data: a KDE density grid over semi-major axis and
eccentricity, asserting the paper's headline feature — "a high satellite
concentration ... at a semi-major axis of about 7000 km and an
eccentricity of 0.0025" — and rendering the LEO region as an ASCII heat
map in the report.
"""
from __future__ import annotations

import numpy as np

from repro.population.catalog_seed import seed_catalog
from repro.population.kde import BivariateKDE

_SHADES = " .:-=+*#%@"


def test_fig9_bivariate_density(benchmark, report):
    catalog = seed_catalog()
    kde = benchmark.pedantic(lambda: BivariateKDE(catalog, bw_factor=0.05), rounds=1, iterations=1)

    # Global mode: the paper's 7000 km / 0.0025 concentration.
    xs, ys, dens = kde.grid_density((6600.0, 8000.0), (0.0, 0.02), resolution=64)
    iy, ix = np.unravel_index(int(np.argmax(dens)), dens.shape)
    mode_a, mode_e = float(xs[ix]), float(ys[iy])
    assert 6800.0 < mode_a < 7150.0, f"LEO density mode at a={mode_a}"
    assert mode_e < 0.008, f"LEO density mode at e={mode_e}"

    # The LEO mode dominates the GEO ring density (Fig. 9's red vs blue).
    # The GEO ring is narrow so its local peak is non-trivial, but the LEO
    # concentration must still be clearly the global maximum.
    leo_peak = float(dens.max())
    _, _, dens_geo = kde.grid_density((42000.0, 42350.0), (0.0, 0.002), resolution=32)
    assert leo_peak > 3.0 * float(dens_geo.max())

    report.section("Fig. 9 - bivariate (a, e) density")
    report.row(f"  density mode: a = {mode_a:.0f} km, e = {mode_e:.4f} "
               f"(paper: ~7000 km, ~0.0025)")
    report.row(f"  LEO peak / GEO peak density ratio: {leo_peak / float(dens_geo.max()):.0f}x")
    report.row("  LEO region heat map (x: a = 6600..8000 km, y: e = 0..0.02, log shading):")
    log_d = np.log10(np.maximum(dens[::4, ::2], 1e-30))
    lo, hi = log_d.max() - 6.0, log_d.max()
    for row in log_d[::-1]:
        shades = "".join(
            _SHADES[int(np.clip((v - lo) / (hi - lo), 0, 0.999) * len(_SHADES))] for v in row
        )
        report.row("    |" + shades + "|")
