"""Fig. 10: runtime of all variants over population size.

The paper's headline evaluation (Fig. 10a/b/c): runtime of the legacy
baseline versus the grid-based and hybrid variants on CPU (serial /
threads) and GPU (vectorized numpy here) across population sizes.

Population sizes are scaled to interpreter speed (the paper runs 2k-1M on
native CUDA/OpenMP; see DESIGN.md's substitution table).  The reproduction
targets are the curve *shapes*:

* the legacy baseline grows super-linearly and is the slowest large-n,
* both proposed variants overtake it as n grows,
* the hybrid variant beats the grid variant at equal backend,
* the vectorized ("GPU") backends beat the Python-loop ("CPU") ones.

Series are encoded as one benchmark case each, so pytest-benchmark's own
table reads as the figure; the shape assertions and the per-size summary
live in the experiment report.
"""
from __future__ import annotations

import time

import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig

CFG = ScreeningConfig(
    threshold_km=2.0,
    duration_s=600.0,
    seconds_per_sample=2.0,
    hybrid_seconds_per_sample=10.0,
)

#: (figure panel, n, method, backend) — legacy only at small n (its O(n^2)
#: would dominate the harness, exactly the paper's point).
CASES_A = [
    (250, "legacy", "serial"),
    (250, "grid", "serial"),
    (250, "hybrid", "serial"),
    (250, "grid", "vectorized"),
    (250, "hybrid", "vectorized"),
    (1000, "legacy", "serial"),
    (1000, "grid", "serial"),
    (1000, "hybrid", "serial"),
    (1000, "grid", "vectorized"),
    (1000, "hybrid", "vectorized"),
]
CASES_B = [
    (2000, "legacy", "serial"),
    (2000, "grid", "serial"),
    (2000, "hybrid", "serial"),
    (2000, "grid", "vectorized"),
    (2000, "hybrid", "vectorized"),
    (4000, "legacy", "serial"),
    (4000, "hybrid", "serial"),
    (4000, "grid", "vectorized"),
    (4000, "hybrid", "vectorized"),
]
CASES_C = [
    (8000, "grid", "vectorized"),
    (8000, "hybrid", "vectorized"),
    (16000, "grid", "vectorized"),
    (16000, "hybrid", "vectorized"),
    (32000, "grid", "vectorized"),
    (32000, "hybrid", "vectorized"),
]

_TIMINGS: "dict[tuple[int, str, str], float]" = {}


def _run_case(benchmark, population_factory, n, method, backend):
    pop = population_factory(n)

    def run():
        return screen(pop, CFG, method=method, backend=backend)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _TIMINGS[(n, method, backend)] = benchmark.stats.stats.mean
    benchmark.extra_info.update(
        n=n, method=method, backend=backend, conjunctions=result.n_conjunctions
    )
    return result


@pytest.mark.parametrize("n,method,backend", CASES_A)
def test_fig10a_small(benchmark, population_factory, n, method, backend):
    _run_case(benchmark, population_factory, n, method, backend)


@pytest.mark.parametrize("n,method,backend", CASES_B)
def test_fig10b_medium(benchmark, population_factory, n, method, backend):
    _run_case(benchmark, population_factory, n, method, backend)


@pytest.mark.parametrize("n,method,backend", CASES_C)
def test_fig10c_large(benchmark, population_factory, n, method, backend):
    _run_case(benchmark, population_factory, n, method, backend)


def test_fig10_shape_assertions(benchmark, report):
    """Verify the figure's qualitative claims on the measured timings and
    write the regenerated figure (runtime table) to the report."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    t = _TIMINGS
    sizes = sorted({n for n, _, _ in t})

    report.section("Fig. 10 - runtime by population size (seconds)")
    header = ["n", "legacy", "grid-ser", "hyb-ser", "grid-vec", "hyb-vec"]
    rows = []
    for n in sizes:
        def cell(method, backend):
            v = t.get((n, method, backend))
            return f"{v:.2f}" if v is not None else "-"

        rows.append([
            n,
            cell("legacy", "serial"),
            cell("grid", "serial"),
            cell("hybrid", "serial"),
            cell("grid", "vectorized"),
            cell("hybrid", "vectorized"),
        ])
    report.table(header, rows)

    # Shape 1: legacy grows super-linearly (t(4000)/t(1000) >> 4).
    if (1000, "legacy", "serial") in t and (4000, "legacy", "serial") in t:
        growth = t[(4000, "legacy", "serial")] / t[(1000, "legacy", "serial")]
        report.row(f"  legacy growth 1000->4000 (4x n): {growth:.1f}x time "
                   f"(super-linear; ideal quadratic = 16x)")
        assert growth > 6.0, "legacy baseline should scale super-linearly"

    # Shape 2: the proposed variants overtake legacy by 4000 objects.
    for method, backend in (("hybrid", "vectorized"), ("grid", "vectorized")):
        if (4000, method, backend) in t and (4000, "legacy", "serial") in t:
            speedup = t[(4000, "legacy", "serial")] / t[(4000, method, backend)]
            report.row(f"  {method}-{backend} vs legacy at n=4000: {speedup:.0f}x faster")
            assert speedup > 2.0, f"{method}/{backend} should beat legacy at n=4000"

    # Shape 3: hybrid beats grid per backend at the largest common size.
    for backend in ("vectorized",):
        n_max = max(n for n in sizes if (n, "grid", backend) in t and (n, "hybrid", backend) in t)
        ratio = t[(n_max, "grid", backend)] / t[(n_max, "hybrid", backend)]
        report.row(f"  grid/hybrid runtime ratio at n={n_max} ({backend}): {ratio:.1f}x "
                   f"(paper: hybrid faster when memory suffices)")
        assert ratio > 1.0, "hybrid should be faster than grid (enough memory here)"

    # Shape 4: vectorized ("GPU") beats the Python-loop ("CPU") backend.
    for method in ("grid", "hybrid"):
        common = [n for n in sizes if (n, method, "serial") in t and (n, method, "vectorized") in t]
        if common:
            n_big = max(common)
            adv = t[(n_big, method, "serial")] / t[(n_big, method, "vectorized")]
            report.row(f"  {method}: vectorized vs serial at n={n_big}: {adv:.1f}x")
            assert adv > 1.5

    # Shape 5: grid/hybrid growth is far below quadratic.
    if (8000, "grid", "vectorized") in t and (32000, "grid", "vectorized") in t:
        growth = t[(32000, "grid", "vectorized")] / t[(8000, "grid", "vectorized")]
        report.row(f"  grid-vec growth 8000->32000 (4x n): {growth:.1f}x time "
                   f"(quadratic would be 16x)")
        assert growth < 10.0

    # Crossover analysis: fit t(n) = C n^k per series and predict where
    # each proposed variant overtakes legacy — the Fig. 10 statements.
    from repro.perfmodel.runtime import compare_runtimes

    series: "dict[str, list[tuple[int, float]]]" = {}
    for (n, method, backend), secs in t.items():
        series.setdefault(f"{method}-{backend[:3]}", []).append((n, secs))
    series = {k: v for k, v in series.items() if len(v) >= 3}
    if "legacy-ser" in series and len(series) >= 2:
        cmp = compare_runtimes(series)
        report.row("  fitted runtime exponents: " + ", ".join(
            f"{name} n^{cmp.models[name].exponents[0]:.2f}" for name in sorted(series)
        ))
        for overtaken, overtaker, n_cross in cmp.crossovers():
            if overtaken == "legacy-ser":
                report.row(f"  predicted crossover: {overtaker} overtakes legacy at "
                           f"n ~ {n_cross:,.0f}")
        # Legacy must carry the steepest fitted exponent.
        k_legacy = cmp.models["legacy-ser"].exponents[0]
        assert all(
            cmp.models[name].exponents[0] <= k_legacy for name in series
        ), "legacy should have the steepest runtime growth"
