"""Pipelined vs barrier phase schedule: wall time and phase overlap.

The tentpole claim of the round-granular producer/consumer schedule
(DESIGN.md §13): with INS prefetching on its own thread and a REF
consumer draining the candidate queue continuously, the three phases run
on three tracks and the window's wall time drops below the barrier
schedule's strict INS → CD → REF sum — at byte-identical output.

Measured and asserted:

* **Byte-identical conjunctions** — every repetition of the pipelined arm
  must reproduce the barrier arm's record bytes exactly (always gated,
  any host).
* **Wall-time speedup** — ``window`` wall of the pipelined arm >= 1.15x
  the barrier arm, min-of-k via ``repro.obs.perf``.
* **Effective parallelism** — the traced pipelined window's
  ``overlap_report`` must show busy_total / wall >= 1.3: phases genuinely
  overlapping, not merely reordered.

Both perf gates need real cores to mean anything: a 1-CPU host time-slices
the producer, consumer and prefetch threads, so the schedule degrades to
an interleaved barrier.  There the gates **skip with evidence** — the
measured values and the core count still land in
``benchmarks/results/BENCH_pipeline.json`` for the ledger, and the
identity gate still runs.
"""
from __future__ import annotations

import json
import math
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.detection.hybrid import screen_hybrid
from repro.detection.types import ScreeningConfig
from repro.obs import Tracer
from repro.obs.analysis import overlap_report
from repro.obs.perf import PerfLedger, expect
from repro.population.scenarios import megaconstellation

CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY", "") == "1"

THRESHOLD_KM = 5.0
DURATION_S = 1800.0
SPS = 1.0
HYBRID_SPS = 9.0
PLANES, SATS = 100, 200
MIN_OBJECTS = 20_000
GATE_WALL_SPEEDUP = 1.15
GATE_PARALLELISM = 1.3
ROUNDS = 2
if CHECK_ONLY:
    DURATION_S = 450.0
    PLANES, SATS = 25, 200
    MIN_OBJECTS = 5_000

CPUS = os.cpu_count() or 1
#: The producer, the INS prefetch and the REF consumer need at least two
#: real cores to overlap; below that the perf gates skip with evidence.
MULTICORE = CPUS >= 2

_POP: "dict[str, object]" = {}
_RESULTS: "dict[str, object]" = {}
_LEDGER = PerfLedger()


def _population():
    if "pop" not in _POP:
        _POP["pop"] = megaconstellation(PLANES, SATS, 550.0, math.radians(53))
    return _POP["pop"]


def _config(schedule: str) -> ScreeningConfig:
    return ScreeningConfig(
        threshold_km=THRESHOLD_KM,
        duration_s=DURATION_S,
        seconds_per_sample=SPS,
        hybrid_seconds_per_sample=HYBRID_SPS,
        schedule=schedule,
    )


def _run(schedule: str, tracer=None):
    pop = _population()
    kwargs = {} if tracer is None else {"tracer": tracer}
    start = time.perf_counter()
    result = screen_hybrid(pop, _config(schedule), **kwargs)
    wall = time.perf_counter() - start
    return wall, result


def test_pipeline_identity_and_walltime(benchmark):
    pop = _population()
    assert len(pop) >= MIN_OBJECTS
    keep: "dict[str, object]" = {}

    def run():
        barrier_wall, barrier = _run("barrier")
        piped_wall, piped = _run("pipelined")
        # Identity every repetition: the schedule must never change a bit
        # of the output, fast host or slow.
        np.testing.assert_array_equal(barrier.i, piped.i)
        np.testing.assert_array_equal(barrier.j, piped.j)
        assert barrier.tca_s.tobytes() == piped.tca_s.tobytes()
        assert barrier.pca_km.tobytes() == piped.pca_km.tobytes()
        assert piped.filter_stats == barrier.filter_stats
        _LEDGER.add("window", "barrier", barrier_wall)
        _LEDGER.add("window", "pipelined", piped_wall)
        keep["barrier"] = barrier
        keep["piped"] = piped
        return piped

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=1)
    piped = keep["piped"]
    _RESULTS.update(
        barrier_wall_s=_LEDGER.best_s("window", "barrier"),
        pipelined_wall_s=_LEDGER.best_s("window", "pipelined"),
        conjunctions=piped.n_conjunctions,
        pipeline=piped.extra["pipeline"],
        pipeline_queue_bytes=piped.extra["pipeline_queue_bytes"],
    )
    benchmark.extra_info.update(
        objects=len(pop),
        barrier_wall_s=round(_RESULTS["barrier_wall_s"], 4),
        pipelined_wall_s=round(_RESULTS["pipelined_wall_s"], 4),
    )


def test_pipeline_overlap_profile(benchmark):
    """Trace one pipelined window and measure the cross-track overlap."""
    tracer = Tracer()

    def run():
        return _run("pipelined", tracer=tracer)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rep = overlap_report(tracer)
    _RESULTS.update(
        effective_parallelism=rep.effective_parallelism,
        overlap_s=rep.overlap_s,
        wall_s=rep.wall_s,
        tracks=len(rep.tracks),
    )
    # Structural facts that hold on any host: the pipelined run traces
    # more than one busy track, and some cross-track overlap exists.
    assert len(rep.tracks) >= 2, "producer and consumer never traced apart"
    assert rep.overlap_s > 0.0, "no two phases were ever busy simultaneously"


def test_pipeline_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pop = _population()
    speedup = _RESULTS["barrier_wall_s"] / _RESULTS["pipelined_wall_s"]

    mode = " (check-only smoke)" if CHECK_ONLY else ""
    report.section(
        f"Pipelined phase schedule{mode} - {len(pop)} objects hybrid, "
        f"threshold {THRESHOLD_KM} km, {DURATION_S:.0f} s window, {CPUS} CPUs"
    )
    report.table(
        ["arm", "wall", "speedup", "eff. parallelism", "queue peak"],
        [
            ["barrier", f"{_RESULTS['barrier_wall_s']:.3f}s", "1.00x", "-", "-"],
            [
                "pipelined",
                f"{_RESULTS['pipelined_wall_s']:.3f}s",
                f"{speedup:.2f}x",
                f"{_RESULTS['effective_parallelism']:.2f}",
                _RESULTS["pipeline"]["queue_peak_rounds"],
            ],
        ],
    )
    gate_note = (
        f"  gates: wall >= {GATE_WALL_SPEEDUP}x, parallelism >= "
        f"{GATE_PARALLELISM}"
    )
    if not MULTICORE:
        gate_note += f" — SKIPPED with evidence ({CPUS} CPU: threads time-slice)"
    report.row(gate_note)

    payload = {
        "check_only": CHECK_ONLY,
        "scenario": {
            "planes": PLANES, "sats_per_plane": SATS, "objects": len(pop),
            "threshold_km": THRESHOLD_KM, "duration_s": DURATION_S,
            "seconds_per_sample": SPS, "hybrid_seconds_per_sample": HYBRID_SPS,
        },
        "cpus": CPUS,
        "gates": {
            "wall_speedup": GATE_WALL_SPEEDUP,
            "effective_parallelism": GATE_PARALLELISM,
            "enforced": MULTICORE,
        },
        "barrier_wall_s": _RESULTS["barrier_wall_s"],
        "pipelined_wall_s": _RESULTS["pipelined_wall_s"],
        "wall_speedup": speedup,
        "effective_parallelism": _RESULTS["effective_parallelism"],
        "overlap_s": _RESULTS["overlap_s"],
        "tracks": _RESULTS["tracks"],
        "conjunctions": _RESULTS["conjunctions"],
        "pipeline": _RESULTS["pipeline"],
        "pipeline_queue_bytes": _RESULTS["pipeline_queue_bytes"],
        "identical_records": True,  # asserted per repetition above
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if not MULTICORE:
        pytest.skip(
            f"perf gates need >= 2 CPUs to overlap threads; host has {CPUS}. "
            f"Evidence recorded: wall speedup {speedup:.2f}x, effective "
            f"parallelism {_RESULTS['effective_parallelism']:.2f} "
            "(see BENCH_pipeline.json)"
        )

    gate = (
        expect(_LEDGER).phase("window").speedup_vs("barrier", "pipelined")
        >= GATE_WALL_SPEEDUP
    )
    assert gate, gate
    assert _RESULTS["effective_parallelism"] >= GATE_PARALLELISM, (
        f"effective parallelism {_RESULTS['effective_parallelism']:.2f} < "
        f"{GATE_PARALLELISM}: phases reordered but not overlapped"
    )
