"""Ablation: Kepler-solver choice (throughput and accuracy).

The paper ports the contour ("Goat Herd") solver to the GPU and lists
"other propagators" as future work.  This bench races the four
implemented solvers over one batch of 200k anomalies (the per-step load of
a 200k-object population) and confirms they agree to 1e-9 radians.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.orbits.kepler import SOLVERS

BATCH = 200_000
ECCENTRICITY = 0.01  # typical LEO (Fig. 9's 0.0025 mode is even milder)

_TIMES: "dict[str, float]" = {}


@pytest.fixture(scope="module")
def anomalies():
    rng = np.random.default_rng(11)
    return rng.uniform(0.0, TWO_PI, BATCH)


@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_ablation_solver_throughput(benchmark, anomalies, solver):
    fn = SOLVERS[solver]
    benchmark.pedantic(lambda: fn(anomalies, ECCENTRICITY), rounds=2, iterations=1)
    _TIMES[solver] = benchmark.stats.stats.mean
    benchmark.extra_info.update(solver=solver, batch=BATCH)


def test_ablation_solver_report(benchmark, anomalies, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section(f"Ablation - Kepler solver ({BATCH:,} anomalies, e={ECCENTRICITY})")
    rows = [
        [name, f"{secs * 1e3:.1f} ms", f"{BATCH / secs / 1e6:.1f} M/s"]
        for name, secs in sorted(_TIMES.items(), key=lambda kv: kv[1])
    ]
    report.table(["solver", "batch time", "throughput"], rows)

    # Accuracy parity across solvers.
    results = {name: SOLVERS[name](anomalies, ECCENTRICITY) for name in SOLVERS}
    ref = results["bisect"]
    for name, got in results.items():
        np.testing.assert_allclose(got, ref, atol=1e-8, err_msg=name)
    report.row("  all solvers agree to 1e-8 rad; bisection is the (slow) oracle")
    # The production solvers must beat the bisection safeguard comfortably.
    assert _TIMES["newton"] < _TIMES["bisect"]
    assert _TIMES["halley"] < _TIMES["bisect"]
