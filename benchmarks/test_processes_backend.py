"""Serial vs. processes executor ablation for multi-device screening.

The same grid screening load runs three ways — single-device
``screen_grid``, the multi-device ``serial`` executor, and the
multi-device ``processes`` executor (one OS process per device shard,
population published through shared memory) — and the wall-clock of each
lands in ``benchmarks/results/BENCH_procs.json``.

There is **no performance gate**: process pools pay a real spawn +
interpreter-import cost, so whether they win depends on the load size and
the host.  The benchmark exists to *measure* that trade honestly; the
acceptance gate is correctness — all three runs must produce the
bit-identical conjunction set.

``REPRO_BENCH_CHECK_ONLY=1`` (the CI smoke mode) shrinks the population
and the screening span so the job finishes in seconds.
"""
from __future__ import annotations

import json
import math
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.parallel.multidevice import screen_grid_multidevice
from repro.population.scenarios import megaconstellation

CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY", "") == "1"

N_DEVICES = 2
if CHECK_ONLY:
    PLANES, SATS = 12, 30
    CFG = ScreeningConfig(threshold_km=10.0, duration_s=600.0, seconds_per_sample=2.0)
else:
    PLANES, SATS = 48, 30
    CFG = ScreeningConfig(threshold_km=10.0, duration_s=1800.0, seconds_per_sample=2.0)
N_OBJECTS = PLANES * SATS

#: (label, runner) of each measured configuration.
_RESULTS: "dict[str, dict]" = {}


def _population():
    return megaconstellation(PLANES, SATS, 550.0, math.radians(53))


def _run(label: str, fn):
    t0 = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - t0
    result = out[0] if isinstance(out, tuple) else out
    _RESULTS[label] = {
        "seconds": elapsed,
        "i": result.i,
        "j": result.j,
        "tca": result.tca_s,
        "pca": result.pca_km,
        "n_conjunctions": result.n_conjunctions,
        "candidates_refined": result.candidates_refined,
        "timers": dict(result.timers.totals),
    }
    return result


@pytest.mark.parametrize("label", ["single-device", "serial", "processes"])
def test_executor_variant(benchmark, label):
    pop = _population()
    if label == "single-device":
        fn = lambda: screen(pop, CFG, method="grid", backend="vectorized")
    else:
        fn = lambda: screen_grid_multidevice(pop, CFG, N_DEVICES, executor=label)
    result = benchmark.pedantic(lambda: _run(label, fn), rounds=1, iterations=1)
    benchmark.extra_info.update(
        n_objects=N_OBJECTS, n_devices=N_DEVICES,
        conjunctions=result.n_conjunctions,
        wall_s=round(_RESULTS[label]["seconds"], 3),
    )


def test_processes_backend_report(report):
    base = _RESULTS["single-device"]

    mode = " (check-only smoke)" if CHECK_ONLY else ""
    report.section(
        f"Process-sharded screening{mode} - {N_OBJECTS} objects, "
        f"{N_DEVICES} devices, {CFG.duration_s:.0f} s span"
    )
    header = ["executor", "wall", "vs single", "conjunctions", "candidates"]
    rows = []
    payload = {
        "check_only": CHECK_ONLY,
        "scenario": {
            "n_objects": N_OBJECTS,
            "n_devices": N_DEVICES,
            "threshold_km": CFG.threshold_km,
            "duration_s": CFG.duration_s,
            "seconds_per_sample": CFG.seconds_per_sample,
        },
        "executors": {},
    }
    for label in ("single-device", "serial", "processes"):
        r = _RESULTS[label]
        ratio = base["seconds"] / r["seconds"] if r["seconds"] > 0 else float("inf")
        rows.append([
            label, f"{r['seconds']:.3f}s", f"{ratio:.2f}x",
            r["n_conjunctions"], r["candidates_refined"],
        ])
        payload["executors"][label] = {
            "wall_seconds": r["seconds"],
            "speedup_vs_single_device": ratio,
            "n_conjunctions": r["n_conjunctions"],
            "candidates_refined": r["candidates_refined"],
            "phase_seconds": r["timers"],
        }
    report.table(header, rows)
    report.row("  correctness gate: all three conjunction sets bit-identical "
               "(no perf gate - spawn cost is load-dependent)")

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_procs.json").write_text(json.dumps(payload, indent=2) + "\n")

    # The acceptance gate: executor choice never changes the answer.
    for label in ("serial", "processes"):
        r = _RESULTS[label]
        np.testing.assert_array_equal(r["i"], base["i"], err_msg=label)
        np.testing.assert_array_equal(r["j"], base["j"], err_msg=label)
        np.testing.assert_array_equal(r["tca"], base["tca"], err_msg=label)
        np.testing.assert_array_equal(r["pca"], base["pca"], err_msg=label)
