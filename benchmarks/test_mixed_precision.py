"""Mixed-precision broad phase: fp64 vs float32 INS/CD on one dense shell.

Both precision policies run the identical candidate collection (ALLOC ->
INS -> CD, fused vectorized rounds) over a >= 20k-object Walker shell;
refinement then runs once per policy so the final conjunction sets can be
compared.  Measured and asserted:

* **INS speedup** — the float-touching phase (propagation + grid build)
  is where the float32 pipeline pays off on this CPU emulation: fp32
  SIMD trig and half-width round buffers.
* **INS+CD no-regression** — candidate emission and conjunction-map
  insertion are integer-keyed and precision-independent in numpy, so the
  pipeline-level gain is bounded by the INS share (DESIGN.md §10 explains
  why the paper's CUDA broad phase, being bandwidth-bound, sees the full
  2x from halved traffic; the memory plan models that side: per-grid
  bytes halve and ``parallel_steps`` doubles, reported below).
* **Candidate inflation <= 5 %** — the error-bounded cell pad admits only
  a small extra candidate margin.
* **Identical post-REF conjunction sets** — the float64 refinement wipes
  out the broad-phase precision difference entirely.

Timings and the modeled memory-plan comparison land in
``benchmarks/results/BENCH_fp32.json``.  ``REPRO_BENCH_CHECK_ONLY=1``
shrinks the shell and skips the wall-clock assertions.
"""
from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.detection.gridbased import (
    _make_conjmap,
    collect_grid_candidates,
    refine_records,
)
from repro.detection.pca_tca import interval_radii, merge_conjunctions
from repro.detection.types import ScreeningConfig
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.perfmodel.memory import plan_memory
from repro.population.scenarios import megaconstellation
from repro.spatial.grid import cell_size_km, fp32_cell_pad_km

CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY", "") == "1"

BASE = dict(threshold_km=5.0, duration_s=300.0, seconds_per_sample=2.0)
PLANES, SATS = 100, 200
MIN_OBJECTS = 20_000
if CHECK_ONLY:
    BASE = dict(threshold_km=5.0, duration_s=120.0, seconds_per_sample=2.0)
    PLANES, SATS = 12, 25
    MIN_OBJECTS = 300

PRECISIONS = ("fp64", "mixed")

_POP: "dict[str, object]" = {}
_RESULTS: "dict[str, dict]" = {}


def _population():
    if "pop" not in _POP:
        _POP["pop"] = megaconstellation(PLANES, SATS, 550.0, math.radians(53))
    return _POP["pop"]


def _collect(precision: str):
    """One full INS+CD candidate collection; returns (timers, records)."""
    pop = _population()
    config = ScreeningConfig(**BASE, precision=precision)
    cell = cell_size_km(
        config.threshold_km, config.seconds_per_sample, precision=precision
    )
    times = config.sample_times()
    conj = _make_conjmap(len(pop), config, "grid", config.seconds_per_sample)
    prop = Propagator(pop, solver=config.solver, precision=precision)
    ids = np.arange(len(pop), dtype=np.int64)
    timers = PhaseTimer()
    conj = collect_grid_candidates(
        prop, ids, times, cell, conj, config, "vectorized", timers
    )
    return timers, conj.records(), times


@pytest.mark.parametrize("precision", PRECISIONS)
def test_broad_phase_precision(benchmark, precision):
    pop = _population()
    assert len(pop) >= MIN_OBJECTS
    samples: "list[tuple[float, float]]" = []
    keep: "dict[str, object]" = {}

    def run():
        timers, records, times = _collect(precision)
        samples.append((timers.totals.get("INS", 0.0), timers.totals.get("CD", 0.0)))
        keep["records"] = records
        keep["times"] = times
        return records

    records = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    ins_s, cd_s = min(samples, key=lambda s: s[0] + s[1])
    _RESULTS[precision] = {
        "ins_s": ins_s,
        "cd_s": cd_s,
        "records": records,
        "times": keep["times"],
    }
    benchmark.extra_info.update(
        objects=len(pop), candidates=len(records[0]),
        ins_s=round(ins_s, 4), cd_s=round(cd_s, 4), precision=precision,
    )


def _refine(records, times, precision: str):
    """The shared float64 REF stage, as the grid variant runs it."""
    pop = _population()
    config = ScreeningConfig(**BASE, precision=precision)
    ref_cell = cell_size_km(config.threshold_km, config.seconds_per_sample)
    rec_i, rec_j, rec_step = records
    radii = interval_radii(pop, rec_i, rec_j, ref_cell)
    i, j, tca, pca = refine_records(
        pop, rec_i, rec_j, times[rec_step], radii, config, "vectorized"
    )
    return merge_conjunctions(i, j, tca, pca, config.tca_merge_tol_s)


def test_mixed_precision_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pop = _population()
    r64, r32 = _RESULTS["fp64"], _RESULTS["mixed"]

    n64 = len(r64["records"][0])
    n32 = len(r32["records"][0])
    inflation = (n32 - n64) / n64 if n64 else 0.0
    ins_speedup = r64["ins_s"] / r32["ins_s"] if r32["ins_s"] > 0 else float("inf")
    tot64 = r64["ins_s"] + r64["cd_s"]
    tot32 = r32["ins_s"] + r32["cd_s"]
    ins_cd_speedup = tot64 / tot32 if tot32 > 0 else float("inf")

    f64 = _refine(r64["records"], r64["times"], "fp64")
    f32 = _refine(r32["records"], r32["times"], "mixed")

    budget = 4 * 2**30
    plan_args = (
        len(pop), BASE["seconds_per_sample"], BASE["duration_s"],
        BASE["threshold_km"], "grid", budget,
    )
    p64 = plan_memory(*plan_args, auto_adjust=False)
    p32 = plan_memory(*plan_args, auto_adjust=False, precision="mixed")

    mode = " (check-only smoke)" if CHECK_ONLY else ""
    report.section(
        f"Mixed-precision broad phase{mode} - {len(pop)} objects, "
        f"threshold {BASE['threshold_km']} km, "
        f"cell pad {fp32_cell_pad_km() * 1000:.1f} m"
    )
    header = ["precision", "INS", "CD", "INS+CD", "candidates", "conjunctions"]
    rows = [
        ["fp64", f"{r64['ins_s']:.3f}s", f"{r64['cd_s']:.3f}s",
         f"{tot64:.3f}s", n64, len(f64[0])],
        ["mixed", f"{r32['ins_s']:.3f}s", f"{r32['cd_s']:.3f}s",
         f"{tot32:.3f}s", n32, len(f32[0])],
    ]
    report.table(header, rows)
    report.row(
        f"  INS speedup {ins_speedup:.2f}x, INS+CD {ins_cd_speedup:.2f}x, "
        f"candidate inflation {100 * inflation:+.2f}%"
    )
    report.row(
        f"  modeled device memory: per-grid bytes {p64.per_grid_bytes} -> "
        f"{p32.per_grid_bytes} (2x), parallel steps {p64.parallel_steps} -> "
        f"{p32.parallel_steps}"
    )
    report.row(
        "  CD is integer-keyed (precision-independent) on the numpy "
        "emulation; the CUDA broad phase is bandwidth-bound, hence the "
        "2x modeled round-traffic ratio above"
    )

    payload = {
        "check_only": CHECK_ONLY,
        "scenario": {
            "planes": PLANES, "sats_per_plane": SATS, "objects": len(pop),
            **BASE,
        },
        "fp32_cell_pad_km": fp32_cell_pad_km(),
        "phases": {
            p: {"ins_s": _RESULTS[p]["ins_s"], "cd_s": _RESULTS[p]["cd_s"]}
            for p in PRECISIONS
        },
        "candidates": {"fp64": n64, "mixed": n32, "inflation": inflation},
        "conjunctions": {"fp64": len(f64[0]), "mixed": len(f32[0])},
        "speedups": {"ins": ins_speedup, "ins_cd": ins_cd_speedup},
        "memory_plan": {
            "budget_bytes": budget,
            "per_grid_bytes": {"fp64": p64.per_grid_bytes, "mixed": p32.per_grid_bytes},
            "parallel_steps": {"fp64": p64.parallel_steps, "mixed": p32.parallel_steps},
            "modeled_round_bytes_ratio": p64.per_grid_bytes / p32.per_grid_bytes,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fp32.json").write_text(json.dumps(payload, indent=2) + "\n")

    # Correctness gates (always on): bounded candidate inflation and a
    # post-REF conjunction set identical to the float64 pipeline's.
    assert inflation <= 0.05, f"candidate inflation {100 * inflation:.2f}% > 5%"
    np.testing.assert_array_equal(f32[0], f64[0])
    np.testing.assert_array_equal(f32[1], f64[1])
    np.testing.assert_allclose(f32[2], f64[2], atol=1e-4)
    np.testing.assert_allclose(f32[3], f64[3], atol=1e-6)

    # Performance gates (skipped in the CI smoke mode): the float-touching
    # INS phase must win, and the pipeline must not regress.  The issue's
    # aspirational 1.3x INS+CD target is a GPU-bandwidth expectation; on
    # the numpy emulation the integer-keyed CD floor caps the pipeline
    # ratio (see DESIGN.md §10), so the asserted gates are the honest
    # CPU-side ones and the modeled 2x traffic ratio carries the device
    # story.
    if not CHECK_ONLY:
        assert ins_speedup >= 1.05, f"INS speedup {ins_speedup:.2f}x below gate"
        assert ins_cd_speedup >= 0.90, (
            f"mixed INS+CD regressed: {ins_cd_speedup:.2f}x"
        )
