"""Section V-C1: relative time consumption of the pipeline phases.

The paper reports, per variant, the share of time spent in conjunction
detection (CD), grid insertion (INS), and — hybrid only — the coplanarity
/ orbital-filter check:

  hybrid GPU: 68% CD, 21% INS,  9% coplanarity
  hybrid CPU: 87% CD,  9% INS,  3% coplanarity
  grid GPU:   72% CD, 26% INS
  grid CPU:   92% CD,  7% INS

This bench regenerates the same percentage table from the built-in phase
timers.  In this reproduction "CD+REF" corresponds to the paper's CD
(their conjunction-detection kernel includes the PCA/TCA work we time
separately); the shape target is CD-dominated runtimes with insertion
second, and a small coplanarity share for the hybrid variant.
"""
from __future__ import annotations

import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig

CFG = ScreeningConfig(
    threshold_km=2.0, duration_s=600.0, seconds_per_sample=2.0,
    hybrid_seconds_per_sample=10.0,
)

_RESULTS: "dict[tuple[str, str], dict[str, float]]" = {}


@pytest.mark.parametrize(
    "method,backend",
    [
        ("grid", "vectorized"),
        ("grid", "serial"),
        ("hybrid", "vectorized"),
        ("hybrid", "serial"),
    ],
)
def test_vc1_phase_timing(benchmark, population_factory, method, backend):
    pop = population_factory(2000)
    result = benchmark.pedantic(
        lambda: screen(pop, CFG, method=method, backend=backend), rounds=1, iterations=1
    )
    fractions = result.timers.fractions()
    _RESULTS[(method, backend)] = fractions
    benchmark.extra_info.update(method=method, backend=backend, **{
        k: round(v, 4) for k, v in fractions.items()
    })


def test_vc1_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section("Section V-C1 - relative time consumption (%, n=2000)")
    header = ["variant", "INS", "CD", "REF", "CD+REF", "COP", "ALLOC"]
    rows = []
    for (method, backend), fr in sorted(_RESULTS.items()):
        def pct(key):
            return f"{100 * fr.get(key, 0.0):.0f}"

        cd_ref = 100 * (fr.get("CD", 0.0) + fr.get("REF", 0.0))
        rows.append([
            f"{method}-{backend}", pct("INS"), pct("CD"), pct("REF"),
            f"{cd_ref:.0f}", pct("COP"), pct("ALLOC"),
        ])
    report.table(header, rows)
    report.row("  paper: CD dominates every variant (68-92%), INS second, "
               "coplanarity <= 9% (hybrid only)")

    for (method, backend), fr in _RESULTS.items():
        cd_like = fr.get("CD", 0.0) + fr.get("REF", 0.0)
        ins = fr.get("INS", 0.0)
        assert cd_like > ins, f"{method}/{backend}: detection should dominate insertion"
        if method == "hybrid":
            assert fr.get("COP", 0.0) < 0.5, "coplanarity/filters must be a minor phase"
        assert fr.get("ALLOC", 0.0) < 0.2, "allocation must be negligible"
