"""Eqs. 3/4: fitting the conjunction-count model Extra-P style.

The paper sweeps its parameters, measures the number of conjunction-map
records, and fits ``c' = C * n^a * s^b * t^c * d^e`` with Extra-P, getting
``n^2 s^{4/3} t d^{7/4}`` (grid) and ``n^2 s^{5/3} t d`` (hybrid).

This bench reruns that methodology on the reproduction: sweep (n, s, t,
d), count the records the grid phase stores, fit with
:func:`repro.perfmodel.extrap.fit_power_law`, and compare the recovered
exponents with the paper's.  Exact exponents depend on the population and
scale, so the assertions target the structure: conjunction records grow
about quadratically in n, about linearly in t, and increase with both s
and d.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.gridbased import _make_conjmap, collect_grid_candidates
from repro.detection.types import ScreeningConfig
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.perfmodel.extrap import fit_power_law, paper_conjunction_model
from repro.spatial.grid import cell_size_km

#: Sweep axes (scaled to interpreter speed; the paper sweeps to 1M).
N_VALUES = (500, 1000, 2000)
S_VALUES = (2.0, 4.0, 8.0)
T_VALUES = (300.0, 600.0)
D_VALUES = (2.0, 4.0)


def _count_records(pop, n, s, t, d) -> int:
    cfg = ScreeningConfig(threshold_km=d, duration_s=t, seconds_per_sample=s)
    cell = cell_size_km(d, s)
    conj = _make_conjmap(n, cfg, "grid", s)
    prop = Propagator(pop)
    ids = np.arange(n, dtype=np.int64)
    conj = collect_grid_candidates(
        prop, ids, cfg.sample_times(), cell, conj, cfg, "vectorized", PhaseTimer()
    )
    return conj.size


def test_eq34_fit_conjunction_model(benchmark, population_factory, report):
    observations = []

    def sweep():
        obs = []
        for n in N_VALUES:
            pop = population_factory(n)
            for s in S_VALUES:
                for t in T_VALUES:
                    for d in D_VALUES:
                        count = _count_records(pop, n, s, t, d)
                        obs.append(({"n": float(n), "s": s, "t": t, "d": d}, float(max(count, 1))))
        return obs

    observations = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fitted = fit_power_law(["n", "s", "t", "d"], observations)
    paper = paper_conjunction_model("grid")

    report.section("Eq. 3 - Extra-P conjunction-count model (grid variant)")
    report.table(
        ["parameter", "paper exponent", "fitted exponent"],
        [
            ["n (satellites)", f"{paper.exponents[0]:.3f}", f"{fitted.exponents[0]:.3f}"],
            ["s (sec/sample)", f"{paper.exponents[1]:.3f}", f"{fitted.exponents[1]:.3f}"],
            ["t (span)", f"{paper.exponents[2]:.3f}", f"{fitted.exponents[2]:.3f}"],
            ["d (threshold)", f"{paper.exponents[3]:.3f}", f"{fitted.exponents[3]:.3f}"],
        ],
    )
    report.row(f"  fitted coefficient: {fitted.coefficient:.3g} "
               f"(paper: {paper.coefficient:.3g}; depends on population density)")
    report.row(f"  log-residual: {fitted.residual:.3f} over {len(observations)} observations")

    n_exp, s_exp, t_exp, d_exp = fitted.exponents
    assert 1.5 <= n_exp <= 2.5, f"records should grow ~quadratically in n, got {n_exp}"
    assert 0.5 <= t_exp <= 1.5, f"records should grow ~linearly in t, got {t_exp}"
    assert s_exp > 0.0, "coarser sampling (bigger cells) must increase records"
    assert d_exp > 0.0, "larger thresholds must increase records"


def test_eq34_paper_model_predictions(benchmark, report):
    """Sanity-check the embedded paper models across the paper's range."""

    def evaluate():
        grid = paper_conjunction_model("grid")
        hybrid = paper_conjunction_model("hybrid")
        rows = []
        for n in (2_000, 64_000, 1_024_000):
            g = grid.predict(n=float(n), s=1.0, t=3600.0, d=2.0)
            h = hybrid.predict(n=float(n), s=9.0, t=3600.0, d=2.0)
            rows.append([n, f"{g:,.0f}", f"{h:,.0f}"])
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    report.section("Eqs. 3/4 - paper model predictions (t=1h, d=2km)")
    report.table(["n", "grid c' (s=1)", "hybrid c' (s=9)"], rows)
    # The hybrid map is larger at equal n (the memory trade of Section III).
    grid_1m = paper_conjunction_model("grid").predict(n=1_024_000.0, s=1.0, t=3600.0, d=2.0)
    hybrid_1m = paper_conjunction_model("hybrid").predict(n=1_024_000.0, s=9.0, t=3600.0, d=2.0)
    assert hybrid_1m > grid_1m
