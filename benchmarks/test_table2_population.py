"""Table II: value ranges of the generated Kepler elements.

Regenerates the population-generation table: every element must fall in
its documented range, with a and e following the Fig. 9 KDE.
"""
from __future__ import annotations

import math

import numpy as np

from repro.population.generator import generate_population

TWO_PI = 2.0 * math.pi


def test_table2_element_ranges(benchmark, report):
    pop = benchmark.pedantic(lambda: generate_population(20_000, seed=42), rounds=1, iterations=1)

    checks = [
        ("Semi-major axis", pop.a, "from distribution", float(pop.a.min()), float(pop.a.max())),
        ("Eccentricity", pop.e, "from distribution", float(pop.e.min()), float(pop.e.max())),
        ("Inclination", pop.i, "0 - pi", 0.0, math.pi),
        ("RAAN", pop.raan, "0 - 2pi", 0.0, TWO_PI),
        ("Argument of perigee", pop.argp, "0 - 2pi", 0.0, TWO_PI),
        ("Mean anomaly", pop.m0, "0 - 2pi", 0.0, TWO_PI),
    ]
    rows = []
    for name, arr, spec, lo, hi in checks:
        assert arr.min() >= lo - 1e-12, name
        assert arr.max() <= hi + 1e-12, name
        rows.append([name, spec, f"[{arr.min():.4g}, {arr.max():.4g}]"])

    # Uniformity of the angular elements (Table II says uniform at random).
    for name, arr, lo, hi in [
        ("Inclination", pop.i, 0.0, math.pi),
        ("RAAN", pop.raan, 0.0, TWO_PI),
        ("Argument of perigee", pop.argp, 0.0, TWO_PI),
        ("Mean anomaly", pop.m0, 0.0, TWO_PI),
    ]:
        mid = 0.5 * (lo + hi)
        assert abs(arr.mean() - mid) < 0.05 * (hi - lo), f"{name} not uniform"
        hist, _ = np.histogram(arr, bins=10, range=(lo, hi))
        assert hist.min() > 0.7 * len(pop) / 10, f"{name} has a depleted decile"

    report.section("Table II - generated Kepler element ranges (n=20,000)")
    report.table(["Element", "Paper range", "Measured range"], rows)
