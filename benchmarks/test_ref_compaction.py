"""REF-engine ablation: convergence-aware compaction + warm-started Kepler.

Four variants of :func:`repro.detection.pca_tca.refine_batch` run on the
identical candidate load of a dense Walker-shell screening:

* ``fixed-cold``    — 60 golden iterations, fixed 10-iteration cold Newton
  (the seed kernel, byte-for-byte: the baseline);
* ``fixed-warm``    — 60 golden iterations, warm-started convergent Newton;
* ``compact-cold``  — active-lane compaction to ``brent_tol``, cold Newton;
* ``compact-warm``  — compaction + warm starts (the PR's default engine).

The acceptance gate: ``compact-warm`` at least 2x faster than
``fixed-cold`` on a >= 20k-candidate load, with the byte-identical kept
record set and TCA/PCA within ``brent_tol``.  Timings, per-variant
telemetry and the perf-model summary land in
``benchmarks/results/BENCH_ref.json``.

``REPRO_BENCH_CHECK_ONLY=1`` (the CI smoke mode) shrinks the shell and
skips the wall-clock assertions — correctness invariants still run.
"""
from __future__ import annotations

import json
import math
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.detection.gridbased import _make_conjmap, collect_grid_candidates
from repro.detection.pca_tca import interval_radii, refine_batch
from repro.detection.types import ScreeningConfig
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer, RefTelemetry
from repro.perfmodel.runtime import ref_phase_summary
from repro.population.scenarios import megaconstellation
from repro.spatial.grid import cell_size_km

CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY", "") == "1"

CFG = ScreeningConfig(threshold_km=10.0, duration_s=3000.0, seconds_per_sample=2.0)
PLANES, SATS = 48, 30
MIN_CANDIDATES = 20_000
if CHECK_ONLY:
    CFG = ScreeningConfig(threshold_km=10.0, duration_s=1500.0, seconds_per_sample=2.0)
    PLANES, SATS = 12, 30
    MIN_CANDIDATES = 500

#: (name, golden tol, warm_start) of each ablation variant.
VARIANTS = [
    ("fixed-cold", None, False),
    ("fixed-warm", None, True),
    ("compact-cold", CFG.brent_tol, False),
    ("compact-warm", CFG.brent_tol, True),
]

_RESULTS: "dict[str, dict]" = {}
_CANDIDATES: "dict[str, object]" = {}


def _candidate_load():
    """One shared CD pass: the (pair, step) records every variant refines."""
    if "records" not in _CANDIDATES:
        pop = megaconstellation(PLANES, SATS, 550.0, math.radians(53))
        cell = cell_size_km(CFG.threshold_km, CFG.seconds_per_sample)
        times = CFG.sample_times()
        conj = _make_conjmap(len(pop), CFG, "grid", CFG.seconds_per_sample)
        prop = Propagator(pop, solver=CFG.solver)
        ids = np.arange(len(pop), dtype=np.int64)
        conj = collect_grid_candidates(
            prop, ids, times, cell, conj, CFG, "vectorized", PhaseTimer(),
        )
        rec_i, rec_j, rec_step = conj.records()
        _CANDIDATES["population"] = pop
        _CANDIDATES["records"] = (
            rec_i, rec_j, times[rec_step], interval_radii(pop, rec_i, rec_j, cell)
        )
    return _CANDIDATES["population"], _CANDIDATES["records"]


@pytest.mark.parametrize("name, tol, warm", VARIANTS, ids=[v[0] for v in VARIANTS])
def test_ref_variant(benchmark, name, tol, warm):
    pop, (rec_i, rec_j, centers, radii) = _candidate_load()
    assert len(rec_i) >= MIN_CANDIDATES, (
        f"scenario produced only {len(rec_i)} candidates"
    )
    samples: "list[tuple[float, RefTelemetry]]" = []

    def run():
        tele = RefTelemetry()
        t0 = time.perf_counter()
        keep, tca, pca = refine_batch(
            pop, rec_i, rec_j, centers, radii, CFG.threshold_km,
            tol=tol, warm_start=warm, telemetry=tele,
        )
        samples.append((time.perf_counter() - t0, tele))
        return keep, tca, pca

    keep, tca, pca = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    best_s, tele = min(samples, key=lambda s: s[0])
    _RESULTS[name] = {
        "seconds": best_s,
        "keep": keep,
        "tca": tca,
        "pca": pca,
        "telemetry": tele.as_dict(),
        "model": ref_phase_summary(tele),
    }
    benchmark.extra_info.update(
        candidates=len(rec_i), kept=len(keep), ref_s=round(best_s, 4),
        mean_kepler_iterations=round(tele.mean_kepler_iterations, 2),
        golden_iterations=tele.golden_iterations,
    )


def test_ref_compaction_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pop, (rec_i, *_rest) = _candidate_load()
    base = _RESULTS["fixed-cold"]

    mode = " (check-only smoke)" if CHECK_ONLY else ""
    report.section(
        f"REF engine ablation{mode} - {len(rec_i)} candidates, "
        f"{len(pop)}-sat shell, threshold {CFG.threshold_km} km"
    )
    header = ["variant", "REF", "speedup", "kept", "mean kep it", "golden it"]
    rows = []
    payload = {
        "check_only": CHECK_ONLY,
        "scenario": {
            "planes": PLANES, "sats_per_plane": SATS,
            "threshold_km": CFG.threshold_km, "duration_s": CFG.duration_s,
            "seconds_per_sample": CFG.seconds_per_sample,
            "brent_tol": CFG.brent_tol, "candidates": len(rec_i),
        },
        "variants": {},
    }
    for name, _tol, _warm in VARIANTS:
        r = _RESULTS[name]
        speedup = base["seconds"] / r["seconds"] if r["seconds"] > 0 else float("inf")
        rows.append([
            name, f"{r['seconds']:.3f}s", f"{speedup:.2f}x", len(r["keep"]),
            f"{r['telemetry']['mean_kepler_iterations']:.2f}",
            r["telemetry"]["golden_iterations"],
        ])
        payload["variants"][name] = {
            "ref_seconds": r["seconds"],
            "speedup_vs_fixed_cold": speedup,
            "kept_records": len(r["keep"]),
            "max_abs_dtca_s": float(np.abs(r["tca"] - base["tca"]).max())
            if len(r["tca"]) else 0.0,
            "max_abs_dpca_km": float(np.abs(r["pca"] - base["pca"]).max())
            if len(r["pca"]) else 0.0,
            "telemetry": r["telemetry"],
            "model": r["model"],
        }
    report.table(header, rows)
    report.row("  baseline = seed kernel (60 golden iterations, fixed "
               "10-iteration cold Newton); identical kept records verified")

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_ref.json").write_text(json.dumps(payload, indent=2) + "\n")

    # Correctness gates: every variant keeps the byte-identical record set
    # and agrees on TCA/PCA at the brent_tol scale.
    for name, _tol, _warm in VARIANTS[1:]:
        r = _RESULTS[name]
        np.testing.assert_array_equal(r["keep"], base["keep"], err_msg=name)
        assert np.abs(r["tca"] - base["tca"]).max() <= CFG.brent_tol, name
        assert np.abs(r["pca"] - base["pca"]).max() <= 1e-6, name

    # Performance gate (skipped in the CI smoke mode): the PR's default
    # engine at least doubles the seed baseline's REF throughput.
    if not CHECK_ONLY:
        speedup = base["seconds"] / _RESULTS["compact-warm"]["seconds"]
        assert speedup >= 2.0, (
            f"compact-warm speedup {speedup:.2f}x below the 2x acceptance gate"
        )
