"""Ablation: the smart sieve as a refinement prefilter.

Section II describes the (smart) sieve methods as cheap kinematic checks
between consecutive propagated states.  Plugged in front of the grid
variant's PCA/TCA refinement (``use_smart_sieve=True``), the sieve should
drop a measurable share of the candidate records — each a saved Brent
search — without changing a single reported conjunction.
"""
from __future__ import annotations

import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig

BASE = dict(threshold_km=2.0, duration_s=600.0, seconds_per_sample=2.0)

_RESULTS = {}


@pytest.mark.parametrize("use_sieve", [False, True])
def test_ablation_sieve_run(benchmark, population_factory, use_sieve):
    pop = population_factory(4000)
    cfg = ScreeningConfig(use_smart_sieve=use_sieve, **BASE)
    result = benchmark.pedantic(
        lambda: screen(pop, cfg, method="grid", backend="vectorized"), rounds=1, iterations=1
    )
    _RESULTS[use_sieve] = (result, benchmark.stats.stats.mean)
    benchmark.extra_info.update(
        smart_sieve=use_sieve,
        candidates_refined=result.candidates_refined,
        sieved=result.extra.get("sieved_records", 0),
    )


def test_ablation_sieve_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain, plain_s = _RESULTS[False]
    sieved, sieved_s = _RESULTS[True]
    report.section("Ablation - smart sieve as refinement prefilter (grid, n=4000)")
    report.table(
        ["configuration", "records refined", "records sieved", "conjunctions", "wall"],
        [
            ["plain", plain.candidates_refined, "-", plain.n_conjunctions, f"{plain_s:.2f} s"],
            [
                "smart sieve",
                sieved.candidates_refined,
                sieved.extra["sieved_records"],
                sieved.n_conjunctions,
                f"{sieved_s:.2f} s",
            ],
        ],
    )
    # Identical science, less refinement work.
    assert sieved.unique_pairs() == plain.unique_pairs()
    assert sieved.n_conjunctions == plain.n_conjunctions
    assert sieved.candidates_refined < plain.candidates_refined
    saved = 1.0 - sieved.candidates_refined / max(plain.candidates_refined, 1)
    report.row(f"  {100 * saved:.0f}% of Brent searches proven unnecessary, zero result change")
