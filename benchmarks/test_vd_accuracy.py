"""Section V-D: accuracy — conjunction counts and pair differences.

The paper at 64k satellites: legacy finds 17,184 conjunctions; the
grid-based variant 17,264; the hybrid 17,242.  The hybrid finds *all*
legacy pairs (plus 30 extra); the grid variant misses 5 pairs — all
Brent-edge cases within 50 m of the threshold — and finds 35 extra.

The reproduction (scaled n) regenerates the same comparison table and
asserts:

* hybrid pairs are a superset of legacy pairs,
* grid misses at most a handful of pairs, every miss within a small
  margin of the threshold (the paper's 50 m edge-case band, scaled),
* extras of both variants are real sub-threshold encounters (verified by
  direct distance sampling).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.pca_tca import PairDistanceScalar
from repro.detection.types import ScreeningConfig

CFG = ScreeningConfig(
    threshold_km=5.0, duration_s=1200.0, seconds_per_sample=2.0,
    hybrid_seconds_per_sample=10.0,
)

N = 2500

_RES = {}


@pytest.mark.parametrize("method", ["legacy", "grid", "hybrid"])
def test_vd_run_variant(benchmark, population_factory, method):
    pop = population_factory(N)
    result = benchmark.pedantic(lambda: screen(pop, CFG, method=method), rounds=1, iterations=1)
    _RES[method] = result
    benchmark.extra_info.update(method=method, conjunctions=result.n_conjunctions)


def _true_min_distance(pop, i, j, duration):
    dist = PairDistanceScalar(pop, i, j)
    ts = np.linspace(0.0, duration, 4001)
    return min(dist(float(t)) for t in ts)


def test_vd_accuracy_report(benchmark, population_factory, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pop = population_factory(N)
    legacy, grid, hybrid = _RES["legacy"], _RES["grid"], _RES["hybrid"]
    lp, gp, hp = legacy.unique_pairs(), grid.unique_pairs(), hybrid.unique_pairs()

    report.section(f"Section V-D - accuracy (n={N}, d={CFG.threshold_km} km, "
                   f"t={CFG.duration_s:.0f} s)")
    report.table(
        ["variant", "conjunctions", "pairs", "missing vs legacy", "extra vs legacy"],
        [
            ["legacy", legacy.n_conjunctions, len(lp), "-", "-"],
            ["grid", grid.n_conjunctions, len(gp), len(lp - gp), len(gp - lp)],
            ["hybrid", hybrid.n_conjunctions, len(hp), len(lp - hp), len(hp - lp)],
        ],
    )
    report.row("  paper @64k: legacy 17,184 / grid 17,264 (5 missing, 35 extra) / "
               "hybrid 17,242 (0 missing, 30 extra)")

    # Hybrid finds every legacy pair.
    assert lp <= hp, f"hybrid missed legacy pairs: {lp - hp}"

    # Grid misses at most a handful, all within the threshold-edge band.
    missed = lp - gp
    assert len(missed) <= max(3, len(lp) // 20), f"grid missed too many: {missed}"
    for i, j in missed:
        d = _true_min_distance(pop, i, j, CFG.duration_s)
        assert d > CFG.threshold_km * 0.95, (
            f"grid missed a clear conjunction {i},{j} at {d:.3f} km"
        )
        report.row(f"  grid edge-case miss {i}/{j}: true minimum {d:.3f} km "
                   f"(within 5% of the threshold, as in the paper)")

    # Extras are genuine sub-threshold encounters, not phantoms.
    for label, extras in (("grid", gp - lp), ("hybrid", hp - lp)):
        for i, j in sorted(extras)[:5]:
            d = _true_min_distance(pop, i, j, CFG.duration_s)
            assert d <= CFG.threshold_km * 1.02, (
                f"{label} reported phantom pair {i},{j} with true minimum {d:.3f} km"
            )

    # Event counts are in the same ballpark across variants (paper: within
    # a fraction of a percent of each other).
    counts = [legacy.n_conjunctions, grid.n_conjunctions, hybrid.n_conjunctions]
    assert max(counts) - min(counts) <= max(3, max(counts) // 10)
