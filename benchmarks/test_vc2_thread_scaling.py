"""Section V-C2: CPU thread impact.

The paper measures a 19x speedup for the grid-based and 14x for the hybrid
variant at 32 threads (59% / 44% efficiency).  CPython's GIL serialises
Python bytecode, so *wall-clock* speedup is not reproducible in this
substrate (the repro=3 gate documented in DESIGN.md); what this bench
reproduces instead is

* the thread-scaling *harness* itself (same partitioning, same shared
  lock-free structures),
* the protocol-correctness under concurrency (all thread counts produce
  identical results),
* the measured wall-clock per thread count, reported honestly alongside
  the paper's numbers.
"""
from __future__ import annotations

import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig

CFG_BASE = dict(
    threshold_km=2.0, duration_s=300.0, seconds_per_sample=2.0,
    hybrid_seconds_per_sample=10.0,
)

THREAD_COUNTS = (1, 2, 4, 8)

_TIMES: "dict[tuple[str, int], float]" = {}
_PAIRS: "dict[tuple[str, int], frozenset]" = {}


@pytest.mark.parametrize("method", ["grid", "hybrid"])
@pytest.mark.parametrize("n_threads", THREAD_COUNTS)
def test_vc2_thread_count(benchmark, population_factory, method, n_threads):
    pop = population_factory(1000)
    cfg = ScreeningConfig(n_threads=n_threads, **CFG_BASE)
    result = benchmark.pedantic(
        lambda: screen(pop, cfg, method=method, backend="threads"), rounds=1, iterations=1
    )
    _TIMES[(method, n_threads)] = benchmark.stats.stats.mean
    _PAIRS[(method, n_threads)] = frozenset(result.unique_pairs())
    benchmark.extra_info.update(method=method, n_threads=n_threads)


def test_vc2_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section("Section V-C2 - CPU thread impact (n=1000, threads backend)")
    header = ["variant", *[f"{t}T" for t in THREAD_COUNTS], "speedup@max"]
    rows = []
    for method in ("grid", "hybrid"):
        times = [_TIMES[(method, t)] for t in THREAD_COUNTS]
        speedup = times[0] / times[-1]
        rows.append([method, *[f"{x:.2f}s" for x in times], f"{speedup:.2f}x"])
        # Correctness across thread counts: identical conjunction pairs.
        baseline = _PAIRS[(method, 1)]
        for t in THREAD_COUNTS[1:]:
            assert _PAIRS[(method, t)] == baseline, (
                f"{method}: thread count {t} changed the result - CAS protocol violated"
            )
    report.table(header, rows)
    report.row("  paper: 19x (grid) / 14x (hybrid) at 32 threads on native OpenMP")
    report.row("  here : GIL-bound - correctness reproduced, wall-clock speedup is not")
    report.row("         (all thread counts produced identical conjunction sets)")
