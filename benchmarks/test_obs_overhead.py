"""NullTracer overhead: the observability hooks must be free when off.

The PR 3 instrumentation threads ``tracer.span(...)`` / ``metrics`` hooks
through every hot loop (grid rounds, phase timers, filter chains).  With
the default :data:`repro.obs.NULL_TRACER` and ``metrics=None`` each site
costs one attribute check (``tracer.enabled``) — this bench proves the
end-to-end cost on a real grid screen stays **under 2%** against the
pre-instrumentation baseline.

The baseline is reconstructed in-process: ``PhaseTimer.phase`` is
monkeypatched back to the seed's tracer-free implementation and the
gridbased collection loop is timed with the same populations.  All
variants run interleaved (A/B/C/A/B/C...) with a warm-up pass, and the
*minimum* over repeats is compared — the standard way to strip scheduler
noise from a micro-benchmark.

Min-of-k is not always enough: this suite also runs on shared 1-CPU
hosts where co-tenant load makes even two *identical* arms disagree by
10%+ for minutes at a time.  A **control arm** (the baseline timed a
second time) measures the actual noise of each run; when the control
disagrees with the baseline by more than the gates could resolve, the
A/B gates are skipped with the evidence in the skip message rather than
failing on weather.

A third arm runs the same workload with a live
:class:`repro.obs.resources.ResourceSampler` attached and gates the
sampler's cost at **under 1%** of the instrumented run via its directly
measured self-cost (wall seconds spent inside ``sample_once``), which
is noise-free: min-of-k A/B clocks — wall *or* process CPU time — swing
2-5% run-to-run on a shared single-CPU host, an order of magnitude
wider than the budget being asserted.  The A/B CPU-time ratio is still
bounded coarsely as a tripwire for costs the self-measurement cannot
see (thread-wakeup GIL handoff), and both A/B ratios are reported as
evidence in the artifact.

Results land in ``benchmarks/results/BENCH_obs.json``.
``REPRO_BENCH_CHECK_ONLY=1`` (the CI smoke mode) shrinks the load and
skips the wall-clock assertions — the plumbing still runs.
"""
from __future__ import annotations

import contextlib
import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.obs import MetricsRegistry, Tracer
from repro.obs.perf import PerfLedger, expect, expect_value
from repro.obs.resources import ResourceSampler
from repro.parallel.backend import PhaseTimer

CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY", "") == "1"

N_OBJECTS = 2000 if not CHECK_ONLY else 300
REPEATS = 5 if not CHECK_ONLY else 2
CFG = ScreeningConfig(
    threshold_km=5.0,
    duration_s=600.0 if not CHECK_ONLY else 120.0,
    seconds_per_sample=2.0,
)
MAX_OVERHEAD = 0.02
#: The ResourceSampler's own budget on the same workload, asserted on
#: its noise-free self-measured cost (see module docstring).
MAX_SAMPLER_OVERHEAD = 0.01
#: Coarse tripwire on the CPU-time A/B ratio.  Host noise makes min-of-k
#: A/B clocks spread 2-5% run to run — far too wide to resolve the 1%
#: budget — but a pathological sampler (say, a 1 ms interval) would
#: still blow through this bound.
MAX_SAMPLER_CPU_RATIO = 1.15
#: If the control arm (identical code to the baseline) disagrees with
#: the baseline by more than this, the host cannot resolve the A/B
#: gates this run and they are skipped, not failed.
NOISE_BUDGET = 0.02


@contextlib.contextmanager
def _seed_phase_timer():
    """Swap ``PhaseTimer.phase`` for the seed's tracer-free version."""
    import time as _time
    from contextlib import contextmanager

    @contextmanager
    def seed_phase(self, name):
        start = _time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + _time.perf_counter() - start

    original = PhaseTimer.phase
    PhaseTimer.phase = seed_phase
    try:
        yield
    finally:
        PhaseTimer.phase = original


def _time_screen(pop) -> "tuple[float, float]":
    """One screen; returns (wall seconds, process CPU seconds)."""
    wall0, cpu0 = time.perf_counter(), time.process_time()
    screen(pop, CFG, method="grid", backend="vectorized")
    return time.perf_counter() - wall0, time.process_time() - cpu0


def test_null_tracer_overhead(population_factory, report):
    pop = population_factory(N_OBJECTS)

    # Warm up caches / JIT-free numpy paths once per variant.
    with _seed_phase_timer():
        _time_screen(pop)
    _time_screen(pop)

    # Interleaved A/B/C repeats gated min-of-k through repro.obs.perf.
    # Wall clocks carry the tracer gate; the sampler arms also record
    # process CPU time (phase "screen_cpu") for the noise-immune gate.
    ledger = PerfLedger()
    sampling_cost_s = 0.0
    for _ in range(REPEATS):
        with _seed_phase_timer():
            wall, _cpu = _time_screen(pop)
            ledger.add("screen", "baseline", wall)
            wall, _cpu = _time_screen(pop)
            ledger.add("screen", "control", wall)
        wall, cpu = _time_screen(pop)
        ledger.add("screen", "instrumented", wall)
        ledger.add("screen_cpu", "instrumented", cpu)
        sampler = ResourceSampler()
        with sampler:
            wall, cpu = _time_screen(pop)
        ledger.add("screen", "sampled", wall)
        ledger.add("screen_cpu", "sampled", cpu)
        sampling_cost_s += sampler.sampling_cost_s

    baseline = ledger.best_s("screen", "baseline")
    control = ledger.best_s("screen", "control")
    instrumented = ledger.best_s("screen", "instrumented")
    sampled = ledger.best_s("screen", "sampled")
    noise = abs(control / baseline - 1.0)
    overhead = instrumented / baseline - 1.0
    sampler_overhead = sampled / instrumented - 1.0
    sampler_cpu_overhead = (
        ledger.best_s("screen_cpu", "sampled")
        / ledger.best_s("screen_cpu", "instrumented")
        - 1.0
    )
    # The sampler's own accounting: wall seconds inside sample_once,
    # averaged per sampled run.
    sampler_self_fraction = sampling_cost_s / REPEATS / sampled

    # One traced run for the record: how many spans a real trace carries.
    tracer = Tracer()
    metrics = MetricsRegistry()
    start = time.perf_counter()
    screen(pop, CFG, method="grid", backend="vectorized", tracer=tracer, metrics=metrics)
    traced_s = time.perf_counter() - start
    n_spans = len(tracer.records())

    payload = {
        "experiment": "obs_null_tracer_overhead",
        "objects": N_OBJECTS,
        "duration_s": CFG.duration_s,
        "repeats": REPEATS,
        "check_only": CHECK_ONLY,
        "baseline_min_s": baseline,
        "control_min_s": control,
        "noise_fraction": noise,
        "noise_budget": NOISE_BUDGET,
        "instrumented_min_s": instrumented,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "sampled_min_s": sampled,
        "sampler_overhead_fraction": sampler_overhead,
        "sampler_cpu_overhead_fraction": sampler_cpu_overhead,
        "sampler_self_cost_fraction": sampler_self_fraction,
        "max_sampler_overhead_fraction": MAX_SAMPLER_OVERHEAD,
        "max_sampler_cpu_ratio": MAX_SAMPLER_CPU_RATIO,
        "traced_run_s": traced_s,
        "traced_spans": n_spans,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(json.dumps(payload, indent=2) + "\n")

    report.section("observability: NullTracer overhead")
    report.table(
        ["variant", "min wall (s)", "overhead"],
        [
            ["seed PhaseTimer (baseline)", f"{baseline:.4f}", "-"],
            ["null tracer (default)", f"{instrumented:.4f}", f"{100 * overhead:+.2f}%"],
            ["null tracer + sampler", f"{sampled:.4f}", f"{100 * (sampled / baseline - 1):+.2f}%"],
            ["real tracer + metrics", f"{traced_s:.4f}", f"{100 * (traced_s / baseline - 1):+.2f}%"],
        ],
    )
    report.row(
        f"  sampler cost: self-measured {100 * sampler_self_fraction:.3f}%, "
        f"CPU-time A/B {100 * sampler_cpu_overhead:+.2f}%, "
        f"wall A/B {100 * sampler_overhead:+.2f}%"
    )
    report.row(
        f"  noise control: identical arms disagree by {100 * noise:.2f}% "
        f"(budget {100 * NOISE_BUDGET:.0f}% — beyond it the A/B gates skip)"
    )

    assert n_spans > 0
    if not CHECK_ONLY:
        # The sampler's 1% budget runs on the noise-free self-measured
        # tick cost — always enforced, whatever the host weather.
        self_gate = (
            expect_value(
                "sampler self-cost fraction of the sampled run",
                sampler_self_fraction,
                detail=f"sum(sample_once)={sampling_cost_s:.4f}s "
                f"over {REPEATS} runs of {sampled:.4f}s",
            )
            <= MAX_SAMPLER_OVERHEAD
        )
        assert self_gate, self_gate

        # The A/B gates need the host to actually resolve them: if two
        # identical arms disagree beyond the noise budget this run, the
        # comparisons are weather, not signal.
        if noise > NOISE_BUDGET:
            pytest.skip(
                f"host noise: identical baseline/control arms disagree by "
                f"{noise:.1%} (> {NOISE_BUDGET:.0%}); A/B gates are not "
                "resolvable this run (self-cost gate passed)"
            )
        gate = (
            expect(ledger).phase("screen").ratio_vs("baseline", "instrumented")
            <= 1.0 + MAX_OVERHEAD
        )
        assert gate, gate
        # Coarse tripwire for sampler costs outside sample_once
        # (thread-wakeup GIL handoff), on the steadier CPU clock.
        sampler_gate = (
            expect(ledger).phase("screen_cpu").ratio_vs("instrumented", "sampled")
            <= MAX_SAMPLER_CPU_RATIO
        )
        assert sampler_gate, sampler_gate
