"""NullTracer overhead: the observability hooks must be free when off.

The PR 3 instrumentation threads ``tracer.span(...)`` / ``metrics`` hooks
through every hot loop (grid rounds, phase timers, filter chains).  With
the default :data:`repro.obs.NULL_TRACER` and ``metrics=None`` each site
costs one attribute check (``tracer.enabled``) — this bench proves the
end-to-end cost on a real grid screen stays **under 2%** against the
pre-instrumentation baseline.

The baseline is reconstructed in-process: ``PhaseTimer.phase`` is
monkeypatched back to the seed's tracer-free implementation and the
gridbased collection loop is timed with the same populations.  Both
variants run interleaved (A/B/A/B...) with a warm-up pass, and the
*minimum* over repeats is compared — the standard way to strip scheduler
noise from a micro-benchmark.

Results land in ``benchmarks/results/BENCH_obs.json``.
``REPRO_BENCH_CHECK_ONLY=1`` (the CI smoke mode) shrinks the load and
skips the wall-clock assertion — the plumbing still runs.
"""
from __future__ import annotations

import contextlib
import json
import os
import time

from benchmarks.conftest import RESULTS_DIR
from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.obs import MetricsRegistry, Tracer
from repro.parallel.backend import PhaseTimer

CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY", "") == "1"

N_OBJECTS = 2000 if not CHECK_ONLY else 300
REPEATS = 5 if not CHECK_ONLY else 2
CFG = ScreeningConfig(
    threshold_km=5.0,
    duration_s=600.0 if not CHECK_ONLY else 120.0,
    seconds_per_sample=2.0,
)
MAX_OVERHEAD = 0.02


@contextlib.contextmanager
def _seed_phase_timer():
    """Swap ``PhaseTimer.phase`` for the seed's tracer-free version."""
    import time as _time
    from contextlib import contextmanager

    @contextmanager
    def seed_phase(self, name):
        start = _time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + _time.perf_counter() - start

    original = PhaseTimer.phase
    PhaseTimer.phase = seed_phase
    try:
        yield
    finally:
        PhaseTimer.phase = original


def _time_screen(pop) -> float:
    start = time.perf_counter()
    screen(pop, CFG, method="grid", backend="vectorized")
    return time.perf_counter() - start


def test_null_tracer_overhead(population_factory, report):
    pop = population_factory(N_OBJECTS)

    # Warm up caches / JIT-free numpy paths once per variant.
    with _seed_phase_timer():
        _time_screen(pop)
    _time_screen(pop)

    baseline_times: "list[float]" = []
    instrumented_times: "list[float]" = []
    for _ in range(REPEATS):
        with _seed_phase_timer():
            baseline_times.append(_time_screen(pop))
        instrumented_times.append(_time_screen(pop))

    baseline = min(baseline_times)
    instrumented = min(instrumented_times)
    overhead = instrumented / baseline - 1.0

    # One traced run for the record: how many spans a real trace carries.
    tracer = Tracer()
    metrics = MetricsRegistry()
    start = time.perf_counter()
    screen(pop, CFG, method="grid", backend="vectorized", tracer=tracer, metrics=metrics)
    traced_s = time.perf_counter() - start
    n_spans = len(tracer.records())

    payload = {
        "experiment": "obs_null_tracer_overhead",
        "objects": N_OBJECTS,
        "duration_s": CFG.duration_s,
        "repeats": REPEATS,
        "check_only": CHECK_ONLY,
        "baseline_min_s": baseline,
        "instrumented_min_s": instrumented,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "traced_run_s": traced_s,
        "traced_spans": n_spans,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(json.dumps(payload, indent=2) + "\n")

    report.section("observability: NullTracer overhead")
    report.table(
        ["variant", "min wall (s)", "overhead"],
        [
            ["seed PhaseTimer (baseline)", f"{baseline:.4f}", "-"],
            ["null tracer (default)", f"{instrumented:.4f}", f"{100 * overhead:+.2f}%"],
            ["real tracer + metrics", f"{traced_s:.4f}", f"{100 * (traced_s / baseline - 1):+.2f}%"],
        ],
    )

    assert n_spans > 0
    if not CHECK_ONLY:
        assert overhead < MAX_OVERHEAD, (
            f"null-tracer instrumentation costs {100 * overhead:.2f}% "
            f"(limit {100 * MAX_OVERHEAD:.0f}%)"
        )
