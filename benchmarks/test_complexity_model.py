"""Section III-B: the hollow-sphere average-case model vs measurement.

The paper's complexity analysis bounds the candidate pairs by summing
``2 n_i^2 / b_i`` over hollow spheres.  This bench computes that bound for
real populations and compares it with the *measured* candidate-pair counts
of the grid phase, verifying the two headline claims:

* the bound (and the measurement) grows quadratically with n *within* the
  density profile, but
* both sit orders of magnitude below the naive all-on-all pair count —
  the "significantly better scaling behavior" of the contribution list.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.complexity import decompose_shells, predicted_candidates_per_step
from repro.detection.gridbased import _make_conjmap, collect_grid_candidates
from repro.detection.types import ScreeningConfig
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.spatial.grid import cell_size_km

SIZES = (1000, 2000, 4000)
#: A 5 km threshold raises the per-step candidate counts out of the
#: small-number-noise regime at these scaled-down population sizes.
CFG = ScreeningConfig(threshold_km=5.0, duration_s=300.0, seconds_per_sample=2.0)

_ROWS = []


def _measure_candidates(pop) -> float:
    """Measured candidate records per sampling step."""
    cell = cell_size_km(CFG.threshold_km, CFG.seconds_per_sample)
    conj = _make_conjmap(len(pop), CFG, "grid", CFG.seconds_per_sample)
    conj = collect_grid_candidates(
        Propagator(pop), np.arange(len(pop), dtype=np.int64), CFG.sample_times(),
        cell, conj, CFG, "vectorized", PhaseTimer(),
    )
    return conj.size / len(CFG.sample_times())


@pytest.mark.parametrize("n", SIZES)
def test_complexity_measurement(benchmark, population_factory, n):
    pop = population_factory(n)
    cell = cell_size_km(CFG.threshold_km, CFG.seconds_per_sample)
    measured = benchmark.pedantic(lambda: _measure_candidates(pop), rounds=1, iterations=1)
    dec = decompose_shells(pop, cell)
    predicted = predicted_candidates_per_step(pop, cell)
    _ROWS.append((n, measured, predicted, dec.naive_pairs, dec.reduction_factor))
    benchmark.extra_info.update(n=n, measured_per_step=round(measured, 2))


def test_complexity_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section("Section III-B - hollow-sphere model vs measured candidates (per step)")
    rows = [
        [n, f"{measured:.2f}", f"{predicted:.2f}", f"{naive:,}", f"{red:.0f}x"]
        for n, measured, predicted, naive, red in _ROWS
    ]
    report.table(["n", "measured cand/step", "model cand/step", "naive pairs", "shell reduction"], rows)

    by_n = {n: (m, p) for n, m, p, _, _ in _ROWS}
    # Quadratic growth of both measurement and model within the profile.
    meas_growth = by_n[4000][0] / max(by_n[1000][0], 1e-9)
    model_growth = by_n[4000][1] / by_n[1000][1]
    report.row(f"  growth 1000->4000: measured {meas_growth:.1f}x, model {model_growth:.1f}x "
               f"(quadratic = 16x)")
    # The measured count carries Poisson noise at these scaled sizes; the
    # window brackets quadratic growth generously while excluding linear
    # (4x) and cubic (64x) behaviour.
    assert 6.0 < meas_growth < 60.0
    assert 10.0 < model_growth < 25.0
    # Both sit far below the naive pair count.
    for n, measured, predicted, naive, _ in _ROWS:
        assert measured < naive / 100.0
    report.row("  candidates stay orders of magnitude below all-on-all - the spatial")
    report.row("  locality win of Section III-B")
