"""Build-once 4D AABB-tree broad phase vs the per-step grid.

Both arms run the full screen (ALLOC -> INS -> CD -> REF) over identical
populations; only ``method`` differs.  The tree amortises ONE swept-box
build over the whole window and propagates only coarse knots up front,
so its win regime is *fine sampling over long windows in sparse
populations*: the grid pays full-population propagation plus a grid
rebuild at every one of the ~7200 steps, while the tree touches only the
objects its broad phase could not exclude.  Measured and asserted:

* **Byte-identical conjunction sets** — every repetition of every sweep
  point compares i/j/tca/pca of both arms with exact array equality.
* **Broad-phase (INS+CD) speedup gate** — >= 1.5x at the sparse
  fine-sampling point (200 objects, 1 s sampling, 2 h window); >= 1.2x
  at the CI smoke scale (``REPRO_BENCH_CHECK_ONLY=1``).
* **Honest crossover rows** — denser populations shrink the win (the
  narrow phase converges on the grid's full workload), and coarse
  sampling *inverts* it: the sweep margin ``v_max * K * sps / 2`` fattens
  every box until everything overlaps everything, and the grid wins.
  Those rows are reported unguarded in the crossover table.

Timings, speedups, occupancy rejection rates and tree/bitmap footprints
land in ``benchmarks/results/BENCH_aabb.json``.
"""
from __future__ import annotations

import json
import os

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.detection import ScreeningConfig, screen
from repro.obs.perf import PerfLedger, expect
from repro.population.generator import generate_population

CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY", "") == "1"

THRESHOLD_KM = 2.0
DURATION_S = 7200.0
GATE_SPEEDUP = 1.5
ROUNDS = 2
# (label, n_objects, seconds_per_sample, gated).  The first row carries
# the speedup gate; the rest document the decay and the inversion.
SWEEP = (
    ("sparse fine", 200, 1.0, True),
    ("mid fine", 400, 1.0, False),
    ("dense fine", 1000, 1.0, False),
    ("mid coarse", 400, 60.0, False),
)
if CHECK_ONLY:
    DURATION_S = 1800.0
    GATE_SPEEDUP = 1.2
    SWEEP = (
        ("sparse fine", 200, 1.0, True),
        ("mid coarse", 200, 60.0, False),
    )

_RESULTS: "dict[str, dict]" = {}
#: Broad-phase seconds per repetition, gated min-of-k through repro.obs.perf.
_LEDGER = PerfLedger()


def _broad_phase_s(res):
    """INS + CD from the screen's own phase timers: propagation plus
    candidate emission, excluding the (identical-input) refinement."""
    return res.timers.totals.get("INS", 0.0) + res.timers.totals.get("CD", 0.0)


def _assert_bitwise_equal(a, b):
    np.testing.assert_array_equal(a.i, b.i)
    np.testing.assert_array_equal(a.j, b.j)
    np.testing.assert_array_equal(a.tca_s, b.tca_s)
    np.testing.assert_array_equal(a.pca_km, b.pca_km)


@pytest.mark.parametrize("label,n,sps,gated", SWEEP, ids=[s[0] for s in SWEEP])
def test_aabb4d_broad_phase(benchmark, label, n, sps, gated):
    pop = generate_population(n, seed=7)
    config = ScreeningConfig(
        threshold_km=THRESHOLD_KM, duration_s=DURATION_S, seconds_per_sample=sps
    )
    keep: "dict[str, object]" = {}

    def run():
        grid = screen(pop, config, method="grid")
        tree = screen(pop, config, method="aabb4d")
        # The identity gate holds for every repetition, not just the
        # reported one: the tree is a pure broad-phase optimisation.
        _assert_bitwise_equal(grid, tree)
        _LEDGER.add(label, "grid", _broad_phase_s(grid))
        _LEDGER.add(label, "aabb4d", _broad_phase_s(tree))
        keep["grid"], keep["tree"] = grid, tree
        return tree

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=0)
    grid_s = _LEDGER.best_s(label, "grid")
    tree_s = _LEDGER.best_s(label, "aabb4d")
    tree = keep["tree"]
    _RESULTS[label] = {
        "label": label,
        "objects": n,
        "seconds_per_sample": sps,
        "gated": gated,
        "grid_broad_s": grid_s,
        "aabb4d_broad_s": tree_s,
        "speedup": grid_s / tree_s if tree_s > 0 else float("inf"),
        "conjunctions": int(len(tree.i)),
        "n_boxes": tree.extra["n_boxes"],
        "occupancy_rejection_rate": tree.extra["occupancy_rejection_rate"],
        "box_pairs": tree.extra["box_pairs"],
        "narrow_objects": tree.extra["narrow_objects"],
        "tree_build_s": tree.extra["tree_build_seconds"],
        "tree_query_s": tree.extra["tree_query_seconds"],
        "tree_bytes": tree.extra["tree_bytes"],
        "bitmap_bytes": tree.extra["bitmap_bytes"],
    }
    benchmark.extra_info.update(
        objects=n, sps=sps,
        grid_broad_s=round(grid_s, 4), aabb4d_broad_s=round(tree_s, 4),
        speedup=round(_RESULTS[label]["speedup"], 3),
    )


def test_aabb4d_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sweep = [_RESULTS[s[0]] for s in SWEEP]

    mode = " (check-only smoke)" if CHECK_ONLY else ""
    report.section(
        f"Build-once 4D AABB-tree broad phase{mode} - threshold "
        f"{THRESHOLD_KM} km, {DURATION_S:.0f} s window"
    )
    header = ["regime", "n", "sps", "grid INS+CD", "tree INS+CD",
              "speedup", "occ. reject", "gate"]
    rows = [
        [
            r["label"],
            r["objects"],
            r["seconds_per_sample"],
            f"{r['grid_broad_s']:.3f}s",
            f"{r['aabb4d_broad_s']:.3f}s",
            f"{r['speedup']:.2f}x",
            f"{r['occupancy_rejection_rate']:.0%}",
            f">={GATE_SPEEDUP}x" if r["gated"] else "-",
        ]
        for r in sweep
    ]
    report.table(header, rows)
    report.row(
        "  crossover: density shrinks the win (narrow phase converges on "
        "the grid's workload); coarse sampling inverts it (the sweep "
        "margin v_max*K*sps/2 fattens every box) - the grid stays the "
        "right default there"
    )

    payload = {
        "check_only": CHECK_ONLY,
        "scenario": {
            "threshold_km": THRESHOLD_KM,
            "duration_s": DURATION_S,
            "population_seed": 7,
        },
        "gate_speedup": GATE_SPEEDUP,
        "gate_regime": SWEEP[0][0],
        "sweep": sweep,
        "identical_conjunctions": True,  # asserted per repetition above
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_aabb.json").write_text(json.dumps(payload, indent=2) + "\n")

    # Correctness gates (always on): the prefilter really rejected boxes
    # somewhere in the sweep and the footprints are priced.
    gated = sweep[0]
    assert gated["tree_bytes"] > 0 and gated["bitmap_bytes"] > 0
    assert gated["narrow_objects"] <= gated["objects"]
    assert any(r["occupancy_rejection_rate"] > 0.0 for r in sweep)

    # Performance gate: min-of-k broad-phase speedup in the sparse
    # fine-sampling regime (rtol 0 - the threshold already encodes the
    # expected margin).
    gate = (
        expect(_LEDGER).phase(SWEEP[0][0]).speedup_vs("grid", "aabb4d")
        >= GATE_SPEEDUP
    )
    assert gate, gate
