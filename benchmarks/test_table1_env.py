"""Table I analogue: record the benchmark system configuration.

The paper's Table I lists its two benchmark systems (Ryzen 9 5950X +
RTX 3090; 2x Xeon Platinum 9242).  This bench captures the host actually
running the reproduction into the experiment report, so every result file
carries its environment exactly as the paper's tables do.
"""
from __future__ import annotations

import time


def test_table1_environment(benchmark, report, host_info):
    # Time a tiny calibrated workload so the environment row also carries a
    # rough single-core throughput reference (useful when comparing report
    # files from different machines).
    def spin():
        acc = 0.0
        for k in range(200_000):
            acc += k * 1e-9
        return acc

    benchmark.pedantic(spin, rounds=3, iterations=1)
    report.section("Table I - benchmark system")
    for key, value in host_info.items():
        report.row(f"  {key:<12}: {value}")
    report.row("  paper systems: Ryzen 9 5950X + RTX 3090 (24 GB); 2x Xeon Platinum 9242")
    report.row("  substitution : GPU -> numpy vectorized backend, OpenMP -> threads backend")
