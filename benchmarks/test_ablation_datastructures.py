"""Ablation: spatial data-structure choice (grid vs trees vs interval tree).

Section IV-A argues for hash grids over trees: "octrees or Kd-trees ...
must be recreated each time an object moves, requiring higher
computational cost at each iteration", citing the related-work Kd-tree
screener [29].  This bench measures that claim on identical workloads
across all three families: one sampling step's build + candidate
emission for the grids (serial hash, sort-based, CAS-round), the
per-step rebuild trees (Kd-tree, loose octree), and the build-once 4D
interval AABB tree (Bak & Hobbs), whose single window-wide build is
amortised over the steps it serves.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.types import ScreeningConfig
from repro.orbits.propagation import Propagator
from repro.spatial.aabb4d import AABB4DTree, knot_schedule, max_speed_kms, swept_boxes
from repro.spatial.grid import UniformGrid
from repro.spatial.kdtree import KDTree
from repro.spatial.octree import LooseOctree
from repro.spatial.vectorgrid import SortedGrid, VectorHashGrid

N = 4000
CELL = 9.8  # d=2 km, s_ps=1 s
WINDOW_STEPS = 64  # the build-once tree's amortisation window

_TIMES: "dict[str, float]" = {}


@pytest.fixture(scope="module")
def step_positions(population_factory):
    pop = population_factory(N)
    return Propagator(pop).positions(0.0)


def _ids():
    return np.arange(N, dtype=np.int64)


def test_ablation_ds_sorted_grid(benchmark, step_positions):
    def run():
        grid = SortedGrid(CELL)
        grid.build(_ids(), step_positions)
        return grid.candidate_pairs()

    benchmark.pedantic(run, rounds=3, iterations=1)
    _TIMES["sorted-grid"] = benchmark.stats.stats.mean


def test_ablation_ds_cas_hash_grid(benchmark, step_positions):
    def run():
        grid = VectorHashGrid(CELL, capacity=N)
        grid.build(_ids(), step_positions)
        return grid.candidate_pairs()

    benchmark.pedantic(run, rounds=3, iterations=1)
    _TIMES["cas-hash-grid"] = benchmark.stats.stats.mean


def test_ablation_ds_serial_hash_grid(benchmark, step_positions):
    def run():
        grid = UniformGrid(CELL, capacity=N)
        grid.insert_batch(_ids(), step_positions)
        return grid.candidate_pairs()

    benchmark.pedantic(run, rounds=1, iterations=1)
    _TIMES["serial-hash-grid"] = benchmark.stats.stats.mean


def test_ablation_ds_kdtree(benchmark, step_positions):
    def run():
        tree = KDTree(step_positions)
        return tree.pairs_within(CELL)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _TIMES["kdtree"] = benchmark.stats.stats.mean


def test_ablation_ds_octree(benchmark, step_positions):
    def run():
        tree = LooseOctree(object_radius=CELL)
        tree.build(step_positions)
        return tree.pairs_within(CELL)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _TIMES["loose-octree"] = benchmark.stats.stats.mean


def test_ablation_ds_aabb4d_tree(benchmark, population_factory):
    """The interval-tree family: ONE build serves a whole window.

    The 4D tree indexes swept boxes over ``WINDOW_STEPS`` sampling steps,
    so its per-step cost is (knot propagation + build + self-query) /
    steps — the honest comparison against structures rebuilt every step.
    """
    pop = population_factory(N)
    cfg = ScreeningConfig(
        threshold_km=2.0, duration_s=float(WINDOW_STEPS), seconds_per_sample=1.0
    )
    times = cfg.sample_times()
    knots, starts, ends = knot_schedule(len(times), 8)
    v_max = max_speed_kms(pop)

    def run():
        prop = Propagator(pop)
        knot_pos = prop.positions_batch(times[knots])
        lo, hi, interval, _ = swept_boxes(
            knot_pos, times[ends] - times[starts], v_max, CELL
        )
        tree = AABB4DTree(lo, hi, interval)
        return tree.query_self_pairs()

    benchmark.pedantic(run, rounds=3, iterations=1)
    _TIMES["aabb4d-tree (per step, amortised)"] = (
        benchmark.stats.stats.mean / len(times)
    )


def test_ablation_ds_report(benchmark, report, step_positions):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section(f"Ablation - spatial data structure (one step, n={N}, cell {CELL} km)")
    rows = [[name, f"{secs * 1e3:.1f} ms"] for name, secs in sorted(_TIMES.items(), key=lambda kv: kv[1])]
    report.table(["structure", "build + emit"], rows)
    # The paper's claim: per-step tree construction loses to the
    # data-parallel grid paths.
    assert _TIMES["sorted-grid"] < _TIMES["kdtree"]
    assert _TIMES["cas-hash-grid"] < _TIMES["kdtree"]
    assert _TIMES["sorted-grid"] < _TIMES["loose-octree"]
    report.row("  grids beat the per-step Kd-tree and loose-octree rebuilds, as")
    report.row("  Section IV-A argues for moving-object workloads")
    # The interval-tree family escapes the per-step rebuild entirely: its
    # amortised per-step cost must beat the per-step tree rebuilds.
    assert _TIMES["aabb4d-tree (per step, amortised)"] < _TIMES["kdtree"]
    report.row("  the build-once 4D interval tree amortises one build over")
    report.row(f"  {WINDOW_STEPS} steps, escaping the rebuild cost both tree")
    report.row("  comparators pay every step")

    # All structures emit the same candidates (correctness of the ablation).
    sg = SortedGrid(CELL)
    sg.build(_ids(), step_positions)
    tree_pairs = set(zip(*(x.tolist() for x in KDTree(step_positions).pairs_within(CELL))))
    grid_pairs = set(zip(*(x.tolist() for x in sg.candidate_pairs())))
    # The grid's neighbourhood is a superset of the sphere query.
    assert tree_pairs <= grid_pairs
