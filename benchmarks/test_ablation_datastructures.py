"""Ablation: spatial data-structure choice (grid vs Kd-tree).

Section IV-A argues for hash grids over trees: "octrees or Kd-trees ...
must be recreated each time an object moves, requiring higher
computational cost at each iteration", citing the related-work Kd-tree
screener [29].  This bench measures that claim on identical workloads:
one sampling step's build + candidate emission for the serial hash grid,
the sort-based grid, the CAS-round hash grid, and the Kd-tree.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.orbits.propagation import Propagator
from repro.spatial.grid import UniformGrid
from repro.spatial.kdtree import KDTree
from repro.spatial.octree import LooseOctree
from repro.spatial.vectorgrid import SortedGrid, VectorHashGrid

N = 4000
CELL = 9.8  # d=2 km, s_ps=1 s

_TIMES: "dict[str, float]" = {}


@pytest.fixture(scope="module")
def step_positions(population_factory):
    pop = population_factory(N)
    return Propagator(pop).positions(0.0)


def _ids():
    return np.arange(N, dtype=np.int64)


def test_ablation_ds_sorted_grid(benchmark, step_positions):
    def run():
        grid = SortedGrid(CELL)
        grid.build(_ids(), step_positions)
        return grid.candidate_pairs()

    benchmark.pedantic(run, rounds=3, iterations=1)
    _TIMES["sorted-grid"] = benchmark.stats.stats.mean


def test_ablation_ds_cas_hash_grid(benchmark, step_positions):
    def run():
        grid = VectorHashGrid(CELL, capacity=N)
        grid.build(_ids(), step_positions)
        return grid.candidate_pairs()

    benchmark.pedantic(run, rounds=3, iterations=1)
    _TIMES["cas-hash-grid"] = benchmark.stats.stats.mean


def test_ablation_ds_serial_hash_grid(benchmark, step_positions):
    def run():
        grid = UniformGrid(CELL, capacity=N)
        grid.insert_batch(_ids(), step_positions)
        return grid.candidate_pairs()

    benchmark.pedantic(run, rounds=1, iterations=1)
    _TIMES["serial-hash-grid"] = benchmark.stats.stats.mean


def test_ablation_ds_kdtree(benchmark, step_positions):
    def run():
        tree = KDTree(step_positions)
        return tree.pairs_within(CELL)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _TIMES["kdtree"] = benchmark.stats.stats.mean


def test_ablation_ds_octree(benchmark, step_positions):
    def run():
        tree = LooseOctree(object_radius=CELL)
        tree.build(step_positions)
        return tree.pairs_within(CELL)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _TIMES["loose-octree"] = benchmark.stats.stats.mean


def test_ablation_ds_report(benchmark, report, step_positions):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section(f"Ablation - spatial data structure (one step, n={N}, cell {CELL} km)")
    rows = [[name, f"{secs * 1e3:.1f} ms"] for name, secs in sorted(_TIMES.items(), key=lambda kv: kv[1])]
    report.table(["structure", "build + emit"], rows)
    # The paper's claim: per-step tree construction loses to the
    # data-parallel grid paths.
    assert _TIMES["sorted-grid"] < _TIMES["kdtree"]
    assert _TIMES["cas-hash-grid"] < _TIMES["kdtree"]
    assert _TIMES["sorted-grid"] < _TIMES["loose-octree"]
    report.row("  grids beat the per-step Kd-tree and loose-octree rebuilds, as")
    report.row("  Section IV-A argues for moving-object workloads")

    # All structures emit the same candidates (correctness of the ablation).
    sg = SortedGrid(CELL)
    sg.build(_ids(), step_positions)
    tree_pairs = set(zip(*(x.tolist() for x in KDTree(step_positions).pairs_within(CELL))))
    grid_pairs = set(zip(*(x.tolist() for x in sg.candidate_pairs())))
    # The grid's neighbourhood is a superset of the sphere query.
    assert tree_pairs <= grid_pairs
