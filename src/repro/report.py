"""Terminal reporting: screening-result summaries without a plot library.

Renders the views an analyst wants from a screening run — the PCA
distribution, conjunctions over the screening span, the busiest objects,
and the phase budget — as monospace text, so the CLI and examples can show
results anywhere a terminal runs.
"""
from __future__ import annotations

import numpy as np

from repro.detection.types import ScreeningResult

_BAR = "#"


def histogram(
    values: np.ndarray,
    bins: int = 10,
    width: int = 40,
    label: str = "",
    fmt: str = "{:8.2f}",
) -> str:
    """A horizontal ASCII histogram of ``values``."""
    if bins <= 0 or width <= 0:
        raise ValueError("bins and width must be positive")
    if len(values) == 0:
        return f"{label}: (no data)"
    counts, edges = np.histogram(values, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [f"{label}:"] if label else []
    for k in range(bins):
        bar = _BAR * int(round(counts[k] / peak * width))
        lo = fmt.format(edges[k])
        hi = fmt.format(edges[k + 1])
        lines.append(f"  [{lo}, {hi})  {bar} {counts[k]}")
    return "\n".join(lines)


def timeline(result: ScreeningResult, duration_s: float, slots: int = 24, width: int = 50) -> str:
    """Conjunction counts per time slice across the screening span."""
    if slots <= 0:
        raise ValueError("slots must be positive")
    if result.n_conjunctions == 0:
        return "timeline: (no conjunctions)"
    counts, edges = np.histogram(
        np.clip(result.tca_s, 0.0, duration_s), bins=slots, range=(0.0, duration_s)
    )
    peak = max(int(counts.max()), 1)
    lines = ["conjunctions over the screening span:"]
    for k in range(slots):
        bar = _BAR * int(round(counts[k] / peak * width))
        lines.append(f"  t={edges[k]:8.0f}s  {bar} {counts[k]}")
    return "\n".join(lines)


def busiest_objects(result: ScreeningResult, top: int = 10) -> str:
    """The objects involved in the most conjunctions (maneuver candidates)."""
    if result.n_conjunctions == 0:
        return "busiest objects: (none)"
    ids, counts = np.unique(np.concatenate([result.i, result.j]), return_counts=True)
    order = np.argsort(-counts)[:top]
    lines = ["busiest objects:"]
    for k in order:
        lines.append(f"  object {int(ids[k]):>7}: {int(counts[k])} conjunctions")
    return "\n".join(lines)


def phase_budget(result: ScreeningResult, width: int = 40) -> str:
    """The Section V-C1 view of one run: time share per pipeline phase."""
    fractions = result.timers.fractions()
    if not fractions:
        return "phase budget: (no timings)"
    lines = [f"phase budget ({result.timers.total:.3f} s total):"]
    # Name tie-break so equal-share phases render in one stable order.
    for name, frac in sorted(fractions.items(), key=lambda kv: (-kv[1], kv[0])):
        bar = _BAR * int(round(frac * width))
        lines.append(f"  {name:>6} {100 * frac:5.1f}%  {bar}")
    return "\n".join(lines)


def funnel_table(funnel, width: int = 30) -> str:
    """The candidate funnel as a per-stage survival table.

    ``funnel`` is a :class:`repro.obs.metrics.Funnel`; stages with zero
    input render a 100% survival bar of zero length (nothing to reject),
    a full-rejection stage renders an empty bar and ``0.0%``.
    """
    stages = funnel.stages
    if not stages:
        return f"funnel {funnel.name!r}: (no stages)"
    name_w = max(len(s.name) for s in stages)
    lines = [f"funnel {funnel.name!r}:"]
    for s in stages:
        bar = _BAR * int(round(s.survival * width)) if s.n_in else ""
        lines.append(
            f"  {s.name:>{name_w}}  {s.n_in:>10} -> {s.n_out:<10} "
            f"{100 * s.survival:5.1f}%  {bar}"
        )
    for problem in funnel.check():
        lines.append(f"  ! {problem}")
    return "\n".join(lines)


def metrics_table(metrics) -> str:
    """Counters, gauges, histograms and funnels of one run, as text.

    ``metrics`` is a :class:`repro.obs.metrics.MetricsRegistry`.
    """
    if metrics is None:
        return "metrics: (not collected)"
    snap = metrics.as_dict()
    lines = []
    if snap["counters"]:
        lines.append("counters:")
        name_w = max(len(k) for k in snap["counters"])
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<{name_w}}  {value}")
    if snap["gauges"]:
        lines.append("gauges:")
        name_w = max(len(k) for k in snap["gauges"])
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:<{name_w}}  {value:.4f}")
    for name, hist in snap["histograms"].items():
        lines.append(f"histogram {name} (mean {hist['mean']:.2f}, n {hist['n']}):")
        edges = hist["edges"]
        labels = [f"<= {e:g}" for e in edges] + [f"> {edges[-1]:g}"]
        peak = max(max(hist["counts"]), 1)
        for label, count in zip(labels, hist["counts"]):
            bar = _BAR * int(round(count / peak * 30))
            lines.append(f"  {label:>10}  {bar} {count}")
    if snap["series"]:
        lines.append("series:")
        name_w = max(len(k) for k in snap["series"])
        for name, series in snap["series"].items():
            lines.append(
                f"  {name:<{name_w}}  n={series['n']}  max={series['max']:.4g}"
            )
    # Funnels sorted by name: as_dict sorts every other family, and the
    # report must diff cleanly across runs regardless of creation order.
    for name in sorted(metrics.funnels):
        lines.append(funnel_table(metrics.funnels[name]))
    return "\n".join(lines) if lines else "metrics: (empty)"


def overlap_table(report, width: int = 30) -> str:
    """An :class:`repro.obs.analysis.OverlapReport` as a terminal table.

    Per-track utilization bars, the concurrency profile, and the overlap
    summary the pipelining refactor is gated on.
    """
    if not report.tracks:
        return "overlap: (no spans)"
    lines = [
        f"overlap report ({report.window_name!r}, wall {report.wall_s:.3f} s, "
        f"{report.n_tracks} tracks):"
    ]
    for t in report.tracks:
        bar = _BAR * int(round(t.utilization * width))
        lines.append(
            f"  track {t.track:>3}  {t.busy_s:8.3f}s busy "
            f"{100 * t.utilization:5.1f}%  {bar}"
        )
    for k, seconds in enumerate(report.concurrency_s, start=1):
        share = seconds / report.wall_s if report.wall_s > 0 else 0.0
        bar = _BAR * int(round(share * width))
        lines.append(f"  >= {k} busy  {seconds:8.3f}s {100 * share:5.1f}%  {bar}")
    lines.append(
        f"  overlap {report.overlap_s:.3f}s | parallel efficiency "
        f"{100 * report.parallel_efficiency:.1f}% | effective parallelism "
        f"{report.effective_parallelism:.2f}x"
    )
    return "\n".join(lines)


def critical_path_table(path, width: int = 30, top: int = 12) -> str:
    """A :class:`repro.obs.analysis.CriticalPath` as a per-name table."""
    if not path.entries:
        return "critical path: (no spans)"
    lines = [
        f"critical path (wall {path.wall_s:.3f} s = "
        f"{path.busy_s:.3f} s on-path + {path.gap_s:.3f} s idle):"
    ]
    by_name = path.by_name()
    for name, seconds in list(by_name.items())[:top]:
        share = seconds / path.wall_s if path.wall_s > 0 else 0.0
        bar = _BAR * int(round(share * width))
        lines.append(f"  {name:>16}  {seconds:8.3f}s {100 * share:5.1f}%  {bar}")
    hidden = len(by_name) - top
    if hidden > 0:
        lines.append(f"  ... {hidden} more span names")
    return "\n".join(lines)


def full_report(result: ScreeningResult, duration_s: float) -> str:
    """Everything above, stacked — the CLI's ``--report`` output."""
    parts = [
        result.summary(),
        "",
        phase_budget(result),
        "",
        timeline(result, duration_s),
        "",
        histogram(result.pca_km, bins=8, label="PCA distribution (km)", fmt="{:6.3f}"),
        "",
        busiest_objects(result),
    ]
    if result.metrics is not None:
        parts.extend(["", metrics_table(result.metrics)])
    return "\n".join(parts)
