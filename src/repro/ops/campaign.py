"""Multi-window screening campaigns.

A conjunction screening service does not run once: it re-screens the
catalog every revolution of the planning cycle, propagating the epoch
forward (where the J2 extension earns its keep — plane geometry drifts
day to day), merging each window's detections into a persistent event
list, and re-ranking risk as the TCA approaches and the uncertainty
shrinks.

:class:`ScreeningCampaign` drives that loop over this library's
:func:`repro.detection.api.screen`:

* per window: advance every object's epoch, screen, record phase timings;
* across windows: conjunctions of the same pair with compatible absolute
  TCAs are *tracked* as one event (first-seen / last-seen window, best
  PCA);
* uncertainty model: a linear covariance growth ``sigma(dt) = sigma0 +
  rate * dt`` from the last observation maps each event's lead time to a
  collision probability.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.poc import collision_probability
from repro.constants import TWO_PI
from repro.detection.api import screen
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.obs.tracer import NULL_TRACER
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.j2 import j2_secular_rates


@dataclass
class TrackedEvent:
    """One conjunction event followed across screening windows."""

    i: int
    j: int
    #: TCA on the campaign's absolute timeline (seconds from campaign
    #: start) of the event's **best** (smallest-PCA) sighting.
    tca_abs_s: float
    pca_km: float
    first_seen_window: int
    last_seen_window: int
    sightings: int = 1
    #: TCA of the **most recent** sighting.  Re-detection matching keys
    #: off this, not :attr:`tca_abs_s`: under J2 the geometry drifts a
    #: little every window, and matching against the best sighting's
    #: (frozen) TCA would fragment one physical event into several tracks
    #: once the drift accumulates past the match tolerance.
    last_tca_abs_s: "float | None" = None

    def __post_init__(self) -> None:
        if self.last_tca_abs_s is None:
            self.last_tca_abs_s = self.tca_abs_s

    def update(self, tca_abs_s: float, pca_km: float, window: int) -> None:
        self.last_seen_window = window
        self.last_tca_abs_s = tca_abs_s
        self.sightings += 1
        if pca_km < self.pca_km:
            self.pca_km = pca_km
            self.tca_abs_s = tca_abs_s


@dataclass(frozen=True)
class CampaignDay:
    """One screening window's outcome."""

    window: int
    start_s: float
    result: ScreeningResult
    new_events: int
    reobserved_events: int


class ScreeningCampaign:
    """Drives repeated screening windows over an advancing epoch.

    Parameters
    ----------
    population:
        The catalog at campaign start (t = 0).
    config:
        Screening parameters of each window (``duration_s`` is the window
        length).
    method, backend:
        Passed through to :func:`repro.detection.api.screen`.
    use_j2:
        Advance epochs with J2 secular drift instead of pure two-body
        mean-anomaly advance.
    tca_match_tol_s:
        Re-detections of a pair within this absolute-TCA tolerance merge
        into one tracked event.
    tracer, metrics:
        Optional ``repro.obs`` instruments shared by every window: each
        :meth:`run_window` wraps its screen in a ``campaign.window`` span
        and funnels/counters accumulate across windows.
    n_devices, executor:
        Shard each window's sampling steps over virtual devices
        (``method="grid"`` only).  With ``executor="processes"`` the
        campaign holds **one** :class:`repro.parallel.processes
        .PersistentShardPool` open across all its windows — the pool's
        workers keep the population attach and solver data resident, and
        each window only refreshes the shared block in place.  Call
        :meth:`close` (or use the campaign as a context manager) to tear
        the pool down.
    device_budget_bytes:
        Per-device byte budget for the streamed-round plan of each
        window.
    heartbeat_s:
        Emit a JSONL progress line (elapsed, windows done, tracked
        events, rate, RSS) every this many seconds while the campaign
        runs — see :class:`repro.obs.resources.Heartbeat`.  The beat
        thread starts on the first :meth:`run_window` and stops with
        :meth:`close`.
    heartbeat_sink:
        Optional ``line -> None`` callable receiving each beat (default:
        stderr).
    """

    def __init__(
        self,
        population: OrbitalElementsArray,
        config: ScreeningConfig,
        method: str = "hybrid",
        backend: str = "vectorized",
        use_j2: bool = False,
        tca_match_tol_s: float = 30.0,
        tracer=None,
        metrics=None,
        n_devices: "int | None" = None,
        executor: str = "serial",
        device_budget_bytes: "int | None" = None,
        heartbeat_s: "float | None" = None,
        heartbeat_sink=None,
    ) -> None:
        if n_devices is not None and method != "grid":
            raise ValueError("n_devices shards the grid variant; use method='grid'")
        if executor != "serial" and n_devices is None:
            raise ValueError(f"executor={executor!r} requires n_devices")
        self.population = population
        self.config = config
        self.method = method
        self.backend = backend
        self.use_j2 = use_j2
        self.tca_match_tol_s = tca_match_tol_s
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.n_devices = n_devices
        self.executor = executor
        self.device_budget_bytes = device_budget_bytes
        self.heartbeat_s = heartbeat_s
        self._heartbeat_sink = heartbeat_sink
        self._heartbeat = None
        self._pool = None
        self.events: "list[TrackedEvent]" = []
        #: Tracked events grouped by (i, j): event matching per detected
        #: conjunction scans only the pair's own events instead of the
        #: whole track list (which made long campaigns
        #: O(windows x events x conjunctions)).
        self._events_by_pair: "dict[tuple[int, int], list[TrackedEvent]]" = {}
        self.days: "list[CampaignDay]" = []
        self._clock_s = 0.0
        self._closed = False
        if use_j2:
            self._j2_rates = j2_secular_rates(population)

    # ------------------------------------------------------------------

    def __enter__(self) -> "ScreeningCampaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release the worker pool and stop the heartbeat (no-ops without).

        Idempotent.  A closed campaign refuses further :meth:`run_window`
        calls: quietly recreating the pool and heartbeat after close would
        leak both when the caller never closes a second time.
        """
        self._closed = True
        if self._heartbeat is not None:
            self._heartbeat.stop()
            self._heartbeat = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _ensure_heartbeat(self) -> None:
        if self.heartbeat_s is None or self._heartbeat is not None:
            return
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.resources import Heartbeat

        if self.metrics is None:
            # The beat reads progress counters off the registry, so a
            # campaign asked to emit heartbeats collects metrics too.
            self.metrics = MetricsRegistry()
        self._heartbeat = Heartbeat(
            self.metrics,
            interval_s=self.heartbeat_s,
            sink=self._heartbeat_sink,
            extra=lambda: {
                "windows": len(self.days),
                "events": len(self.events),
                "conjunctions": self.total_conjunctions_seen,
            },
        ).start()

    def _shard_pool(self):
        """The campaign-lifetime worker pool, created on first use."""
        if self._pool is None:
            from repro.parallel.processes import PersistentShardPool

            self._pool = PersistentShardPool(self.n_devices)
        return self._pool

    def _advanced_population(self, start_s: float) -> OrbitalElementsArray:
        """The catalog with every epoch advanced to ``start_s``."""
        pop = self.population
        if self.use_j2:
            raan_dot, argp_dot, m_dot_extra = self._j2_rates
            return OrbitalElementsArray(
                a=pop.a,
                e=pop.e,
                i=pop.i,
                raan=np.mod(pop.raan + raan_dot * start_s, TWO_PI),
                argp=np.mod(pop.argp + argp_dot * start_s, TWO_PI),
                m0=np.mod(pop.m0 + (pop.n + m_dot_extra) * start_s, TWO_PI),
            )
        return OrbitalElementsArray(
            a=pop.a, e=pop.e, i=pop.i, raan=pop.raan, argp=pop.argp,
            m0=np.mod(pop.m0 + pop.n * start_s, TWO_PI),
        )

    def run_window(self) -> CampaignDay:
        """Screen the next window and merge its detections into the track
        list; returns the window summary."""
        if self._closed:
            raise RuntimeError(
                "ScreeningCampaign is closed; run_window after close() would "
                "silently respawn the worker pool and heartbeat thread and "
                "leak them — create a new campaign instead"
            )
        window = len(self.days)
        start = self._clock_s
        self._ensure_heartbeat()
        snapshot = self._advanced_population(start)
        with self.tracer.span("campaign.window", window=window, start_s=start):
            if self.n_devices is not None:
                from repro.parallel.multidevice import screen_grid_multidevice

                pool = (
                    self._shard_pool() if self.executor == "processes" else None
                )
                result, _reports = screen_grid_multidevice(
                    snapshot, self.config, self.n_devices,
                    device_budget_bytes=self.device_budget_bytes,
                    executor=self.executor,
                    tracer=self.tracer, metrics=self.metrics,
                    pool=pool,
                )
            else:
                result = screen(
                    snapshot, self.config, method=self.method, backend=self.backend,
                    tracer=self.tracer, metrics=self.metrics,
                )

        new = reobserved = 0
        for c in result.conjunctions():
            tca_abs = start + c.tca_s
            match = self._find_event(c.i, c.j, tca_abs)
            if match is None:
                event = TrackedEvent(
                    i=c.i, j=c.j, tca_abs_s=tca_abs, pca_km=c.pca_km,
                    first_seen_window=window, last_seen_window=window,
                )
                self.events.append(event)
                self._events_by_pair.setdefault((c.i, c.j), []).append(event)
                new += 1
            else:
                match.update(tca_abs, c.pca_km, window)
                reobserved += 1

        day = CampaignDay(
            window=window, start_s=start, result=result,
            new_events=new, reobserved_events=reobserved,
        )
        self.days.append(day)
        self._clock_s += self.config.duration_s
        return day

    def run(self, n_windows: int) -> "list[CampaignDay]":
        """Run several consecutive windows."""
        if n_windows <= 0:
            raise ValueError(f"n_windows must be positive, got {n_windows}")
        return [self.run_window() for _ in range(n_windows)]

    def _find_event(self, i: int, j: int, tca_abs_s: float) -> "TrackedEvent | None":
        # Match against each event's most recent sighting, not its best
        # one: tca_abs_s only moves when the PCA improves, so a slowly
        # drifting TCA would walk out of tolerance of the frozen best
        # sighting and fragment the event (see TrackedEvent.last_tca_abs_s).
        for ev in self._events_by_pair.get((i, j), ()):
            if abs(ev.last_tca_abs_s - tca_abs_s) <= self.tca_match_tol_s:
                return ev
        return None

    # ------------------------------------------------------------------

    def risk_summary(
        self,
        sigma0_km: float = 0.1,
        growth_km_per_day: float = 0.4,
        hard_body_radius_km: float = 0.02,
    ) -> "list[tuple[TrackedEvent, float, float]]":
        """Events with lead-time-dependent uncertainty and P_c.

        The uncertainty of each event's geometry grows linearly with the
        time between its *last* re-observation and its TCA — fresh
        re-screenings shrink the covariance, which is the operational
        reason campaigns re-run daily.  Returns ``(event, sigma, P_c)``
        sorted by descending probability.
        """
        if sigma0_km <= 0.0 or growth_km_per_day < 0.0:
            raise ValueError("sigma0 must be positive and growth non-negative")
        out = []
        for ev in self.events:
            # The observation is dated at the *start* of the window that
            # last saw the event: the screening snapshot is the catalog
            # propagated to the window-start epoch, so that is when the
            # geometry was actually measured.  Dating it at the window end
            # under-counted the lead time by up to one window (events with
            # a TCA mid-window showed lead 0 and an optimistically small
            # sigma).
            last_seen_time = ev.last_seen_window * self.config.duration_s
            lead_s = max(ev.tca_abs_s - last_seen_time, 0.0)
            sigma = sigma0_km + growth_km_per_day * lead_s / 86400.0
            poc = collision_probability(ev.pca_km, sigma, hard_body_radius_km)
            out.append((ev, sigma, poc))
        out.sort(key=lambda row: row[2], reverse=True)
        return out

    @property
    def total_conjunctions_seen(self) -> int:
        return sum(day.result.n_conjunctions for day in self.days)
