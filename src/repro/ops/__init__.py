"""Operational screening campaigns: the daily SSA workflow on top of the
screening core — epoch advance (two-body or J2), windowed daily runs,
event tracking across days, and uncertainty-aware risk summaries.
"""
from repro.ops.campaign import CampaignDay, ScreeningCampaign, TrackedEvent

__all__ = ["CampaignDay", "ScreeningCampaign", "TrackedEvent"]
