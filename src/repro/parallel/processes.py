"""Process-sharded execution of multi-device screening shards.

The ``processes`` executor of
:func:`repro.parallel.multidevice.screen_grid_multidevice`: every device
shard runs in a real OS process, which is what actually buys the paper's
Section VI memory relief on one host — each worker owns its grids and
conjunction map, and CPython's GIL stops mattering for the Python-level
shard loops.

Design (DESIGN.md §8):

* **Shared-memory population.**  The population's six element arrays are
  published **once** into a single ``multiprocessing.shared_memory``
  block (:class:`SharedPopulation`); each worker attaches by name and
  reconstructs the :class:`~repro.orbits.elements.OrbitalElementsArray`
  as zero-copy views.  Workers never receive the population through
  pickling.
* **Spawn-safe workers.**  The pool uses the ``spawn`` start method — the
  only one that is safe regardless of the parent's thread state — so the
  worker entry point is a module-level function taking one picklable
  :class:`ShardTask`.
* **Compact returns.**  A worker ships back a :class:`ShardOutcome`:
  deduplicated ``(i, j, step)`` record *arrays* (never Python object
  lists), its :class:`~repro.parallel.backend.PhaseTimer`, its
  :class:`~repro.obs.metrics.MetricsRegistry`, and its finished trace
  spans.
* **Observability re-parenting.**  The parent merges worker timers and
  metrics with the existing commutative combiners and grafts worker span
  trees under its own ``window`` span via
  :meth:`repro.obs.tracer.Tracer.adopt`, so a traced ``processes`` run
  yields one schema-valid span tree with a ``device`` span per shard.

Merging is order-insensitive end to end: outcomes are keyed by device
index, every metric combiner is commutative, and the caller re-sorts the
concatenated records into conjunction-map key order — so the merged
result is bit-identical to the single-device run no matter how the OS
schedules the workers.

Temporal-coherence state is per-shard by construction: ``run_device_shard``
creates its :class:`~repro.spatial.vectorgrid.CoherentPairEmitter` inside
the shard body, so a worker process can never observe (or corrupt) another
shard's cell-membership cache, and a reused pool starts every shard with a
cold cache.
"""
from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.detection.types import ScreeningConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, SpanRecord, Tracer
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer

#: The element arrays published for the workers, in block row order.
ELEMENT_FIELDS = ("a", "e", "i", "raan", "argp", "m0")


class SharedPopulation:
    """A population's element arrays in one POSIX shared-memory block.

    Layout: a C-contiguous ``(6, n)`` float64 block, one row per field of
    :data:`ELEMENT_FIELDS`.  The creating (parent) process owns the
    segment and must call :meth:`close` (which also unlinks it); workers
    attach by name via :func:`attach_population` and only close.
    """

    def __init__(self, population: OrbitalElementsArray) -> None:
        n = len(population)
        self.n = n
        self._shm = shared_memory.SharedMemory(
            create=True, size=len(ELEMENT_FIELDS) * n * 8
        )
        block = np.ndarray((len(ELEMENT_FIELDS), n), dtype=np.float64, buffer=self._shm.buf)
        for row, name in enumerate(ELEMENT_FIELDS):
            block[row] = getattr(population, name)
        del block
        self.name = self._shm.name

    def close(self) -> None:
        """Release and unlink the segment (parent side)."""
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double close
            pass


def attach_population(
    shm_name: str, n: int
) -> "tuple[shared_memory.SharedMemory, OrbitalElementsArray]":
    """Attach to a published population (worker side), zero-copy.

    Returns the segment handle (the caller must drop every array derived
    from the population before closing it) and the reconstructed
    population whose element arrays are views into the shared block.
    """
    shm = shared_memory.SharedMemory(name=shm_name)
    block = np.ndarray((len(ELEMENT_FIELDS), n), dtype=np.float64, buffer=shm.buf)
    population = OrbitalElementsArray(*(block[row] for row in range(len(ELEMENT_FIELDS))))
    return shm, population


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs, picklable and population-free."""

    shm_name: str
    n_objects: int
    config: ScreeningConfig
    device: int
    n_devices: int
    cell: float
    initial_capacity: "int | None"
    trace: bool
    collect_metrics: bool


@dataclass
class ShardOutcome:
    """One worker's compact result set."""

    stats: "object"  # repro.parallel.multidevice.ShardStats
    rec_i: np.ndarray
    rec_j: np.ndarray
    rec_step: np.ndarray
    timers: PhaseTimer
    metrics: "MetricsRegistry | None"
    spans: "list[SpanRecord]" = field(default_factory=list)
    #: Wall-clock epoch of the worker's tracer, for span time-shifting.
    epoch_unix: float = 0.0


def _screen_shard_worker(task: ShardTask) -> ShardOutcome:
    """Worker entry point: run one device shard against the shared block."""
    from repro.parallel.multidevice import partition_steps, run_device_shard

    shm, population = attach_population(task.shm_name, task.n_objects)
    try:
        tracer = Tracer() if task.trace else NULL_TRACER
        timers = PhaseTimer(tracer=tracer)
        metrics = MetricsRegistry() if task.collect_metrics else None
        # The config rides the pickled task, so the precision policy (and
        # with it the float32 broad phase) reaches every worker unchanged.
        propagator = Propagator(
            population, solver=task.config.solver, precision=task.config.precision
        )
        ids = np.arange(task.n_objects, dtype=np.int64)
        times = task.config.sample_times()
        steps = partition_steps(len(times), task.n_devices)[task.device]
        rec_i, rec_j, rec_step, stats = run_device_shard(
            propagator, ids, times, steps, task.cell, task.config,
            task.device, task.n_devices, timers,
            tracer=tracer, metrics=metrics,
            initial_capacity=task.initial_capacity,
        )
        # A live Tracer is not picklable (lock + thread-local state); ship
        # its finished records instead and strip it off the timer.
        spans = tracer.records() if task.trace else []
        epoch_unix = tracer.epoch_unix if task.trace else 0.0
        timers.tracer = NULL_TRACER
        return ShardOutcome(
            stats=stats,
            rec_i=rec_i,
            rec_j=rec_j,
            rec_step=rec_step,
            timers=timers,
            metrics=metrics,
            spans=spans,
            epoch_unix=epoch_unix,
        )
    finally:
        # Drop every view into the block before closing, or mmap refuses
        # to release the exported buffer.
        del population
        if "propagator" in locals():
            del propagator
        # Close only — the parent owns and unlinks the segment.  The
        # attach-side resource_tracker registration (CPython gh-82300) is
        # harmless here: pool children share the parent's tracker process,
        # whose per-type cache is a set, so the duplicate registration
        # collapses and the parent's unlink unregisters the one entry.
        shm.close()


def run_shards_in_processes(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    n_devices: int,
    cell: float,
    timers: PhaseTimer,
    tracer=NULL_TRACER,
    metrics: "MetricsRegistry | None" = None,
    initial_capacity: "int | None" = None,
    parent_span_id: int = -1,
) -> "list[tuple[np.ndarray, np.ndarray, np.ndarray, object]]":
    """Run every device shard in its own OS process and merge the results.

    Publishes ``population`` once through shared memory, fans the shard
    tasks out over a spawn-safe :class:`ProcessPoolExecutor`, then merges
    each worker's phase timers / metrics with the commutative combiners
    and adopts its spans under ``parent_span_id``.  Returns the per-shard
    ``(rec_i, rec_j, rec_step, stats)`` tuples ordered by device index —
    the same shape the serial executor produces inline.
    """
    shared = SharedPopulation(population)
    tasks = [
        ShardTask(
            shm_name=shared.name,
            n_objects=shared.n,
            config=config,
            device=device,
            n_devices=n_devices,
            cell=cell,
            initial_capacity=initial_capacity,
            trace=bool(getattr(tracer, "enabled", False)),
            collect_metrics=metrics is not None,
        )
        for device in range(n_devices)
    ]
    max_workers = min(n_devices, os.cpu_count() or 1)
    outcomes: "list[ShardOutcome | None]" = [None] * n_devices
    try:
        with ProcessPoolExecutor(
            max_workers=max_workers, mp_context=get_context("spawn")
        ) as pool:
            futures = {pool.submit(_screen_shard_worker, task): task.device for task in tasks}
            for future, device in futures.items():
                outcomes[device] = future.result()
    finally:
        shared.close()

    results = []
    for outcome in outcomes:
        assert outcome is not None
        timers.merge(outcome.timers)
        if metrics is not None and outcome.metrics is not None:
            metrics.merge(outcome.metrics)
        if getattr(tracer, "enabled", False) and outcome.spans:
            tracer.adopt(
                outcome.spans, parent_id=parent_span_id, epoch_unix=outcome.epoch_unix
            )
        results.append((outcome.rec_i, outcome.rec_j, outcome.rec_step, outcome.stats))
    return results
