"""Process-sharded execution of multi-device screening shards.

The ``processes`` executor of
:func:`repro.parallel.multidevice.screen_grid_multidevice`: every device
shard runs in a real OS process, which is what actually buys the paper's
Section VI memory relief on one host — each worker owns its grids and
conjunction map, and CPython's GIL stops mattering for the Python-level
shard loops.

Design (DESIGN.md §8) — the **persistent pool** architecture:

* **Persistent per-device workers.**  :class:`PersistentShardPool` keeps
  one spawn-safe, single-worker executor per virtual device alive across
  screening windows.  Workers attach the shared-memory population *once*
  and hold their shard state **resident** between windows: the attached
  population views, the precomputed Kepler solver data
  (:class:`~repro.orbits.propagation.Propagator`), and the
  temporal-coherence emitter all survive in the worker's module state
  (``_RESIDENT``) instead of being rebuilt per dispatch.  A window
  dispatch ships only a lightweight :class:`WindowTask` descriptor.
* **Shared-memory population.**  The population's six element arrays are
  published **once** into a single ``multiprocessing.shared_memory``
  block (:class:`SharedPopulation`); each worker attaches by name and
  reconstructs the :class:`~repro.orbits.elements.OrbitalElementsArray`
  as zero-copy views.  Re-publishing a same-sized population overwrites
  the block in place and bumps a version counter — workers re-derive
  their resident solver data when the version moves, and never receive
  the population through pickling.
* **Shard-local results, merged once per window.**  A worker writes its
  deduplicated ``(i, j, step)`` record arrays into its *own* shared-memory
  result block (grown geometrically, reused across windows) and ships only
  the block name and record count.  The parent attaches, copies the arrays
  out, and re-sorts the concatenation into conjunction-map key order —
  one merge per window, not one result pickle per round.
* **Leak-safe teardown.**  Every attach/create pairs with a ``finally``
  or ``atexit`` release: workers register :func:`_release_resident` so a
  pool shutdown (clean or after a mid-round shard failure) drops all
  views, closes the population attach and unlinks the worker's result
  block; the parent's :meth:`PersistentShardPool.close` additionally
  unlinks any result block a dead worker left behind.  The attach-side
  ``resource_tracker`` registration (CPython gh-82300) is harmless:
  pool children share the parent's tracker process, whose per-type cache
  is a set, so duplicate registrations collapse and whichever side
  unlinks unregisters the one entry.

Merging is order-insensitive end to end: outcomes are keyed by device
index, every metric combiner is commutative, and the caller re-sorts the
concatenated records into conjunction-map key order — so the merged
result is bit-identical to the single-device run no matter how the OS
schedules the workers.  Resident state is scrubbed at window entry
(``Propagator.reset_warm_start``, ``CoherentPairEmitter.fresh_window``)
so a reused pool starts every window exactly like a fresh process.
"""
from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.detection.types import ScreeningConfig
from repro.obs.collect import observe_pool
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, SpanRecord, Tracer
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.perfmodel.memory import coherence_budget_bytes
from repro.spatial.grid import cell_size_km
from repro.spatial.vectorgrid import CoherentPairEmitter

#: The element arrays published for the workers, in block row order.
ELEMENT_FIELDS = ("a", "e", "i", "raan", "argp", "m0")

#: Smallest worker result block, bytes (grown geometrically from here).
MIN_RESULT_BLOCK_BYTES = 4096


class SharedPopulation:
    """A population's element arrays in one POSIX shared-memory block.

    Layout: a C-contiguous ``(6, n)`` float64 block, one row per field of
    :data:`ELEMENT_FIELDS`.  The creating (parent) process owns the
    segment and must call :meth:`close` (which also unlinks it); workers
    attach by name via :func:`attach_population` and only close.

    :meth:`update` overwrites the block in place with a same-sized
    population and bumps :attr:`version` — how a persistent pool re-feeds
    its already-attached workers a new window's advanced elements without
    re-publishing (or re-attaching) anything.
    """

    def __init__(self, population: OrbitalElementsArray) -> None:
        n = len(population)
        self.n = n
        self.version = 0
        self._closed = False
        self._shm = shared_memory.SharedMemory(
            create=True, size=len(ELEMENT_FIELDS) * n * 8
        )
        self.name = self._shm.name
        self._write(population)

    def _write(self, population: OrbitalElementsArray) -> None:
        block = np.ndarray((len(ELEMENT_FIELDS), self.n), dtype=np.float64, buffer=self._shm.buf)
        for row, name in enumerate(ELEMENT_FIELDS):
            block[row] = getattr(population, name)
        del block
        self.version += 1

    def update(self, population: OrbitalElementsArray) -> None:
        """Overwrite the block with a same-sized population (version bump)."""
        if self._closed:
            raise RuntimeError("SharedPopulation is closed")
        if len(population) != self.n:
            raise ValueError(
                f"population size changed: block holds {self.n}, got {len(population)}"
            )
        self._write(population)

    def close(self) -> None:
        """Release and unlink the segment (parent side).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


def attach_population(
    shm_name: str, n: int
) -> "tuple[shared_memory.SharedMemory, OrbitalElementsArray]":
    """Attach to a published population (worker side), zero-copy.

    Returns the segment handle (the caller must drop every array derived
    from the population before closing it) and the reconstructed
    population whose element arrays are views into the shared block.
    """
    shm = shared_memory.SharedMemory(name=shm_name)
    block = np.ndarray((len(ELEMENT_FIELDS), n), dtype=np.float64, buffer=shm.buf)
    population = OrbitalElementsArray(*(block[row] for row in range(len(ELEMENT_FIELDS))))
    return shm, population


@dataclass(frozen=True)
class WindowTask:
    """One window's dispatch descriptor: picklable and population-free.

    Everything that varies per window rides here; everything heavy
    (population block, solver data, coherence cache) is resident in the
    worker and keyed by ``(shm_name, version)``.
    """

    shm_name: str
    n_objects: int
    #: :attr:`SharedPopulation.version` of the block's current contents.
    version: int
    config: ScreeningConfig
    device: int
    n_devices: int
    cell: float
    round_size: "int | None"
    initial_capacity: "int | None"
    trace: bool
    collect_metrics: bool


@dataclass
class ShardOutcome:
    """One worker's compact per-window result.

    The record arrays live in the worker's shard-local shared-memory
    block (:attr:`result_name` / :attr:`n_records`); only accounting and
    observability payloads travel through the future.
    """

    stats: "object"  # repro.parallel.multidevice.ShardStats
    result_name: str
    n_records: int
    timers: PhaseTimer
    metrics: "MetricsRegistry | None"
    spans: "list[SpanRecord]" = field(default_factory=list)
    #: Wall-clock epoch of the worker's tracer, for span time-shifting.
    epoch_unix: float = 0.0
    #: OS pid of the worker that ran the window (resource attribution).
    pid: int = 0
    #: Pipelined shard: the result block carries per-record refinement
    #: columns (tca/pca/hit) after the record rows.
    refined: bool = False


# ---------------------------------------------------------------------------
# Worker-side resident state.
#
# Lives in the worker process's module globals, keyed so that a changed
# population (new block name or bumped version) transparently re-derives
# exactly the stale pieces.  ``_release_resident`` is registered via the
# pool initializer's ``atexit`` hook, so a worker exiting for *any*
# orderly reason (pool shutdown, pool crash-recovery respawn) releases
# its attach and unlinks its result block.
# ---------------------------------------------------------------------------

_RESIDENT: "dict[str, object]" = {}


def _release_resident() -> None:
    """Drop all views, close the population attach, unlink the result block."""
    _RESIDENT.pop("prop", None)
    _RESIDENT.pop("prop_key", None)
    _RESIDENT.pop("pop", None)
    _RESIDENT.pop("pop_key", None)
    _RESIDENT.pop("emitter", None)
    _RESIDENT.pop("emitter_key", None)
    shm = _RESIDENT.pop("pop_shm", None)
    if shm is not None:
        shm.close()
    result = _RESIDENT.pop("result", None)
    if result is not None:
        result.close()
        try:
            result.unlink()
        except FileNotFoundError:  # pragma: no cover - parent beat us to it
            pass


def _pool_worker_init() -> None:
    """Worker initializer: guarantee resident-state release at exit."""
    atexit.register(_release_resident)


def _resident_population(shm_name: str, n: int, version: int) -> OrbitalElementsArray:
    """The worker's resident population, (re)derived as needed.

    Same block and version: return the cached zero-copy views.  Bumped
    version: re-wrap the (in-place updated) block so derived quantities
    (the cached mean motion) recompute.  New block name: drop every view
    of the old block, close it, attach the new one.
    """
    key = (shm_name, n, version)
    if _RESIDENT.get("pop_key") == key:
        return _RESIDENT["pop"]
    # Invalidate everything derived from the old contents *before*
    # touching the segment handles — views must die before close().
    _RESIDENT.pop("pop", None)
    _RESIDENT.pop("pop_key", None)
    _RESIDENT.pop("prop", None)
    _RESIDENT.pop("prop_key", None)
    shm = _RESIDENT.get("pop_shm")
    if shm is not None and shm.name != shm_name:
        _RESIDENT.pop("pop_shm").close()
        shm = None
    if shm is None:
        shm = shared_memory.SharedMemory(name=shm_name)
        _RESIDENT["pop_shm"] = shm
    block = np.ndarray((len(ELEMENT_FIELDS), n), dtype=np.float64, buffer=shm.buf)
    population = OrbitalElementsArray(*(block[row] for row in range(len(ELEMENT_FIELDS))))
    _RESIDENT["pop"] = population
    _RESIDENT["pop_key"] = key
    return population


def _resident_propagator(task: WindowTask, population: OrbitalElementsArray) -> Propagator:
    """The worker's resident solver data, rebuilt only when inputs change.

    A cache hit still calls :meth:`Propagator.reset_warm_start` — every
    window must start from the cold cache a fresh process would have, so
    pool reuse stays bit-identical to fresh serial runs.
    """
    key = (task.shm_name, task.version, task.config.solver, task.config.precision)
    if _RESIDENT.get("prop_key") == key:
        prop: Propagator = _RESIDENT["prop"]
        prop.reset_warm_start()
        return prop
    prop = Propagator(
        population, solver=task.config.solver, precision=task.config.precision
    )
    _RESIDENT["prop"] = prop
    _RESIDENT["prop_key"] = key
    return prop


def _resident_emitter(task: WindowTask) -> CoherentPairEmitter:
    """The worker's resident coherence emitter (reset per window downstream)."""
    budget = coherence_budget_bytes(task.n_objects)
    key = (task.n_objects, budget)
    if _RESIDENT.get("emitter_key") == key:
        return _RESIDENT["emitter"]
    emitter = CoherentPairEmitter(task.n_objects, budget_bytes=budget)
    _RESIDENT["emitter"] = emitter
    _RESIDENT["emitter_key"] = key
    return emitter


def _ship_records(
    rec_i: np.ndarray,
    rec_j: np.ndarray,
    rec_step: np.ndarray,
    refined: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None,
) -> "tuple[str, int]":
    """Write the shard's records into the worker's shard-local block.

    The block is worker-owned and reused across windows; when a window's
    records outgrow it, the old block is closed **and unlinked** before a
    doubled replacement is created (no orphaned generations).  Layout:
    a ``(3, n_records)`` int64 array — rows ``i``, ``j``, ``step``.  A
    pipelined shard (``refined`` given as ``(hit, tca, pca)``) appends
    its per-record refinement columns after the int64 block: ``n`` float64
    TCAs, ``n`` float64 PCAs, then ``n`` uint8 hit flags.
    """
    n_records = len(rec_i)
    needed = 3 * n_records * 8
    if refined is not None:
        needed += n_records * (8 + 8 + 1)
    needed = max(needed, MIN_RESULT_BLOCK_BYTES)
    result = _RESIDENT.get("result")
    if result is not None and result.size < needed:
        result.close()
        try:
            result.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass
        result = None
    if result is None:
        size = 1 << (needed - 1).bit_length()
        result = shared_memory.SharedMemory(create=True, size=size)
        _RESIDENT["result"] = result
    block = np.ndarray((3, n_records), dtype=np.int64, buffer=result.buf)
    block[0] = rec_i
    block[1] = rec_j
    block[2] = rec_step
    del block
    if refined is not None:
        hit, tca, pca = refined
        off = 3 * n_records * 8
        cols = np.ndarray((2, n_records), dtype=np.float64, buffer=result.buf, offset=off)
        cols[0] = tca
        cols[1] = pca
        del cols
        flags = np.ndarray(
            n_records, dtype=np.uint8, buffer=result.buf, offset=off + 2 * n_records * 8
        )
        flags[:] = hit
        del flags
    return result.name, n_records


def _pool_run_window(task: WindowTask) -> ShardOutcome:
    """Worker entry point: run one window's device shard on resident state."""
    from repro.parallel.multidevice import partition_steps, run_device_shard

    population = _resident_population(task.shm_name, task.n_objects, task.version)
    propagator = _resident_propagator(task, population)
    emitter = _resident_emitter(task) if task.config.use_coherence else None
    tracer = Tracer() if task.trace else NULL_TRACER
    timers = PhaseTimer(tracer=tracer)
    metrics = MetricsRegistry() if task.collect_metrics else None
    ids = np.arange(task.n_objects, dtype=np.int64)
    times = task.config.sample_times()
    steps = partition_steps(len(times), task.n_devices)[task.device]
    pipelined = task.config.schedule == "pipelined"
    ref_cell = (
        cell_size_km(task.config.threshold_km, task.config.seconds_per_sample)
        if pipelined
        else None
    )
    shard_result = run_device_shard(
        propagator, ids, times, steps, task.cell, task.config,
        task.device, task.n_devices, timers,
        tracer=tracer, metrics=metrics,
        initial_capacity=task.initial_capacity,
        round_size=task.round_size,
        emitter=emitter,
        population=population if pipelined else None,
        ref_cell=ref_cell,
    )
    rec_i, rec_j, rec_step, stats = shard_result[:4]
    refined = shard_result[4] if len(shard_result) == 5 else None
    result_name, n_records = _ship_records(rec_i, rec_j, rec_step, refined=refined)
    # A live Tracer is not picklable (lock + thread-local state); ship
    # its finished records instead and strip it off the timer.
    spans = tracer.records() if task.trace else []
    epoch_unix = tracer.epoch_unix if task.trace else 0.0
    timers.tracer = NULL_TRACER
    return ShardOutcome(
        stats=stats,
        result_name=result_name,
        n_records=n_records,
        timers=timers,
        metrics=metrics,
        spans=spans,
        epoch_unix=epoch_unix,
        pid=os.getpid(),
        refined=refined is not None,
    )


class PersistentShardPool:
    """A pool of per-device worker processes that persists across windows.

    One single-worker spawn executor per virtual device pins each device's
    resident state (population attach, solver data, coherence cache,
    result block) to one OS process for the pool's lifetime — dispatching
    a window costs one :class:`WindowTask` pickle per device instead of a
    process spawn plus a population ship.

    Use as a context manager, or call :meth:`close` — teardown shuts the
    workers down (their ``atexit`` hooks release all shared-memory
    attachments), then sweeps any result block a worker failed to unlink,
    then unlinks the population block.
    """

    def __init__(self, n_devices: int) -> None:
        if n_devices <= 0:
            raise ValueError(f"n_devices must be positive, got {n_devices}")
        self.n_devices = n_devices
        ctx = get_context("spawn")
        self._executors = [
            ProcessPoolExecutor(
                max_workers=1, mp_context=ctx, initializer=_pool_worker_init
            )
            for _ in range(n_devices)
        ]
        self._shared: "SharedPopulation | None" = None
        #: Per-device attachments to the workers' result blocks.
        self._attached: "dict[int, shared_memory.SharedMemory]" = {}
        #: Windows dispatched over the pool's lifetime.
        self.windows = 0
        #: device -> worker OS pid, learned from each window's outcomes
        #: (spawned lazily by the executors, so empty until a dispatch).
        self._worker_pids: "dict[int, int]" = {}
        self._closed = False

    def __enter__(self) -> "PersistentShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def publish(self, population: OrbitalElementsArray) -> SharedPopulation:
        """Publish (or in-place refresh) the population block."""
        if self._shared is not None and self._shared.n == len(population):
            self._shared.update(population)
        else:
            if self._shared is not None:
                self._shared.close()
            self._shared = SharedPopulation(population)
        return self._shared

    def _read_records(
        self, device: int, result_name: str, n_records: int, refined: bool = False
    ) -> "tuple":
        """Copy one shard's records out of its shard-local block.

        With ``refined`` (pipelined shard), also copies out the appended
        per-record ``(hit, tca, pca)`` columns — see :func:`_ship_records`
        for the layout.
        """
        shm = self._attached.get(device)
        if shm is not None and shm.name != result_name:
            shm.close()
            shm = None
        if shm is None:
            shm = shared_memory.SharedMemory(name=result_name)
            self._attached[device] = shm
        block = np.ndarray((3, n_records), dtype=np.int64, buffer=shm.buf)
        rec_i, rec_j, rec_step = block[0].copy(), block[1].copy(), block[2].copy()
        del block
        if not refined:
            return rec_i, rec_j, rec_step
        off = 3 * n_records * 8
        cols = np.ndarray((2, n_records), dtype=np.float64, buffer=shm.buf, offset=off)
        tca, pca = cols[0].copy(), cols[1].copy()
        del cols
        flags = np.ndarray(
            n_records, dtype=np.uint8, buffer=shm.buf, offset=off + 2 * n_records * 8
        )
        hit = flags.astype(bool)
        del flags
        return rec_i, rec_j, rec_step, (hit, tca, pca)

    def run_window(
        self,
        population: OrbitalElementsArray,
        config: ScreeningConfig,
        cell: float,
        timers: PhaseTimer,
        tracer=NULL_TRACER,
        metrics: "MetricsRegistry | None" = None,
        initial_capacity: "int | None" = None,
        round_size: "int | None" = None,
        parent_span_id: int = -1,
    ) -> "list[tuple[np.ndarray, np.ndarray, np.ndarray, object]]":
        """Run one screening window's shards on the resident workers.

        Publishes/refreshes the population, fans a :class:`WindowTask`
        out to every device's worker, then performs the once-per-window
        merge: worker timers and metrics fold in through the commutative
        combiners, span trees graft under ``parent_span_id``, and each
        shard's records are copied out of its shard-local block.  Returns
        the per-shard ``(rec_i, rec_j, rec_step, stats)`` tuples ordered
        by device index — the same shape the serial executor produces
        inline.  Pipelined shards (``config.schedule == "pipelined"``)
        return five-tuples whose last element is the shard's per-record
        ``(hit, tca, pca)`` refinement columns.
        """
        if self._closed:
            raise RuntimeError("PersistentShardPool is closed")
        shared = self.publish(population)
        trace = bool(getattr(tracer, "enabled", False))
        tasks = [
            WindowTask(
                shm_name=shared.name,
                n_objects=shared.n,
                version=shared.version,
                config=config,
                device=device,
                n_devices=self.n_devices,
                cell=cell,
                round_size=round_size,
                initial_capacity=initial_capacity,
                trace=trace,
                collect_metrics=metrics is not None,
            )
            for device in range(self.n_devices)
        ]
        futures = [
            self._executors[device].submit(_pool_run_window, task)
            for device, task in enumerate(tasks)
        ]
        outcomes = [future.result() for future in futures]

        merge_start = time.perf_counter()
        results = []
        rounds_resident = 0
        for device, outcome in enumerate(outcomes):
            if outcome.pid:
                self._worker_pids[device] = outcome.pid
            timers.merge(outcome.timers)
            if metrics is not None and outcome.metrics is not None:
                metrics.merge(outcome.metrics)
            if trace and outcome.spans:
                tracer.adopt(
                    outcome.spans, parent_id=parent_span_id, epoch_unix=outcome.epoch_unix
                )
            read = self._read_records(
                device, outcome.result_name, outcome.n_records,
                refined=outcome.refined,
            )
            rounds_resident += getattr(outcome.stats, "rounds", 0)
            if outcome.refined:
                rec_i, rec_j, rec_step, refined = read
                results.append((rec_i, rec_j, rec_step, outcome.stats, refined))
            else:
                rec_i, rec_j, rec_step = read
                results.append((rec_i, rec_j, rec_step, outcome.stats))
        self.windows += 1
        if metrics is not None:
            observe_pool(
                metrics,
                rounds_resident=rounds_resident,
                merge_seconds=time.perf_counter() - merge_start,
            )
        return results

    def worker_pids(self) -> "dict[int, int]":
        """device -> worker OS pid of every worker seen so far.

        Populated from window outcomes (a worker reports its pid with
        each result), so it is empty before the first dispatch and
        refreshes if the executor respawns a crashed worker.  Resource
        monitors (:class:`repro.obs.resources.ResourceSampler`) use this
        to attribute per-worker RSS/CPU.
        """
        return dict(self._worker_pids)

    def close(self) -> None:
        """Shut the workers down and release every shared-memory segment.

        Idempotent.  Worker ``atexit`` hooks normally unlink the result
        blocks; the sweep here covers workers that died without running
        them, so the pool never orphans a block whichever side crashed.
        """
        if self._closed:
            return
        self._closed = True
        for executor in self._executors:
            executor.shutdown(wait=True)
        for shm in self._attached.values():
            try:
                shm.unlink()
            except FileNotFoundError:
                pass  # the worker's atexit hook got there first — normal
            shm.close()
        self._attached.clear()
        if self._shared is not None:
            self._shared.close()
            self._shared = None


def run_shards_in_processes(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    n_devices: int,
    cell: float,
    timers: PhaseTimer,
    tracer=NULL_TRACER,
    metrics: "MetricsRegistry | None" = None,
    initial_capacity: "int | None" = None,
    round_size: "int | None" = None,
    parent_span_id: int = -1,
) -> "list[tuple[np.ndarray, np.ndarray, np.ndarray, object]]":
    """Run every device shard in its own OS process and merge the results.

    The one-shot convenience wrapper: spins up a
    :class:`PersistentShardPool` for a single window and tears it down in
    a ``finally`` — so even a shard failure mid-round cannot orphan the
    population or result blocks.  Callers screening repeatedly should
    hold a pool open themselves (see
    :class:`repro.ops.campaign.ScreeningCampaign`) to amortise the spawn.
    """
    pool = PersistentShardPool(n_devices)
    try:
        return pool.run_window(
            population, config, cell,
            timers=timers, tracer=tracer, metrics=metrics,
            initial_capacity=initial_capacity, round_size=round_size,
            parent_span_id=parent_span_id,
        )
    finally:
        pool.close()
