"""Execution backends (`serial` / `threads` / `vectorized`) and phase timers.

* ``serial`` — single-threaded reference path over the CAS data structures.
* ``threads`` — a thread pool partitions the satellite (or pair) index
  space into chunks; all threads insert into the *shared* non-blocking
  structures concurrently, exercising the CAS protocol exactly as the
  paper's OpenMP variant does.  (Throughput under CPython's GIL is not the
  point — protocol correctness and the work-partitioning structure are;
  see DESIGN.md.)
* ``vectorized`` — the GPU analogue: no Python-level loop over objects at
  all; the variants select their numpy array path when this backend is
  chosen.

:class:`PhaseTimer` accumulates wall-clock per named phase (INS, CD,
coplanarity, refinement, ...) to reproduce Section V-C1's relative time
consumption.
"""
from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.tracer import NULL_TRACER

#: The recognised backend names.
BACKENDS = ("serial", "threads", "vectorized")


def resolve_backend(name: str) -> str:
    """Validate and normalise a backend name."""
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {BACKENDS}")
    return name


def _env_count(var: str) -> "int | None":
    """Parse a positive-integer worker count from an environment variable.

    Returns ``None`` when the variable is unset or blank; raises
    :class:`ValueError` (naming the variable) on anything that is not a
    positive integer, so both the thread and the process override fail
    with the same actionable message.
    """
    env = os.environ.get(var)
    if env is None or not env.strip():
        return None
    try:
        count = int(env.strip())
    except ValueError:
        raise ValueError(f"{var} must be a positive integer, got {env!r}") from None
    if count <= 0:
        raise ValueError(f"{var} must be positive, got {count}")
    return count


def default_thread_count() -> int:
    """Thread-pool width: honours ``REPRO_NUM_THREADS``, else CPU count."""
    count = _env_count("REPRO_NUM_THREADS")
    if count is not None:
        return count
    return os.cpu_count() or 1


def default_process_count() -> int:
    """Device/worker-process count: honours ``REPRO_NUM_PROCS``, else CPUs.

    The process analogue of :func:`default_thread_count`, with identical
    validation semantics.  The CLI consults it when ``--n-devices`` is not
    given; an explicit ``--n-devices`` always wins over the environment.
    """
    count = _env_count("REPRO_NUM_PROCS")
    if count is not None:
        return count
    return os.cpu_count() or 1


def chunk_ranges(n: int, n_chunks: int) -> "list[tuple[int, int]]":
    """Split ``range(n)`` into ``n_chunks`` nearly equal ``[start, end)`` runs.

    Static partitioning, matching the paper's OpenMP-style distribution of
    (satellite, time) tuples across threads.
    """
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    n_chunks = min(n_chunks, max(n, 1))
    base, extra = divmod(n, n_chunks)
    ranges = []
    start = 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def parallel_for(
    work: Callable[[int, int], object],
    n: int,
    n_threads: "int | None" = None,
) -> "list[object]":
    """Run ``work(start, end)`` over a static partition of ``range(n)``.

    With one thread (or trivial ``n``) the call is executed inline, which
    keeps the serial backend free of pool overhead and makes single-thread
    baselines honest.
    """
    threads = n_threads if n_threads is not None else default_thread_count()
    ranges = [r for r in chunk_ranges(n, threads) if r[0] < r[1]]
    if len(ranges) <= 1:
        return [work(s, e) for s, e in ranges]
    with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
        futures = [pool.submit(work, s, e) for s, e in ranges]
        return [f.result() for f in futures]


@dataclass
class RefTelemetry:
    """Work counters of the convergence-aware REF engine.

    Mirrors what a GPU profiler would report for the refinement kernel:
    how many golden-section iterations actually ran, how the active lane
    set drained (``lanes_retired_per_iteration``), and how many Newton
    iterations the warm-started Kepler solves spent — versus the
    fixed-iteration cold-start baseline the seed implementation hard-coded.
    """

    #: Golden-section iterations executed (compaction mode counts only the
    #: iterations that still had live lanes).
    golden_iterations: int = 0
    #: Total minimisation lanes entered into batch refinement.
    lanes_total: int = 0
    #: Lanes retired at each golden iteration, in execution order.
    lanes_retired_per_iteration: "list[int]" = field(default_factory=list)
    #: Kepler lane-solves (one per (lane, evaluation, side)).
    kepler_lanes: int = 0
    #: Newton/Halley iterations summed over all lane-solves.
    kepler_iterations: int = 0
    #: Scalar Brent refinements (the serial oracle / legacy scan path).
    brent_calls: int = 0
    #: Iterations spent inside those scalar Brent refinements.
    brent_iterations: int = 0

    #: Newton iterations per lane-solve the seed's fixed-iteration REF
    #: kernel always spent (cold start, no convergence check).
    FIXED_BASELINE_KEPLER_ITERS = 10

    def record_golden_iteration(self, lanes_retired: int = 0) -> None:
        self.golden_iterations += 1
        self.lanes_retired_per_iteration.append(int(lanes_retired))

    def record_lanes(self, lanes: int) -> None:
        self.lanes_total += int(lanes)

    def record_kepler(self, lanes: int, iterations: int) -> None:
        self.kepler_lanes += int(lanes)
        self.kepler_iterations += int(iterations)

    def record_brent(self, iterations: int) -> None:
        self.brent_calls += 1
        self.brent_iterations += int(iterations)

    @property
    def mean_kepler_iterations(self) -> float:
        """Mean Newton iterations per lane-solve (1–2 when warm-started)."""
        return self.kepler_iterations / self.kepler_lanes if self.kepler_lanes else 0.0

    @property
    def kepler_iterations_saved(self) -> int:
        """Iterations avoided versus the fixed 10-iteration cold kernel."""
        return max(self.FIXED_BASELINE_KEPLER_ITERS * self.kepler_lanes - self.kepler_iterations, 0)

    def merge(self, other: "RefTelemetry") -> None:
        """Combine another telemetry; order-insensitive.

        ``lanes_retired_per_iteration`` aggregates by *iteration index*
        (element-wise sum, padding the shorter series) rather than
        concatenating, so merged telemetry is identical no matter in which
        order the threads backend's chunks arrive.
        """
        self.golden_iterations += other.golden_iterations
        self.lanes_total += other.lanes_total
        mine = self.lanes_retired_per_iteration
        for k, retired in enumerate(other.lanes_retired_per_iteration):
            if k < len(mine):
                mine[k] += retired
            else:
                mine.append(retired)
        self.kepler_lanes += other.kepler_lanes
        self.kepler_iterations += other.kepler_iterations
        self.brent_calls += other.brent_calls
        self.brent_iterations += other.brent_iterations

    def as_dict(self) -> "dict[str, object]":
        return {
            "golden_iterations": self.golden_iterations,
            "lanes_total": self.lanes_total,
            "lanes_retired_per_iteration": list(self.lanes_retired_per_iteration),
            "kepler_lanes": self.kepler_lanes,
            "kepler_iterations": self.kepler_iterations,
            "mean_kepler_iterations": self.mean_kepler_iterations,
            "kepler_iterations_saved": self.kepler_iterations_saved,
            "brent_calls": self.brent_calls,
            "brent_iterations": self.brent_iterations,
        }


@dataclass
class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    The evaluation's phase names: ``INS`` (grid insertion, including
    propagation), ``CD`` (conjunction detection / pair emission),
    ``COP`` (coplanarity + orbital filters, hybrid only), ``REF``
    (PCA/TCA refinement), ``ALLOC`` (up-front memory allocation).
    ``ref`` collects the REF engine's work counters alongside its seconds.

    An obs citizen since PR 3: when a real :class:`repro.obs.Tracer` is
    attached, every timed phase also emits a ``phase:<NAME>`` span into
    the run's span tree.  The default is the zero-overhead null tracer.
    """

    totals: "dict[str, float]" = field(default_factory=dict)
    ref: RefTelemetry = field(default_factory=RefTelemetry)
    tracer: "object" = NULL_TRACER

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        span = self.tracer.span(f"phase:{name}") if self.tracer.enabled else None
        if span is not None:
            span.__enter__()
        start = time.perf_counter()
        try:
            yield
        except BaseException:
            # The phase blew up (e.g. ConjunctionMapFullError mid-CD): the
            # elapsed time still counts, but the span must close with the
            # live exception info so the trace shows an errored phase
            # rather than a clean one.
            self.totals[name] = self.totals.get(name, 0.0) + time.perf_counter() - start
            if span is not None:
                span.__exit__(*sys.exc_info())
            raise
        self.totals[name] = self.totals.get(name, 0.0) + time.perf_counter() - start
        if span is not None:
            span.__exit__(None, None, None)

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def fractions(self) -> "dict[str, float]":
        """Relative time consumption per phase (Section V-C1's percentages)."""
        total = self.total
        if total <= 0.0:
            return {k: 0.0 for k in self.totals}
        return {k: v / total for k, v in self.totals.items()}

    def merge(self, other: "PhaseTimer") -> None:
        for k, v in other.totals.items():
            self.add(k, v)
        self.ref.merge(other.ref)
