"""Execution backends (`serial` / `threads` / `vectorized`) and phase timers.

* ``serial`` — single-threaded reference path over the CAS data structures.
* ``threads`` — a thread pool partitions the satellite (or pair) index
  space into chunks; all threads insert into the *shared* non-blocking
  structures concurrently, exercising the CAS protocol exactly as the
  paper's OpenMP variant does.  (Throughput under CPython's GIL is not the
  point — protocol correctness and the work-partitioning structure are;
  see DESIGN.md.)
* ``vectorized`` — the GPU analogue: no Python-level loop over objects at
  all; the variants select their numpy array path when this backend is
  chosen.

:class:`PhaseTimer` accumulates wall-clock per named phase (INS, CD,
coplanarity, refinement, ...) to reproduce Section V-C1's relative time
consumption.
"""
from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: The recognised backend names.
BACKENDS = ("serial", "threads", "vectorized")


def resolve_backend(name: str) -> str:
    """Validate and normalise a backend name."""
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {BACKENDS}")
    return name


def default_thread_count() -> int:
    """Thread-pool width: honours ``REPRO_NUM_THREADS``, else CPU count."""
    env = os.environ.get("REPRO_NUM_THREADS")
    if env:
        count = int(env)
        if count <= 0:
            raise ValueError(f"REPRO_NUM_THREADS must be positive, got {count}")
        return count
    return os.cpu_count() or 1


def chunk_ranges(n: int, n_chunks: int) -> "list[tuple[int, int]]":
    """Split ``range(n)`` into ``n_chunks`` nearly equal ``[start, end)`` runs.

    Static partitioning, matching the paper's OpenMP-style distribution of
    (satellite, time) tuples across threads.
    """
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    n_chunks = min(n_chunks, max(n, 1))
    base, extra = divmod(n, n_chunks)
    ranges = []
    start = 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def parallel_for(
    work: Callable[[int, int], object],
    n: int,
    n_threads: "int | None" = None,
) -> "list[object]":
    """Run ``work(start, end)`` over a static partition of ``range(n)``.

    With one thread (or trivial ``n``) the call is executed inline, which
    keeps the serial backend free of pool overhead and makes single-thread
    baselines honest.
    """
    threads = n_threads if n_threads is not None else default_thread_count()
    ranges = [r for r in chunk_ranges(n, threads) if r[0] < r[1]]
    if len(ranges) <= 1:
        return [work(s, e) for s, e in ranges]
    with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
        futures = [pool.submit(work, s, e) for s, e in ranges]
        return [f.result() for f in futures]


@dataclass
class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    The evaluation's phase names: ``INS`` (grid insertion, including
    propagation), ``CD`` (conjunction detection / pair emission),
    ``COP`` (coplanarity + orbital filters, hybrid only), ``REF``
    (PCA/TCA refinement), ``ALLOC`` (up-front memory allocation).
    """

    totals: "dict[str, float]" = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + time.perf_counter() - start

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def fractions(self) -> "dict[str, float]":
        """Relative time consumption per phase (Section V-C1's percentages)."""
        total = self.total
        if total <= 0.0:
            return {k: 0.0 for k in self.totals}
        return {k: v / total for k, v in self.totals.items()}

    def merge(self, other: "PhaseTimer") -> None:
        for k, v in other.totals.items():
            self.add(k, v)
