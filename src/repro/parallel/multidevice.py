"""Multi-device orchestration: the paper's "use multiple GPUs" future work.

Section VI: "memory usage is the current limiting factor - using multiple
GPUs would solve this problem to some degree."  This module implements
that extension over the library's virtual-device model: the sampling steps
of a screening run are partitioned round-robin across ``n_devices``, each
device runs the grid candidate collection inside its own memory budget
(its own grids and conjunction map), and the per-device record sets merge
before the shared refinement stage.

Because sampling steps are embarrassingly parallel (each step has its own
grid; Section V-E), the partition is exact: the merged result is
bit-identical to the single-device run, which the test suite asserts.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.gridbased import refine_records
from repro.detection.pca_tca import interval_radii, merge_conjunctions
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.perfmodel.memory import MemoryPlan, conjunction_capacity, plan_memory
from repro.spatial.conjmap import ConjunctionMap, ConjunctionMapFullError
from repro.spatial.grid import cell_size_km
from repro.spatial.vectorgrid import SortedGrid


@dataclass(frozen=True)
class DeviceReport:
    """Per-virtual-device accounting of one multi-device run."""

    device: int
    steps_processed: int
    records: int
    conjunction_map_capacity: int
    peak_bytes: int
    plan: "MemoryPlan | None"


def partition_steps(n_steps: int, n_devices: int) -> "list[np.ndarray]":
    """Round-robin step assignment: device d gets steps d, d+D, d+2D, ...

    Round-robin (rather than contiguous blocks) balances the load when
    conjunction density drifts over the screening span.
    """
    if n_devices <= 0:
        raise ValueError(f"n_devices must be positive, got {n_devices}")
    return [np.arange(d, n_steps, n_devices, dtype=np.int64) for d in range(n_devices)]


def screen_grid_multidevice(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    n_devices: int,
    device_budget_bytes: "int | None" = None,
) -> "tuple[ScreeningResult, list[DeviceReport]]":
    """Grid-based screening with steps sharded over virtual devices.

    Returns the merged :class:`ScreeningResult` (identical to a
    single-device run) plus per-device reports.  When
    ``device_budget_bytes`` is given, each device additionally computes its
    Section V-B memory plan against that budget, demonstrating how D
    devices multiply the effective parallelisation factor.
    """
    timers = PhaseTimer()
    n = len(population)
    with timers.phase("ALLOC"):
        cell = cell_size_km(config.threshold_km, config.seconds_per_sample)
        times = config.sample_times()
        shards = partition_steps(len(times), n_devices)
        propagator = Propagator(population, solver=config.solver)
        ids = np.arange(n, dtype=np.int64)

    reports: "list[DeviceReport]" = []
    all_i: "list[np.ndarray]" = []
    all_j: "list[np.ndarray]" = []
    all_steps: "list[np.ndarray]" = []

    for device, steps in enumerate(shards):
        capacity = max(
            conjunction_capacity(
                n, config.seconds_per_sample, config.duration_s, config.threshold_km, "grid"
            )
            // n_devices,
            1000,
        )
        conj = ConjunctionMap(capacity)
        peak = 0
        k = 0
        while k < len(steps):
            step = int(steps[k])
            with timers.phase("INS"):
                positions = propagator.positions(float(times[step]))
                grid = SortedGrid(cell)
                grid.build(ids, positions)
            try:
                with timers.phase("CD"):
                    ci, cj = grid.candidate_pairs()
                    conj.insert_batch(ci, cj, step)
            except ConjunctionMapFullError:
                bigger = ConjunctionMap(conj.capacity * 2)
                ri, rj, rs = conj.records()
                bigger.insert_batch(ri, rj, rs)
                conj = bigger
                continue
            peak = max(peak, conj.memory_bytes + 16 * 2 * n + 48 * n)
            k += 1
        ri, rj, rs = conj.records()
        all_i.append(ri)
        all_j.append(rj)
        all_steps.append(rs)
        plan = None
        if device_budget_bytes is not None:
            plan = plan_memory(
                n,
                config.seconds_per_sample,
                config.duration_s / n_devices,
                config.threshold_km,
                "grid",
                device_budget_bytes,
                auto_adjust=False,
            )
        reports.append(
            DeviceReport(
                device=device,
                steps_processed=len(steps),
                records=len(ri),
                conjunction_map_capacity=conj.capacity,
                peak_bytes=peak,
                plan=plan,
            )
        )

    with timers.phase("REF"):
        rec_i = np.concatenate(all_i)
        rec_j = np.concatenate(all_j)
        rec_step = np.concatenate(all_steps)
        centers = times[rec_step]
        radii = interval_radii(population, rec_i, rec_j, cell)
        i, j, tca, pca = refine_records(
            population, rec_i, rec_j, centers, radii, config, "vectorized"
        )
        i, j, tca, pca = merge_conjunctions(i, j, tca, pca, config.tca_merge_tol_s)

    result = ScreeningResult(
        method="grid-multidevice",
        backend="vectorized",
        i=i,
        j=j,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=len(rec_i),
        timers=timers,
        extra={
            "n_devices": n_devices,
            "cell_size_km": cell,
            "n_steps": len(times),
        },
    )
    return result, reports
