"""Multi-device orchestration: the paper's "use multiple GPUs" future work.

Section VI: "memory usage is the current limiting factor - using multiple
GPUs would solve this problem to some degree."  This module implements
that extension over the library's virtual-device model: the sampling steps
of a screening run are partitioned round-robin across ``n_devices``, each
device runs the grid candidate collection inside its own memory budget
(its own grids and conjunction map), and the per-device record sets merge
before the shared refinement stage.

Two executors run the device shards (DESIGN.md §8):

* ``serial`` — the shards run one after another in this process, the
  reference semantics (and the honest single-host baseline);
* ``processes`` — each shard runs in a real OS process
  (:mod:`repro.parallel.processes`): the population's element arrays are
  published once through shared memory, workers return compact record
  arrays, and their phase timers / metrics / trace spans merge back with
  the order-insensitive combiners.

Because sampling steps are embarrassingly parallel (each step has its own
grid; Section V-E) and the merged records are re-sorted into the global
conjunction-map key order before refinement, the result is bit-identical
to the single-device run *on every executor*, which the test suite
asserts.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.gridbased import (
    _build_round_grid,
    _regrow,
    refine_records,
    shard_round_descriptors,
    stream_round_positions,
)
from repro.detection.pca_tca import interval_radii, merge_conjunctions
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.obs.collect import observe_coherence, observe_conjmap, observe_grid
from repro.obs.tracer import NULL_SPAN, NULL_TRACER
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.perfmodel.memory import (
    MemoryPlan,
    coherence_budget_bytes,
    device_conjunction_capacity,
    grid_instance_bytes,
    plan_stream_rounds,
)
from repro.spatial.conjmap import ConjunctionMap, ConjunctionMapFullError, pack_pair_key
from repro.spatial.grid import cell_size_km
from repro.spatial.hashing import MAX_ROUND_STEPS
from repro.spatial.vectorgrid import CoherentPairEmitter

#: The recognised shard executors.
EXECUTORS = ("serial", "processes")


def resolve_executor(name: str) -> str:
    """Validate and normalise an executor name."""
    if name not in EXECUTORS:
        raise ValueError(f"unknown executor {name!r}; choose from {EXECUTORS}")
    return name


@dataclass(frozen=True)
class DeviceReport:
    """Per-virtual-device accounting of one multi-device run."""

    device: int
    steps_processed: int
    records: int
    conjunction_map_capacity: int
    peak_bytes: int
    plan: "MemoryPlan | None"
    #: Conjunction-map overflow → regrow → replay cycles this shard hit.
    regrows: int = 0
    #: Streamed fused rounds the shard executed over its step shard.
    rounds: int = 0
    #: Resolved steps-per-round the shard's grids were sized for.
    round_size: int = 1


@dataclass(frozen=True)
class ShardStats:
    """What one device shard's collection loop reports back."""

    device: int
    steps_processed: int
    records: int
    conjunction_map_capacity: int
    peak_bytes: int
    regrows: int
    rounds: int = 0
    round_size: int = 1


def partition_steps(n_steps: int, n_devices: int) -> "list[np.ndarray]":
    """Round-robin step assignment: device d gets steps d, d+D, d+2D, ...

    Round-robin (rather than contiguous blocks) balances the load when
    conjunction density drifts over the screening span.
    """
    if n_devices <= 0:
        raise ValueError(f"n_devices must be positive, got {n_devices}")
    return [np.arange(d, n_steps, n_devices, dtype=np.int64) for d in range(n_devices)]


def run_device_shard(
    propagator: Propagator,
    ids: np.ndarray,
    times: np.ndarray,
    steps: np.ndarray,
    cell: float,
    config: ScreeningConfig,
    device: int,
    n_devices: int,
    timers: PhaseTimer,
    tracer=NULL_TRACER,
    metrics=None,
    initial_capacity: "int | None" = None,
    round_size: "int | None" = None,
    emitter: "CoherentPairEmitter | None" = None,
    population: "OrbitalElementsArray | None" = None,
    ref_cell: "float | None" = None,
) -> "tuple":
    """One device's candidate collection over its step shard.

    The per-shard kernel shared by both executors: the ``serial`` executor
    calls it inline, the ``processes`` executor calls it inside each
    worker.  The shard's steps are sliced into fused rounds of
    ``round_size`` steps (the Section V-B parallelisation factor resolved
    by the caller, or a conservative default): each round is one batched
    Kepler solve, one multi-step grid build and one pair-emission pass,
    streamed through :func:`~repro.detection.gridbased
    .stream_round_positions`'s double buffer so the next round's
    propagation overlaps this round's grid work.  Emits a ``device`` span
    (wrapping the shard's ``phase:INS`` / ``phase:CD`` spans) when a real
    tracer is attached, feeds ``metrics`` with the grid / conjunction-map
    health counters, and on conjunction-map overflow regrows the map and
    replays the interrupted round — the replay is idempotent because
    :class:`ConjunctionMap` deduplicates records.

    ``emitter`` lets a persistent worker pass its *resident* coherence
    emitter; it is reset with ``fresh_window()`` here, so a reused emitter
    starts every shard exactly like a freshly constructed one (bit-identity
    across pool reuse).  ``None`` creates a private per-shard emitter when
    ``config.use_coherence`` asks for one.

    Returns the shard's deduplicated ``(i, j, step)`` record arrays (step
    indices are *global*) plus its :class:`ShardStats`.

    Under ``config.schedule == "pipelined"`` the shard additionally runs
    its *own* REF consumer (``population`` and ``ref_cell`` become
    required): each round's record batch streams into an in-shard
    :class:`repro.detection.pipeline.ChunkedRefiner` that keeps refined
    results aligned per record, and the return grows a fifth element —
    ``(hit, tca, pca)`` arrays parallel to the record arrays.  The parent
    then only re-sorts records (carrying the refined columns through the
    same permutation) instead of refining after the barrier; per-lane
    independence of ``refine_batch`` makes the values bit-identical no
    matter which shard's chunks they were refined in.
    """
    pipelined = config.schedule == "pipelined"
    if pipelined and (population is None or ref_cell is None):
        raise ValueError("pipelined shards need population= and ref_cell=")
    n = len(ids)
    if initial_capacity is None:
        initial_capacity = device_conjunction_capacity(
            n, config.seconds_per_sample, config.duration_s, config.threshold_km,
            "grid", n_devices,
        )
    if round_size is None:
        round_size = 16
    round_size = max(1, min(round_size, max(len(steps), 1), MAX_ROUND_STEPS))
    conj = ConjunctionMap(initial_capacity)
    grid_bytes = grid_instance_bytes(n, config.precision)
    peak = 0
    regrows = 0
    rounds = 0
    # Coherence state is per-shard by construction: the round-robin shard
    # sees every D-th step, and diffing across a shard boundary would
    # compare cells D steps apart.  A resident emitter (persistent pool)
    # is reset to cold; otherwise a fresh one is created here.  Under
    # heavy striding the emitter's churn guard falls back to full
    # emission.
    if emitter is not None:
        emitter.fresh_window()
    elif config.use_coherence:
        emitter = CoherentPairEmitter(n, budget_bytes=coherence_budget_bytes(n))
    runner = None
    ins_timers = None
    refiner = None
    if pipelined:
        from repro.detection.pipeline import ChunkedRefiner, ConsumerRunner

        ins_timers = PhaseTimer(tracer=tracer)
        ref_timers = PhaseTimer(tracer=tracer)
        refiner = ChunkedRefiner(
            population, times, ref_cell, config, timers=ref_timers,
            keep_per_record=True,
        )
        runner = ConsumerRunner(
            refiner,
            threaded=(config.pipeline_consumer == "thread"),
            queue_rounds=config.pipeline_queue_rounds,
        )

    span = (
        tracer.span("device", device=device, n_steps=len(steps), round_size=round_size)
        if tracer.enabled
        else NULL_SPAN
    )
    with span:
        descriptors = shard_round_descriptors(times, steps, round_size)
        try:
            for rd, positions in stream_round_positions(
                propagator, descriptors, timers,
                worker_timers=ins_timers if pipelined else None,
            ):
                with timers.phase("INS"):
                    grid = _build_round_grid(ids, positions, cell, config)
                with timers.phase("CD"):
                    if emitter is not None:
                        ci, cj, csteps = emitter.round_pairs(grid)
                    else:
                        ci, cj, csteps = grid.candidate_pair_steps()
                    gsteps = rd.steps[csteps]
                    # Insert-only replay: the emitted arrays survive the
                    # regrow, so overflow never re-propagates or rebuilds
                    # the grid.
                    while True:
                        try:
                            conj.insert_batch(ci, cj, gsteps)
                            break
                        except ConjunctionMapFullError:
                            conj = _regrow(conj, incoming=len(ci), metrics=metrics)
                            regrows += 1
                if metrics is not None:
                    metrics.counter("cd.pairs_emitted").add(len(ci))
                    metrics.counter("cd.rounds").add(1)
                    observe_grid(metrics, grid, precision=config.precision)
                if runner is not None:
                    runner.offer_round(ci, cj, gsteps)
                rounds += 1
                # Planned allocation accounting: every round's grid is priced
                # at the resolved round width (the up-front allocation the
                # Section V-B plan budgets), not the last round's remainder.
                peak = max(peak, conj.memory_bytes + round_size * grid_bytes)
        except BaseException as exc:
            if runner is not None:
                from repro.detection.pipeline import PipelineBrokenError

                if not isinstance(exc, PipelineBrokenError):
                    runner.abort()
                    raise
                # Consumer failed: fall through to finish(), which re-raises
                # the consumer's own exception.
            else:
                raise
    refined = None
    if runner is not None:
        runner.finish()
        refined = refiner.per_record_results()
        timers.merge(ins_timers)
        timers.merge(refiner._timers)
        if metrics is not None:
            from repro.obs.collect import observe_pipeline

            observe_pipeline(metrics, runner.stats())
    if metrics is not None:
        observe_conjmap(metrics, conj)
        if emitter is not None:
            observe_coherence(metrics, emitter.stats)
    ri, rj, rs = conj.records()
    stats = ShardStats(
        device=device,
        steps_processed=len(steps),
        records=len(ri),
        conjunction_map_capacity=conj.capacity,
        peak_bytes=peak,
        regrows=regrows,
        rounds=rounds,
        round_size=round_size,
    )
    if pipelined:
        if len(refined[0]) != len(ri):
            raise RuntimeError(
                f"pipelined shard stream covered {len(refined[0])} records but "
                f"the conjunction map holds {len(ri)} — round batches must "
                "partition the record set"
            )
        return ri, rj, rs, stats, refined
    return ri, rj, rs, stats


def screen_grid_multidevice(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    n_devices: int,
    device_budget_bytes: "int | None" = None,
    executor: str = "serial",
    tracer=None,
    metrics=None,
    initial_capacity: "int | None" = None,
    round_size: "int | None" = None,
    pool=None,
) -> "tuple[ScreeningResult, list[DeviceReport]]":
    """Grid-based screening with steps sharded over virtual devices.

    Returns the merged :class:`ScreeningResult` — bit-identical to a
    single-device run and across executors — plus per-device reports.

    Parameters
    ----------
    executor:
        ``serial`` runs the shards in-process one after another;
        ``processes`` runs each shard in a real OS process with the
        population published through shared memory (see
        :mod:`repro.parallel.processes`).
    tracer, metrics:
        The ``repro.obs`` instruments, threaded exactly like the three
        main variants: the run emits a ``window`` span, one ``device``
        span per shard, ``phase:*`` spans, the structure-health counters
        and the ``screen`` candidate funnel.
    device_budget_bytes:
        When given, each device's report carries its Section V-B memory
        plan against that budget, computed for the shard the device
        actually executes (its ``partition_steps`` share, not
        ``duration_s / n_devices``).
    initial_capacity:
        Override of each shard's initial conjunction-map slot count
        (default: the full-run capacity divided across devices).  Used by
        tests to force overflow → regrow → replay inside a shard.
    round_size:
        Steps per fused shard round.  ``None`` derives it from the device
        budget via :func:`~repro.perfmodel.memory.plan_stream_rounds`
        (streaming down to one step per round when a full fused round does
        not fit) or falls back to the shard kernel's default.  Resolved
        here, in the parent, so every executor runs the identical round
        schedule.
    pool:
        A live :class:`repro.parallel.processes.PersistentShardPool` to
        run the shards on (``executor="processes"`` only).  ``None`` spins
        up a one-shot pool for this call.
    """
    executor = resolve_executor(executor)
    if tracer is None:
        tracer = NULL_TRACER
    timers = PhaseTimer(tracer=tracer)
    n = len(population)
    if pool is not None:
        if executor != "processes":
            raise ValueError("pool= requires executor='processes'")
        if pool.n_devices != n_devices:
            raise ValueError(
                f"pool has {pool.n_devices} devices, run asked for {n_devices}"
            )

    window = (
        tracer.span(
            "window", method="grid-multidevice", backend="vectorized",
            objects=n, n_devices=n_devices, executor=executor,
        )
        if tracer.enabled
        else NULL_SPAN
    )
    with window:
        with timers.phase("ALLOC"):
            cell = cell_size_km(
                config.threshold_km, config.seconds_per_sample,
                precision=config.precision,
            )
            ref_cell = cell_size_km(config.threshold_km, config.seconds_per_sample)
            times = config.sample_times()
            shards = partition_steps(len(times), n_devices)
            ids = np.arange(n, dtype=np.int64)
            stream_plan = None
            budget = (
                device_budget_bytes
                if device_budget_bytes is not None
                else config.memory_budget_bytes
            )
            pipelined = config.schedule == "pipelined"
            if round_size is None and budget is not None:
                # Plan against the widest shard; round-robin shards differ
                # by at most one step, so one plan fits every device.
                stream_plan = plan_stream_rounds(
                    n,
                    config.seconds_per_sample,
                    config.duration_s,
                    config.threshold_km,
                    "grid",
                    budget,
                    n_devices=n_devices,
                    device_steps=len(shards[0]),
                    precision=config.precision,
                    queue_rounds=config.pipeline_queue_rounds if pipelined else 0,
                )
                round_size = stream_plan.round_size

        if executor == "processes":
            from repro.parallel.processes import run_shards_in_processes

            parent_span_id = window.span_id if tracer.enabled else -1
            if pool is not None:
                shard_results = pool.run_window(
                    population, config, cell,
                    timers=timers, tracer=tracer, metrics=metrics,
                    initial_capacity=initial_capacity, round_size=round_size,
                    parent_span_id=parent_span_id,
                )
            else:
                shard_results = run_shards_in_processes(
                    population, config, n_devices, cell,
                    timers=timers, tracer=tracer, metrics=metrics,
                    initial_capacity=initial_capacity, round_size=round_size,
                    parent_span_id=parent_span_id,
                )
        else:
            propagator = Propagator(
                population, solver=config.solver, precision=config.precision
            )
            shard_results = []
            for device, steps in enumerate(shards):
                shard_results.append(
                    run_device_shard(
                        propagator, ids, times, steps, cell, config,
                        device, n_devices, timers,
                        tracer=tracer, metrics=metrics,
                        initial_capacity=initial_capacity,
                        round_size=round_size,
                        population=population if pipelined else None,
                        ref_cell=ref_cell if pipelined else None,
                    )
                )

        reports: "list[DeviceReport]" = []
        all_i: "list[np.ndarray]" = []
        all_j: "list[np.ndarray]" = []
        all_steps: "list[np.ndarray]" = []
        all_hit: "list[np.ndarray]" = []
        all_tca: "list[np.ndarray]" = []
        all_pca: "list[np.ndarray]" = []
        for shard_result in shard_results:
            ri, rj, rs, stats = shard_result[:4]
            if len(shard_result) == 5:
                s_hit, s_tca, s_pca = shard_result[4]
                all_hit.append(s_hit)
                all_tca.append(s_tca)
                all_pca.append(s_pca)
            all_i.append(ri)
            all_j.append(rj)
            all_steps.append(rs)
            plan = None
            if device_budget_bytes is not None:
                # Same arithmetic as plan_device_memory, but through the
                # streaming planner so a budget too tight for one fused
                # grid instance degrades (round_size=1) instead of raising.
                plan = plan_stream_rounds(
                    n,
                    config.seconds_per_sample,
                    config.duration_s,
                    config.threshold_km,
                    "grid",
                    device_budget_bytes,
                    n_devices=n_devices,
                    device_steps=len(shards[stats.device]),
                    precision=config.precision,
                ).plan
            reports.append(
                DeviceReport(
                    device=stats.device,
                    steps_processed=stats.steps_processed,
                    records=stats.records,
                    conjunction_map_capacity=stats.conjunction_map_capacity,
                    peak_bytes=stats.peak_bytes,
                    plan=plan,
                    regrows=stats.regrows,
                    rounds=stats.rounds,
                    round_size=stats.round_size,
                )
            )

        with timers.phase("REF"):
            rec_i = np.concatenate(all_i)
            rec_j = np.concatenate(all_j)
            rec_step = np.concatenate(all_steps)
            if pipelined:
                # Each shard already refined its own records through its
                # pipeline consumer (per-lane refinement is independent of
                # chunk composition, so shard-local chunking is bit-safe).
                # The parent only restores global key order and applies the
                # hit mask — no second refinement pass.
                rec_hit = np.concatenate(all_hit) if all_hit else np.empty(0, bool)
                rec_tca = np.concatenate(all_tca) if all_tca else np.empty(0)
                rec_pca = np.concatenate(all_pca) if all_pca else np.empty(0)
                if len(rec_i):
                    order = np.argsort(pack_pair_key(rec_i, rec_j, rec_step))
                    rec_i, rec_j, rec_step = (
                        rec_i[order], rec_j[order], rec_step[order]
                    )
                    rec_hit = rec_hit[order]
                    rec_tca, rec_pca = rec_tca[order], rec_pca[order]
                i = rec_i[rec_hit]
                j = rec_j[rec_hit]
                tca = rec_tca[rec_hit]
                pca = rec_pca[rec_hit]
                raw_hits = len(i)
                i, j, tca, pca = merge_conjunctions(
                    i, j, tca, pca, config.tca_merge_tol_s
                )
            else:
                if len(rec_i):
                    # Restore the global conjunction-map key order: each
                    # shard is key-sorted but the shards interleave
                    # round-robin, and refinement must see the identical
                    # record ordering (hence identical REF chunking) as the
                    # single-device run for the merged result to be
                    # bit-identical.
                    order = np.argsort(pack_pair_key(rec_i, rec_j, rec_step))
                    rec_i, rec_j, rec_step = (
                        rec_i[order], rec_j[order], rec_step[order]
                    )
                centers = times[rec_step]
                radii = interval_radii(population, rec_i, rec_j, ref_cell)
                i, j, tca, pca = refine_records(
                    population, rec_i, rec_j, centers, radii, config,
                    "vectorized", telemetry=timers.ref,
                )
                raw_hits = len(i)
                i, j, tca, pca = merge_conjunctions(
                    i, j, tca, pca, config.tca_merge_tol_s
                )

    if metrics is not None:
        metrics.counter(f"screen.precision_{config.precision}").add(1)
        funnel = metrics.funnel("screen")
        funnel.record("emit", metrics.counter("cd.pairs_emitted").value, len(rec_i))
        funnel.record("refine", len(rec_i), raw_hits)
        funnel.record("merge", raw_hits, len(i))

    result = ScreeningResult(
        method="grid-multidevice",
        backend="vectorized",
        i=i,
        j=j,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=len(rec_i),
        timers=timers,
        metrics=metrics,
        extra={
            "n_devices": n_devices,
            "executor": executor,
            "schedule": config.schedule,
            "round_size": round_size,
            "stream_plan": stream_plan,
            "cell_size_km": cell,
            "ref_cell_size_km": ref_cell,
            "precision": config.precision,
            "n_steps": len(times),
            "ref_telemetry": timers.ref.as_dict(),
        },
    )
    return result, reports
