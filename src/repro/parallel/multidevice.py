"""Multi-device orchestration: the paper's "use multiple GPUs" future work.

Section VI: "memory usage is the current limiting factor - using multiple
GPUs would solve this problem to some degree."  This module implements
that extension over the library's virtual-device model: the sampling steps
of a screening run are partitioned round-robin across ``n_devices``, each
device runs the grid candidate collection inside its own memory budget
(its own grids and conjunction map), and the per-device record sets merge
before the shared refinement stage.

Two executors run the device shards (DESIGN.md §8):

* ``serial`` — the shards run one after another in this process, the
  reference semantics (and the honest single-host baseline);
* ``processes`` — each shard runs in a real OS process
  (:mod:`repro.parallel.processes`): the population's element arrays are
  published once through shared memory, workers return compact record
  arrays, and their phase timers / metrics / trace spans merge back with
  the order-insensitive combiners.

Because sampling steps are embarrassingly parallel (each step has its own
grid; Section V-E) and the merged records are re-sorted into the global
conjunction-map key order before refinement, the result is bit-identical
to the single-device run *on every executor*, which the test suite
asserts.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.gridbased import _regrow, refine_records
from repro.detection.pca_tca import interval_radii, merge_conjunctions
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.obs.collect import observe_coherence, observe_conjmap, observe_grid
from repro.obs.tracer import NULL_SPAN, NULL_TRACER
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.perfmodel.memory import (
    MemoryPlan,
    coherence_budget_bytes,
    device_conjunction_capacity,
    grid_instance_bytes,
    plan_device_memory,
)
from repro.spatial.conjmap import ConjunctionMap, ConjunctionMapFullError, pack_pair_key
from repro.spatial.grid import cell_size_km
from repro.spatial.vectorgrid import CoherentPairEmitter, SortedGrid

#: The recognised shard executors.
EXECUTORS = ("serial", "processes")


def resolve_executor(name: str) -> str:
    """Validate and normalise an executor name."""
    if name not in EXECUTORS:
        raise ValueError(f"unknown executor {name!r}; choose from {EXECUTORS}")
    return name


@dataclass(frozen=True)
class DeviceReport:
    """Per-virtual-device accounting of one multi-device run."""

    device: int
    steps_processed: int
    records: int
    conjunction_map_capacity: int
    peak_bytes: int
    plan: "MemoryPlan | None"
    #: Conjunction-map overflow → regrow → replay cycles this shard hit.
    regrows: int = 0


@dataclass(frozen=True)
class ShardStats:
    """What one device shard's collection loop reports back."""

    device: int
    steps_processed: int
    records: int
    conjunction_map_capacity: int
    peak_bytes: int
    regrows: int


def partition_steps(n_steps: int, n_devices: int) -> "list[np.ndarray]":
    """Round-robin step assignment: device d gets steps d, d+D, d+2D, ...

    Round-robin (rather than contiguous blocks) balances the load when
    conjunction density drifts over the screening span.
    """
    if n_devices <= 0:
        raise ValueError(f"n_devices must be positive, got {n_devices}")
    return [np.arange(d, n_steps, n_devices, dtype=np.int64) for d in range(n_devices)]


def run_device_shard(
    propagator: Propagator,
    ids: np.ndarray,
    times: np.ndarray,
    steps: np.ndarray,
    cell: float,
    config: ScreeningConfig,
    device: int,
    n_devices: int,
    timers: PhaseTimer,
    tracer=NULL_TRACER,
    metrics=None,
    initial_capacity: "int | None" = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, ShardStats]":
    """One device's candidate collection over its step shard.

    The per-shard kernel shared by both executors: the ``serial`` executor
    calls it inline, the ``processes`` executor calls it inside each
    worker.  Emits a ``device`` span (wrapping the shard's ``phase:INS`` /
    ``phase:CD`` spans) when a real tracer is attached, feeds ``metrics``
    with the grid / conjunction-map health counters, and on conjunction-map
    overflow regrows the map and replays the interrupted step — the replay
    is idempotent because :class:`ConjunctionMap` deduplicates records.

    Returns the shard's deduplicated ``(i, j, step)`` record arrays (step
    indices are *global*) plus its :class:`ShardStats`.
    """
    n = len(ids)
    if initial_capacity is None:
        initial_capacity = device_conjunction_capacity(
            n, config.seconds_per_sample, config.duration_s, config.threshold_km,
            "grid", n_devices,
        )
    conj = ConjunctionMap(initial_capacity)
    grid_bytes = grid_instance_bytes(n, config.precision)
    peak = 0
    regrows = 0
    # Each shard owns a private coherence emitter, created here so both
    # executors (inline and worker-process) get a fresh cache per shard:
    # the round-robin shard sees every D-th step, and diffing across a
    # shard boundary would compare cells D steps apart.  Under heavy
    # striding the emitter's churn guard falls back to full emission.
    emitter = (
        CoherentPairEmitter(n, budget_bytes=coherence_budget_bytes(n))
        if config.use_coherence
        else None
    )
    span = (
        tracer.span("device", device=device, n_steps=len(steps))
        if tracer.enabled
        else NULL_SPAN
    )
    with span:
        for k in range(len(steps)):
            step = int(steps[k])
            with timers.phase("INS"):
                positions = propagator.positions(float(times[step]))
                grid = SortedGrid(cell)
                grid.build(ids, positions)
            with timers.phase("CD"):
                if emitter is not None:
                    ci, cj, _ = emitter.round_pairs(grid)
                else:
                    ci, cj = grid.candidate_pairs()
                # Insert-only replay: the emitted arrays survive the regrow,
                # so overflow never re-propagates or rebuilds the grid.
                while True:
                    try:
                        conj.insert_batch(ci, cj, step)
                        break
                    except ConjunctionMapFullError:
                        conj = _regrow(conj, incoming=len(ci), metrics=metrics)
                        regrows += 1
            if metrics is not None:
                metrics.counter("cd.pairs_emitted").add(len(ci))
                metrics.counter("cd.rounds").add(1)
                observe_grid(metrics, grid, precision=config.precision)
            peak = max(peak, conj.memory_bytes + grid_bytes)
    if metrics is not None:
        observe_conjmap(metrics, conj)
        if emitter is not None:
            observe_coherence(metrics, emitter.stats)
    ri, rj, rs = conj.records()
    stats = ShardStats(
        device=device,
        steps_processed=len(steps),
        records=len(ri),
        conjunction_map_capacity=conj.capacity,
        peak_bytes=peak,
        regrows=regrows,
    )
    return ri, rj, rs, stats


def screen_grid_multidevice(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    n_devices: int,
    device_budget_bytes: "int | None" = None,
    executor: str = "serial",
    tracer=None,
    metrics=None,
    initial_capacity: "int | None" = None,
) -> "tuple[ScreeningResult, list[DeviceReport]]":
    """Grid-based screening with steps sharded over virtual devices.

    Returns the merged :class:`ScreeningResult` — bit-identical to a
    single-device run and across executors — plus per-device reports.

    Parameters
    ----------
    executor:
        ``serial`` runs the shards in-process one after another;
        ``processes`` runs each shard in a real OS process with the
        population published through shared memory (see
        :mod:`repro.parallel.processes`).
    tracer, metrics:
        The ``repro.obs`` instruments, threaded exactly like the three
        main variants: the run emits a ``window`` span, one ``device``
        span per shard, ``phase:*`` spans, the structure-health counters
        and the ``screen`` candidate funnel.
    device_budget_bytes:
        When given, each device's report carries its Section V-B memory
        plan against that budget, computed for the shard the device
        actually executes (its ``partition_steps`` share, not
        ``duration_s / n_devices``).
    initial_capacity:
        Override of each shard's initial conjunction-map slot count
        (default: the full-run capacity divided across devices).  Used by
        tests to force overflow → regrow → replay inside a shard.
    """
    executor = resolve_executor(executor)
    if tracer is None:
        tracer = NULL_TRACER
    timers = PhaseTimer(tracer=tracer)
    n = len(population)

    window = (
        tracer.span(
            "window", method="grid-multidevice", backend="vectorized",
            objects=n, n_devices=n_devices, executor=executor,
        )
        if tracer.enabled
        else NULL_SPAN
    )
    with window:
        with timers.phase("ALLOC"):
            cell = cell_size_km(
                config.threshold_km, config.seconds_per_sample,
                precision=config.precision,
            )
            ref_cell = cell_size_km(config.threshold_km, config.seconds_per_sample)
            times = config.sample_times()
            shards = partition_steps(len(times), n_devices)
            ids = np.arange(n, dtype=np.int64)

        if executor == "processes":
            from repro.parallel.processes import run_shards_in_processes

            shard_results = run_shards_in_processes(
                population, config, n_devices, cell,
                timers=timers, tracer=tracer, metrics=metrics,
                initial_capacity=initial_capacity,
                parent_span_id=window.span_id if tracer.enabled else -1,
            )
        else:
            propagator = Propagator(
                population, solver=config.solver, precision=config.precision
            )
            shard_results = []
            for device, steps in enumerate(shards):
                shard_results.append(
                    run_device_shard(
                        propagator, ids, times, steps, cell, config,
                        device, n_devices, timers,
                        tracer=tracer, metrics=metrics,
                        initial_capacity=initial_capacity,
                    )
                )

        reports: "list[DeviceReport]" = []
        all_i: "list[np.ndarray]" = []
        all_j: "list[np.ndarray]" = []
        all_steps: "list[np.ndarray]" = []
        for ri, rj, rs, stats in shard_results:
            all_i.append(ri)
            all_j.append(rj)
            all_steps.append(rs)
            plan = None
            if device_budget_bytes is not None:
                plan = plan_device_memory(
                    n,
                    config.seconds_per_sample,
                    config.duration_s,
                    config.threshold_km,
                    "grid",
                    device_budget_bytes,
                    n_devices=n_devices,
                    device_steps=len(shards[stats.device]),
                    precision=config.precision,
                )
            reports.append(
                DeviceReport(
                    device=stats.device,
                    steps_processed=stats.steps_processed,
                    records=stats.records,
                    conjunction_map_capacity=stats.conjunction_map_capacity,
                    peak_bytes=stats.peak_bytes,
                    plan=plan,
                    regrows=stats.regrows,
                )
            )

        with timers.phase("REF"):
            rec_i = np.concatenate(all_i)
            rec_j = np.concatenate(all_j)
            rec_step = np.concatenate(all_steps)
            if len(rec_i):
                # Restore the global conjunction-map key order: each shard
                # is key-sorted but the shards interleave round-robin, and
                # refinement must see the identical record ordering (hence
                # identical REF chunking) as the single-device run for the
                # merged result to be bit-identical.
                order = np.argsort(pack_pair_key(rec_i, rec_j, rec_step))
                rec_i, rec_j, rec_step = rec_i[order], rec_j[order], rec_step[order]
            centers = times[rec_step]
            radii = interval_radii(population, rec_i, rec_j, ref_cell)
            i, j, tca, pca = refine_records(
                population, rec_i, rec_j, centers, radii, config, "vectorized",
                telemetry=timers.ref,
            )
            raw_hits = len(i)
            i, j, tca, pca = merge_conjunctions(i, j, tca, pca, config.tca_merge_tol_s)

    if metrics is not None:
        metrics.counter(f"screen.precision_{config.precision}").add(1)
        funnel = metrics.funnel("screen")
        funnel.record("emit", metrics.counter("cd.pairs_emitted").value, len(rec_i))
        funnel.record("refine", len(rec_i), raw_hits)
        funnel.record("merge", raw_hits, len(i))

    result = ScreeningResult(
        method="grid-multidevice",
        backend="vectorized",
        i=i,
        j=j,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=len(rec_i),
        timers=timers,
        metrics=metrics,
        extra={
            "n_devices": n_devices,
            "executor": executor,
            "cell_size_km": cell,
            "ref_cell_size_km": ref_cell,
            "precision": config.precision,
            "n_steps": len(times),
            "ref_telemetry": timers.ref.as_dict(),
        },
    )
    return result, reports
