"""Execution backends and phase instrumentation.

The paper prefers data parallelism over functional parallelism
(Section V-E): on the GPU one thread per (satellite, time) tuple, on the
CPU one thread per chunk of tuples.  This subpackage provides the three
execution backends used throughout the detection variants plus the phase
timers behind the relative-time-consumption evaluation (Section V-C1).
"""
from repro.parallel.backend import (
    BACKENDS,
    PhaseTimer,
    chunk_ranges,
    parallel_for,
    resolve_backend,
)

#: Multidevice names re-exported lazily (PEP 562): ``multidevice`` imports
#: the detection pipeline, which imports ``parallel.backend`` — an eager
#: re-export here would close that cycle during package init.
_MULTIDEVICE_EXPORTS = (
    "EXECUTORS",
    "DeviceReport",
    "partition_steps",
    "resolve_executor",
    "screen_grid_multidevice",
)


def __getattr__(name: str):
    if name in _MULTIDEVICE_EXPORTS:
        from repro.parallel import multidevice

        return getattr(multidevice, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BACKENDS",
    "EXECUTORS",
    "DeviceReport",
    "PhaseTimer",
    "chunk_ranges",
    "parallel_for",
    "partition_steps",
    "resolve_backend",
    "resolve_executor",
    "screen_grid_multidevice",
]
