"""Execution backends and phase instrumentation.

The paper prefers data parallelism over functional parallelism
(Section V-E): on the GPU one thread per (satellite, time) tuple, on the
CPU one thread per chunk of tuples.  This subpackage provides the three
execution backends used throughout the detection variants plus the phase
timers behind the relative-time-consumption evaluation (Section V-C1).
"""
from repro.parallel.backend import (
    BACKENDS,
    PhaseTimer,
    chunk_ranges,
    parallel_for,
    resolve_backend,
)

__all__ = ["BACKENDS", "PhaseTimer", "chunk_ranges", "parallel_for", "resolve_backend"]
