"""Result interchange: CSV, JSON and CDM-style conjunction reports.

Screening results feed downstream conjunction-assessment processes
(Section III), which consume machine-readable summaries.  This module
provides:

* :func:`write_csv` / :func:`read_csv` — flat per-conjunction rows;
* :func:`to_json` / :func:`from_json` — the full result including phase
  timings and run metadata;
* :func:`format_cdm` — a minimal human-readable record per conjunction in
  the spirit of the CCSDS Conjunction Data Message (nominal fields only;
  no covariance propagation).
"""
from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.analysis.poc import collision_probability
from repro.detection.types import ScreeningResult
from repro.parallel.backend import PhaseTimer

_CSV_HEADER = "object_i,object_j,tca_s,pca_km"


def write_csv(result: ScreeningResult, path: "str | Path") -> int:
    """Write one row per conjunction; returns the row count."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(_CSV_HEADER + "\n")
        for c in result.conjunctions():
            fh.write(f"{c.i},{c.j},{c.tca_s:.6f},{c.pca_km:.9f}\n")
    return result.n_conjunctions


def read_csv(path: "str | Path") -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Read a conjunction CSV back into ``(i, j, tca_s, pca_km)`` arrays."""
    path = Path(path)
    lines = path.read_text(encoding="utf-8").strip().splitlines()
    if not lines or lines[0] != _CSV_HEADER:
        raise ValueError(f"{path} is not a conjunction CSV (bad header)")
    rows = [line.split(",") for line in lines[1:]]
    if not rows:
        e = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return e, e.copy(), f, f.copy()
    arr = np.array(rows, dtype=np.float64)
    return (
        arr[:, 0].astype(np.int64),
        arr[:, 1].astype(np.int64),
        arr[:, 2],
        arr[:, 3],
    )


def to_json(result: ScreeningResult) -> str:
    """Serialise a result (conjunctions + metadata + timings) to JSON."""
    payload = {
        "method": result.method,
        "backend": result.backend,
        "candidates_refined": result.candidates_refined,
        "phase_seconds": result.timers.totals,
        "filter_stats": result.filter_stats,
        "conjunctions": [
            {"i": c.i, "j": c.j, "tca_s": c.tca_s, "pca_km": c.pca_km}
            for c in result.conjunctions()
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def from_json(text: str) -> ScreeningResult:
    """Rebuild a :class:`ScreeningResult` from :func:`to_json` output.

    The ``extra`` metadata is not round-tripped (it may hold arbitrary
    objects like memory plans); everything the accuracy comparisons need
    is.
    """
    payload = json.loads(text)
    conjs = payload["conjunctions"]
    timers = PhaseTimer()
    for name, secs in payload.get("phase_seconds", {}).items():
        timers.add(name, float(secs))
    return ScreeningResult(
        method=payload["method"],
        backend=payload["backend"],
        i=np.array([c["i"] for c in conjs], dtype=np.int64),
        j=np.array([c["j"] for c in conjs], dtype=np.int64),
        tca_s=np.array([c["tca_s"] for c in conjs], dtype=np.float64),
        pca_km=np.array([c["pca_km"] for c in conjs], dtype=np.float64),
        candidates_refined=int(payload["candidates_refined"]),
        timers=timers,
        filter_stats=payload.get("filter_stats", {}),
    )


def format_cdm(
    result: ScreeningResult,
    sigma_km: float = 0.5,
    hard_body_radius_km: float = 0.02,
    originator: str = "REPRO-SCREENING",
) -> str:
    """Render each conjunction as a minimal CDM-style text record."""
    blocks = []
    for k, c in enumerate(result.conjunctions()):
        poc = collision_probability(c.pca_km, sigma_km, hard_body_radius_km)
        blocks.append(
            "\n".join(
                [
                    f"CDM_ID              = {originator}-{k:06d}",
                    f"ORIGINATOR          = {originator}",
                    f"OBJECT1_DESIGNATOR  = {c.i}",
                    f"OBJECT2_DESIGNATOR  = {c.j}",
                    f"TCA_EPOCH_OFFSET_S  = {c.tca_s:.3f}",
                    f"MISS_DISTANCE_KM    = {c.pca_km:.6f}",
                    f"COLLISION_PROBABILITY = {poc:.3e}",
                    f"SCREENING_METHOD    = {result.method}/{result.backend}",
                ]
            )
        )
    return ("\n\n").join(blocks) + ("\n" if blocks else "")
