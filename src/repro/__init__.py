"""repro — satellite conjunction screening with lock-free spatial grids.

A from-scratch reproduction of *"Satellite Collision Detection using
Spatial Data Structures"* (Hellwig, Czappa, Michel, Bertrand, Wolf;
IPDPS-W 2023): grid-based and hybrid conjunction-detection variants built
on non-blocking atomic hash maps, against the classical all-on-all orbital
filter-chain baseline.

Quickstart::

    from repro import generate_population, screen, ScreeningConfig

    pop = generate_population(2000, seed=42)
    cfg = ScreeningConfig(threshold_km=2.0, duration_s=1800.0)
    result = screen(pop, cfg, method="hybrid", backend="vectorized")
    print(result.summary())
    for c in result.conjunctions()[:5]:
        print(f"objects {c.i}-{c.j}: PCA {c.pca_km:.3f} km at t={c.tca_s:.1f} s")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""
from repro.detection.api import screen
from repro.detection.types import Conjunction, ScreeningConfig, ScreeningResult
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.population.generator import generate_population
from repro.population.scenarios import fragmentation_cloud, megaconstellation

__version__ = "1.0.0"

__all__ = [
    "Conjunction",
    "KeplerElements",
    "OrbitalElementsArray",
    "ScreeningConfig",
    "ScreeningResult",
    "__version__",
    "fragmentation_cloud",
    "generate_population",
    "megaconstellation",
    "screen",
]
