"""Physical and astrodynamic constants used throughout the library.

All lengths are kilometres, all times seconds, all angles radians, in a
geocentric inertial (ECI) frame, matching the conventions of the paper.
"""
from __future__ import annotations

import math

#: Standard gravitational parameter of Earth, km^3 / s^2 (WGS-84 value).
MU_EARTH = 398600.4418

#: Mean equatorial radius of Earth, km.
R_EARTH = 6378.1363

#: Typical orbital speed of a satellite in LEO, km/s.  Used by Eq. (1) of the
#: paper to size grid cells so that no satellite can skip a cell between two
#: sampling steps.
LEO_SPEED = 7.8

#: Radius of the geostationary orbit, km (a for a 86164 s sidereal period).
GEO_RADIUS = 42164.0

#: Side length of the cubic simulation volume, km.  The paper requires at
#: least (85,000 km)^3 to cover everything up to GEO; the grid is centred on
#: the Earth so coordinates span [-SIM_HALF_EXTENT, +SIM_HALF_EXTENT].
SIM_EXTENT = 85000.0
SIM_HALF_EXTENT = SIM_EXTENT / 2.0

#: Sentinel marking an empty hash-map slot: the maximum of a 64-bit value
#: (Section IV-A1 of the paper).
EMPTY_KEY = (1 << 64) - 1

#: Sentinel marking the end of a per-cell singly linked list ("null" next
#: pointer in Fig. 6).  Index-based because entries live in a pre-allocated
#: pool rather than on the heap.
NULL_INDEX = -1

TWO_PI = 2.0 * math.pi


def mean_motion(semi_major_axis_km: float) -> float:
    """Mean motion ``n = sqrt(mu / a^3)`` in rad/s for a two-body orbit."""
    if semi_major_axis_km <= 0.0:
        raise ValueError(f"semi-major axis must be positive, got {semi_major_axis_km}")
    return math.sqrt(MU_EARTH / semi_major_axis_km**3)


def orbital_period(semi_major_axis_km: float) -> float:
    """Keplerian orbital period ``T = 2*pi / n`` in seconds."""
    return TWO_PI / mean_motion(semi_major_axis_km)
