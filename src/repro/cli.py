"""Command-line interface: ``repro-screen`` / ``python -m repro.cli``.

Subcommands
-----------
``screen``    generate (or load) a population and run a screening method
``generate``  write a synthetic population as a TLE catalog
``plan``      print the Section V-B memory plan for a configuration
``analyze``   trace analytics on an exported trace (overlap, critical path)
``ledger``    append to / regression-check the BENCH_ledger.json trajectory
"""
from __future__ import annotations

import argparse
import sys
import time

from repro.detection.api import METHODS, screen
from repro.detection.types import ScreeningConfig
from repro.parallel.backend import BACKENDS
from repro.parallel.multidevice import EXECUTORS
from repro.perfmodel.memory import plan_memory
from repro.population.generator import generate_population
from repro.population.tle import format_tle, parse_tle_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-screen",
        description="Satellite conjunction screening with spatial data structures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_screen = sub.add_parser("screen", help="run a conjunction screening")
    p_screen.add_argument("--objects", type=int, default=2000, help="population size")
    p_screen.add_argument("--seed", type=int, default=42, help="population RNG seed")
    p_screen.add_argument("--catalog", type=str, help="TLE file to screen instead of a synthetic population")
    p_screen.add_argument("--method", choices=METHODS, default="hybrid")
    p_screen.add_argument("--backend", choices=BACKENDS, default="vectorized")
    p_screen.add_argument("--threshold-km", type=float, default=2.0)
    p_screen.add_argument("--duration-s", type=float, default=3600.0)
    p_screen.add_argument("--sps", type=float, default=1.0, help="seconds per sample (grid variant)")
    p_screen.add_argument("--hybrid-sps", type=float, default=9.0, help="seconds per sample (hybrid variant)")
    p_screen.add_argument("--threads", type=int, help="thread count for the threads backend")
    p_screen.add_argument("--max-print", type=int, default=20, help="conjunctions to list")
    p_screen.add_argument("--output", type=str, help="write the conjunctions as CSV")
    p_screen.add_argument("--cdm", type=str, help="write CDM-style records to this file")
    p_screen.add_argument("--report", action="store_true",
                          help="print the full analyst report (histograms, timeline)")
    p_screen.add_argument("--grid-impl", choices=("sorted", "hashmap"), default="sorted",
                          help="vectorized grid implementation")
    p_screen.add_argument("--precision", choices=("fp64", "mixed"), default="fp64",
                          help="arithmetic policy: 'mixed' runs the broad phase "
                               "(propagation, grid keys, candidate emission) in "
                               "float32 with an error-bounded cell pad; refinement "
                               "always stays float64")
    p_screen.add_argument("--schedule", choices=("barrier", "pipelined"), default="barrier",
                          help="phase schedule: 'barrier' runs INS/CD/REF as "
                               "strict global phases; 'pipelined' overlaps the "
                               "INS producer, CD, and a REF consumer thread at "
                               "round granularity (grid/hybrid, vectorized "
                               "backend) with byte-identical results")
    p_screen.add_argument("--no-coherence", action="store_true",
                          help="disable the temporal-coherence pair cache and "
                               "re-emit every candidate pair at every step "
                               "(the paper's original behaviour)")
    p_screen.add_argument("--n-devices", type=int, metavar="D",
                          help="shard the sampling steps over D virtual devices "
                               "(grid variant; Section VI multi-GPU analogue); "
                               "an explicit value wins over REPRO_NUM_PROCS")
    p_screen.add_argument("--device-budget-gb", type=float, metavar="GB",
                          help="per-device memory budget: derives the streamed "
                               "round size from the Section V-B plan (out-of-core "
                               "streaming when a full fused round does not fit)")
    p_screen.add_argument("--executor", choices=EXECUTORS, default="serial",
                          help="how the device shards run (with --n-devices): "
                               "'serial' in-process, 'processes' one OS process per shard")
    p_screen.add_argument("--trace", type=str, metavar="PATH",
                          help="write a Chrome trace (load at ui.perfetto.dev)")
    p_screen.add_argument("--trace-jsonl", type=str, metavar="PATH",
                          help="write the span/metrics event stream as JSONL")
    p_screen.add_argument("--metrics", action="store_true",
                          help="collect and print structure-health metrics and the candidate funnel")
    p_screen.add_argument("--heartbeat", type=float, metavar="N",
                          help="emit a JSONL progress line to stderr every N "
                               "seconds (elapsed, CD rounds, rate, RSS, /dev/shm)")
    p_screen.add_argument("--sample-resources", action="store_true",
                          help="sample RSS / /dev/shm / worker CPU during the run; "
                               "watermarks print after the run and export as "
                               "Perfetto counter tracks with --trace")

    p_gen = sub.add_parser("generate", help="write a synthetic population as TLEs")
    p_gen.add_argument("--objects", type=int, default=2000)
    p_gen.add_argument("--seed", type=int, default=42)
    p_gen.add_argument("--output", type=str, required=True)

    p_plan = sub.add_parser("plan", help="print the V-B memory plan")
    p_plan.add_argument("--objects", type=int, required=True)
    p_plan.add_argument("--budget-gb", type=float, default=24.0)
    p_plan.add_argument("--variant", choices=("grid", "hybrid", "aabb4d"), default="hybrid")
    p_plan.add_argument("--threshold-km", type=float, default=2.0)
    p_plan.add_argument("--duration-s", type=float, default=3600.0)
    p_plan.add_argument("--sps", type=float, default=9.0)
    p_plan.add_argument("--precision", choices=("fp64", "mixed"), default="fp64",
                        help="price the per-grid bytes for this arithmetic policy")

    p_an = sub.add_parser("analyze", help="trace analytics on an exported trace")
    p_an.add_argument("trace", type=str,
                      help="a --trace (Chrome) or --trace-jsonl export")
    p_an.add_argument("--window", type=str, default="window",
                      help="span name bounding the report (default: window)")
    p_an.add_argument("--diff", type=str, metavar="OTHER",
                      help="second trace: attribute the timing difference per span name")
    p_an.add_argument("--check", action="store_true",
                      help="verify the critical-path accounting (busy + idle == wall) "
                           "and exit non-zero on inconsistency")

    p_led = sub.add_parser(
        "ledger", help="append to / regression-check BENCH_ledger.json")
    p_led.add_argument("--results-dir", type=str, default="benchmarks/results",
                       help="directory holding the BENCH_*.json artifacts")
    p_led.add_argument("--ledger", type=str, default=None,
                       help="ledger path (default: <results-dir>/BENCH_ledger.json)")
    p_led.add_argument("--append", action="store_true",
                       help="ingest the artifacts as one new trajectory point")
    p_led.add_argument("--fail-on-regression", action="store_true",
                       help="exit non-zero if the newest entries regress vs the rolling best")
    p_led.add_argument("--rtol", type=float, default=0.5,
                       help="relative tolerance of the regression gate (default 0.5)")
    return parser


def _load_catalog(path: str):
    from repro.orbits.elements import OrbitalElementsArray

    with open(path, "r", encoding="utf-8") as fh:
        records = parse_tle_file(fh.read())
    if not records:
        raise SystemExit(f"no TLE records found in {path}")
    return OrbitalElementsArray.from_elements([el for _, el in records])


def _cmd_screen(args: argparse.Namespace) -> int:
    if args.catalog:
        pop = _load_catalog(args.catalog)
        print(f"loaded {len(pop)} objects from {args.catalog}")
    else:
        pop = generate_population(args.objects, seed=args.seed)
        print(f"generated {len(pop)} synthetic objects (seed {args.seed})")
    config = ScreeningConfig(
        threshold_km=args.threshold_km,
        duration_s=args.duration_s,
        seconds_per_sample=args.sps,
        hybrid_seconds_per_sample=args.hybrid_sps,
        n_threads=args.threads,
        grid_impl=args.grid_impl,
        precision=args.precision,
        use_coherence=not args.no_coherence,
        schedule=args.schedule,
    )
    tracer = None
    metrics = None
    if args.trace or args.trace_jsonl:
        from repro.obs import Tracer

        tracer = Tracer()
    if args.metrics or args.trace or args.trace_jsonl or args.heartbeat or args.sample_resources:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    heartbeat = None
    if args.heartbeat:
        from repro.obs.resources import Heartbeat

        heartbeat = Heartbeat(metrics, interval_s=args.heartbeat).start()
    sampler = None
    if args.sample_resources:
        from repro.obs.resources import ResourceSampler

        sampler = ResourceSampler(
            metrics, tracer=tracer, include_children=True
        ).start()
    reports = None
    start = time.perf_counter()
    n_devices = args.n_devices
    if not n_devices and args.executor != "serial":
        # --n-devices wins; the environment fills in only when the flag is
        # absent, with the same validation REPRO_NUM_THREADS gets.
        from repro.parallel.backend import _env_count

        try:
            n_devices = _env_count("REPRO_NUM_PROCS")
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    if n_devices:
        if args.method != "grid":
            raise SystemExit("--n-devices shards the grid variant; use --method grid")
        from repro.parallel.multidevice import screen_grid_multidevice

        budget = (
            int(args.device_budget_gb * 2**30) if args.device_budget_gb else None
        )
        result, reports = screen_grid_multidevice(
            pop, config, n_devices, executor=args.executor,
            device_budget_bytes=budget,
            tracer=tracer, metrics=metrics,
        )
    elif args.executor != "serial":
        raise SystemExit("--executor requires --n-devices (or set REPRO_NUM_PROCS)")
    else:
        result = screen(
            pop, config, method=args.method, backend=args.backend,
            tracer=tracer, metrics=metrics,
        )
    elapsed = time.perf_counter() - start
    if sampler is not None:
        sampler.stop()
    if heartbeat is not None:
        heartbeat.stop()
    print(result.summary())
    if reports is not None:
        print(f"sharded over {len(reports)} devices ({args.executor} executor):")
        for r in reports:
            print(f"  device {r.device}: {r.steps_processed} steps, {r.records} records, "
                  f"map capacity {r.conjunction_map_capacity}, "
                  f"peak {r.peak_bytes / 2**20:.1f} MiB"
                  + (f", {r.regrows} regrows" if r.regrows else ""))
    print(f"wall time {elapsed:.3f} s; phase breakdown:")
    for name, frac in sorted(
        result.timers.fractions().items(), key=lambda kv: (-kv[1], kv[0])
    ):
        print(f"  {name:>6}: {100.0 * frac:5.1f}%  ({result.timers.totals[name]:.3f} s)")
    if sampler is not None:
        marks = sampler.watermarks()
        print(
            f"resource watermarks: peak RSS {marks['peak_rss_bytes'] / 2**20:.1f} MiB, "
            f"peak /dev/shm {marks['peak_shm_bytes'] / 2**20:.1f} MiB, "
            f"peak worker RSS {marks['peak_child_rss_bytes'] / 2**20:.1f} MiB, "
            f"cpu {marks['cpu_s']:.2f} s over {marks['n_samples']} samples"
        )
    for c in result.conjunctions()[: args.max_print]:
        print(f"  {c.i:>7} - {c.j:<7}  TCA {c.tca_s:10.2f} s   PCA {c.pca_km:7.4f} km")
    remaining = result.n_conjunctions - args.max_print
    if remaining > 0:
        print(f"  ... and {remaining} more")
    if args.output:
        from repro.io import write_csv

        rows = write_csv(result, args.output)
        print(f"wrote {rows} conjunction rows to {args.output}")
    if args.cdm:
        from repro.io import format_cdm

        with open(args.cdm, "w", encoding="utf-8") as fh:
            fh.write(format_cdm(result))
        print(f"wrote CDM records to {args.cdm}")
    if args.trace:
        from repro.obs import write_chrome_trace

        n_spans = write_chrome_trace(tracer, args.trace, metrics)
        print(f"wrote {n_spans} spans to {args.trace} (load at ui.perfetto.dev)")
    if args.trace_jsonl:
        from repro.obs import write_jsonl

        n_lines = write_jsonl(tracer, args.trace_jsonl, metrics)
        print(f"wrote {n_lines} JSONL events to {args.trace_jsonl}")
    if args.metrics:
        from repro.report import metrics_table

        print()
        print(metrics_table(metrics))
    if args.report:
        from repro.report import full_report

        print()
        print(full_report(result, duration_s=args.duration_s))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    pop = generate_population(args.objects, seed=args.seed)
    with open(args.output, "w", encoding="utf-8") as fh:
        for idx in range(len(pop)):
            fh.write(format_tle(idx % 100000, pop[idx], name=f"SYNTH-{idx}") + "\n")
    print(f"wrote {len(pop)} TLE records to {args.output}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = plan_memory(
        n_satellites=args.objects,
        seconds_per_sample=args.sps,
        duration_s=args.duration_s,
        threshold_km=args.threshold_km,
        variant=args.variant,
        budget_bytes=int(args.budget_gb * 2**30),
        precision=args.precision,
    )
    print(f"memory plan for {plan.n_satellites} objects "
          f"({plan.variant} variant, {plan.precision} precision):")
    print(f"  seconds per sample : {plan.requested_seconds_per_sample} -> {plan.seconds_per_sample}"
          + ("  (auto-adjusted)" if plan.was_adjusted else ""))
    print(f"  satellite data     : {plan.satellite_bytes / 2**20:10.2f} MiB")
    print(f"  solver data        : {plan.solver_bytes / 2**20:10.2f} MiB")
    print(f"  conjunction map    : {plan.conjunction_map_bytes / 2**20:10.2f} MiB "
          f"({plan.conjunction_map_slots} slots)")
    if plan.tree_bytes or plan.bitmap_bytes:
        print(f"  4D AABB tree       : {plan.tree_bytes / 2**20:10.2f} MiB")
        print(f"  occupancy bitmap   : {plan.bitmap_bytes / 2**20:10.2f} MiB")
    print(f"  per-grid instance  : {plan.per_grid_bytes / 2**20:10.2f} MiB")
    print(f"  parallel steps (p) : {plan.parallel_steps}")
    print(f"  total samples  (o) : {plan.total_samples}")
    print(f"  rounds       (r_c) : {plan.computation_rounds}")
    print(f"  planned footprint  : {plan.total_bytes / 2**30:10.3f} GiB "
          f"of {plan.budget_bytes / 2**30:.3f} GiB budget")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.obs.analysis import load_records, overlap_report, phase_stats
    from repro.obs.analysis import diff as trace_diff
    from repro.report import critical_path_table, overlap_table

    records = load_records(args.trace)
    if not records:
        raise SystemExit(f"{args.trace}: no span records")
    rep = overlap_report(records, window=args.window)
    print(overlap_table(rep))
    print()
    print(critical_path_table(rep.critical))
    print()
    print("per-phase time (inclusive / exclusive):")
    for stat in phase_stats(records, prefix="phase:").values():
        print(
            f"  {stat.name:>12}  {stat.inclusive_s:8.3f}s / {stat.exclusive_s:8.3f}s "
            f"({stat.count} spans)"
        )
    if args.diff:
        other = load_records(args.diff)
        result = trace_diff(records, other)
        print()
        print(f"diff vs {args.diff} (positive = second run slower):")
        for d in result.deltas[:15]:
            print(
                f"  {d.name:>16}  {d.a_exclusive_s:8.3f}s -> {d.b_exclusive_s:8.3f}s "
                f"({d.delta_s:+.3f}s, x{d.ratio:.2f})"
            )
    if args.check:
        cp = rep.critical
        residual = abs(cp.busy_s + cp.gap_s - cp.wall_s)
        problems = []
        if residual > 1e-6 + 1e-6 * cp.wall_s:
            problems.append(
                f"critical path does not partition the window: busy {cp.busy_s:.6f} "
                f"+ idle {cp.gap_s:.6f} != wall {cp.wall_s:.6f}"
            )
        if rep.tracks and not 0.0 <= rep.parallel_efficiency <= 1.0 + 1e-9:
            problems.append(
                f"parallel efficiency {rep.parallel_efficiency} outside [0, 1]"
            )
        busy_total = sum(rep.concurrency_s)
        if busy_total - rep.wall_s > 1e-6 + 1e-6 * rep.wall_s:
            problems.append(
                f"concurrency profile covers {busy_total:.6f}s > wall {rep.wall_s:.6f}s"
            )
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("checks passed: critical-path accounting and concurrency profile consistent")
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    import os

    from repro.obs.ledger import BenchLedger

    path = args.ledger or os.path.join(args.results_dir, "BENCH_ledger.json")
    ledger = BenchLedger.load_or_create(path)
    if args.append:
        added = ledger.ingest_results_dir(args.results_dir)
        ledger.save(path)
        print(f"appended {len(added)} artifact entries to {path} "
              f"({len(ledger.entries)} total)")
    else:
        print(f"{path}: {len(ledger.entries)} entries")
    regressions = ledger.check_regressions(rtol=args.rtol)
    for reg in regressions:
        print(repr(reg))
    if not regressions:
        print(f"no regressions vs rolling best (rtol {args.rtol:g})")
    if regressions and args.fail_on_regression:
        return 1
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "screen":
        return _cmd_screen(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "ledger":
        return _cmd_ledger(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
