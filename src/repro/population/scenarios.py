"""Scenario builders: mega-constellations and fragmentation clouds.

These feed the domain examples the paper's introduction motivates —
Starlink-scale constellation shells and the debris clouds of catastrophic
breakup events (the Kessler mechanism of Section I).
"""
from __future__ import annotations

import math

import numpy as np

from repro.constants import R_EARTH, TWO_PI
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.state import elements_to_state, state_to_elements
from repro.population.catalog_seed import MAX_APOGEE, MIN_PERIGEE


def megaconstellation(
    n_planes: int,
    sats_per_plane: int,
    altitude_km: float,
    inclination_rad: float,
    phasing: float = 0.0,
    eccentricity: float = 0.0001,
) -> OrbitalElementsArray:
    """A Walker-delta constellation shell.

    ``n_planes`` orbital planes with RAAN spread evenly over 2*pi,
    ``sats_per_plane`` satellites phased evenly along each plane, plus the
    Walker inter-plane phasing offset ``phasing`` (fraction of the
    in-plane spacing applied per plane index).
    """
    if n_planes <= 0 or sats_per_plane <= 0:
        raise ValueError("n_planes and sats_per_plane must be positive")
    a = R_EARTH + altitude_km
    if not MIN_PERIGEE <= a <= MAX_APOGEE:
        raise ValueError(f"altitude {altitude_km} km puts the shell outside the valid volume")
    plane_idx = np.repeat(np.arange(n_planes), sats_per_plane)
    slot_idx = np.tile(np.arange(sats_per_plane), n_planes)
    n = n_planes * sats_per_plane
    raan = plane_idx * TWO_PI / n_planes
    m0 = (
        slot_idx * TWO_PI / sats_per_plane
        + plane_idx * phasing * TWO_PI / (sats_per_plane * n_planes)
    ) % TWO_PI
    return OrbitalElementsArray(
        a=np.full(n, a),
        e=np.full(n, eccentricity),
        i=np.full(n, inclination_rad),
        raan=raan,
        argp=np.zeros(n),
        m0=m0,
    )


def fragmentation_cloud(
    parent: KeplerElements,
    n_fragments: int,
    breakup_anomaly: float = 0.0,
    dv_scale_kms: float = 0.1,
    seed: "int | None" = None,
) -> OrbitalElementsArray:
    """Debris cloud of a catastrophic breakup (simplified NASA model).

    All fragments start at the parent's position at true anomaly
    ``breakup_anomaly`` with the parent's velocity plus an isotropic
    delta-v whose magnitude is log-normal with median ``dv_scale_kms`` —
    the shape of the NASA standard breakup model's velocity distribution.
    Fragments that would re-enter, escape, or leave the simulation volume
    are re-drawn, so the returned population is always valid and exactly
    ``n_fragments`` strong.
    """
    if n_fragments <= 0:
        raise ValueError(f"n_fragments must be positive, got {n_fragments}")
    if dv_scale_kms <= 0.0:
        raise ValueError(f"dv_scale_kms must be positive, got {dv_scale_kms}")
    rng = np.random.default_rng(seed)
    pos, vel = elements_to_state(parent, breakup_anomaly)

    fragments: "list[KeplerElements]" = []
    attempts = 0
    max_attempts = 200 * n_fragments
    while len(fragments) < n_fragments:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not generate a valid cloud: {len(fragments)}/{n_fragments} after "
                f"{attempts} attempts (dv_scale_kms={dv_scale_kms} too violent?)"
            )
        direction = rng.standard_normal(3)
        direction /= np.linalg.norm(direction)
        dv = float(rng.lognormal(mean=math.log(dv_scale_kms), sigma=0.6))
        try:
            elements, _ = state_to_elements(pos, vel + dv * direction)
        except ValueError:
            continue  # hyperbolic / degenerate: redraw
        if elements.perigee < MIN_PERIGEE or elements.apogee > MAX_APOGEE:
            continue
        fragments.append(elements)
    return OrbitalElementsArray.from_elements(fragments)
