"""Bivariate Gaussian kernel density estimation, from scratch.

Used to model the joint distribution of semi-major axis and eccentricity
of the seed catalog (Fig. 9) and to draw new (a, e) samples from it.
Implements the standard product of the data's empirical covariance with
Scott's bandwidth factor, matching what ``scipy.stats.gaussian_kde`` does
(which the test suite uses as the independent oracle).
"""
from __future__ import annotations

import math

import numpy as np


class BivariateKDE:
    """Gaussian KDE of 2-D data with Scott's-rule bandwidth.

    Parameters
    ----------
    data:
        ``(n, 2)`` observations.
    bw_factor:
        Optional multiplier on Scott's factor (``n**(-1/6)`` for 2-D) —
        < 1 sharpens the estimate, > 1 smooths it.
    """

    def __init__(self, data: np.ndarray, bw_factor: float = 1.0) -> None:
        pts = np.asarray(data, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"data must be (n, 2), got shape {pts.shape}")
        if len(pts) < 3:
            raise ValueError("need at least 3 observations for a KDE")
        if bw_factor <= 0.0:
            raise ValueError(f"bw_factor must be positive, got {bw_factor}")
        self.data = pts
        n = len(pts)
        scott = n ** (-1.0 / 6.0) * bw_factor
        cov = np.cov(pts, rowvar=False)
        self.bandwidth_cov = cov * scott**2
        self._chol = np.linalg.cholesky(self.bandwidth_cov)
        self._inv = np.linalg.inv(self.bandwidth_cov)
        det = float(np.linalg.det(self.bandwidth_cov))
        self._norm = 1.0 / (2.0 * math.pi * math.sqrt(det) * n)

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Density at each query point; ``points`` is ``(m, 2)``."""
        q = np.atleast_2d(np.asarray(points, dtype=np.float64))
        diff = q[:, None, :] - self.data[None, :, :]  # (m, n, 2)
        maha = np.einsum("mni,ij,mnj->mn", diff, self._inv, diff)
        return self._norm * np.exp(-0.5 * maha).sum(axis=1)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` samples: resample the data, add kernel noise."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        idx = rng.integers(0, len(self.data), size=size)
        noise = rng.standard_normal((size, 2)) @ self._chol.T
        return self.data[idx] + noise

    def grid_density(
        self,
        x_range: "tuple[float, float]",
        y_range: "tuple[float, float]",
        resolution: int = 64,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Density on a regular grid — the data behind a Fig. 9-style plot.

        Returns ``(x_axis, y_axis, density)`` with density shaped
        ``(resolution, resolution)`` indexed ``[y, x]``.
        """
        xs = np.linspace(*x_range, resolution)
        ys = np.linspace(*y_range, resolution)
        gx, gy = np.meshgrid(xs, ys)
        dens = self.evaluate(np.column_stack([gx.ravel(), gy.ravel()]))
        return xs, ys, dens.reshape(resolution, resolution)

    def mode_estimate(self, resolution: int = 96) -> "tuple[float, float]":
        """Approximate location of the global density maximum."""
        x_min, y_min = self.data.min(axis=0)
        x_max, y_max = self.data.max(axis=0)
        xs, ys, dens = self.grid_density((x_min, x_max), (y_min, y_max), resolution)
        iy, ix = np.unravel_index(int(np.argmax(dens)), dens.shape)
        return float(xs[ix]), float(ys[iy])
