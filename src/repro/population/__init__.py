"""Population generation: synthetic catalogs per Section V-A.

The paper derives its test populations from the 2021 active-satellite
catalog through a bivariate kernel density estimate of (semi-major axis,
eccentricity), with all remaining Kepler elements uniform (Table II).
This subpackage rebuilds that pipeline:

* :mod:`repro.population.kde` — bivariate Gaussian KDE from scratch;
* :mod:`repro.population.catalog_seed` — a deterministic synthetic seed
  whose (a, e) structure mimics Fig. 9 (substitute for the Celestrak
  catalog; see DESIGN.md);
* :mod:`repro.population.generator` — the Table II population generator;
* :mod:`repro.population.tle` — minimal TLE I/O for dropping in a real
  catalog;
* :mod:`repro.population.scenarios` — mega-constellation shells and
  fragmentation clouds for the domain examples.
"""
from repro.population.catalog_seed import seed_catalog
from repro.population.generator import generate_population
from repro.population.kde import BivariateKDE
from repro.population.scenarios import fragmentation_cloud, megaconstellation
from repro.population.tle import format_tle, parse_tle

__all__ = [
    "BivariateKDE",
    "format_tle",
    "fragmentation_cloud",
    "generate_population",
    "megaconstellation",
    "parse_tle",
    "seed_catalog",
]
