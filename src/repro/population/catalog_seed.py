"""Deterministic synthetic seed catalog (the Celestrak substitute).

The paper seeds its KDE with the (a, e) pairs of the ~4000 active
satellites of early 2021.  Offline, we rebuild the same *structure* —
the clusters visible in Fig. 9 — from published population statistics:

* the dominant LEO cluster near a = 7000 km, e = 0.0025 (Starlink & co.),
* a secondary LEO band (Earth observation / SSO, 7150-7400 km),
* upper LEO constellations near 7550 km (OneWeb-like),
* the GNSS/MEO shell near 26560 km,
* the GEO ring at 42164 km with tiny eccentricity,
* a sparse GTO/HEO tail with large eccentricity.

The seed is generated from a fixed RNG seed, so it is bit-reproducible; a
real ``active.txt`` can replace it via :func:`repro.population.tle.parse_tle`.
"""
from __future__ import annotations

import numpy as np

from repro.constants import R_EARTH, SIM_HALF_EXTENT

#: Minimum perigee radius of a generated orbit: 200 km altitude, matching
#: the paper's LEO lower bound (Fig. 1 uses h_p >= 200 km).
MIN_PERIGEE = R_EARTH + 200.0

#: Maximum apogee radius: keep everything inside the simulation cube with
#: margin (the paper's volume reaches just past GEO).
MAX_APOGEE = SIM_HALF_EXTENT - 200.0

#: (weight, a_mean_km, a_std_km, e_mean, e_std) of each catalog cluster.
_CLUSTERS: "tuple[tuple[float, float, float, float, float], ...]" = (
    (0.52, 6925.0, 40.0, 0.0025, 0.0012),   # Starlink-dominated low LEO
    (0.22, 7250.0, 90.0, 0.0060, 0.0030),   # SSO Earth-observation band
    (0.10, 7560.0, 35.0, 0.0020, 0.0010),   # upper-LEO constellations
    (0.06, 26560.0, 120.0, 0.0050, 0.0030),  # GNSS / MEO
    (0.07, 42164.0, 30.0, 0.0004, 0.0003),  # GEO ring
    (0.03, 24400.0, 900.0, 0.6500, 0.0500),  # GTO / HEO tail
)

#: Size of the seed catalog (about the 2021 active-satellite count scale).
SEED_SIZE = 800

_SEED_RNG = 20210408  # the catalog snapshot date used by the paper


def seed_catalog(size: int = SEED_SIZE, rng_seed: int = _SEED_RNG) -> np.ndarray:
    """The synthetic (a, e) seed catalog, shape ``(size, 2)``.

    Deterministic for fixed arguments.  Every row satisfies the perigee /
    apogee bounds, so populations drawn from its KDE stay inside the
    simulation volume after clipping.
    """
    if size < 10:
        raise ValueError(f"seed catalog needs at least 10 entries, got {size}")
    rng = np.random.default_rng(rng_seed)
    weights = np.array([c[0] for c in _CLUSTERS])
    weights = weights / weights.sum()
    counts = rng.multinomial(size, weights)
    rows = []
    for (_, a_mu, a_sd, e_mu, e_sd), count in zip(_CLUSTERS, counts):
        a = rng.normal(a_mu, a_sd, size=count)
        e = np.abs(rng.normal(e_mu, e_sd, size=count))
        rows.append(np.column_stack([a, e]))
    catalog = np.concatenate(rows)
    rng.shuffle(catalog)
    return clip_to_valid(catalog)


def clip_to_valid(ae: np.ndarray) -> np.ndarray:
    """Force (a, e) rows into the physically valid, in-volume region.

    Eccentricity is clipped to [0, 0.85]; the semi-major axis is then
    clipped so perigee >= :data:`MIN_PERIGEE` and apogee <=
    :data:`MAX_APOGEE`.
    """
    out = np.array(ae, dtype=np.float64, copy=True)
    out[:, 1] = np.clip(out[:, 1], 0.0, 0.85)
    a_min = MIN_PERIGEE / (1.0 - out[:, 1])
    a_max = MAX_APOGEE / (1.0 + out[:, 1])
    # A pathological e could make a_min > a_max; shrink e first in that case.
    bad = a_min > a_max
    if bad.any():
        e_limit = (MAX_APOGEE - MIN_PERIGEE) / (MAX_APOGEE + MIN_PERIGEE)
        out[bad, 1] = np.minimum(out[bad, 1], e_limit * 0.99)
        a_min = MIN_PERIGEE / (1.0 - out[:, 1])
        a_max = MAX_APOGEE / (1.0 + out[:, 1])
    out[:, 0] = np.clip(out[:, 0], a_min, a_max)
    return out
