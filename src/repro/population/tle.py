"""Minimal two-line element (TLE) parsing and formatting.

Lets a real catalog snapshot (e.g. Celestrak's ``active.txt``) replace the
synthetic seed: parse each record into :class:`KeplerElements` (semi-major
axis recovered from the mean motion), or format elements back out for
interchange.  Only the fields the screening pipeline needs are handled; no
SGP4 — propagation stays two-body, as in the rest of the library.
"""
from __future__ import annotations

import math

from repro.constants import MU_EARTH, TWO_PI
from repro.orbits.elements import KeplerElements

#: Seconds per day, for mean-motion (rev/day) conversion.
_DAY_S = 86400.0


class TLEError(ValueError):
    """Raised for malformed TLE records."""


def _checksum(line: str) -> int:
    """TLE modulo-10 checksum: digits count as themselves, '-' as 1."""
    total = 0
    for ch in line[:68]:
        if ch.isdigit():
            total += int(ch)
        elif ch == "-":
            total += 1
    return total % 10


def parse_tle(line1: str, line2: str, validate_checksum: bool = True) -> "tuple[int, KeplerElements]":
    """Parse a TLE record; returns ``(norad_id, elements)``.

    Angles are converted to radians and the semi-major axis is derived
    from the mean motion via ``a = (mu / n^2)^(1/3)``.
    """
    line1 = line1.rstrip("\n")
    line2 = line2.rstrip("\n")
    if len(line1) < 69 or len(line2) < 69:
        raise TLEError("TLE lines must be at least 69 characters")
    if line1[0] != "1" or line2[0] != "2":
        raise TLEError(f"bad line numbers: {line1[0]!r}, {line2[0]!r}")
    if line1[2:7] != line2[2:7]:
        raise TLEError(f"catalog numbers differ: {line1[2:7]!r} vs {line2[2:7]!r}")
    if validate_checksum:
        for ln in (line1, line2):
            expect = _checksum(ln)
            got = int(ln[68])
            if expect != got:
                raise TLEError(f"checksum mismatch: expected {expect}, got {got}")

    try:
        norad = int(line2[2:7])
        inclination = math.radians(float(line2[8:16]))
        raan = math.radians(float(line2[17:25]))
        ecc = float("0." + line2[26:33].strip())
        argp = math.radians(float(line2[34:42]))
        mean_anomaly = math.radians(float(line2[43:51]))
        mean_motion_rev_day = float(line2[52:63])
    except ValueError as exc:
        raise TLEError(f"unparseable numeric field: {exc}") from exc

    if mean_motion_rev_day <= 0.0:
        raise TLEError(f"mean motion must be positive, got {mean_motion_rev_day}")
    n_rad_s = mean_motion_rev_day * TWO_PI / _DAY_S
    a = (MU_EARTH / n_rad_s**2) ** (1.0 / 3.0)
    return norad, KeplerElements(a=a, e=ecc, i=inclination, raan=raan, argp=argp, m0=mean_anomaly)


def format_tle(norad_id: int, elements: KeplerElements, name: "str | None" = None) -> str:
    """Format elements as a (minimal) TLE record; returns 2 or 3 lines.

    Epoch, drag and ephemeris fields are zeroed — the output is meant for
    interchange of the orbital geometry, not for SGP4 propagation.
    """
    if not 0 <= norad_id <= 99999:
        raise ValueError(f"NORAD id must fit 5 digits, got {norad_id}")
    n_rev_day = elements.mean_motion * _DAY_S / TWO_PI
    ecc_field = f"{elements.e:.7f}"[2:9]
    line1 = f"1 {norad_id:05d}U 00000A   00001.00000000  .00000000  00000-0  00000-0 0    0"
    line2 = (
        f"2 {norad_id:05d} {math.degrees(elements.i):8.4f} {math.degrees(elements.raan):8.4f} "
        f"{ecc_field} {math.degrees(elements.argp):8.4f} {math.degrees(elements.m0):8.4f} "
        f"{n_rev_day:11.8f}    0"
    )
    line1 = line1[:68] + str(_checksum(line1))
    line2 = line2[:68] + str(_checksum(line2))
    if name is not None:
        return "\n".join([name[:24], line1, line2])
    return "\n".join([line1, line2])


def parse_tle_file(text: str) -> "list[tuple[int, KeplerElements]]":
    """Parse a whole catalog text (2-line or 3-line format)."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    out = []
    k = 0
    while k < len(lines):
        if lines[k].startswith("1 ") and k + 1 < len(lines) and lines[k + 1].startswith("2 "):
            out.append(parse_tle(lines[k], lines[k + 1]))
            k += 2
        else:
            k += 1  # name line or junk
    return out
