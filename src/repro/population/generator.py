"""The Table II synthetic population generator.

Semi-major axis and eccentricity come from the bivariate KDE of the seed
catalog; inclination is uniform on [0, pi]; RAAN, argument of perigee and
mean anomaly are uniform on [0, 2 pi).  (The paper lists the mean anomaly
and derives the true anomaly from it; our propagation consumes the mean
anomaly directly.)
"""
from __future__ import annotations

import math

import numpy as np

from repro.orbits.elements import OrbitalElementsArray
from repro.population.catalog_seed import clip_to_valid, seed_catalog
from repro.population.kde import BivariateKDE


def generate_population(
    n: int,
    seed: "int | None" = None,
    kde: "BivariateKDE | None" = None,
) -> OrbitalElementsArray:
    """Generate ``n`` synthetic satellites per the paper's recipe.

    Parameters
    ----------
    n:
        Population size (the paper sweeps 2,000 ... 1,024,000).
    seed:
        RNG seed for reproducible populations.
    kde:
        Optional pre-built (a, e) density — e.g. one estimated from a real
        TLE catalog; defaults to the KDE of the synthetic seed catalog.
    """
    if n <= 0:
        raise ValueError(f"population size must be positive, got {n}")
    rng = np.random.default_rng(seed)
    if kde is None:
        # Scott's rule with the *full* catalog covariance oversmooths badly
        # (the LEO/MEO/GEO clusters span 35,000 km, so the plain bandwidth
        # is thousands of km wide); shrink it so the Fig. 9 cluster
        # structure survives into the generated population.
        kde = BivariateKDE(seed_catalog(), bw_factor=0.05)
    ae = clip_to_valid(kde.sample(n, rng))
    return OrbitalElementsArray(
        a=ae[:, 0],
        e=ae[:, 1],
        i=rng.uniform(0.0, math.pi, size=n),
        raan=rng.uniform(0.0, 2.0 * math.pi, size=n),
        argp=rng.uniform(0.0, 2.0 * math.pi, size=n),
        m0=rng.uniform(0.0, 2.0 * math.pi, size=n),
    )
