"""Flux-based spatial density: the volumetric approach of Klinkrad [20].

Related work of Section II: "the space is divided into several 'bins', and
the intersections of each orbit with these volumes are calculated ...
each object can be assigned to multiple volumes with a specific
probability based on the residence period.  The spatial object density in
each volume can be derived for statistical analysis."

This module implements that machinery over spherical altitude shells:

* :func:`residence_fractions` — the fraction of its period each orbit
  spends inside each radial bin, computed exactly from the Kepler time law
  (the difference of mean anomalies at the bin's radius crossings);
* :func:`shell_density` — objects per km^3 per shell, the long-term
  environment-model quantity (and the statistical counterpart of the
  hollow-sphere decomposition of Section III-B).
"""
from __future__ import annotations

import numpy as np

from repro.orbits.elements import OrbitalElementsArray


def _mean_anomaly_at_radius(a: np.ndarray, e: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Mean anomaly (outbound branch, in [0, pi]) where the orbit radius
    equals ``r``; clipped to the orbit's radial range."""
    cos_E = (1.0 - np.clip(r, None, a * (1.0 + e)) / a) / np.maximum(e, 1e-15)
    E = np.arccos(np.clip(cos_E, -1.0, 1.0))
    return E - e * np.sin(E)


def residence_fractions(
    population: OrbitalElementsArray, edges_km: np.ndarray
) -> np.ndarray:
    """Per-object residence fraction in each radial bin; ``(n, k)``.

    ``edges_km`` are the ``k+1`` shell boundary radii.  Rows sum to the
    fraction of the period spent inside ``[edges[0], edges[-1]]`` (1.0
    when the bins cover the orbit's radial range).  Uses the symmetry of
    the outbound/inbound branches: time from perigee to radius r is
    ``M(r)/n``, so the time between two radii is ``(M(r2) - M(r1)) / n``
    and the round trip doubles it.
    """
    edges = np.asarray(edges_km, dtype=np.float64)
    if edges.ndim != 1 or len(edges) < 2:
        raise ValueError("edges_km must be a 1-D array of at least two radii")
    if np.any(np.diff(edges) <= 0.0):
        raise ValueError("edges_km must be strictly increasing")
    a = population.a
    e = np.maximum(population.e, 1e-12)  # circular orbits: limit handled below
    n_obj = len(population)
    k = len(edges) - 1

    # M at each edge, per object: (n, k+1).
    m_at = np.stack([_mean_anomaly_at_radius(a, e, np.full(n_obj, r)) for r in edges], axis=1)
    fractions = (m_at[:, 1:] - m_at[:, :-1]) / np.pi  # outbound+inbound / period
    fractions = np.clip(fractions, 0.0, 1.0)

    # Degenerate circular orbits: all time in the bin containing r = a.
    circular = population.e < 1e-9
    if circular.any():
        fractions[circular] = 0.0
        bin_idx = np.searchsorted(edges, a[circular], side="right") - 1
        inside = (bin_idx >= 0) & (bin_idx < k)
        rows = np.nonzero(circular)[0][inside]
        fractions[rows, bin_idx[inside]] = 1.0
    return fractions


def shell_density(
    population: OrbitalElementsArray, edges_km: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Expected object count and spatial density per shell.

    Returns ``(counts, density)``: ``counts[k]`` is the expected number of
    objects inside shell k at a random instant (sum of residence
    fractions); ``density`` divides by the shell volume (objects/km^3) —
    the flux-model output used for long-term collision-risk statistics.
    """
    edges = np.asarray(edges_km, dtype=np.float64)
    fractions = residence_fractions(population, edges)
    counts = fractions.sum(axis=0)
    volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    return counts, counts / volumes
