"""The performance-regression ledger: a trajectory over BENCH artifacts.

Every benchmark module writes a ``benchmarks/results/BENCH_*.json``
artifact, but until now each run overwrote the last — the repo had no
memory of whether PR N made the grid build faster or slower than PR N-1.
``BENCH_ledger.json`` fixes that: an append-only document where each
**entry** snapshots the numeric scalars of one artifact from one run,
stamped with the git SHA, a host fingerprint, and a wall-clock timestamp.

Layout (``LEDGER_SCHEMA_VERSION`` = 1)::

    {
      "schema_version": 1,
      "entries": [
        {
          "artifact": "BENCH_cd",
          "sha": "1c7ed58...",
          "timestamp_unix": 1754650000.0,
          "host": {"machine": "x86_64", "cpus": 4, "python": "3.11.9"},
          "check_only": true,
          "metrics": {"sweep[0].speedup": 1.41, "paper_scale.wall_s": 2.3}
        },
        ...
      ]
    }

Metrics are the artifact's numeric leaves flattened to dotted/indexed
paths (:func:`flatten_metrics`).  Regression detection
(:meth:`BenchLedger.check_regressions`) compares the newest entry of each
artifact against the **rolling best** of the comparable history and
flags metrics that moved the wrong way beyond a relative tolerance:

* metric direction is inferred from the name — "speedup", "hit_rate",
  "efficiency" are higher-better; names ending in ``_s`` or ``_bytes``
  or containing "overhead" are lower-better; anything else is tracked
  but never gated;
* entries are only comparable within a **cohort**: same artifact and
  same ``check_only`` flag, and — for wall-clock (lower-better) metrics
  — the same host fingerprint, because seconds measured on different
  machines do not compare;
* the CI gate uses a deliberately loose ``rtol`` (default 0.5): the
  ledger exists to catch step-function regressions across PRs, not to
  re-litigate benchmark noise the :mod:`repro.obs.perf` gates already
  bound per-run.
"""
from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass

LEDGER_SCHEMA_VERSION = 1

#: Substrings marking a flattened metric as higher-better.
_HIGHER_BETTER = ("speedup", "hit_rate", "efficiency", "survival")
#: Substrings / suffixes marking a metric as lower-better (wall-clock-ish).
_LOWER_BETTER_CONTAINS = ("overhead",)
_LOWER_BETTER_SUFFIX = ("_s", "_bytes")


def metric_direction(name: str) -> int:
    """+1 if higher is better, -1 if lower is better, 0 if ungated."""
    leaf = name.rsplit(".", 1)[-1]
    if any(tok in leaf for tok in _HIGHER_BETTER):
        return 1
    if any(tok in leaf for tok in _LOWER_BETTER_CONTAINS):
        return -1
    base = leaf.split("[", 1)[0]
    if base.endswith(_LOWER_BETTER_SUFFIX):
        return -1
    return 0


def flatten_metrics(obj, prefix: str = "") -> "dict[str, float]":
    """Flatten nested dicts/lists to dotted/indexed paths of numeric leaves.

    Booleans are excluded (they are flags, not measurements); strings and
    nulls are skipped.  ``{"sweep": [{"speedup": 2.0}]}`` becomes
    ``{"sweep[0].speedup": 2.0}``.
    """
    out: "dict[str, float]" = {}
    if isinstance(obj, dict):
        for key in sorted(obj):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(obj[key], path))
    elif isinstance(obj, (list, tuple)):
        for i, item in enumerate(obj):
            out.update(flatten_metrics(item, f"{prefix}[{i}]"))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        value = float(obj)
        if value == value and abs(value) != float("inf"):
            out[prefix] = value
    return out


def host_fingerprint() -> "dict[str, object]":
    """A coarse host identity: enough to refuse cross-host time compares."""
    return {
        "machine": platform.machine(),
        "system": platform.system(),
        "cpus": os.cpu_count() or 1,
        "python": platform.python_version(),
    }


def git_sha(repo_root: "str | None" = None) -> str:
    """The current commit SHA, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def validate_ledger(doc) -> "list[str]":
    """Schema-validate a ledger document; returns human-readable errors."""
    errors: "list[str]" = []
    if not isinstance(doc, dict):
        return [f"ledger must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema_version") != LEDGER_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {LEDGER_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        return errors + ["entries must be a list"]
    for k, entry in enumerate(entries):
        where = f"entries[{k}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: must be an object")
            continue
        for key, types in (
            ("artifact", str),
            ("sha", str),
            ("timestamp_unix", (int, float)),
            ("host", dict),
            ("check_only", bool),
            ("metrics", dict),
        ):
            if key not in entry:
                errors.append(f"{where}: missing key {key!r}")
            elif not isinstance(entry[key], types):
                errors.append(
                    f"{where}.{key}: expected {types}, got {type(entry[key]).__name__}"
                )
        metrics = entry.get("metrics")
        if isinstance(metrics, dict):
            for name, value in metrics.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    errors.append(
                        f"{where}.metrics[{name!r}]: values must be numbers, "
                        f"got {type(value).__name__}"
                    )
    return errors


@dataclass(frozen=True)
class LedgerRegression:
    """One metric of one artifact that moved the wrong way."""

    artifact: str
    metric: str
    #: +1 higher-better, -1 lower-better.
    direction: int
    value: float
    best: float
    best_sha: str
    rtol: float

    def __repr__(self) -> str:
        arrow = "dropped below" if self.direction > 0 else "rose above"
        return (
            f"<REGRESSION {self.artifact}:{self.metric} = {self.value:.6g} "
            f"{arrow} rolling best {self.best:.6g} (from {self.best_sha[:12]}) "
            f"beyond rtol={self.rtol:g}>"
        )


class BenchLedger:
    """Load, extend, validate and regression-check ``BENCH_ledger.json``."""

    def __init__(self, doc: "dict | None" = None) -> None:
        if doc is None:
            doc = {"schema_version": LEDGER_SCHEMA_VERSION, "entries": []}
        errors = validate_ledger(doc)
        if errors:
            raise ValueError("invalid ledger: " + "; ".join(errors))
        self.doc = doc

    @classmethod
    def load(cls, path: str) -> "BenchLedger":
        with open(path, "r", encoding="utf-8") as fh:
            return cls(json.load(fh))

    @classmethod
    def load_or_create(cls, path: str) -> "BenchLedger":
        if os.path.exists(path):
            return cls.load(path)
        return cls()

    def save(self, path: str) -> None:
        errors = validate_ledger(self.doc)
        if errors:
            raise ValueError("refusing to save invalid ledger: " + "; ".join(errors))
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.doc, fh, indent=1)
            fh.write("\n")

    @property
    def entries(self) -> "list[dict]":
        return self.doc["entries"]

    # -- ingestion -----------------------------------------------------

    def append_artifact(
        self,
        artifact: str,
        payload: dict,
        sha: "str | None" = None,
        timestamp_unix: "float | None" = None,
        host: "dict | None" = None,
    ) -> dict:
        """Append one trajectory point for a BENCH payload; returns it."""
        entry = {
            "artifact": artifact,
            "sha": sha if sha is not None else git_sha(),
            "timestamp_unix": (
                float(timestamp_unix) if timestamp_unix is not None else time.time()
            ),
            "host": host if host is not None else host_fingerprint(),
            "check_only": bool(payload.get("check_only", False)),
            "metrics": flatten_metrics(payload),
        }
        self.entries.append(entry)
        return entry

    def ingest_results_dir(
        self, results_dir: str, sha: "str | None" = None
    ) -> "list[dict]":
        """Append an entry for every ``BENCH_*.json`` in a results dir."""
        sha = sha if sha is not None else git_sha()
        host = host_fingerprint()
        now = time.time()
        added = []
        for fname in sorted(os.listdir(results_dir)):
            if not fname.startswith("BENCH_") or not fname.endswith(".json"):
                continue
            if fname == "BENCH_ledger.json":
                continue
            with open(os.path.join(results_dir, fname), "r", encoding="utf-8") as fh:
                try:
                    payload = json.load(fh)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{fname}: not valid JSON ({exc})") from exc
            if not isinstance(payload, dict):
                continue
            added.append(
                self.append_artifact(
                    fname[: -len(".json")],
                    payload,
                    sha=sha,
                    timestamp_unix=now,
                    host=host,
                )
            )
        return added

    # -- regression detection ------------------------------------------

    def check_regressions(self, rtol: float = 0.5) -> "list[LedgerRegression]":
        """Compare each artifact's newest entry against its rolling best.

        The comparable history of an entry is every *earlier* entry with
        the same artifact and ``check_only`` flag; lower-better (time-
        like) metrics additionally require an identical host fingerprint.
        A higher-better metric regresses when it falls below
        ``best * (1 - rtol)``; a lower-better one when it exceeds
        ``best * (1 + rtol)``.
        """
        regressions: "list[LedgerRegression]" = []
        latest: "dict[str, dict]" = {}
        for entry in self.entries:
            latest[entry["artifact"]] = entry
        for artifact in sorted(latest):
            current = latest[artifact]
            history = [
                e
                for e in self.entries
                if e is not current
                and e["artifact"] == artifact
                and e["check_only"] == current["check_only"]
            ]
            if not history:
                continue
            for metric in sorted(current["metrics"]):
                direction = metric_direction(metric)
                if direction == 0:
                    continue
                pool = history
                if direction < 0:
                    pool = [e for e in history if e["host"] == current["host"]]
                values = [
                    (e["metrics"][metric], e["sha"])
                    for e in pool
                    if metric in e["metrics"]
                ]
                if not values:
                    continue
                if direction > 0:
                    best, best_sha = max(values)
                    bad = current["metrics"][metric] < best * (1.0 - rtol)
                else:
                    best, best_sha = min(values)
                    # A zero best gives the relative gate no scale
                    # (anything > 0 would flag); skip those metrics.
                    bad = best > 0.0 and current["metrics"][metric] > best * (1.0 + rtol)
                if bad:
                    regressions.append(
                        LedgerRegression(
                            artifact=artifact,
                            metric=metric,
                            direction=direction,
                            value=current["metrics"][metric],
                            best=best,
                            best_sha=best_sha,
                            rtol=rtol,
                        )
                    )
        return regressions

    # -- queries -------------------------------------------------------

    def trajectory(self, artifact: str, metric: str) -> "list[tuple[str, float]]":
        """(sha, value) points of one metric over the ledger, in order."""
        return [
            (e["sha"], e["metrics"][metric])
            for e in self.entries
            if e["artifact"] == artifact and metric in e["metrics"]
        ]
