"""Collectors: read health metrics off the spatial data structures.

Each collector derives its numbers **from the structure's arrays after the
build finished** — not from racy in-flight counters — so the recorded
values are deterministic for a given table layout and can be re-derived
in tests (``tests/obs/test_integration.py`` recomputes them directly from
the same arrays).

Metric families (full table in DESIGN.md §7):

* ``hashmap.*`` — the grid hash table: occupied slots, peak load factor,
  probe-length histogram (displacement from the key's home slot + 1), and
  the vectorized build's CAS conflict-resolution round counters.
* ``grid.*`` — cell-occupancy distribution and occupied-cell / lane
  volume per build.
* ``cd.*`` — candidate-pair emission volume (the neighbour-scan output).
* ``conjmap.*`` — conjunction-map record count, capacity, load factor.

Structure metrics depend on the backend's table layout (a serial
per-step ``UniformGrid`` and a fused multi-step ``VectorHashGrid`` hash
different key sets), so only pipeline-level counters (``cd.*``,
``conjmap.*``, funnels) are comparable across backends; ``hashmap.*`` and
``grid.*`` are comparable across *runs* of the same backend.
"""
from __future__ import annotations

import numpy as np

from repro.constants import EMPTY_KEY
from repro.obs.metrics import MetricsRegistry
from repro.spatial.hashing import HASH_FUNCTIONS, murmur3_fmix64_array

#: Probe-length histogram buckets (a probe length of 1 = no displacement).
PROBE_LENGTH_EDGES = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0)

#: Cell-occupancy histogram buckets (satellites per occupied cell).
OCCUPANCY_EDGES = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0)


def probe_lengths(table_keys: np.ndarray, hash_name: str = "murmur3") -> np.ndarray:
    """Probe length of every occupied slot, recomputed from the key array.

    For an open-addressing table with linear probing (Eq. 2), the probe
    length of a stored key is its circular displacement from the home slot
    ``hash(key) mod M`` plus one.  This is exact regardless of insertion
    order or thread interleaving, because linear probing never moves a
    stored key.
    """
    keys = np.asarray(table_keys, dtype=np.uint64)
    n_slots = len(keys)
    occupied = np.nonzero(keys != np.uint64(EMPTY_KEY))[0]
    if occupied.size == 0:
        return np.empty(0, dtype=np.int64)
    if hash_name == "murmur3":
        home = (murmur3_fmix64_array(keys[occupied]) % np.uint64(n_slots)).astype(np.int64)
    else:
        fn = HASH_FUNCTIONS[hash_name]
        home = np.fromiter(
            (fn(int(k)) % n_slots for k in keys[occupied]), dtype=np.int64,
            count=occupied.size,
        )
    return (occupied - home) % n_slots + 1


def observe_hashmap_table(
    metrics: MetricsRegistry,
    table_keys: np.ndarray,
    hash_name: str = "murmur3",
    prefix: str = "hashmap",
) -> None:
    """Record load factor and probe-length histogram of one hash table."""
    keys = np.asarray(table_keys, dtype=np.uint64)
    lengths = probe_lengths(keys, hash_name)
    metrics.counter(f"{prefix}.tables").add(1)
    metrics.counter(f"{prefix}.slots").add(len(keys))
    metrics.counter(f"{prefix}.occupied").add(int(lengths.size))
    metrics.gauge(f"{prefix}.load_factor").record(lengths.size / max(len(keys), 1))
    metrics.histogram(f"{prefix}.probe_length", PROBE_LENGTH_EDGES).observe(lengths)


def observe_occupancy(metrics: MetricsRegistry, cell_counts: np.ndarray) -> None:
    """Record the cell-occupancy distribution of one grid build."""
    counts = np.asarray(cell_counts, dtype=np.int64)
    metrics.counter("grid.builds").add(1)
    metrics.counter("grid.occupied_cells").add(int(counts.size))
    metrics.counter("grid.lanes").add(int(counts.sum()))
    metrics.histogram("grid.cell_occupancy", OCCUPANCY_EDGES).observe(counts)


def observe_grid(metrics: MetricsRegistry, grid, precision: str = "fp64") -> None:
    """Dispatch on the grid implementation and record its health metrics.

    Accepts :class:`~repro.spatial.vectorgrid.SortedGrid` (occupancy
    only — it has no hash table), :class:`~repro.spatial.vectorgrid
    .VectorHashGrid` (occupancy + table + CAS round counters) and
    :class:`~repro.spatial.grid.UniformGrid` (occupancy + table).

    ``precision`` is the pipeline's arithmetic policy: each build is also
    counted under ``grid.builds_fp64`` / ``grid.builds_mixed``, so merged
    registries record which precision produced the structure metrics.
    """
    from repro.spatial.grid import UniformGrid
    from repro.spatial.vectorgrid import SortedGrid, VectorHashGrid, _group_sorted

    metrics.counter(f"grid.builds_{precision}").add(1)
    if isinstance(grid, SortedGrid):
        observe_occupancy(metrics, grid.counts)
    elif isinstance(grid, VectorHashGrid):
        order = np.argsort(grid.entry_slot, kind="stable")
        _, _, counts = _group_sorted(grid.entry_slot[order])
        observe_occupancy(metrics, counts)
        observe_hashmap_table(metrics, grid.table_keys)
        metrics.counter("hashmap.cas_insert_rounds").add(grid.insert_rounds)
        metrics.counter("hashmap.cas_attach_rounds").add(grid.attach_rounds)
    elif isinstance(grid, UniformGrid):
        used = grid.entries.used
        slots = grid.entries.slot[:used]
        counts = np.bincount(slots[slots >= 0])
        observe_occupancy(metrics, counts[counts > 0])
        observe_hashmap_table(metrics, grid.cells.keys_array(), grid.cells.hash_name)
        metrics.counter("hashmap.inserts").add(grid.cells.insert_count)
        metrics.counter("hashmap.insert_probes").add(grid.cells.probe_count)
    else:  # pragma: no cover - future grid impls must register here
        raise TypeError(f"no collector for grid type {type(grid).__name__}")


def observe_conjmap(metrics: MetricsRegistry, conj) -> None:
    """Record the conjunction map's end-of-collection health."""
    metrics.counter("conjmap.records").add(conj.size)
    metrics.counter("conjmap.capacity").add(conj.capacity)
    metrics.gauge("conjmap.load_factor").record(conj.load_factor)


def observe_pool(
    metrics: MetricsRegistry,
    rounds_resident: int,
    merge_seconds: float,
    windows: int = 1,
) -> None:
    """Record one persistent process pool's per-window accounting.

    ``procs.rounds_resident`` counts the streamed rounds the pool's
    workers executed against *resident* state (population attach, solver
    data, coherence cache all reused rather than rebuilt) —  the volume of
    work the persistent pool amortised its spawn cost over.
    ``procs.merge_seconds`` is the parent-side cost of the once-per-window
    shard-local merge (attach + copy + re-sort), the term that replaced
    per-round result shipping.
    """
    metrics.counter("procs.rounds_resident").add(int(rounds_resident))
    metrics.counter("procs.windows").add(int(windows))
    metrics.gauge("procs.merge_seconds").record(float(merge_seconds))


def observe_coherence(metrics: MetricsRegistry, stats) -> None:
    """Record one coherent pair emitter's lifetime counters.

    ``stats`` is a :class:`repro.spatial.vectorgrid.CoherenceStats`.  The
    headline gauge is ``cd.coherence_hit_rate`` — the fraction of emitted
    candidate pairs served from the cross-step cache; ``cd.probes`` vs
    ``cd.probes_full_equiv`` quantifies how many neighbour-cell probes the
    cache actually saved against re-probing every occupied cell each step.
    """
    metrics.counter("cd.coherent_steps").add(stats.coherent_steps)
    metrics.counter("cd.coherence_full_rebuilds").add(stats.full_rebuilds)
    metrics.counter("cd.coherence_budget_drops").add(stats.budget_drops)
    metrics.counter("cd.pairs_replayed").add(stats.pairs_replayed)
    metrics.counter("cd.cell_pairs_replayed").add(stats.cell_pairs_replayed)
    metrics.counter("cd.cell_pairs_recomputed").add(stats.cell_pairs_recomputed)
    metrics.counter("cd.probes").add(stats.probes)
    metrics.counter("cd.probes_full_equiv").add(stats.probes_full_equiv)
    metrics.gauge("cd.coherence_hit_rate").record(stats.hit_rate)


def observe_pipeline(metrics: MetricsRegistry, stats) -> None:
    """Record one pipelined-schedule run's queue and consumer accounting.

    ``stats`` is a :class:`repro.detection.pipeline.PipelineStats`.
    ``pipeline.queue_peak_rounds`` against the configured depth shows how
    far REF actually fell behind CD; ``pipeline.backpressure_waits``
    counts the rounds where the bounded queue made the producer wait —
    the memory-for-latency trade the schedule is built around.
    """
    metrics.counter("pipeline.rounds").add(stats.rounds)
    metrics.counter("pipeline.records_streamed").add(stats.records)
    metrics.counter("pipeline.ref_chunks").add(stats.ref_chunks)
    metrics.counter("pipeline.backpressure_waits").add(stats.backpressure_waits)
    metrics.gauge("pipeline.queue_peak_rounds").record(float(stats.queue_peak_rounds))
