"""Pipeline observability: structured tracing, metrics, and exporters.

The evaluation of the source paper is built on per-phase and
per-data-structure measurements (Section V-C1 phase breakdown, V-C3
efficiency, the hash-map load discussion).  This package makes those
quantities first-class citizens of every screening run:

* :mod:`repro.obs.tracer` — nested, named spans with a zero-overhead
  :class:`~repro.obs.tracer.NullTracer` default.  The span tree of one run
  nests window → phase → round → chunk.
* :mod:`repro.obs.metrics` — a mergeable registry of counters, gauges,
  fixed-bucket histograms and candidate funnels, instrumenting the hot
  structures (hash-map load, probe lengths, CAS conflict rounds, grid cell
  occupancy) and the per-stage candidate funnel.
* :mod:`repro.obs.collect` — the collectors that read those quantities off
  the spatial data structures after each build.
* :mod:`repro.obs.export` — JSONL event stream and Chrome trace-event
  format (loadable in Perfetto / ``chrome://tracing``), including counter
  tracks for sampled series.
* :mod:`repro.obs.analysis` — what the spans *mean*: per-phase
  inclusive/exclusive time, cross-track overlap & utilization
  (:func:`~repro.obs.analysis.overlap_report`), the window critical path,
  and run-vs-run regression attribution (:func:`~repro.obs.analysis.diff`).
* :mod:`repro.obs.perf` — declarative, noise-aware benchmark gates
  (``expect(ledger).phase("CD").speedup_vs("serial") >= 1.3``).
* :mod:`repro.obs.ledger` — the append-only ``BENCH_ledger.json``
  trajectory over all BENCH artifacts, with rolling-best regression
  detection.
* :mod:`repro.obs.resources` — ``/proc``-based resource watermarks
  (RSS, /dev/shm, per-worker CPU) and the ``--heartbeat`` progress
  emitter.

See DESIGN.md §7 for the span hierarchy, the metric name registry, and the
trace schema; DESIGN.md §12 for the analytics, ledger, and watermark
semantics.
"""
from __future__ import annotations

from repro.obs.analysis import (
    CriticalPath,
    OverlapReport,
    PhaseStat,
    critical_path,
    diff,
    overlap_report,
    phase_stats,
)
from repro.obs.export import (
    counter_events,
    to_chrome_trace,
    trace_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.ledger import BenchLedger, validate_ledger
from repro.obs.metrics import (
    Counter,
    FixedHistogram,
    Funnel,
    FunnelStage,
    Gauge,
    MetricsRegistry,
    Series,
)
from repro.obs.perf import (
    GateResult,
    PerfExpectation,
    PerfLedger,
    PerfRegression,
    expect,
    expect_value,
)
from repro.obs.resources import Heartbeat, ResourceSampler
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "BenchLedger",
    "Counter",
    "CriticalPath",
    "FixedHistogram",
    "Funnel",
    "FunnelStage",
    "Gauge",
    "GateResult",
    "Heartbeat",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OverlapReport",
    "PerfExpectation",
    "PerfLedger",
    "PerfRegression",
    "PhaseStat",
    "ResourceSampler",
    "Series",
    "SpanRecord",
    "Tracer",
    "counter_events",
    "critical_path",
    "diff",
    "expect",
    "expect_value",
    "overlap_report",
    "phase_stats",
    "to_chrome_trace",
    "trace_events",
    "validate_ledger",
    "write_chrome_trace",
    "write_jsonl",
]
