"""Pipeline observability: structured tracing, metrics, and exporters.

The evaluation of the source paper is built on per-phase and
per-data-structure measurements (Section V-C1 phase breakdown, V-C3
efficiency, the hash-map load discussion).  This package makes those
quantities first-class citizens of every screening run:

* :mod:`repro.obs.tracer` — nested, named spans with a zero-overhead
  :class:`~repro.obs.tracer.NullTracer` default.  The span tree of one run
  nests window → phase → round → chunk.
* :mod:`repro.obs.metrics` — a mergeable registry of counters, gauges,
  fixed-bucket histograms and candidate funnels, instrumenting the hot
  structures (hash-map load, probe lengths, CAS conflict rounds, grid cell
  occupancy) and the per-stage candidate funnel.
* :mod:`repro.obs.collect` — the collectors that read those quantities off
  the spatial data structures after each build.
* :mod:`repro.obs.export` — JSONL event stream and Chrome trace-event
  format (loadable in Perfetto / ``chrome://tracing``).

See DESIGN.md §7 for the span hierarchy, the metric name registry, and the
trace schema.
"""
from __future__ import annotations

from repro.obs.export import (
    to_chrome_trace,
    trace_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    FixedHistogram,
    Funnel,
    FunnelStage,
    Gauge,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "Counter",
    "FixedHistogram",
    "Funnel",
    "FunnelStage",
    "Gauge",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "to_chrome_trace",
    "trace_events",
    "write_chrome_trace",
    "write_jsonl",
]
