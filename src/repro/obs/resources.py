"""Runtime resource watermarks and heartbeat progress for long runs.

PR 7's out-of-core claim — 1M objects screened under 512 MB per device —
was, until now, a *planned* number (``plan_stream_rounds`` arithmetic
plus each worker's own allocation accounting).  This module measures it:

* :class:`ResourceSampler` — a daemon thread sampling ``/proc`` at a
  fixed interval: the process's RSS and CPU seconds, total ``/dev/shm``
  usage (where :class:`~repro.parallel.processes.SharedPopulation` and
  the shard result blocks live), and optionally the RSS/CPU of child
  processes (the :class:`~repro.parallel.processes.PersistentShardPool`
  workers, discovered by a PPid scan because the pool spawns them
  internally).  Samples land on a
  :class:`~repro.obs.metrics.MetricsRegistry` as ``res.*`` time series —
  stamped with :meth:`Tracer.elapsed_s` when a tracer is given, so the
  exported Perfetto counter tracks line up with the spans — and
  :meth:`ResourceSampler.watermarks` reduces them to the peak values the
  benchmarks assert against budgets.
* :class:`Heartbeat` — a daemon thread emitting one JSON line every N
  seconds (progress counter, rate, ETA, current RSS / shm), so a
  multi-hour screening campaign is observable from a log tail instead
  of silent until the final table.

Everything degrades gracefully off-Linux: a missing ``/proc`` file makes
the corresponding reading 0 rather than raising, so importing and even
running the sampler on other platforms is harmless (it just measures
nothing).
"""
from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry


def read_rss_bytes(pid: "int | None" = None) -> int:
    """Resident set size of a process from ``/proc/<pid>/status`` (0 if
    unreadable)."""
    pid = os.getpid() if pid is None else pid
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return 0


_CLK_TCK = float(os.sysconf("SC_CLK_TCK")) if hasattr(os, "sysconf") else 100.0


def read_cpu_seconds(pid: "int | None" = None) -> float:
    """User+system CPU seconds of a process from ``/proc/<pid>/stat``."""
    pid = os.getpid() if pid is None else pid
    try:
        with open(f"/proc/{pid}/stat", "r", encoding="ascii") as fh:
            data = fh.read()
        # The comm field is parenthesised and may contain spaces; fields
        # 14/15 (utime/stime) are counted after the closing paren.
        rest = data.rsplit(")", 1)[1].split()
        return (float(rest[11]) + float(rest[12])) / _CLK_TCK
    except (OSError, ValueError, IndexError):
        return 0.0


def read_shm_bytes(prefix: "str | None" = None) -> int:
    """Total bytes of files under ``/dev/shm`` (optionally name-filtered).

    This is where multiprocessing shared memory lives on Linux — the
    :class:`SharedPopulation` block and the shard result blocks — so it
    is the measured counterpart of the planner's shared-memory budget.
    """
    total = 0
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return 0
    for name in names:
        if prefix is not None and not name.startswith(prefix):
            continue
        try:
            total += os.stat(os.path.join("/dev/shm", name)).st_size
        except OSError:
            continue
    return total


def child_pids(pid: "int | None" = None) -> "list[int]":
    """Direct children of a process, by PPid scan of ``/proc``.

    The :class:`PersistentShardPool` spawns its workers internally and
    does not expose their pids until a window returns, so the sampler
    discovers them from the process table instead.
    """
    pid = os.getpid() if pid is None else pid
    target = str(pid)
    out: "list[int]" = []
    try:
        entries = os.listdir("/proc")
    except OSError:
        return out
    for entry in entries:
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/status", "r", encoding="ascii") as fh:
                for line in fh:
                    if line.startswith("PPid:"):
                        if line.split()[1] == target:
                            out.append(int(entry))
                        break
        except (OSError, ValueError, IndexError):
            continue
    return sorted(out)


@dataclass(frozen=True)
class ResourceSample:
    """One tick of the sampler."""

    t_s: float
    rss_bytes: int
    cpu_s: float
    shm_bytes: int
    #: pid -> (rss_bytes, cpu_s) of each sampled child process.
    children: "dict[int, tuple[int, float]]" = field(default_factory=dict)


class ResourceSampler:
    """Samples process/host resources on a daemon thread.

    Use as a context manager around the region to measure::

        metrics = MetricsRegistry()
        with ResourceSampler(metrics, tracer=tracer, include_children=True):
            screen_grid_multidevice(...)
        peaks = sampler.watermarks()

    ``interval_s`` defaults to 200 ms.  The ``/proc`` reads themselves
    are tens of microseconds, but on a single-CPU host every thread
    wakeup also costs a GIL handoff against the numpy main thread
    (~1-2 ms), so the tick rate — not the tick work — sets the overhead;
    at the default rate it stays under 1% of the ``test_obs_overhead.py``
    workload (gated there).  Series recorded on the registry (all in
    ``res.``):

    * ``res.rss_bytes`` / ``res.cpu_s`` — this process;
    * ``res.shm_bytes`` — total ``/dev/shm`` usage;
    * ``res.children.rss_bytes`` — summed over sampled children;
    * ``res.child_peak.rss_bytes`` — max over sampled children.
    """

    def __init__(
        self,
        metrics: "MetricsRegistry | None" = None,
        tracer=None,
        interval_s: float = 0.2,
        include_children: bool = False,
        shm_prefix: "str | None" = None,
        pid: "int | None" = None,
    ) -> None:
        self.metrics = metrics
        self._tracer = tracer
        self.interval_s = float(interval_s)
        self.include_children = include_children
        self.shm_prefix = shm_prefix
        self._pid = os.getpid() if pid is None else pid
        self.samples: "list[ResourceSample]" = []
        #: Wall seconds spent inside :meth:`sample_once` over the run —
        #: the sampler's directly measured self-cost, which on a
        #: single-CPU host is the time it steals from the workload.
        self.sampling_cost_s = 0.0
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._epoch = time.perf_counter()

    # -- clock ---------------------------------------------------------

    def _now_s(self) -> float:
        if self._tracer is not None and getattr(self._tracer, "enabled", False):
            return self._tracer.elapsed_s()
        return time.perf_counter() - self._epoch

    # -- sampling ------------------------------------------------------

    def sample_once(self) -> ResourceSample:
        """Take one sample immediately (also usable without the thread)."""
        tick_start = time.perf_counter()
        children: "dict[int, tuple[int, float]]" = {}
        if self.include_children:
            for pid in child_pids(self._pid):
                children[pid] = (read_rss_bytes(pid), read_cpu_seconds(pid))
        sample = ResourceSample(
            t_s=self._now_s(),
            rss_bytes=read_rss_bytes(self._pid),
            cpu_s=read_cpu_seconds(self._pid),
            shm_bytes=read_shm_bytes(self.shm_prefix),
            children=children,
        )
        self.samples.append(sample)
        if self.metrics is not None:
            t = sample.t_s
            self.metrics.timeseries("res.rss_bytes").record(t, sample.rss_bytes)
            self.metrics.timeseries("res.cpu_s").record(t, sample.cpu_s)
            self.metrics.timeseries("res.shm_bytes").record(t, sample.shm_bytes)
            if children:
                rss = [r for r, _ in children.values()]
                self.metrics.timeseries("res.children.rss_bytes").record(t, sum(rss))
                self.metrics.timeseries("res.child_peak.rss_bytes").record(t, max(rss))
        self.sampling_cost_s += time.perf_counter() - tick_start
        return sample

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self.sample_once()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- reductions ----------------------------------------------------

    def watermarks(self) -> "dict[str, float]":
        """Peak values over all samples — what budget assertions use."""
        if not self.samples:
            return {
                "peak_rss_bytes": 0.0,
                "peak_shm_bytes": 0.0,
                "peak_child_rss_bytes": 0.0,
                "cpu_s": 0.0,
                "sampling_cost_s": 0.0,
                "n_samples": 0,
            }
        child_peaks = [
            max((rss for rss, _ in s.children.values()), default=0)
            for s in self.samples
        ]
        return {
            "peak_rss_bytes": float(max(s.rss_bytes for s in self.samples)),
            "peak_shm_bytes": float(max(s.shm_bytes for s in self.samples)),
            "peak_child_rss_bytes": float(max(child_peaks)),
            "cpu_s": self.samples[-1].cpu_s - self.samples[0].cpu_s,
            "sampling_cost_s": self.sampling_cost_s,
            "n_samples": len(self.samples),
        }

    def peak_child_rss_by_pid(self) -> "dict[int, int]":
        """Per-child peak RSS over the run — the per-worker budget view."""
        peaks: "dict[int, int]" = {}
        for s in self.samples:
            for pid, (rss, _) in s.children.items():
                if rss > peaks.get(pid, 0):
                    peaks[pid] = rss
        return peaks


class Heartbeat:
    """Emits one JSON progress line every ``interval_s`` seconds.

    Progress is read from a counter on a shared
    :class:`MetricsRegistry` (default ``cd.rounds`` — incremented once
    per CD round by every executor); rate and ETA derive from its delta
    since the previous beat.  Each line is a single JSON object::

        {"type": "heartbeat", "elapsed_s": 12.0, "progress": 840,
         "rate_per_s": 70.0, "eta_s": 36.0, "rss_bytes": ..., "shm_bytes": ...}

    ``sink`` is any ``line -> None`` callable (default: write to stderr);
    ``extra`` is an optional zero-argument callable whose dict result is
    merged into every beat (the campaign adds windows/events counts).
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        interval_s: float,
        counter: str = "cd.rounds",
        total: "int | None" = None,
        sink=None,
        extra=None,
    ) -> None:
        self.metrics = metrics
        self.interval_s = float(interval_s)
        self.counter = counter
        self.total = total
        self._sink = sink if sink is not None else self._stderr_sink
        self._extra = extra
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._epoch = time.perf_counter()
        self._last_progress = 0
        self._last_t = 0.0
        self.beats = 0

    @staticmethod
    def _stderr_sink(line: str) -> None:
        sys.stderr.write(line + "\n")
        sys.stderr.flush()

    def beat(self) -> "dict[str, object]":
        """Emit one heartbeat line now; returns the emitted record."""
        now = time.perf_counter() - self._epoch
        progress = self.metrics.counters.get(self.counter)
        value = progress.value if progress is not None else 0
        dt = now - self._last_t
        rate = (value - self._last_progress) / dt if dt > 0 else 0.0
        record: "dict[str, object]" = {
            "type": "heartbeat",
            "elapsed_s": round(now, 3),
            "progress": value,
            "counter": self.counter,
            "rate_per_s": round(rate, 3),
            "rss_bytes": read_rss_bytes(),
            "shm_bytes": read_shm_bytes(),
        }
        if self.total is not None:
            record["total"] = self.total
            remaining = max(self.total - value, 0)
            record["eta_s"] = round(remaining / rate, 3) if rate > 0 else None
        if self._extra is not None:
            try:
                record.update(self._extra())
            except Exception as exc:  # a broken callback must not kill the beat
                record["extra_error"] = type(exc).__name__
        self._last_progress = value
        self._last_t = now
        self.beats += 1
        self._sink(json.dumps(record))
        return record

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.beat()

    def start(self) -> "Heartbeat":
        if self._thread is not None:
            raise RuntimeError("heartbeat already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_beat: bool = True) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if final_beat:
            self.beat()

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
