"""Trace exporters: Chrome trace-event JSON and a JSONL event stream.

*Chrome trace* (:func:`write_chrome_trace`) emits the ``traceEvents``
array format understood by Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``: one complete ("ph": "X") event per finished span,
timestamps and durations in microseconds, span/parent ids carried in
``args`` so the hierarchy survives the round trip exactly.  Sampled
:class:`~repro.obs.metrics.Series` (resource watermarks) additionally
export as counter ("ph": "C") events, rendering as counter tracks
alongside the spans.

*JSONL* (:func:`write_jsonl`) streams one JSON object per line: a
``meta`` header, one ``span`` event per finished span, and optional
``metrics`` / ``funnel`` snapshot records — easy to ingest with any
log pipeline.

Schemas are specified in DESIGN.md §7 and validated (without external
dependencies) by ``tests/obs/schema.py``, which the CI ``obs-smoke`` job
runs against a real traced screen.
"""
from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanRecord, Tracer

#: Schema version stamped into both export formats.
TRACE_SCHEMA_VERSION = 1


def _event(record: SpanRecord) -> "dict[str, object]":
    """One Chrome complete event for a finished span."""
    args: "dict[str, object]" = {"span_id": record.span_id, "parent_id": record.parent_id}
    args.update(record.attrs)
    return {
        "name": record.name,
        "ph": "X",
        "ts": record.start_s * 1e6,
        "dur": record.duration_s * 1e6,
        "pid": 1,
        "tid": record.thread,
        "cat": "repro",
        "args": args,
    }


def trace_events(tracer: Tracer) -> "list[dict[str, object]]":
    """The Chrome ``traceEvents`` list of all finished spans."""
    return [_event(r) for r in tracer.records()]


def counter_events(metrics: MetricsRegistry) -> "list[dict[str, object]]":
    """Chrome counter ("ph": "C") events for every sampled time series.

    A :class:`~repro.obs.metrics.Series` (e.g. the RSS and /dev/shm
    watermarks recorded by ``obs.resources.ResourceSampler``) renders in
    Perfetto as a counter track alongside the span tracks, provided its
    timestamps share the spans' clock (``Tracer.elapsed_s``).
    """
    events: "list[dict[str, object]]" = []
    for name in sorted(metrics.series):
        for t_s, value in metrics.series[name].sorted_samples():
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": t_s * 1e6,
                    "pid": 1,
                    "tid": 0,
                    "cat": "repro",
                    "args": {"value": value},
                }
            )
    return events


def to_chrome_trace(
    tracer: Tracer, metrics: "MetricsRegistry | None" = None
) -> "dict[str, object]":
    """The full Chrome trace object (JSON-serialisable)."""
    events = trace_events(tracer)
    out: "dict[str, object]" = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema_version": TRACE_SCHEMA_VERSION, "producer": "repro.obs"},
    }
    if metrics is not None:
        events.extend(counter_events(metrics))
        out["otherData"]["metrics"] = metrics.as_dict()  # type: ignore[index]
    return out


def write_chrome_trace(
    tracer: Tracer, path: str, metrics: "MetricsRegistry | None" = None
) -> int:
    """Write the Chrome trace file; returns the number of span events."""
    trace = to_chrome_trace(tracer, metrics)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    return len(trace["traceEvents"])  # type: ignore[arg-type]


def jsonl_events(
    tracer: Tracer, metrics: "MetricsRegistry | None" = None
) -> "list[dict[str, object]]":
    """The JSONL event stream as a list of records."""
    events: "list[dict[str, object]]" = [
        {"type": "meta", "schema_version": TRACE_SCHEMA_VERSION, "producer": "repro.obs"}
    ]
    for r in tracer.records():
        events.append(
            {
                "type": "span",
                "span_id": r.span_id,
                "parent_id": r.parent_id,
                "name": r.name,
                "start_s": r.start_s,
                "duration_s": r.duration_s,
                "thread": r.thread,
                "attrs": r.attrs,
            }
        )
    if metrics is not None:
        snapshot = metrics.as_dict()
        events.append(
            {
                "type": "metrics",
                **{k: snapshot[k] for k in ("counters", "gauges", "histograms", "series")},
            }
        )
        for name, funnel in snapshot["funnels"].items():  # type: ignore[union-attr]
            events.append({"type": "funnel", "name": name, **funnel})
    return events


def write_jsonl(
    tracer: Tracer, path: str, metrics: "MetricsRegistry | None" = None
) -> int:
    """Write the JSONL event stream; returns the number of lines."""
    events = jsonl_events(tracer, metrics)
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")
    return len(events)
