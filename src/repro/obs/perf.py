"""Declarative, noise-aware performance assertions for the benchmarks.

The benchmark modules under ``benchmarks/`` used to gate performance with
ad-hoc ``assert speedup >= X`` lines, each reinventing sampling and the
failure message.  This module centralises the pattern:

* a :class:`PerfLedger` collects named timing samples
  (``ledger.add("CD", "coherent", seconds)`` — typically k repeats);
* :func:`expect` starts a fluent assertion over the ledger; comparisons
  build a :class:`GateResult` that is truthy/falsy *and* renders the full
  evidence (samples, min-of-k, tolerance) in its repr, so a plain
  ``assert expect(...)...`` failure message explains itself;
* noise handling is explicit: values compare by **min-of-k** (the least
  noisy location statistic for run time: noise is one-sided) and an
  optional relative tolerance ``rtol`` loosens the threshold.

Example::

    ledger = PerfLedger()
    for _ in range(3):
        ledger.add("CD", "serial", time_serial())
        ledger.add("CD", "coherent", time_coherent())
    assert expect(ledger, rtol=0.05).phase("CD").speedup_vs("serial") >= 1.3

The same :class:`GateResult` machinery backs scalar gates
(``expect_value("warm_speedup", 1.02) >= 1.0``) so one-off numbers from a
benchmark artifact gate the same way.
"""
from __future__ import annotations

from dataclasses import dataclass, field


class PerfRegression(AssertionError):
    """Raised by :meth:`GateResult.check` when a gate fails."""


@dataclass(frozen=True)
class GateResult:
    """The outcome of one performance comparison.

    Truthiness is the verdict, so the object drops straight into an
    ``assert``; the repr carries the evidence either way.
    """

    passed: bool
    description: str
    value: float
    threshold: float
    op: str
    rtol: float
    detail: str = ""

    def __bool__(self) -> bool:
        return self.passed

    def __repr__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        tol = f" (rtol={self.rtol:g})" if self.rtol else ""
        extra = f"; {self.detail}" if self.detail else ""
        return (
            f"<{verdict}: {self.description} = {self.value:.6g} "
            f"{self.op} {self.threshold:.6g}{tol}{extra}>"
        )

    def check(self) -> "GateResult":
        """Raise :class:`PerfRegression` on failure; return self on pass."""
        if not self.passed:
            raise PerfRegression(repr(self))
        return self


@dataclass
class _SampleSet:
    """All timing samples recorded for one (phase, subject)."""

    seconds: "list[float]" = field(default_factory=list)

    @property
    def best_s(self) -> float:
        """Min-of-k: run-time noise is one-sided, so the minimum is the
        least-contaminated estimate of the true cost."""
        if not self.seconds:
            raise ValueError("no samples recorded")
        return min(self.seconds)


class PerfLedger:
    """Named timing samples, keyed by (phase, subject).

    *Phase* is the workload being measured ("CD", "screen", "window");
    *subject* is the variant under comparison ("serial", "coherent",
    "warm").  ``add`` appends one repeat's wall seconds.
    """

    def __init__(self) -> None:
        self._samples: "dict[tuple[str, str], _SampleSet]" = {}

    def add(self, phase: str, subject: str, seconds: float) -> None:
        key = (str(phase), str(subject))
        entry = self._samples.get(key)
        if entry is None:
            entry = self._samples[key] = _SampleSet()
        entry.seconds.append(float(seconds))

    def samples(self, phase: str, subject: str) -> "list[float]":
        entry = self._samples.get((phase, subject))
        return list(entry.seconds) if entry else []

    def best_s(self, phase: str, subject: str) -> float:
        entry = self._samples.get((phase, subject))
        if entry is None:
            known = sorted(f"{p}/{s}" for p, s in self._samples)
            raise KeyError(
                f"no samples for phase={phase!r} subject={subject!r}; "
                f"ledger has: {known}"
            )
        return entry.best_s

    def subjects(self, phase: str) -> "list[str]":
        return sorted(s for p, s in self._samples if p == phase)

    def as_dict(self) -> "dict[str, object]":
        return {
            f"{p}/{s}": {
                "samples_s": list(e.seconds),
                "best_s": e.best_s,
                "k": len(e.seconds),
            }
            for (p, s), e in sorted(self._samples.items())
        }


def _tolerant(value: float, threshold: float, op: str, rtol: float) -> bool:
    """Compare with a relative tolerance that always *loosens* the gate."""
    if op == ">=":
        return value >= threshold * (1.0 - rtol)
    if op == "<=":
        return value <= threshold * (1.0 + rtol)
    raise ValueError(f"unsupported gate op {op!r}")


@dataclass(frozen=True)
class PerfExpectation:
    """A computed performance metric awaiting its threshold.

    Comparison operators finish the gate and return a
    :class:`GateResult`; use ``.check()`` on the result (or assert its
    truthiness) to enforce it.
    """

    description: str
    value: float
    rtol: float
    detail: str = ""

    def _gate(self, threshold: float, op: str) -> GateResult:
        return GateResult(
            passed=_tolerant(self.value, float(threshold), op, self.rtol),
            description=self.description,
            value=self.value,
            threshold=float(threshold),
            op=op,
            rtol=self.rtol,
            detail=self.detail,
        )

    def __ge__(self, threshold: float) -> GateResult:
        return self._gate(threshold, ">=")

    def __le__(self, threshold: float) -> GateResult:
        return self._gate(threshold, "<=")


class _PhaseExpectation:
    """Fluent accessor for one phase's samples in a ledger."""

    def __init__(self, ledger: PerfLedger, phase: str, rtol: float) -> None:
        self._ledger = ledger
        self._phase = phase
        self._rtol = rtol

    def best(self, subject: str) -> PerfExpectation:
        """The subject's min-of-k seconds (gate with ``<=``)."""
        samples = self._ledger.samples(self._phase, subject)
        return PerfExpectation(
            description=f"{self._phase}:{subject} best_s",
            value=self._ledger.best_s(self._phase, subject),
            rtol=self._rtol,
            detail=f"samples={['%.4g' % s for s in samples]}",
        )

    def speedup_vs(self, baseline: str, subject: "str | None" = None) -> PerfExpectation:
        """baseline best over subject best — >1 means subject is faster.

        ``subject`` defaults to the only non-baseline subject recorded
        for the phase (the common two-variant benchmark shape).
        """
        if subject is None:
            others = [s for s in self._ledger.subjects(self._phase) if s != baseline]
            if len(others) != 1:
                raise ValueError(
                    f"phase {self._phase!r} has subjects {others}; "
                    "pass subject= explicitly"
                )
            subject = others[0]
        base_s = self._ledger.best_s(self._phase, baseline)
        subj_s = self._ledger.best_s(self._phase, subject)
        value = base_s / subj_s if subj_s > 0 else float("inf")
        return PerfExpectation(
            description=f"{self._phase}: speedup of {subject} vs {baseline}",
            value=value,
            rtol=self._rtol,
            detail=(
                f"{baseline} best={base_s:.4g}s "
                f"{['%.4g' % s for s in self._ledger.samples(self._phase, baseline)]}, "
                f"{subject} best={subj_s:.4g}s "
                f"{['%.4g' % s for s in self._ledger.samples(self._phase, subject)]}"
            ),
        )

    def ratio_vs(self, baseline: str, subject: str) -> PerfExpectation:
        """subject best over baseline best — gate overheads with ``<=``."""
        base_s = self._ledger.best_s(self._phase, baseline)
        subj_s = self._ledger.best_s(self._phase, subject)
        value = subj_s / base_s if base_s > 0 else float("inf")
        return PerfExpectation(
            description=f"{self._phase}: ratio of {subject} vs {baseline}",
            value=value,
            rtol=self._rtol,
            detail=f"{baseline} best={base_s:.4g}s, {subject} best={subj_s:.4g}s",
        )


class _Expect:
    """Entry point of the fluent API (see :func:`expect`)."""

    def __init__(self, ledger: PerfLedger, rtol: float) -> None:
        self._ledger = ledger
        self._rtol = rtol

    def phase(self, name: str) -> _PhaseExpectation:
        return _PhaseExpectation(self._ledger, name, self._rtol)


def expect(ledger: PerfLedger, rtol: float = 0.0) -> _Expect:
    """Start a fluent performance assertion over a ledger.

    ``rtol`` loosens every threshold built from this expectation by the
    given relative fraction (``>= t`` passes at ``t*(1-rtol)``; ``<= t``
    passes at ``t*(1+rtol)``) — set it to the noise floor of the hosting
    hardware, keep it 0 for gates that encode semantics rather than
    speed.
    """
    return _Expect(ledger, float(rtol))


def expect_value(
    description: str, value: float, rtol: float = 0.0, detail: str = ""
) -> PerfExpectation:
    """Gate a scalar that was computed elsewhere (e.g. from an artifact)."""
    return PerfExpectation(
        description=description, value=float(value), rtol=float(rtol), detail=detail
    )
