"""Trace analytics: what the recorded spans *mean*.

``repro.obs.tracer`` records spans and ``repro.obs.export`` writes them
out; this module closes the loop by computing the quantities the ROADMAP's
pipelining refactor needs proven from a trace:

* :func:`phase_stats` — per-span-name **inclusive** (own wall) and
  **exclusive** (own wall minus direct children) time.  Exclusive time is
  what attributes a regression to a specific span rather than to
  everything above it.
* :func:`overlap_report` — per-track (thread / adopted worker process)
  busy time and utilization over a window, the cross-track concurrency
  profile (how many tracks were busy simultaneously, for how long), and
  the window's **critical path**.
* :func:`critical_path` — a backward greedy walk over the leaf spans:
  from the window's end, repeatedly step to the leaf span that finishes
  latest before the current time, clipping overlaps.  The resulting chain
  partitions the window into span contributions and idle gaps
  (``sum(contributions) + sum(gaps) == wall``), so "what should I
  optimise next" has a number attached.
* :func:`diff` — span-name-level comparison of two runs (by exclusive
  time), sorted by regression size.

Every entry point accepts a live :class:`~repro.obs.tracer.Tracer`, a
plain ``list[SpanRecord]``, or a path to an exported Chrome-trace /
JSONL file (:func:`load_records` sniffs the format), so post-hoc analysis
of a CI artifact uses the same code path as in-process assertions.

Definitions (see DESIGN.md §12): a track's *busy time* is the measure of
the union of its span intervals — nested spans do not double-count.
*Utilization* is busy time over the window wall.  *Overlap* is the
measure of time during which at least two tracks are busy — the quantity
that will prove INS/CD/REF actually pipeline.
"""
from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs.tracer import SpanRecord, Tracer


def load_chrome_trace(path: str) -> "list[SpanRecord]":
    """Rebuild span records from an exported Chrome trace file.

    Counter events (``"ph": "C"``, the watermark tracks) carry no span
    structure and are skipped; complete events round-trip exactly because
    the exporter stores span/parent ids in ``args``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    records: "list[SpanRecord]" = []
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args", {}))
        span_id = args.pop("span_id", -1)
        parent_id = args.pop("parent_id", -1)
        records.append(
            SpanRecord(
                span_id=int(span_id),
                parent_id=int(parent_id),
                name=str(ev["name"]),
                start_s=float(ev["ts"]) / 1e6,
                duration_s=float(ev["dur"]) / 1e6,
                thread=int(ev.get("tid", 0)),
                attrs=args,
            )
        )
    records.sort(key=lambda r: (r.start_s, r.span_id))
    return records


def load_jsonl(path: str) -> "list[SpanRecord]":
    """Rebuild span records from an exported JSONL event stream."""
    records: "list[SpanRecord]" = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            ev = json.loads(line)
            if ev.get("type") != "span":
                continue
            records.append(
                SpanRecord(
                    span_id=int(ev["span_id"]),
                    parent_id=int(ev["parent_id"]),
                    name=str(ev["name"]),
                    start_s=float(ev["start_s"]),
                    duration_s=float(ev["duration_s"]),
                    thread=int(ev["thread"]),
                    attrs=dict(ev.get("attrs", {})),
                )
            )
    records.sort(key=lambda r: (r.start_s, r.span_id))
    return records


def load_records(source) -> "list[SpanRecord]":
    """Normalise any span source into a sorted ``list[SpanRecord]``.

    Accepts a :class:`Tracer`, a list of records, or a path to a
    Chrome-trace (``{...}`` JSON document) or JSONL export.
    """
    if isinstance(source, Tracer):
        return source.records()
    if isinstance(source, (list, tuple)):
        return sorted(source, key=lambda r: (r.start_s, r.span_id))
    path = str(source)
    with open(path, "r", encoding="utf-8") as fh:
        head = fh.read(64).lstrip()
    # A Chrome trace is one JSON object; JSONL's first record is the
    # one-line meta header.  Both start with '{' — sniff the meta key.
    if head.startswith("{\"type\""):
        return load_jsonl(path)
    if head.startswith("{"):
        try:
            return load_chrome_trace(path)
        except json.JSONDecodeError:
            return load_jsonl(path)
    raise ValueError(f"{path}: not a Chrome trace or JSONL export")


# ---------------------------------------------------------------------------
# Per-name inclusive / exclusive time.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseStat:
    """Aggregate timing of every span sharing one name."""

    name: str
    count: int
    #: Sum of the spans' own wall-clock durations.
    inclusive_s: float
    #: Inclusive minus the summed durations of *direct* children.
    exclusive_s: float

    @property
    def mean_s(self) -> float:
        return self.inclusive_s / self.count if self.count else 0.0


def phase_stats(source, prefix: "str | None" = None) -> "dict[str, PhaseStat]":
    """Per-name inclusive/exclusive time over all spans in ``source``.

    ``prefix`` restricts the result (e.g. ``"phase:"`` for the pipeline
    phases).  Exclusive time is clamped at zero: a child recorded on
    another thread can outlive its parent by scheduling jitter, and a
    negative exclusive would just be that jitter with a sign.
    """
    records = load_records(source)
    child_sum: "dict[int, float]" = {}
    for r in records:
        if r.parent_id != -1:
            child_sum[r.parent_id] = child_sum.get(r.parent_id, 0.0) + r.duration_s
    agg: "dict[str, list[float]]" = {}
    for r in records:
        if prefix is not None and not r.name.startswith(prefix):
            continue
        excl = max(r.duration_s - child_sum.get(r.span_id, 0.0), 0.0)
        entry = agg.setdefault(r.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += r.duration_s
        entry[2] += excl
    return {
        name: PhaseStat(name=name, count=int(c), inclusive_s=inc, exclusive_s=exc)
        for name, (c, inc, exc) in sorted(agg.items())
    }


# ---------------------------------------------------------------------------
# Interval machinery.
# ---------------------------------------------------------------------------


def _union(intervals: "list[tuple[float, float]]") -> "list[tuple[float, float]]":
    """Merge overlapping ``(start, end)`` intervals; result is sorted."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            if end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


def _measure(intervals: "list[tuple[float, float]]") -> float:
    return sum(end - start for start, end in intervals)


# ---------------------------------------------------------------------------
# Critical path.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CriticalPathEntry:
    """One step of the critical-path walk."""

    span: SpanRecord
    #: The portion of the span attributed to the path (overlaps clipped).
    start_s: float
    end_s: float
    #: Idle time between this span's end and the next path entry's start.
    gap_after_s: float

    @property
    def contribution_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class CriticalPath:
    """The chain of leaf spans that bounds the window's wall clock."""

    entries: "tuple[CriticalPathEntry, ...]"
    window_start_s: float
    window_end_s: float

    @property
    def wall_s(self) -> float:
        return self.window_end_s - self.window_start_s

    @property
    def busy_s(self) -> float:
        return sum(e.contribution_s for e in self.entries)

    @property
    def gap_s(self) -> float:
        """Idle time on the path (``busy_s + gap_s == wall_s``)."""
        return self.wall_s - self.busy_s

    def by_name(self) -> "dict[str, float]":
        """Path contribution per span name, descending."""
        totals: "dict[str, float]" = {}
        for e in self.entries:
            totals[e.span.name] = totals.get(e.span.name, 0.0) + e.contribution_s
        return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))


def critical_path(
    source,
    window_start_s: "float | None" = None,
    window_end_s: "float | None" = None,
) -> CriticalPath:
    """Backward greedy critical path over the leaf spans of ``source``.

    Starting at the window's end, repeatedly pick the leaf span with the
    latest end at or before the cursor (preferring, among spans covering
    the cursor, the one starting earliest — the longest backward step),
    clip its contribution to the cursor, and jump to its start.  Time not
    covered by any leaf span becomes a gap entry on the preceding span.
    The walk partitions ``[start, end]`` exactly:
    ``path.busy_s + path.gap_s == path.wall_s``.
    """
    records = load_records(source)
    if not records:
        return CriticalPath(entries=(), window_start_s=0.0, window_end_s=0.0)
    has_children = {r.parent_id for r in records if r.parent_id != -1}
    leaves = [r for r in records if r.span_id not in has_children]
    start = (
        window_start_s
        if window_start_s is not None
        else min(r.start_s for r in records)
    )
    end = (
        window_end_s
        if window_end_s is not None
        else max(r.start_s + r.duration_s for r in records)
    )
    entries: "list[CriticalPathEntry]" = []
    cursor = end
    eps = 1e-12
    # Deterministic candidate order: latest end first, then earliest
    # start (the longest step back), then ids.
    pool = sorted(
        leaves,
        key=lambda r: (-(r.start_s + r.duration_s), r.start_s, r.span_id),
    )
    while cursor > start + eps:
        best = None
        for r in pool:
            if r.start_s >= cursor - eps:
                continue
            r_end = r.start_s + r.duration_s
            if best is None:
                best = r
                continue
            b_end = best.start_s + best.duration_s
            # Prefer the span reaching closest to the cursor; among spans
            # covering the cursor, the earliest start wins.
            r_reach = min(r_end, cursor)
            b_reach = min(b_end, cursor)
            if r_reach > b_reach + eps or (
                abs(r_reach - b_reach) <= eps and r.start_s < best.start_s
            ):
                best = r
        if best is None:
            break
        b_end = min(best.start_s + best.duration_s, cursor)
        gap_after = cursor - b_end
        clip_start = max(best.start_s, start)
        entries.append(
            CriticalPathEntry(
                span=best, start_s=clip_start, end_s=b_end, gap_after_s=gap_after
            )
        )
        cursor = clip_start
        pool = [r for r in pool if r.start_s < cursor - eps]
    # Any idle time before the first span on the path surfaces through
    # the wall - busy accounting (gap_s); no synthetic entry needed.
    entries.reverse()
    return CriticalPath(
        entries=tuple(entries), window_start_s=start, window_end_s=end
    )


# ---------------------------------------------------------------------------
# Overlap / utilization.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrackStats:
    """Busy time of one track (thread or adopted worker) in the window."""

    track: int
    spans: int
    busy_s: float
    utilization: float


@dataclass(frozen=True)
class OverlapReport:
    """Cross-track utilization and overlap of one traced window."""

    window_name: str
    window_start_s: float
    window_end_s: float
    tracks: "tuple[TrackStats, ...]"
    #: Measure of time with >= 2 tracks simultaneously busy.
    overlap_s: float
    #: seconds spent at each concurrency level k >= 1 (index k-1).
    concurrency_s: "tuple[float, ...]"
    critical: CriticalPath

    @property
    def wall_s(self) -> float:
        return self.window_end_s - self.window_start_s

    @property
    def n_tracks(self) -> int:
        return len(self.tracks)

    @property
    def busy_total_s(self) -> float:
        return sum(t.busy_s for t in self.tracks)

    @property
    def max_concurrency(self) -> int:
        return len(self.concurrency_s)

    @property
    def parallel_efficiency(self) -> float:
        """Busy time over the track-seconds available (1.0 = all tracks
        saturated); the number the pipelining refactor must raise."""
        denom = self.n_tracks * self.wall_s
        return self.busy_total_s / denom if denom > 0 else 0.0

    @property
    def effective_parallelism(self) -> float:
        """Busy time over wall time — the realised speedup upper bound."""
        return self.busy_total_s / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> "dict[str, object]":
        return {
            "window": self.window_name,
            "wall_s": self.wall_s,
            "tracks": [
                {
                    "track": t.track,
                    "spans": t.spans,
                    "busy_s": t.busy_s,
                    "utilization": t.utilization,
                }
                for t in self.tracks
            ],
            "overlap_s": self.overlap_s,
            "concurrency_s": list(self.concurrency_s),
            "parallel_efficiency": self.parallel_efficiency,
            "effective_parallelism": self.effective_parallelism,
            "critical_path": {
                "busy_s": self.critical.busy_s,
                "gap_s": self.critical.gap_s,
                "by_name": self.critical.by_name(),
            },
        }


def overlap_report(source, window: str = "window") -> OverlapReport:
    """Per-track utilization, cross-track overlap and the critical path.

    The report covers the extent of the spans named ``window`` (all of
    them, for a multi-window trace) or, when none exist, the full extent
    of the trace.  Tracks are the tracer's dense thread indices — each
    adopted worker process renders as its own track, so on a 2-device
    ``executor="processes"`` run this reports whether the two shards
    actually ran concurrently.
    """
    records = load_records(source)
    if not records:
        return OverlapReport(
            window_name=window,
            window_start_s=0.0,
            window_end_s=0.0,
            tracks=(),
            overlap_s=0.0,
            concurrency_s=(),
            critical=CriticalPath(entries=(), window_start_s=0.0, window_end_s=0.0),
        )
    windows = [r for r in records if r.name == window]
    bounds_src = windows if windows else records
    start = min(r.start_s for r in bounds_src)
    end = max(r.start_s + r.duration_s for r in bounds_src)

    by_track: "dict[int, list[tuple[float, float]]]" = {}
    span_count: "dict[int, int]" = {}
    for r in records:
        r_start = max(r.start_s, start)
        r_end = min(r.start_s + r.duration_s, end)
        if r_end <= r_start:
            continue
        by_track.setdefault(r.thread, []).append((r_start, r_end))
        span_count[r.thread] = span_count.get(r.thread, 0) + 1

    wall = end - start
    tracks = []
    busy_by_track: "dict[int, list[tuple[float, float]]]" = {}
    for track in sorted(by_track):
        busy = _union(by_track[track])
        busy_by_track[track] = busy
        busy_s = _measure(busy)
        tracks.append(
            TrackStats(
                track=track,
                spans=span_count[track],
                busy_s=busy_s,
                utilization=busy_s / wall if wall > 0 else 0.0,
            )
        )

    # Concurrency profile: sweep the per-track busy unions.
    events: "list[tuple[float, int]]" = []
    for busy in busy_by_track.values():
        for s, e in busy:
            events.append((s, 1))
            events.append((e, -1))
    events.sort()
    concurrency: "list[float]" = []
    active = 0
    prev = start
    for t, delta in events:
        if t > prev and active > 0:
            while len(concurrency) < active:
                concurrency.append(0.0)
            concurrency[active - 1] += t - prev
        prev = t
        active += delta
    overlap_s = sum(concurrency[1:])

    critical = critical_path(records, window_start_s=start, window_end_s=end)
    return OverlapReport(
        window_name=window,
        window_start_s=start,
        window_end_s=end,
        tracks=tuple(tracks),
        overlap_s=overlap_s,
        concurrency_s=tuple(concurrency),
        critical=critical,
    )


# ---------------------------------------------------------------------------
# Run-vs-run diff.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpanDelta:
    """One span name's timing change between two runs."""

    name: str
    a_count: int
    b_count: int
    a_exclusive_s: float
    b_exclusive_s: float
    a_inclusive_s: float
    b_inclusive_s: float

    @property
    def delta_s(self) -> float:
        """Exclusive-time change, positive = run B slower."""
        return self.b_exclusive_s - self.a_exclusive_s

    @property
    def ratio(self) -> float:
        if self.a_exclusive_s > 0.0:
            return self.b_exclusive_s / self.a_exclusive_s
        return float("inf") if self.b_exclusive_s > 0.0 else 1.0


@dataclass(frozen=True)
class TraceDiff:
    """Span-level attribution of the timing difference of two runs."""

    deltas: "tuple[SpanDelta, ...]"

    @property
    def total_delta_s(self) -> float:
        return sum(d.delta_s for d in self.deltas)

    def regressions(self, min_delta_s: float = 0.0) -> "tuple[SpanDelta, ...]":
        """Deltas where run B spent more exclusive time than run A."""
        return tuple(d for d in self.deltas if d.delta_s > min_delta_s)


def diff(run_a, run_b) -> TraceDiff:
    """Attribute the timing difference between two runs to span names.

    Exclusive time (a span's own wall minus its direct children) is the
    comparison basis, so a regression shows up at the span that actually
    got slower, not at every ancestor containing it.  Deltas are sorted
    by descending absolute change.
    """
    stats_a = phase_stats(run_a)
    stats_b = phase_stats(run_b)
    names = sorted(set(stats_a) | set(stats_b))
    deltas = []
    for name in names:
        a = stats_a.get(name)
        b = stats_b.get(name)
        deltas.append(
            SpanDelta(
                name=name,
                a_count=a.count if a else 0,
                b_count=b.count if b else 0,
                a_exclusive_s=a.exclusive_s if a else 0.0,
                b_exclusive_s=b.exclusive_s if b else 0.0,
                a_inclusive_s=a.inclusive_s if a else 0.0,
                b_inclusive_s=b.inclusive_s if b else 0.0,
            )
        )
    deltas.sort(key=lambda d: (-abs(d.delta_s), d.name))
    return TraceDiff(deltas=tuple(deltas))
