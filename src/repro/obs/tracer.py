"""Nested-span tracing with a zero-overhead null default.

A :class:`Tracer` records a tree of named, wall-clock-timed spans.  Spans
nest through ``with`` blocks; each thread keeps its own span stack (a
worker thread's spans attach under whatever span was open on *that*
thread, or become roots), and finished spans are appended to one shared
record list.

The default throughout the pipeline is :data:`NULL_TRACER`: calling
``span()`` on it returns a shared no-op context manager, so the
instrumented hot loops pay one attribute lookup and one call per span
site — the micro-benchmark ``benchmarks/test_obs_overhead.py`` holds this
under 2% of a gridbased screen.

Span names follow the registry in DESIGN.md §7:

* ``window`` — one screening run (attrs: method, backend, objects);
* ``campaign.window`` — one campaign window wrapping its ``window``;
* ``phase:<NAME>`` — a pipeline phase (ALLOC, GRID, INS, CD, COP, REF);
* ``round`` — one computation round of the grid build (attrs:
  start_step, n_steps);
* ``chunk`` — one fixed-lane REF chunk (attrs: start, end).
"""
from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    span_id: int
    #: Parent span id, or -1 for a root span.
    parent_id: int
    name: str
    #: Start time in seconds since the tracer's epoch.
    start_s: float
    duration_s: float
    #: Small dense thread index (0 = the first thread seen).
    thread: int
    attrs: "dict[str, object]" = field(default_factory=dict)


class _NullSpan:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-overhead default: every span is the shared no-op span."""

    __slots__ = ()

    #: False — instrumentation sites may skip attr-dict construction.
    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN


NULL_TRACER = NullTracer()


class _Span:
    """A live span; finalises into a :class:`SpanRecord` on exit.

    Exiting through an exception marks the record with an ``error`` attr
    (the exception type name), so a phase that blew up — e.g. a
    conjunction-map overflow mid-CD — is distinguishable from a clean
    phase of the same duration.
    """

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_start", "_thread")

    def __init__(self, tracer: "Tracer", name: str, attrs: "dict[str, object]") -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id = -1
        self._start = 0.0
        self._thread = 0

    def set(self, **attrs) -> None:
        """Attach (or update) span attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._exit(self)
        return False


class Tracer:
    """Collects a hierarchical span tree across threads.

    Thread-safe: each thread has its own open-span stack; the finished
    record list and the id/thread-index counters are lock-protected.
    """

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        #: Wall-clock time of the epoch, anchoring this tracer's relative
        #: timeline so spans recorded by *other processes* can be shifted
        #: onto it (see :meth:`adopt`).
        self._epoch_unix = time.time()
        self._lock = threading.Lock()
        self._records: "list[SpanRecord]" = []
        self._local = threading.local()
        self._next_id = 0
        self._thread_ids: "dict[object, int]" = {}
        self._adoptions = 0

    def span(self, name: str, **attrs) -> _Span:
        """Open a new span; use as a context manager."""
        return _Span(self, name, attrs)

    # -- internal ------------------------------------------------------

    def _stack(self) -> "list[_Span]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span: _Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else -1
        ident = threading.get_ident()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
            span._thread = self._thread_ids.setdefault(ident, len(self._thread_ids))
        span._start = time.perf_counter()
        stack.append(span)

    def _exit(self, span: _Span) -> None:
        end = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        record = SpanRecord(
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            start_s=span._start - self._epoch,
            duration_s=end - span._start,
            thread=span._thread,
            attrs=dict(span.attrs),
        )
        with self._lock:
            self._records.append(record)

    # -- cross-process re-parenting ------------------------------------

    @property
    def epoch_unix(self) -> float:
        """Wall-clock time of this tracer's epoch (for cross-process shifts)."""
        return self._epoch_unix

    def elapsed_s(self) -> float:
        """Seconds since this tracer's epoch — the span-timeline clock.

        Samplers (:class:`repro.obs.resources.ResourceSampler`) stamp
        their series with this clock so exported counter tracks line up
        with the spans in Perfetto.
        """
        return time.perf_counter() - self._epoch

    def adopt(
        self,
        records: "list[SpanRecord]",
        parent_id: int = -1,
        epoch_unix: "float | None" = None,
    ) -> int:
        """Graft finished spans from another tracer into this span tree.

        The worker processes of the ``processes`` executor each run their
        own :class:`Tracer`; the parent calls ``adopt`` with each worker's
        finished records to merge them into one tree:

        * every adopted span gets a fresh span id from this tracer's
          counter (ids stay unique across the merged trace);
        * parent links *within* ``records`` are preserved through the id
          remap; spans that were roots in the source tracer attach under
          ``parent_id`` (typically the parent's open ``window`` span);
        * source thread indices map to fresh dense thread indices here, so
          each worker renders as its own track;
        * ``epoch_unix`` — the source tracer's :attr:`epoch_unix` — shifts
          the records' start times onto this tracer's timeline.

        Returns the number of adopted spans.
        """
        offset = (epoch_unix - self._epoch_unix) if epoch_unix is not None else 0.0
        with self._lock:
            self._adoptions += 1
            id_map: "dict[int, int]" = {}
            for r in records:
                id_map[r.span_id] = self._next_id
                self._next_id += 1
            for r in records:
                thread_key = ("adopted", self._adoptions, r.thread)
                thread = self._thread_ids.setdefault(thread_key, len(self._thread_ids))
                self._records.append(
                    SpanRecord(
                        span_id=id_map[r.span_id],
                        parent_id=id_map.get(r.parent_id, parent_id),
                        name=r.name,
                        start_s=r.start_s + offset,
                        duration_s=r.duration_s,
                        thread=thread,
                        attrs=dict(r.attrs),
                    )
                )
        return len(records)

    # -- queries -------------------------------------------------------

    def records(self) -> "list[SpanRecord]":
        """All finished spans, sorted by start time."""
        with self._lock:
            return sorted(self._records, key=lambda r: (r.start_s, r.span_id))

    def spans(self, name: str) -> "list[SpanRecord]":
        """Finished spans with the given name, sorted by start time."""
        return [r for r in self.records() if r.name == name]

    def ancestry(self, record: SpanRecord) -> "list[SpanRecord]":
        """Parent chain of a span, nearest first."""
        by_id = {r.span_id: r for r in self.records()}
        out: "list[SpanRecord]" = []
        parent = record.parent_id
        while parent != -1 and parent in by_id:
            out.append(by_id[parent])
            parent = by_id[parent].parent_id
        return out
