"""Mergeable metrics: counters, gauges, histograms, funnels, series.

One :class:`MetricsRegistry` per screening run (or per worker chunk),
merged like :class:`repro.parallel.backend.RefTelemetry`: counters and
histogram buckets *add*, gauges keep their *maximum*, series concatenate
and re-sort on their timestamps — every combiner is commutative and
associative, so merged totals are independent of chunk arrival order and
thread scheduling.

Histograms use **fixed** bucket edges chosen at creation (the upper bound
of each bucket, ascending, plus an implicit overflow bucket), so two
registries instrumenting the same quantity always merge bucket-for-bucket.

A :class:`Funnel` tracks the candidate pipeline: an ordered list of stages
with pairs-in / pairs-out counts.  Self-consistency (stage N's out equals
stage N+1's in) is checked by :meth:`Funnel.check`, and the CI smoke job
asserts it on a real traced run.

Metric names follow the registry table in DESIGN.md §7.
"""
from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np


@dataclass
class Counter:
    """A monotonically increasing integer counter."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += int(amount)

    def merge(self, other: "Counter") -> None:
        self.value += other.value


@dataclass
class Gauge:
    """A max-tracking gauge (e.g. peak load factor).

    ``record`` keeps the maximum observed value: the only last-value-free
    combiner that merges deterministically regardless of chunk order.
    """

    name: str
    value: float = 0.0
    observed: bool = False

    def record(self, value: float) -> None:
        value = float(value)
        if value != value:
            # NaN: "value > self.value" is False for every later record, so
            # a single NaN first observation would freeze the gauge at NaN
            # forever.  A NaN carries no magnitude — drop it.
            return
        if not self.observed or value > self.value:
            self.value = value
        self.observed = True

    def merge(self, other: "Gauge") -> None:
        if other.observed:
            self.record(other.value)


@dataclass
class FixedHistogram:
    """Fixed-bucket histogram: bucket ``k`` counts values ``<= edges[k]``
    (and above the previous edge); one extra overflow bucket at the end.

    Non-finite observations (NaN, ±inf) are excluded: a single NaN would
    poison ``total`` (and therefore ``mean``) permanently, and an inf in
    the overflow bucket would make ``mean`` inconsistent with the counted
    ``n``.  They are tallied in :attr:`dropped` instead, so the drop is
    visible rather than silent.
    """

    name: str
    edges: "tuple[float, ...]"
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]
    total: float = 0.0
    n: int = 0
    #: Non-finite observations excluded from the buckets and the mean.
    dropped: int = 0

    def __post_init__(self) -> None:
        if not self.edges or list(self.edges) != sorted(set(self.edges)):
            raise ValueError(f"histogram edges must be ascending and distinct, got {self.edges}")
        if self.counts is None:
            self.counts = np.zeros(len(self.edges) + 1, dtype=np.int64)

    def observe(self, values) -> None:
        vals = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        if vals.size == 0:
            return
        finite = np.isfinite(vals)
        if not finite.all():
            self.dropped += int(vals.size - finite.sum())
            vals = vals[finite]
            if vals.size == 0:
                return
        idx = np.searchsorted(np.asarray(self.edges, dtype=np.float64), vals, side="left")
        np.add.at(self.counts, idx, 1)
        self.total += float(vals.sum())
        self.n += int(vals.size)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def merge(self, other: "FixedHistogram") -> None:
        if tuple(other.edges) != tuple(self.edges):
            raise ValueError(
                f"cannot merge histogram {self.name!r}: edges {self.edges} != {other.edges}"
            )
        self.counts += other.counts
        self.total += other.total
        self.n += other.n
        self.dropped += other.dropped

    def as_dict(self) -> "dict[str, object]":
        return {
            "edges": list(self.edges),
            "counts": self.counts.tolist(),
            "total": self.total,
            "n": self.n,
            "mean": self.mean,
            "dropped": self.dropped,
        }


@dataclass
class Series:
    """A timestamped sample series (e.g. sampled RSS over a run).

    The time-series counterpart of :class:`Gauge`: ``record`` appends a
    ``(t_s, value)`` sample, and the merged combiner concatenates then
    re-sorts on ``(t_s, value)`` — a canonical order, so merging shard
    series is order-insensitive like every other instrument here.
    Timestamps are seconds on the producer's chosen clock; samplers align
    them with a tracer's epoch so counter tracks render on the span
    timeline (see :meth:`repro.obs.tracer.Tracer.elapsed_s`).
    """

    name: str
    samples: "list[tuple[float, float]]" = field(default_factory=list)

    def record(self, t_s: float, value: float) -> None:
        self.samples.append((float(t_s), float(value)))

    def merge(self, other: "Series") -> None:
        self.samples.extend(other.samples)
        self.samples.sort()

    def sorted_samples(self) -> "list[tuple[float, float]]":
        return sorted(self.samples)

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def max(self) -> float:
        return max((v for _, v in self.samples), default=0.0)

    def as_dict(self) -> "dict[str, object]":
        samples = self.sorted_samples()
        return {
            "t_s": [t for t, _ in samples],
            "values": [v for _, v in samples],
            "n": len(samples),
            "max": self.max,
        }


@dataclass
class FunnelStage:
    """One stage of the candidate funnel: candidates in, candidates out."""

    name: str
    n_in: int = 0
    n_out: int = 0

    @property
    def survival(self) -> float:
        return self.n_out / self.n_in if self.n_in else 1.0


class Funnel:
    """Ordered pipeline stages with in/out candidate counts.

    Stages appear in first-recorded order (the pipeline's code order);
    re-recording a stage accumulates, which is how the legacy baseline's
    chunked filter blocks sum into one funnel row.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._stages: "dict[str, FunnelStage]" = {}
        #: Observed precedence constraints: ``(a, b)`` when stage ``a``
        #: was first recorded immediately before stage ``b`` in some
        #: funnel folded into this one.  Merging unions these sets, and
        #: the stage order is recomputed from the union — a pure
        #: function of the constraints, so the merged order cannot
        #: depend on shard arrival order.
        self._order_edges: "set[tuple[str, str]]" = set()

    def record(self, stage: str, n_in: int, n_out: int) -> None:
        entry = self._stages.get(stage)
        if entry is None:
            if self._stages:
                self._order_edges.add((next(reversed(self._stages)), stage))
            entry = self._stages[stage] = FunnelStage(stage)
        entry.n_in += int(n_in)
        entry.n_out += int(n_out)

    @property
    def stages(self) -> "list[FunnelStage]":
        return list(self._stages.values())

    def check(self) -> "list[str]":
        """Adjacency violations: stage N's out must equal stage N+1's in."""
        out = []
        stages = self.stages
        for a, b in zip(stages, stages[1:]):
            if a.n_out != b.n_in:
                out.append(
                    f"funnel {self.name!r}: stage {a.name!r} emits {a.n_out} "
                    f"but stage {b.name!r} receives {b.n_in}"
                )
        return out

    def merge(self, other: "Funnel") -> None:
        """Fold another funnel in, keeping one deterministic stage order.

        Naively appending unseen stages would make the merged stage order
        depend on which shard arrived first (a shard that skipped a stage
        — e.g. one whose chunk rejected everything before a later filter —
        records a *subset* of the pipeline's stages).  Instead the merged
        order is a deterministic topological sort of the union of both
        funnels' observed precedence constraints — unioning sets and
        sorting the result commutes *and* associates, so any number of
        shards merged in any order yields one identical stage order
        (property-tested in ``tests/obs/test_merge_properties.py``).
        Stage pairs no shard co-observed carry no constraint and fall
        back to lexicographic order inside the sort.
        """
        self._order_edges |= other._order_edges
        for stage in other.stages:
            entry = self._stages.get(stage.name)
            if entry is None:
                entry = self._stages[stage.name] = FunnelStage(stage.name)
            entry.n_in += stage.n_in
            entry.n_out += stage.n_out
        self._stages = {
            name: self._stages[name]
            for name in _stage_topo_order(set(self._stages), self._order_edges)
        }

    def as_dict(self) -> "dict[str, object]":
        return {
            "stages": [
                {"name": s.name, "in": s.n_in, "out": s.n_out, "survival": s.survival}
                for s in self.stages
            ]
        }


def _stage_topo_order(
    nodes: "set[str]", edges: "set[tuple[str, str]]"
) -> "list[str]":
    """Deterministic topological order of stage names.

    Kahn's algorithm taking the lexicographically smallest ready node
    each step; a constraint cycle (impossible for honest subsequences of
    one pipeline order, but kept deterministic anyway) is broken by
    releasing the smallest remaining node.  The output depends only on
    ``(nodes, edges)``, never on insertion or merge order.
    """
    indegree = {n: 0 for n in nodes}
    successors: "dict[str, list[str]]" = {n: [] for n in nodes}
    for a, b in edges:
        if a in indegree and b in indegree:
            successors[a].append(b)
            indegree[b] += 1
    ready = [n for n in nodes if indegree[n] == 0]
    heapq.heapify(ready)
    remaining = set(nodes)
    order: "list[str]" = []
    while remaining:
        node = heapq.heappop(ready) if ready else min(remaining)
        if node not in remaining:
            continue
        remaining.discard(node)
        order.append(node)
        for succ in successors[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0 and succ in remaining:
                heapq.heappush(ready, succ)
    return order


class MetricsRegistry:
    """Named metric instruments, created on first use and mergeable."""

    def __init__(self) -> None:
        self.counters: "dict[str, Counter]" = {}
        self.gauges: "dict[str, Gauge]" = {}
        self.histograms: "dict[str, FixedHistogram]" = {}
        self.funnels: "dict[str, Funnel]" = {}
        self.series: "dict[str, Series]" = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, edges: "tuple[float, ...] | None" = None) -> FixedHistogram:
        h = self.histograms.get(name)
        if h is None:
            if edges is None:
                raise ValueError(f"histogram {name!r} does not exist yet; pass its edges")
            h = self.histograms[name] = FixedHistogram(name, tuple(edges))
        elif edges is not None and tuple(edges) != tuple(h.edges):
            raise ValueError(f"histogram {name!r} already exists with edges {h.edges}")
        return h

    def funnel(self, name: str) -> Funnel:
        f = self.funnels.get(name)
        if f is None:
            f = self.funnels[name] = Funnel(name)
        return f

    def timeseries(self, name: str) -> Series:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(name)
        return s

    def merge(self, other: "MetricsRegistry") -> None:
        """Combine another registry into this one (commutative totals)."""
        for name, c in other.counters.items():
            self.counter(name).merge(c)
        for name, g in other.gauges.items():
            self.gauge(name).merge(g)
        for name, h in other.histograms.items():
            self.histogram(name, h.edges).merge(h)
        for name, f in other.funnels.items():
            self.funnel(name).merge(f)
        for name, s in other.series.items():
            self.timeseries(name).merge(s)

    def as_dict(self) -> "dict[str, object]":
        """Plain-dict snapshot with deterministically sorted names."""
        return {
            "counters": {k: self.counters[k].value for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].value for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].as_dict() for k in sorted(self.histograms)},
            "funnels": {k: self.funnels[k].as_dict() for k in sorted(self.funnels)},
            "series": {k: self.series[k].as_dict() for k in sorted(self.series)},
        }
