"""Fixed-size open-addressing hash map with non-blocking insertion.

Implements the paper's grid hash set (Section IV-A1/2):

* fixed capacity chosen up front (Section V-B: twice the number of
  satellites, to break up linear-probing clusters);
* slot index = ``murmur3(key) mod M`` with linear probing
  ``s_{i+1} = (s_i + 1) mod M`` (Eq. 2) on collision;
* ``EMPTY`` is the maximum 64-bit value and the whole key area is
  initialised to it;
* a slot is claimed with a CAS on its key; the slot's *value* (here: the
  head index of the cell's singly linked satellite list) is maintained with
  its own CAS loop, so concurrent inserters into the same cell never lose
  an entry.
"""
from __future__ import annotations

import numpy as np

from repro.constants import EMPTY_KEY, NULL_INDEX
from repro.spatial.atomic import AtomicUint64Array
from repro.spatial.hashing import HASH_FUNCTIONS, murmur3_fmix64_array

#: uint64 encoding of "no linked-list entry yet" stored in the value array.
_NULL_U64 = (1 << 64) - 1


class HashMapFullError(RuntimeError):
    """Raised when an insert probes every slot without finding a free one."""


class PresenceFilter:
    """One-bit-per-bucket membership filter over a set of uint64 keys.

    A key hashes (fmix64) to one of ``2^m`` buckets; a probe whose bucket
    bit is clear is definitely absent, a set bit means "maybe present".
    Sized at ~4 buckets per key the filter rejects ~90 % of misses for the
    price of one hash + one byte gather — in the sparse-occupancy regime
    nearly every neighbour-cell probe misses, so this replaces most of the
    binary searches / table walks during pair emission.

    Shared by :class:`repro.spatial.vectorgrid.SortedGrid` (whose inline
    filter this class extracts) and the coherent pair emitter's per-step
    neighbour probes over both grid implementations.
    """

    __slots__ = ("_bits", "_shift", "n_buckets")

    def __init__(self, keys: np.ndarray, buckets_per_key: int = 4, min_bits: int = 10) -> None:
        m_bits = max(int(np.ceil(np.log2(buckets_per_key * len(keys) + 1))), min_bits)
        self.n_buckets = 1 << m_bits
        self._shift = np.uint64(64 - m_bits)
        bits = np.zeros(self.n_buckets, dtype=bool)
        if len(keys):
            bits[(murmur3_fmix64_array(keys) >> self._shift).astype(np.int64)] = True
        self._bits = bits

    def maybe_contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean mask: False entries are definitely not in the key set."""
        return self._bits[(murmur3_fmix64_array(keys) >> self._shift).astype(np.int64)]

    @property
    def memory_bytes(self) -> int:
        return self._bits.nbytes


class FixedSizeHashMap:
    """Open-addressing (key -> list head) map with CAS-based insertion.

    Parameters
    ----------
    capacity:
        Number of slots.  The paper sizes this at 2x the expected element
        count; sizing helpers live in :mod:`repro.perfmodel.memory`.
    hash_name:
        Slot hash from :data:`repro.spatial.hashing.HASH_FUNCTIONS`
        (default ``murmur3``, the paper's choice; the alternatives exist
        for the hash-quality ablation bench).

    Notes
    -----
    Values are stored as uint64 with ``2^64-1`` meaning "null"; the public
    API converts to/from Python's ``-1`` null convention
    (:data:`repro.constants.NULL_INDEX`).  The ``probe_count`` /
    ``insert_count`` statistics are maintained without synchronisation —
    exact under single-writer phases, indicative under threads.
    """

    __slots__ = ("capacity", "_keys", "_values", "_hash", "hash_name", "probe_count", "insert_count")

    def __init__(self, capacity: int, hash_name: str = "murmur3") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if hash_name not in HASH_FUNCTIONS:
            raise ValueError(
                f"unknown hash {hash_name!r}; choose from {sorted(HASH_FUNCTIONS)}"
            )
        self.capacity = capacity
        self.hash_name = hash_name
        self._hash = HASH_FUNCTIONS[hash_name]
        self._keys = AtomicUint64Array(capacity, fill=EMPTY_KEY)
        self._values = AtomicUint64Array(capacity, fill=_NULL_U64)
        self.probe_count = 0
        self.insert_count = 0

    def claim_slot(self, key: int) -> int:
        """Find or claim the slot for ``key``; returns the slot index.

        This is the paper's insertion step: CAS the key into the slot if
        empty; if the CAS reports a different key, linearly probe.  If the
        CAS reports the *same* key, another thread (or an earlier insert)
        already owns the cell and we simply share it.
        """
        if not 0 <= key < EMPTY_KEY:
            raise ValueError(f"key {key} outside the valid range [0, 2^64-1)")
        slot = self._hash(key) % self.capacity
        for _ in range(self.capacity):
            self.probe_count += 1
            observed = self._keys.compare_and_swap(slot, EMPTY_KEY, key)
            if observed == EMPTY_KEY:
                self.insert_count += 1
                return slot  # claimed a fresh slot
            if observed == key:
                return slot  # cell already present
            slot = (slot + 1) % self.capacity  # hash collision: Eq. (2)
        raise HashMapFullError(
            f"hash map with capacity {self.capacity} is full while inserting key {key}"
        )

    def lookup(self, key: int) -> int:
        """Slot index holding ``key``, or -1 if absent.

        Safe concurrently with inserters: a slot's key transitions only
        EMPTY -> k exactly once, so the probe sequence is stable.
        """
        slot = self._hash(key) % self.capacity
        for _ in range(self.capacity):
            self.probe_count += 1
            observed = self._keys.load(slot)
            if observed == key:
                return slot
            if observed == EMPTY_KEY:
                return -1
            slot = (slot + 1) % self.capacity
        return -1

    def get_value(self, slot: int) -> int:
        """Current value of a slot (-1 if never set)."""
        raw = self._values.load(slot)
        return NULL_INDEX if raw == _NULL_U64 else int(raw)

    def cas_value(self, slot: int, expected: int, new: int) -> int:
        """CAS on the slot's value using the -1-for-null convention.

        Returns the previous value (converted), CUDA ``atomicCAS`` style.
        """
        exp_raw = _NULL_U64 if expected == NULL_INDEX else expected
        new_raw = _NULL_U64 if new == NULL_INDEX else new
        old_raw = self._values.compare_and_swap(slot, exp_raw, new_raw)
        return NULL_INDEX if old_raw == _NULL_U64 else int(old_raw)

    def set_value(self, slot: int, value: int) -> None:
        """Unconditional value store (single-writer phases only)."""
        self._values.store(slot, _NULL_U64 if value == NULL_INDEX else value)

    # ------------------------------------------------------------------
    # Bulk read-only access for the detection phase (no writers running).
    # ------------------------------------------------------------------

    def occupied_slots(self) -> np.ndarray:
        """Indices of all non-empty slots (post-insertion bulk phase)."""
        keys = self._keys.view()
        return np.nonzero(keys != np.uint64(EMPTY_KEY))[0]

    def keys_array(self) -> np.ndarray:
        """Read-only view of the raw key array (EMPTY_KEY marks free slots)."""
        return self._keys.view()

    def values_array(self) -> np.ndarray:
        """Read-only view of the raw value array (2^64-1 marks null)."""
        return self._values.view()

    @property
    def size(self) -> int:
        """Number of occupied slots."""
        return int((self._keys.view() != np.uint64(EMPTY_KEY)).sum())

    @property
    def load_factor(self) -> float:
        """Occupied fraction of the table."""
        return self.size / self.capacity

    @property
    def memory_bytes(self) -> int:
        """Backing storage size: 16 B per slot (key + value), as in V-B."""
        return self.capacity * 16
