"""CAS-semantics atomic primitives: the ``std::atomic`` / ``atomicCAS`` shim.

The paper's hash map is *non-blocking*: a slot is claimed with an atomic
compare-and-swap and linked-list heads are swapped the same way
(Section IV-A2).  CPython has no raw 64-bit CAS on array elements, so this
module provides the protocol on top of a striped-lock uint64 array:

* the *algorithm* above this layer is identical to the paper's — claim a
  slot with CAS, retry with linear probing on failure, publish a list head
  with a CAS loop;
* the *implementation* of one CAS is a few bytecode instructions inside a
  stripe lock, which under the GIL is the closest faithful stand-in (see
  DESIGN.md, substitution table).

Interleavings between threads still happen at CAS granularity, so the
lock-freedom-dependent correctness properties (no lost inserts, no
duplicated slots, consistent linked lists) are genuinely exercised by the
threaded backend and its tests.
"""
from __future__ import annotations

import threading

import numpy as np

#: Number of lock stripes.  Power of two so the stripe index is a mask.
_DEFAULT_STRIPES = 64


class AtomicUint64Array:
    """A fixed-length array of uint64 cells supporting CAS/load/store.

    The semantics mirror CUDA's ``atomicCAS``: :meth:`compare_and_swap`
    returns the value the cell held *before* the operation, so callers
    detect success by comparing the return value with ``expected``.
    """

    __slots__ = ("_data", "_locks", "_stripe_mask")

    def __init__(self, length: int, fill: int = 0, stripes: int = _DEFAULT_STRIPES) -> None:
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        if stripes <= 0 or stripes & (stripes - 1):
            raise ValueError(f"stripes must be a positive power of two, got {stripes}")
        self._data = np.full(length, fill, dtype=np.uint64)
        self._locks = [threading.Lock() for _ in range(stripes)]
        self._stripe_mask = stripes - 1

    def __len__(self) -> int:
        return len(self._data)

    def load(self, index: int) -> int:
        """Atomic read of one cell."""
        return int(self._data[index])

    def store(self, index: int, value: int) -> None:
        """Atomic write of one cell."""
        with self._locks[index & self._stripe_mask]:
            self._data[index] = value

    def compare_and_swap(self, index: int, expected: int, new: int) -> int:
        """CAS: if the cell equals ``expected``, replace it with ``new``.

        Returns the previous cell value either way (CUDA ``atomicCAS``
        convention): the call succeeded iff the return value equals
        ``expected``.
        """
        lock = self._locks[index & self._stripe_mask]
        with lock:
            old = int(self._data[index])
            if old == expected:
                self._data[index] = new
            return old

    def exchange(self, index: int, new: int) -> int:
        """Unconditionally replace the cell; returns the previous value."""
        with self._locks[index & self._stripe_mask]:
            old = int(self._data[index])
            self._data[index] = new
            return old

    def snapshot(self) -> np.ndarray:
        """A copy of the raw array (for read-only bulk phases and tests).

        Only safe as a consistent snapshot once all writers have finished —
        which matches the paper's phase structure (insertion completes
        before detection begins).
        """
        return self._data.copy()

    def view(self) -> np.ndarray:
        """Zero-copy read-only view for the single-writer-free bulk phase."""
        v = self._data.view()
        v.flags.writeable = False
        return v


class AtomicCounter:
    """Atomic fetch-and-add counter (entry-pool allocation, statistics)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def fetch_add(self, amount: int = 1) -> int:
        """Add ``amount``; return the value *before* the addition."""
        with self._lock:
            old = self._value
            self._value = old + amount
            return old

    @property
    def value(self) -> int:
        return self._value
