"""Data-parallel grid builds: the GPU-kernel analogue of the paper.

Two implementations with identical observable behaviour:

* :class:`SortedGrid` — sort-based cell grouping plus ``searchsorted``
  neighbour lookup.  This is the throughput path: every stage is a fused
  numpy array operation, mirroring how a GPU kernel assigns one thread per
  (satellite, step) tuple with no Python-level loop over satellites.
* :class:`VectorHashGrid` — a faithful emulation of the paper's CUDA
  insertion kernel: a *real* open-addressing table is built in iterative
  CAS-conflict-resolution rounds (one round per contention level, winners
  chosen with ``np.minimum.at`` scatter reductions — the SIMT equivalent of
  "exactly one thread's atomicCAS succeeds per slot per round"), then the
  per-cell singly linked lists are attached with the same round scheme.

Both emit candidate pairs through the shared ragged-cartesian machinery at
the bottom of this module, and the test suite proves they agree with each
other and with the serial :class:`repro.spatial.grid.UniformGrid`.
"""
from __future__ import annotations

import numpy as np

from repro.constants import EMPTY_KEY, NULL_INDEX, SIM_HALF_EXTENT
from repro.spatial.grid import HALF_NEIGHBOR_OFFSETS
from repro.spatial.hashing import CELL_RANGE, murmur3_fmix64_array, pack_cell_key, unpack_cell_key

_EMPTY_U64 = np.uint64(EMPTY_KEY)


def compute_cell_keys(positions: np.ndarray, cell_size: float) -> np.ndarray:
    """Packed cell keys for an ``(n, 3)`` position array (uint64 ``(n,)``)."""
    pos = np.asarray(positions, dtype=np.float64)
    if np.any(np.abs(pos) > SIM_HALF_EXTENT):
        worst = float(np.abs(pos).max())
        raise ValueError(
            f"position component {worst:.1f} km outside the simulation cube "
            f"(half extent {SIM_HALF_EXTENT:.0f} km)"
        )
    coords = np.floor((pos + SIM_HALF_EXTENT) / cell_size).astype(np.int64)
    return pack_cell_key(coords[:, 0], coords[:, 1], coords[:, 2])


class SortedGrid:
    """Sort-based cell grouping for one sampling step.

    Parameters
    ----------
    cell_size:
        Cell side length in km.

    After :meth:`build`, the grid exposes the occupied cells in sorted key
    order with start offsets and counts (a CSR-like layout), which both the
    intra-cell and the neighbour pair emission consume without touching
    Python objects.
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0.0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self.sorted_ids: np.ndarray | None = None
        self.unique_keys: np.ndarray | None = None
        self.start: np.ndarray | None = None
        self.counts: np.ndarray | None = None

    def build(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Group the population by cell key (one argsort, no hashing)."""
        keys = compute_cell_keys(positions, self.cell_size)
        ids = np.asarray(sat_ids, dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        self.sorted_ids = ids[order]
        self.unique_keys, self.start, self.counts = _group_sorted(sorted_keys)

    def occupancy(self) -> "dict[int, list[int]]":
        """Mapping packed cell key -> sorted satellite ids (for tests)."""
        self._require_built()
        out: dict[int, list[int]] = {}
        for k, s, c in zip(self.unique_keys, self.start, self.counts):
            out[int(k)] = sorted(int(x) for x in self.sorted_ids[s : s + c])
        return out

    def candidate_pairs(self) -> "tuple[np.ndarray, np.ndarray]":
        """Unordered candidate pairs ``(i, j)`` with ``i < j`` elementwise."""
        self._require_built()
        chunks_i: list[np.ndarray] = []
        chunks_j: list[np.ndarray] = []
        intra = _intra_cell_pairs(self.sorted_ids, self.start, self.counts)
        if intra is not None:
            chunks_i.append(intra[0])
            chunks_j.append(intra[1])

        ux, uy, uz = unpack_cell_key(self.unique_keys)
        for dx, dy, dz in HALF_NEIGHBOR_OFFSETS:
            nx, ny, nz = ux + dx, uy + dy, uz + dz
            valid = (
                (nx >= 0) & (nx < CELL_RANGE)
                & (ny >= 0) & (ny < CELL_RANGE)
                & (nz >= 0) & (nz < CELL_RANGE)
            )
            if not valid.any():
                continue
            src = np.nonzero(valid)[0]
            nkeys = pack_cell_key(nx[src], ny[src], nz[src])
            pos = np.searchsorted(self.unique_keys, nkeys)
            found = (pos < len(self.unique_keys)) & (self.unique_keys[np.minimum(pos, len(self.unique_keys) - 1)] == nkeys)
            if not found.any():
                continue
            a_cells = src[found]
            b_cells = pos[found]
            cross = _cross_cell_pairs(self.sorted_ids, self.start, self.counts, a_cells, b_cells)
            if cross is not None:
                chunks_i.append(cross[0])
                chunks_j.append(cross[1])

        if not chunks_i:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        i = np.concatenate(chunks_i)
        j = np.concatenate(chunks_j)
        lo = np.minimum(i, j)
        hi = np.maximum(i, j)
        return lo, hi

    @property
    def n_occupied_cells(self) -> int:
        self._require_built()
        return len(self.unique_keys)

    def _require_built(self) -> None:
        if self.sorted_ids is None:
            raise RuntimeError("grid not built yet - call build() first")


class VectorHashGrid:
    """CAS-round emulation of the paper's GPU hash-map insertion kernel.

    Builds a genuine fixed-size open-addressing table (key area initialised
    to the 2^64-1 EMPTY sentinel, linear probing, 2x slot factor) where
    each "round" resolves the CAS winners of all still-contending lanes at
    once:

    1. *slot resolution* — every lane reads its probe slot; lanes seeing
       their own key are done; lanes seeing EMPTY contend, and the winner
       per slot (scatter-min, the deterministic stand-in for "whichever
       thread's atomicCAS lands first") writes its key; losers re-read;
       lanes seeing a foreign key advance linearly (Eq. 2);
    2. *list attach* — every unresolved lane points its entry's ``next`` at
       the current head and the per-slot winner becomes the new head,
       exactly the CAS loop of Section IV-A2.

    The round count equals the deepest contention chain, matching the
    warp-retry behaviour of the CUDA kernel.
    """

    def __init__(self, cell_size: float, capacity: int, slot_factor: int = 2) -> None:
        if cell_size <= 0.0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.cell_size = cell_size
        self.capacity = capacity
        self.n_slots = max(slot_factor * capacity, 8)
        self.table_keys = np.full(self.n_slots, _EMPTY_U64, dtype=np.uint64)
        self.heads = np.full(self.n_slots, NULL_INDEX, dtype=np.int64)
        self.entry_next = np.empty(0, dtype=np.int64)
        self.entry_slot = np.empty(0, dtype=np.int64)
        self.sat_ids = np.empty(0, dtype=np.int64)
        self.insert_rounds = 0
        self.attach_rounds = 0

    def build(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Insert the whole batch through CAS-conflict-resolution rounds."""
        ids = np.asarray(sat_ids, dtype=np.int64)
        n = len(ids)
        if n > self.capacity:
            raise RuntimeError(f"batch of {n} exceeds grid capacity {self.capacity}")
        keys = compute_cell_keys(positions, self.cell_size)
        self.sat_ids = ids
        self.entry_next = np.full(n, NULL_INDEX, dtype=np.int64)
        self.entry_slot = np.full(n, NULL_INDEX, dtype=np.int64)

        # --- Phase 1: slot resolution rounds -------------------------------
        slot = (murmur3_fmix64_array(keys) % np.uint64(self.n_slots)).astype(np.int64)
        resolved = np.full(n, NULL_INDEX, dtype=np.int64)
        active = np.arange(n, dtype=np.int64)
        rounds = 0
        max_rounds = self.n_slots + n + 2
        while active.size:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("hash table full: slot resolution did not terminate")
            s = slot[active]
            tk = self.table_keys[s]
            mine = tk == keys[active]
            if mine.any():
                resolved[active[mine]] = s[mine]
            empty = tk == _EMPTY_U64
            if empty.any():
                contenders = active[empty]
                cslots = s[empty]
                claim = np.full(self.n_slots, n, dtype=np.int64)
                np.minimum.at(claim, cslots, contenders)
                win = claim[cslots] == contenders
                self.table_keys[cslots[win]] = keys[contenders[win]]
                resolved[contenders[win]] = cslots[win]
            foreign = ~mine & ~empty
            if foreign.any():
                adv = active[foreign]
                slot[adv] = (slot[adv] + 1) % self.n_slots
            active = active[resolved[active] == NULL_INDEX]
        self.entry_slot = resolved
        self.insert_rounds = rounds

        # --- Phase 2: linked-list head-attach rounds ------------------------
        active = np.arange(n, dtype=np.int64)
        rounds = 0
        while active.size:
            rounds += 1
            s = resolved[active]
            self.entry_next[active] = self.heads[s]
            claim = np.full(self.n_slots, n, dtype=np.int64)
            np.minimum.at(claim, s, active)
            win = claim[s] == active
            self.heads[s[win]] = active[win]
            active = active[~win]
        self.attach_rounds = rounds

    def lookup(self, query_keys: np.ndarray) -> np.ndarray:
        """Vectorised table lookup; returns slot indices (-1 on miss)."""
        q = np.asarray(query_keys, dtype=np.uint64)
        slot = (murmur3_fmix64_array(q) % np.uint64(self.n_slots)).astype(np.int64)
        result = np.full(len(q), NULL_INDEX, dtype=np.int64)
        active = np.arange(len(q), dtype=np.int64)
        for _ in range(self.n_slots + 1):
            if not active.size:
                break
            s = slot[active]
            tk = self.table_keys[s]
            hit = tk == q[active]
            result[active[hit]] = s[hit]
            miss = tk == _EMPTY_U64
            keep = ~hit & ~miss
            adv = active[keep]
            slot[adv] = (slot[adv] + 1) % self.n_slots
            active = adv
        return result

    def occupancy(self) -> "dict[int, list[int]]":
        """Mapping packed cell key -> sorted satellite ids (for tests)."""
        out: dict[int, list[int]] = {}
        for s in np.nonzero(self.table_keys != _EMPTY_U64)[0]:
            members = []
            idx = int(self.heads[s])
            guard = 0
            while idx != NULL_INDEX:
                members.append(int(self.sat_ids[idx]))
                idx = int(self.entry_next[idx])
                guard += 1
                if guard > len(self.sat_ids):
                    raise RuntimeError("cycle in linked list - CAS emulation broken")
            out[int(self.table_keys[s])] = sorted(members)
        return out

    def candidate_pairs(self) -> "tuple[np.ndarray, np.ndarray]":
        """Unordered candidate pairs via CSR grouping of the resolved slots.

        Grouping by resolved slot (each slot holds exactly one cell) yields
        the same cell partition as the linked lists; neighbour cells are
        located with the vectorised hash :meth:`lookup` rather than a sort.
        """
        if len(self.sat_ids) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        order = np.argsort(self.entry_slot, kind="stable")
        sorted_slots = self.entry_slot[order]
        sorted_ids = self.sat_ids[order]
        slots_u, start, counts = _group_sorted(sorted_slots)
        cell_keys = self.table_keys[slots_u]

        chunks_i: list[np.ndarray] = []
        chunks_j: list[np.ndarray] = []
        intra = _intra_cell_pairs(sorted_ids, start, counts)
        if intra is not None:
            chunks_i.append(intra[0])
            chunks_j.append(intra[1])

        # slot -> dense cell index for the occupied slots
        slot_to_cell = np.full(self.n_slots, NULL_INDEX, dtype=np.int64)
        slot_to_cell[slots_u] = np.arange(len(slots_u), dtype=np.int64)

        ux, uy, uz = unpack_cell_key(cell_keys)
        for dx, dy, dz in HALF_NEIGHBOR_OFFSETS:
            nx, ny, nz = ux + dx, uy + dy, uz + dz
            valid = (
                (nx >= 0) & (nx < CELL_RANGE)
                & (ny >= 0) & (ny < CELL_RANGE)
                & (nz >= 0) & (nz < CELL_RANGE)
            )
            if not valid.any():
                continue
            src = np.nonzero(valid)[0]
            nkeys = pack_cell_key(nx[src], ny[src], nz[src])
            n_slot = self.lookup(nkeys)
            found = n_slot != NULL_INDEX
            if not found.any():
                continue
            a_cells = src[found]
            b_cells = slot_to_cell[n_slot[found]]
            cross = _cross_cell_pairs(sorted_ids, start, counts, a_cells, b_cells)
            if cross is not None:
                chunks_i.append(cross[0])
                chunks_j.append(cross[1])

        if not chunks_i:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        i = np.concatenate(chunks_i)
        j = np.concatenate(chunks_j)
        return np.minimum(i, j), np.maximum(i, j)

    @property
    def memory_bytes(self) -> int:
        """Table + linked-list footprint, matching V-B's 16 B/slot account."""
        return (
            self.table_keys.nbytes
            + self.heads.nbytes
            + self.entry_next.nbytes
            + self.entry_slot.nbytes
            + self.sat_ids.nbytes
        )


# ----------------------------------------------------------------------
# Shared CSR-group / ragged-cartesian machinery
# ----------------------------------------------------------------------


def _group_sorted(sorted_vals: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """CSR grouping of an already-sorted array: (unique, start, counts)."""
    if len(sorted_vals) == 0:
        return (
            sorted_vals[:0],
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    boundary = np.empty(len(sorted_vals), dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_vals[1:], sorted_vals[:-1], out=boundary[1:])
    start = np.nonzero(boundary)[0].astype(np.int64)
    counts = np.diff(np.append(start, len(sorted_vals))).astype(np.int64)
    return sorted_vals[start], start, counts


#: Cells larger than this fall back to a per-cell loop in pair expansion —
#: they are vanishingly rare in screening workloads (a cell holding >64
#: objects means a catastrophically dense cloud within one cell volume).
_DENSE_CELL_LIMIT = 64


def _members_matrix(sorted_ids: np.ndarray, start: np.ndarray, cells: np.ndarray, c: int) -> np.ndarray:
    """Member ids of the given equal-size cells as a ``(len(cells), c)`` matrix."""
    return sorted_ids[start[cells][:, None] + np.arange(c, dtype=np.int64)[None, :]]


def _intra_cell_pairs(
    sorted_ids: np.ndarray, start: np.ndarray, counts: np.ndarray
) -> "tuple[np.ndarray, np.ndarray] | None":
    """All within-cell unordered pairs, grouped by cell size for vectorisation."""
    multi = np.nonzero(counts > 1)[0]
    if multi.size == 0:
        return None
    chunks_i: list[np.ndarray] = []
    chunks_j: list[np.ndarray] = []
    small = multi[counts[multi] <= _DENSE_CELL_LIMIT]
    for c in np.unique(counts[small]):
        cells = small[counts[small] == c]
        members = _members_matrix(sorted_ids, start, cells, int(c))
        iu, ju = np.triu_indices(int(c), k=1)
        chunks_i.append(members[:, iu].ravel())
        chunks_j.append(members[:, ju].ravel())
    for cell in multi[counts[multi] > _DENSE_CELL_LIMIT]:
        members = sorted_ids[start[cell] : start[cell] + counts[cell]]
        iu, ju = np.triu_indices(len(members), k=1)
        chunks_i.append(members[iu])
        chunks_j.append(members[ju])
    return np.concatenate(chunks_i), np.concatenate(chunks_j)


def _cross_cell_pairs(
    sorted_ids: np.ndarray,
    start: np.ndarray,
    counts: np.ndarray,
    a_cells: np.ndarray,
    b_cells: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Full cartesian product of members across each (a, b) cell pair.

    Cell pairs are grouped by their ``(|a|, |b|)`` size combination so each
    group expands with one broadcast; combinations involving an oversize
    cell fall back to a per-pair loop.
    """
    if a_cells.size == 0:
        return None
    ca = counts[a_cells]
    cb = counts[b_cells]
    chunks_i: list[np.ndarray] = []
    chunks_j: list[np.ndarray] = []
    dense = (ca <= _DENSE_CELL_LIMIT) & (cb <= _DENSE_CELL_LIMIT)
    if dense.any():
        combo = ca * (_DENSE_CELL_LIMIT + 1) + cb
        combo = np.where(dense, combo, -1)
        for code in np.unique(combo[dense]):
            mask = combo == code
            va = int(code) // (_DENSE_CELL_LIMIT + 1)
            vb = int(code) % (_DENSE_CELL_LIMIT + 1)
            a_m = _members_matrix(sorted_ids, start, a_cells[mask], va)  # (k, va)
            b_m = _members_matrix(sorted_ids, start, b_cells[mask], vb)  # (k, vb)
            k = a_m.shape[0]
            chunks_i.append(np.broadcast_to(a_m[:, :, None], (k, va, vb)).reshape(-1))
            chunks_j.append(np.broadcast_to(b_m[:, None, :], (k, va, vb)).reshape(-1))
    for a_cell, b_cell in zip(a_cells[~dense], b_cells[~dense]):
        a_m = sorted_ids[start[a_cell] : start[a_cell] + counts[a_cell]]
        b_m = sorted_ids[start[b_cell] : start[b_cell] + counts[b_cell]]
        grid_a, grid_b = np.meshgrid(a_m, b_m, indexing="ij")
        chunks_i.append(grid_a.ravel())
        chunks_j.append(grid_b.ravel())
    if not chunks_i:
        return None
    return np.concatenate(chunks_i), np.concatenate(chunks_j)
