"""Data-parallel grid builds: the GPU-kernel analogue of the paper.

Two implementations with identical observable behaviour:

* :class:`SortedGrid` — sort-based cell grouping plus ``searchsorted``
  neighbour lookup.  This is the throughput path: every stage is a fused
  numpy array operation, mirroring how a GPU kernel assigns one thread per
  (satellite, step) tuple with no Python-level loop over satellites.
* :class:`VectorHashGrid` — a faithful emulation of the paper's CUDA
  insertion kernel: a *real* open-addressing table is built in iterative
  CAS-conflict-resolution rounds (one round per contention level, winners
  chosen with ``np.minimum.at`` scatter reductions — the SIMT equivalent of
  "exactly one thread's atomicCAS succeeds per slot per round"), then the
  per-cell singly linked lists are attached with the same round scheme.

Both emit candidate pairs through the shared ragged-cartesian machinery at
the bottom of this module, and the test suite proves they agree with each
other and with the serial :class:`repro.spatial.grid.UniformGrid`.
"""
from __future__ import annotations

import numpy as np

from repro.constants import EMPTY_KEY, NULL_INDEX, SIM_EXTENT, SIM_HALF_EXTENT
from repro.spatial.grid import FULL_NEIGHBOR_OFFSETS, HALF_NEIGHBOR_OFFSETS
from repro.spatial.hashmap import PresenceFilter
from repro.spatial.hashing import (
    CELL_BITS,
    CELL_RANGE,
    MAX_ROUND_STEPS,
    STEP_CELL_BITS,
    STEP_CELL_RANGE,
    murmur3_fmix64_array,
    pack_cell_key,
    pack_step_cell_key,
    unpack_cell_key,
    unpack_step_cell_key,
)

_EMPTY_U64 = np.uint64(EMPTY_KEY)


def _as_grid_positions(positions: np.ndarray) -> np.ndarray:
    """Position array with its grid-binning dtype.

    float32 inputs (the mixed-precision broad phase) stay float32 so the
    cell-coordinate arithmetic below runs in the same precision the
    positions were produced in; everything else is binned in float64.
    Python float scalars broadcast without promoting float32 arrays, so the
    downstream ``floor((pos + half) / cell)`` preserves this dtype.
    """
    pos = np.asarray(positions)
    if pos.dtype != np.float32:
        pos = pos.astype(np.float64, copy=False)
    return pos


def compute_cell_coords(positions: np.ndarray, cell_size: float) -> np.ndarray:
    """Integer cell coordinates of positions: ``floor((pos + half) / cell)``.

    This is the single source of truth for grid quantisation: the key
    packers below consume it, and the 4D-tree variant's narrow phase calls
    it directly so its cell-adjacency test reproduces the grids'
    bit-for-bit (including the dtype discipline — float32 positions are
    binned in float32, see :func:`_as_grid_positions`).  Works for any
    leading shape with a trailing axis of 3; returns int64 of the same
    leading shape.
    """
    pos = _as_grid_positions(positions)
    if np.any(np.abs(pos) > SIM_HALF_EXTENT):
        worst = float(np.abs(pos).max())
        raise ValueError(
            f"position component {worst:.1f} km outside the simulation cube "
            f"(half extent {SIM_HALF_EXTENT:.0f} km)"
        )
    return np.floor((pos + SIM_HALF_EXTENT) / cell_size).astype(np.int64)


def compute_cell_keys(positions: np.ndarray, cell_size: float) -> np.ndarray:
    """Packed cell keys for an ``(n, 3)`` position array (uint64 ``(n,)``).

    Accepts float64 or float32 positions; the binning arithmetic runs in
    the input dtype (see :func:`_as_grid_positions`).
    """
    coords = compute_cell_coords(positions, cell_size)
    return pack_cell_key(coords[:, 0], coords[:, 1], coords[:, 2])


def compute_step_cell_keys(positions: np.ndarray, cell_size: float) -> np.ndarray:
    """Compound (step, cell) keys for a ``(p, n, 3)`` round of positions.

    One flat uint64 array of ``p * n`` lane keys, lane order step-major
    (all of step 0, then all of step 1, ...).  Because the step index sits
    in the key's high bits, a single sort/group or hash build over these
    keys partitions the lanes into per-(step, cell) groups — the fused
    equivalent of building ``p`` independent grids.  float32 rounds (mixed
    precision) are binned in float32, like :func:`compute_cell_keys`.
    """
    pos = _as_grid_positions(positions)
    if pos.ndim != 3 or pos.shape[-1] != 3:
        raise ValueError(f"positions must have shape (p, n, 3), got {pos.shape}")
    p = pos.shape[0]
    if p > MAX_ROUND_STEPS:
        raise ValueError(f"round of {p} steps exceeds the packable maximum {MAX_ROUND_STEPS}")
    if SIM_EXTENT / cell_size >= STEP_CELL_RANGE:
        raise ValueError(
            f"cell size {cell_size} km needs more than {STEP_CELL_RANGE} cells per "
            "axis, too fine for the compound (step, cell) key space"
        )
    coords = compute_cell_coords(pos, cell_size)
    steps = np.repeat(np.arange(p, dtype=np.int64), pos.shape[1])
    return pack_step_cell_key(
        steps,
        coords[:, :, 0].ravel(),
        coords[:, :, 1].ravel(),
        coords[:, :, 2].ravel(),
    )


class SortedGrid:
    """Sort-based cell grouping for one sampling step.

    Parameters
    ----------
    cell_size:
        Cell side length in km.

    After :meth:`build`, the grid exposes the occupied cells in sorted key
    order with start offsets and counts (a CSR-like layout), which both the
    intra-cell and the neighbour pair emission consume without touching
    Python objects.
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0.0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self.sorted_ids: np.ndarray | None = None
        self.sorted_steps: np.ndarray | None = None
        self.unique_keys: np.ndarray | None = None
        self.start: np.ndarray | None = None
        self.counts: np.ndarray | None = None

    def build(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Group the population by cell key (one argsort, no hashing)."""
        keys = compute_cell_keys(positions, self.cell_size)
        self._finalise(keys, np.asarray(sat_ids, dtype=np.int64), None)

    def build_rounds(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Fused build of a whole round: ``positions`` has shape (p, n, 3).

        One sort over ``p * n`` compound (step, cell) keys replaces ``p``
        separate per-step builds — the Section V-B "simultaneous grids"
        realised inside a single key space.  Emission must then go through
        :meth:`candidate_pair_steps`, which labels each pair with the
        within-round step index it was found at.
        """
        pos = _as_grid_positions(positions)
        keys = compute_step_cell_keys(pos, self.cell_size)
        p = pos.shape[0]
        ids = np.tile(np.asarray(sat_ids, dtype=np.int64), p)
        steps = np.repeat(np.arange(p, dtype=np.int64), pos.shape[1])
        self._finalise(keys, ids, steps)

    def _finalise(self, keys: np.ndarray, ids: np.ndarray, steps: "np.ndarray | None") -> None:
        order = np.argsort(keys, kind="stable")
        self.sorted_ids = ids[order]
        self.sorted_steps = None if steps is None else steps[order]
        self.unique_keys, self.start, self.counts = _group_sorted(keys[order])
        # Presence filter for the neighbour probes: in the sparse-occupancy
        # regime nearly every probe misses, so one byte gather rejects ~90 %
        # of them before any binary search (see PresenceFilter).
        self._filter = PresenceFilter(self.unique_keys)

    def occupancy(self) -> "dict[int, list[int]]":
        """Mapping packed cell key -> sorted satellite ids (for tests)."""
        self._require_built()
        out: dict[int, list[int]] = {}
        for k, s, c in zip(self.unique_keys, self.start, self.counts):
            out[int(k)] = sorted(int(x) for x in self.sorted_ids[s : s + c])
        return out

    def candidate_pairs(self) -> "tuple[np.ndarray, np.ndarray]":
        """Unordered candidate pairs ``(i, j)`` with ``i < j`` elementwise."""
        self._require_built()
        if self.sorted_steps is not None:
            raise RuntimeError("multi-step build: use candidate_pair_steps()")
        pairs = self._index_pairs()
        if pairs is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        i = self.sorted_ids[pairs[0]]
        j = self.sorted_ids[pairs[1]]
        return np.minimum(i, j), np.maximum(i, j)

    def candidate_pair_steps(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Candidate pairs with the within-round step each was found at.

        Returns ``(i, j, step)`` with ``i < j`` elementwise.  Both members
        of a pair always share one (step, cell)-keyed cell pair, so the
        step label is exact, never inferred.
        """
        self._require_built()
        pairs = self._index_pairs()
        if pairs is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        i = self.sorted_ids[pairs[0]]
        j = self.sorted_ids[pairs[1]]
        if self.sorted_steps is None:
            steps = np.zeros(len(i), dtype=np.int64)
        else:
            steps = self.sorted_steps[pairs[0]]
        return np.minimum(i, j), np.maximum(i, j), steps

    def _index_pairs(self) -> "tuple[np.ndarray, np.ndarray] | None":
        unique_keys = self.unique_keys
        fltr = self._filter
        n_cells = len(unique_keys)

        def find(nkeys: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
            pos = np.full(len(nkeys), n_cells, dtype=np.int64)
            found = np.zeros(len(nkeys), dtype=bool)
            maybe = np.nonzero(fltr.maybe_contains(nkeys))[0]
            if maybe.size:
                p = np.searchsorted(unique_keys, nkeys[maybe])
                pos[maybe] = p
                found[maybe] = (p < n_cells) & (
                    unique_keys[np.minimum(p, n_cells - 1)] == nkeys[maybe]
                )
            return pos, found

        return _emit_index_pairs(
            unique_keys, self.start, self.counts, self.sorted_steps is not None, find
        )

    @property
    def n_occupied_cells(self) -> int:
        self._require_built()
        return len(self.unique_keys)

    def _require_built(self) -> None:
        if self.sorted_ids is None:
            raise RuntimeError("grid not built yet - call build() first")


class VectorHashGrid:
    """CAS-round emulation of the paper's GPU hash-map insertion kernel.

    Builds a genuine fixed-size open-addressing table (key area initialised
    to the 2^64-1 EMPTY sentinel, linear probing, 2x slot factor) where
    each "round" resolves the CAS winners of all still-contending lanes at
    once:

    1. *slot resolution* — every lane reads its probe slot; lanes seeing
       their own key are done; lanes seeing EMPTY contend, and the winner
       per slot (scatter-min, the deterministic stand-in for "whichever
       thread's atomicCAS lands first") writes its key; losers re-read;
       lanes seeing a foreign key advance linearly (Eq. 2);
    2. *list attach* — every unresolved lane points its entry's ``next`` at
       the current head and the per-slot winner becomes the new head,
       exactly the CAS loop of Section IV-A2.

    The round count equals the deepest contention chain, matching the
    warp-retry behaviour of the CUDA kernel.
    """

    def __init__(self, cell_size: float, capacity: int, slot_factor: int = 2) -> None:
        if cell_size <= 0.0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.cell_size = cell_size
        self.capacity = capacity
        self.n_slots = max(slot_factor * capacity, 8)
        self.table_keys = np.full(self.n_slots, _EMPTY_U64, dtype=np.uint64)
        self.heads = np.full(self.n_slots, NULL_INDEX, dtype=np.int64)
        self.entry_next = np.empty(0, dtype=np.int64)
        self.entry_slot = np.empty(0, dtype=np.int64)
        self.sat_ids = np.empty(0, dtype=np.int64)
        self.lane_steps: np.ndarray | None = None
        self.insert_rounds = 0
        self.attach_rounds = 0

    def build(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Insert the whole batch through CAS-conflict-resolution rounds."""
        ids = np.asarray(sat_ids, dtype=np.int64)
        if len(ids) > self.capacity:
            raise RuntimeError(f"batch of {len(ids)} exceeds grid capacity {self.capacity}")
        keys = compute_cell_keys(positions, self.cell_size)
        self._build_lanes(ids, keys, None)

    def build_rounds(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Fused CAS-round build of a whole round (positions ``(p, n, 3)``).

        Every (satellite, step) lane of the round contends in the same
        table under its compound (step, cell) key, so one pass of the CAS
        machinery covers all ``p`` simultaneous grids.  Capacity must hold
        ``p * n`` lanes.
        """
        pos = _as_grid_positions(positions)
        keys = compute_step_cell_keys(pos, self.cell_size)
        p, per_step = pos.shape[0], pos.shape[1]
        if p * per_step > self.capacity:
            raise RuntimeError(
                f"round of {p * per_step} lanes exceeds grid capacity {self.capacity}"
            )
        ids = np.tile(np.asarray(sat_ids, dtype=np.int64), p)
        steps = np.repeat(np.arange(p, dtype=np.int64), per_step)
        self._build_lanes(ids, keys, steps)

    def _build_lanes(self, ids: np.ndarray, keys: np.ndarray, steps: "np.ndarray | None") -> None:
        n = len(ids)
        self.sat_ids = ids
        self.lane_steps = steps
        self.entry_next = np.full(n, NULL_INDEX, dtype=np.int64)
        self.entry_slot = np.full(n, NULL_INDEX, dtype=np.int64)

        # --- Phase 1: slot resolution rounds -------------------------------
        slot = (murmur3_fmix64_array(keys) % np.uint64(self.n_slots)).astype(np.int64)
        resolved = np.full(n, NULL_INDEX, dtype=np.int64)
        active = np.arange(n, dtype=np.int64)
        rounds = 0
        max_rounds = self.n_slots + n + 2
        while active.size:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("hash table full: slot resolution did not terminate")
            s = slot[active]
            tk = self.table_keys[s]
            mine = tk == keys[active]
            if mine.any():
                resolved[active[mine]] = s[mine]
            empty = tk == _EMPTY_U64
            if empty.any():
                contenders = active[empty]
                cslots = s[empty]
                claim = np.full(self.n_slots, n, dtype=np.int64)
                np.minimum.at(claim, cslots, contenders)
                win = claim[cslots] == contenders
                self.table_keys[cslots[win]] = keys[contenders[win]]
                resolved[contenders[win]] = cslots[win]
            foreign = ~mine & ~empty
            if foreign.any():
                adv = active[foreign]
                slot[adv] = (slot[adv] + 1) % self.n_slots
            active = active[resolved[active] == NULL_INDEX]
        self.entry_slot = resolved
        self.insert_rounds = rounds

        # --- Phase 2: linked-list head-attach rounds ------------------------
        active = np.arange(n, dtype=np.int64)
        rounds = 0
        while active.size:
            rounds += 1
            s = resolved[active]
            self.entry_next[active] = self.heads[s]
            claim = np.full(self.n_slots, n, dtype=np.int64)
            np.minimum.at(claim, s, active)
            win = claim[s] == active
            self.heads[s[win]] = active[win]
            active = active[~win]
        self.attach_rounds = rounds

    def lookup(self, query_keys: np.ndarray) -> np.ndarray:
        """Vectorised table lookup; returns slot indices (-1 on miss)."""
        q = np.asarray(query_keys, dtype=np.uint64)
        slot = (murmur3_fmix64_array(q) % np.uint64(self.n_slots)).astype(np.int64)
        result = np.full(len(q), NULL_INDEX, dtype=np.int64)
        active = np.arange(len(q), dtype=np.int64)
        for _ in range(self.n_slots + 1):
            if not active.size:
                break
            s = slot[active]
            tk = self.table_keys[s]
            hit = tk == q[active]
            result[active[hit]] = s[hit]
            miss = tk == _EMPTY_U64
            keep = ~hit & ~miss
            adv = active[keep]
            slot[adv] = (slot[adv] + 1) % self.n_slots
            active = adv
        return result

    def occupancy(self) -> "dict[int, list[int]]":
        """Mapping packed cell key -> sorted satellite ids (for tests)."""
        out: dict[int, list[int]] = {}
        for s in np.nonzero(self.table_keys != _EMPTY_U64)[0]:
            members = []
            idx = int(self.heads[s])
            guard = 0
            while idx != NULL_INDEX:
                members.append(int(self.sat_ids[idx]))
                idx = int(self.entry_next[idx])
                guard += 1
                if guard > len(self.sat_ids):
                    raise RuntimeError("cycle in linked list - CAS emulation broken")
            out[int(self.table_keys[s])] = sorted(members)
        return out

    def candidate_pairs(self) -> "tuple[np.ndarray, np.ndarray]":
        """Unordered candidate pairs via CSR grouping of the resolved slots.

        Grouping by resolved slot (each slot holds exactly one cell) yields
        the same cell partition as the linked lists; neighbour cells are
        located with the vectorised hash :meth:`lookup` rather than a sort.
        """
        if self.lane_steps is not None:
            raise RuntimeError("multi-step build: use candidate_pair_steps()")
        if len(self.sat_ids) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        order, pairs = self._index_pairs()
        if pairs is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        sorted_ids = self.sat_ids[order]
        i = sorted_ids[pairs[0]]
        j = sorted_ids[pairs[1]]
        return np.minimum(i, j), np.maximum(i, j)

    def candidate_pair_steps(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Candidate pairs as ``(i, j, step)``; see SortedGrid's variant."""
        empty = np.empty(0, dtype=np.int64)
        if len(self.sat_ids) == 0:
            return empty, empty.copy(), empty.copy()
        order, pairs = self._index_pairs()
        if pairs is None:
            return empty, empty.copy(), empty.copy()
        sorted_ids = self.sat_ids[order]
        i = sorted_ids[pairs[0]]
        j = sorted_ids[pairs[1]]
        if self.lane_steps is None:
            steps = np.zeros(len(i), dtype=np.int64)
        else:
            steps = self.lane_steps[order][pairs[0]]
        return np.minimum(i, j), np.maximum(i, j), steps

    def _index_pairs(self) -> "tuple[np.ndarray, tuple[np.ndarray, np.ndarray] | None]":
        """CSR-group the resolved slots; emit positional pairs into that order."""
        order = np.argsort(self.entry_slot, kind="stable")
        slots_u, start, counts = _group_sorted(self.entry_slot[order])
        cell_keys = self.table_keys[slots_u]

        # slot -> dense cell index for the occupied slots
        slot_to_cell = np.full(self.n_slots, NULL_INDEX, dtype=np.int64)
        slot_to_cell[slots_u] = np.arange(len(slots_u), dtype=np.int64)

        def find(nkeys: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
            n_slot = self.lookup(nkeys)
            found = n_slot != NULL_INDEX
            return slot_to_cell[np.where(found, n_slot, 0)], found

        pairs = _emit_index_pairs(
            cell_keys, start, counts, self.lane_steps is not None, find
        )
        return order, pairs

    @property
    def memory_bytes(self) -> int:
        """Table + linked-list footprint, matching V-B's 16 B/slot account."""
        return (
            self.table_keys.nbytes
            + self.heads.nbytes
            + self.entry_next.nbytes
            + self.entry_slot.nbytes
            + self.sat_ids.nbytes
            + (self.lane_steps.nbytes if self.lane_steps is not None else 0)
        )


# ----------------------------------------------------------------------
# Shared CSR-group / ragged-cartesian machinery
# ----------------------------------------------------------------------


def _group_sorted(sorted_vals: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """CSR grouping of an already-sorted array: (unique, start, counts)."""
    if len(sorted_vals) == 0:
        return (
            sorted_vals[:0],
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    boundary = np.empty(len(sorted_vals), dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_vals[1:], sorted_vals[:-1], out=boundary[1:])
    start = np.nonzero(boundary)[0].astype(np.int64)
    counts = np.diff(np.append(start, len(sorted_vals))).astype(np.int64)
    return sorted_vals[start], start, counts


#: Cells larger than this fall back to a per-cell loop in pair expansion —
#: they are vanishingly rare in screening workloads (a cell holding >64
#: objects means a catastrophically dense cloud within one cell volume).
_DENSE_CELL_LIMIT = 64


def _position_matrix(start: np.ndarray, cells: np.ndarray, c: int) -> np.ndarray:
    """Member *positions* of the given equal-size cells, ``(len(cells), c)``.

    Positions index the grid's sorted lane order; callers map them through
    the sorted id (and, for multi-step builds, step) arrays.
    """
    return start[cells][:, None] + np.arange(c, dtype=np.int64)[None, :]


def _emit_index_pairs(
    unique_keys: np.ndarray,
    start: np.ndarray,
    counts: np.ndarray,
    multi_step: bool,
    find,
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Positional candidate pairs over intra-cell and half-neighbour cells.

    ``find(nkeys) -> (cell_indices, found_mask)`` locates occupied
    neighbour cells (searchsorted for :class:`SortedGrid`, hash lookup for
    :class:`VectorHashGrid`).  With ``multi_step`` the keys are compound
    (step, cell) keys: offsets apply to the cell coordinates only and the
    step bits ride along unchanged, so a neighbour can only match within
    the same sampling step.
    """
    if len(unique_keys) == 0:
        return None
    chunks_i: list[np.ndarray] = []
    chunks_j: list[np.ndarray] = []
    intra = _intra_cell_index_pairs(start, counts)
    if intra is not None:
        chunks_i.append(intra[0])
        chunks_j.append(intra[1])

    if multi_step:
        _, ux, uy, uz = unpack_step_cell_key(unique_keys)
        coord_range, bits = STEP_CELL_RANGE, STEP_CELL_BITS
    else:
        ux, uy, uz = unpack_cell_key(unique_keys)
        coord_range, bits = CELL_RANGE, CELL_BITS
    # When every occupied cell sits strictly inside the coordinate range
    # (the usual case: populations live far from the simulation cube's
    # faces), all 26 unit offsets are in range for all cells and the
    # per-offset boundary masks are skipped wholesale.
    interior = bool(
        ux.min() > 0 and ux.max() < coord_range - 1
        and uy.min() > 0 and uy.max() < coord_range - 1
        and uz.min() > 0 and uz.max() < coord_range - 1
    )
    all_src = np.arange(len(unique_keys), dtype=np.int64)
    # Packing is linear in the cell coordinates, so while the offset stays
    # in range a neighbour's key is just key + delta (the step bits, when
    # present, sit above the coordinates and ride along unchanged).
    for dx, dy, dz in HALF_NEIGHBOR_OFFSETS:
        delta = np.uint64((dx + (dy << bits) + (dz << (2 * bits))) % (1 << 64))
        if interior:
            src = all_src
            probe = unique_keys + delta
        else:
            nx, ny, nz = ux + dx, uy + dy, uz + dz
            valid = (
                (nx >= 0) & (nx < coord_range)
                & (ny >= 0) & (ny < coord_range)
                & (nz >= 0) & (nz < coord_range)
            )
            if not valid.any():
                continue
            src = np.nonzero(valid)[0]
            probe = unique_keys[src] + delta
        dst, found = find(probe)
        if not found.any():
            continue
        cross = _cross_cell_index_pairs(start, counts, src[found], dst[found])
        if cross is not None:
            chunks_i.append(cross[0])
            chunks_j.append(cross[1])

    if not chunks_i:
        return None
    return np.concatenate(chunks_i), np.concatenate(chunks_j)


def _intra_cell_index_pairs(
    start: np.ndarray, counts: np.ndarray
) -> "tuple[np.ndarray, np.ndarray] | None":
    """All within-cell position pairs, grouped by cell size for vectorisation."""
    multi = np.nonzero(counts > 1)[0]
    if multi.size == 0:
        return None
    chunks_i: list[np.ndarray] = []
    chunks_j: list[np.ndarray] = []
    small = multi[counts[multi] <= _DENSE_CELL_LIMIT]
    for c in np.unique(counts[small]):
        cells = small[counts[small] == c]
        posm = _position_matrix(start, cells, int(c))
        iu, ju = np.triu_indices(int(c), k=1)
        chunks_i.append(posm[:, iu].ravel())
        chunks_j.append(posm[:, ju].ravel())
    for cell in multi[counts[multi] > _DENSE_CELL_LIMIT]:
        members = np.arange(start[cell], start[cell] + counts[cell], dtype=np.int64)
        iu, ju = np.triu_indices(len(members), k=1)
        chunks_i.append(members[iu])
        chunks_j.append(members[ju])
    return np.concatenate(chunks_i), np.concatenate(chunks_j)


def _expand_cell_pairs(
    start: np.ndarray,
    counts: np.ndarray,
    a_cells: np.ndarray,
    b_cells: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Cartesian products of all (a, b) cell pairs in one CSR pass.

    Generalises the old per-size-combo grouping: the per-pair product
    sizes ``|a|·|b|`` form a CSR offset array, each output lane derives
    its (cell pair, a-member, b-member) coordinates from its flat index by
    division, and the whole expansion is a handful of array ops with no
    Python-level loop over pairs or size combinations — the same pass
    serves :class:`SortedGrid`, :class:`VectorHashGrid` and the coherent
    emitter's re-expansion of invalidated cell pairs.

    Returns ``(pos_i, pos_j, sizes)``: positional index pairs into the
    grid's sorted lane order plus the per-cell-pair product sizes (the CSR
    counts the coherence cache stores alongside its pair lanes).
    """
    ca = counts[a_cells]
    cb = counts[b_cells]
    sizes = ca * cb
    total = int(sizes.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), sizes
    ends = np.cumsum(sizes)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - sizes, sizes)
    rep_cb = np.repeat(cb, sizes)
    ai = within // rep_cb
    bi = within - ai * rep_cb
    pos_i = np.repeat(start[a_cells], sizes) + ai
    pos_j = np.repeat(start[b_cells], sizes) + bi
    return pos_i, pos_j, sizes


def _cross_cell_index_pairs(
    start: np.ndarray,
    counts: np.ndarray,
    a_cells: np.ndarray,
    b_cells: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Full cartesian product of member positions across each (a, b) cell pair."""
    if a_cells.size == 0:
        return None
    pos_i, pos_j, _ = _expand_cell_pairs(start, counts, a_cells, b_cells)
    if len(pos_i) == 0:
        return None
    return pos_i, pos_j


# ----------------------------------------------------------------------
# Temporal-coherence pair emission
# ----------------------------------------------------------------------


def _in_sorted(sorted_keys: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean membership mask of ``values`` in a sorted key array."""
    out = np.zeros(len(values), dtype=bool)
    if len(sorted_keys) == 0 or len(values) == 0:
        return out
    pos = np.searchsorted(sorted_keys, values)
    ok = pos < len(sorted_keys)
    out[ok] = sorted_keys[pos[ok]] == values[ok]
    return out


def _gather_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices covering ``[starts[k], starts[k] + counts[k])`` per range."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return np.repeat(starts - (ends - counts), counts) + np.arange(total, dtype=np.int64)


_HALF_OFFSETS_ARR = np.array(HALF_NEIGHBOR_OFFSETS, dtype=np.int64)
_FULL_OFFSETS_ARR = np.array(FULL_NEIGHBOR_OFFSETS, dtype=np.int64)

#: Lazily-built {(n_offsets, bits) -> uint64 delta array} cache.  Packing is
#: linear in the cell coordinates, so an in-range neighbour's key is just
#: ``key + delta`` with two's-complement wraparound.
_DELTA_CACHE: "dict[tuple[int, int], np.ndarray]" = {}


def _stencil_deltas(offsets: np.ndarray, bits: int) -> np.ndarray:
    key = (len(offsets), bits)
    deltas = _DELTA_CACHE.get(key)
    if deltas is None:
        deltas = np.array(
            [
                (int(dx) + (int(dy) << bits) + (int(dz) << (2 * bits))) % (1 << 64)
                for dx, dy, dz in offsets
            ],
            dtype=np.uint64,
        )
        _DELTA_CACHE[key] = deltas
    return deltas


class _RoundView:
    """A built grid (one step or one fused round) flattened into
    round-global emission-ready arrays.

    ``keys`` are the occupied cell keys in sorted order — compound
    (step, cell) keys for fused rounds, plain cell keys otherwise —
    and ``stripped`` removes the step bits, giving the step-stable
    spatial cell identity the coherence cache diffs between consecutive
    steps.  ``start``/``counts`` index the grid's sorted lane order and
    ``bounds`` marks each step's contiguous key run, so per-step state
    is always a zero-copy slice of the round-global arrays.  Keeping the
    whole round in one view is what lets the emitter batch its heavy
    operations (membership diff, stencil probes, intra-cell expansion)
    across all fused steps in single numpy passes.
    """

    __slots__ = (
        "keys", "stripped", "cell_steps", "start", "counts", "bounds",
        "lane_ids", "lane_steps", "p", "bits", "coord_range",
        "interior", "ux", "uy", "uz",
    )

    def __init__(self, keys, start, counts, lane_ids, lane_steps, multi):
        self.keys = keys
        self.start = start
        self.counts = counts
        self.lane_ids = lane_ids
        if multi:
            bits, rng = STEP_CELL_BITS, STEP_CELL_RANGE
            shift = np.uint64(3 * bits)
            self.cell_steps = (keys >> shift).astype(np.int64)
            self.stripped = keys - (self.cell_steps.astype(np.uint64) << shift)
            self.p = int(self.cell_steps[-1]) + 1
            self.lane_steps = (
                lane_steps
                if lane_steps is not None
                else np.repeat(self.cell_steps, counts)
            )
        else:
            bits, rng = CELL_BITS, CELL_RANGE
            self.cell_steps = np.zeros(len(keys), dtype=np.int64)
            self.stripped = keys
            self.p = 1
            self.lane_steps = np.zeros(int(counts.sum()), dtype=np.int64)
        self.bits = bits
        self.coord_range = rng
        self.bounds = np.searchsorted(
            self.cell_steps, np.arange(self.p + 1, dtype=np.int64)
        )
        mask = np.uint64((1 << bits) - 1)
        self.ux = (self.stripped & mask).astype(np.int64)
        self.uy = ((self.stripped >> np.uint64(bits)) & mask).astype(np.int64)
        self.uz = ((self.stripped >> np.uint64(2 * bits)) & mask).astype(np.int64)
        self.interior = bool(
            len(keys)
            and self.ux.min() > 0 and self.ux.max() < rng - 1
            and self.uy.min() > 0 and self.uy.max() < rng - 1
            and self.uz.min() > 0 and self.uz.max() < rng - 1
        )


def _round_view(grid) -> "_RoundView | None":
    """Round view of a built grid, or ``None`` when the grid is empty.

    For :class:`SortedGrid` every array is a zero-copy alias of the
    build's sorted arrays.  For :class:`VectorHashGrid` the lanes are
    re-sorted by cell key once per round — comparable in cost to the
    slot argsort its own emission performs — after which both grids
    share the identical emission machinery.
    """
    if isinstance(grid, SortedGrid):
        grid._require_built()
        if len(grid.unique_keys) == 0:
            return None
        return _RoundView(
            grid.unique_keys, grid.start, grid.counts, grid.sorted_ids,
            grid.sorted_steps, grid.sorted_steps is not None,
        )
    if isinstance(grid, VectorHashGrid):
        if len(grid.sat_ids) == 0:
            return None
        lane_keys = grid.table_keys[grid.entry_slot]
        order = np.argsort(lane_keys, kind="stable")
        lane_ids = grid.sat_ids[order]
        lane_steps = None if grid.lane_steps is None else grid.lane_steps[order]
        keys, start, counts = _group_sorted(lane_keys[order])
        if len(keys) == 0:
            return None
        return _RoundView(
            keys, start, counts, lane_ids, lane_steps,
            grid.lane_steps is not None,
        )
    raise TypeError(f"no round view for grid type {type(grid).__name__}")


def _probe_cells(
    rv: _RoundView, src_cells: np.ndarray, offsets: np.ndarray
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, int, np.ndarray]":
    """Batched neighbour probes of the given (step-ascending) source cells.

    Probes one step at a time so every binary search runs against that
    step's key slice — small enough to stay cache-resident, where probing
    the round-global key array makes every lookup a cold descent through
    a multi-megabyte sorted array.  Within a step the probe matrix is
    offset-major: adding a constant delta preserves the sources' sort
    order, so the searches walk each slice near-sequentially.  Boundary
    masks are skipped wholesale when every occupied cell is interior.

    Returns ``(src_idx, offset_ids, dst_idx, n_probes, hit_bounds)``:
    matched source / destination cell indices (round-global), the offset
    index of each match, how many probe keys were actually tested, and
    the ``(p+1,)`` CSR bounds grouping the hits by step.
    """
    p = rv.p
    hb = np.zeros(p + 1, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    if len(src_cells) == 0 or len(rv.keys) == 0:
        return empty, empty.copy(), empty.copy(), 0, hb
    deltas = _stencil_deltas(offsets, rv.bits)
    sb = np.searchsorted(rv.cell_steps[src_cells], np.arange(p + 1, dtype=np.int64))
    rng = rv.coord_range
    chunks_src: "list[np.ndarray]" = []
    chunks_off: "list[np.ndarray]" = []
    chunks_dst: "list[np.ndarray]" = []
    n_probes = 0
    for k in range(p):
        s0, s1 = int(sb[k]), int(sb[k + 1])
        hb[k + 1] = hb[k]
        if s0 == s1:
            continue
        cells_k = src_cells[s0:s1]
        n_k = s1 - s0
        c0, c1 = int(rv.bounds[k]), int(rv.bounds[k + 1])
        kslice = rv.keys[c0:c1]
        probe = (deltas[:, None] + rv.keys[cells_k][None, :]).ravel()
        if rv.interior:
            pos = np.searchsorted(kslice, probe)
            np.minimum(pos, c1 - c0 - 1, out=pos)
            hit = np.nonzero(kslice[pos] == probe)[0]
            dst_hit = pos[hit] + c0
            n_probes += probe.size
        else:
            nx = offsets[:, 0][:, None] + rv.ux[cells_k][None, :]
            ny = offsets[:, 1][:, None] + rv.uy[cells_k][None, :]
            nz = offsets[:, 2][:, None] + rv.uz[cells_k][None, :]
            valid = (
                (nx >= 0) & (nx < rng)
                & (ny >= 0) & (ny < rng)
                & (nz >= 0) & (nz < rng)
            )
            sel = np.nonzero(valid.ravel())[0]
            pr = probe[sel]
            pos = np.searchsorted(kslice, pr)
            np.minimum(pos, c1 - c0 - 1, out=pos)
            found = kslice[pos] == pr
            hit = sel[found]
            dst_hit = pos[found] + c0
            n_probes += sel.size
        chunks_src.append(cells_k[hit % n_k])
        chunks_off.append(hit // n_k)
        chunks_dst.append(dst_hit)
        hb[k + 1] += len(dst_hit)
    if not chunks_src:
        return empty, empty.copy(), empty.copy(), n_probes, hb
    return (
        np.concatenate(chunks_src),
        np.concatenate(chunks_off),
        np.concatenate(chunks_dst),
        n_probes,
        hb,
    )


def _canonical_adjacency(rv: _RoundView, src: np.ndarray, dst: np.ndarray):
    """Canonicalise probe hits so the smaller stripped key is endpoint a.

    Returns ``(a_key, b_key, a_cell, b_cell)`` — stripped cell keys (the
    cache's adjacency identity) plus the matching round-global cell
    indices, element-aligned with the input hits.
    """
    a_k = rv.stripped[src]
    b_k = rv.stripped[dst]
    swap = a_k > b_k
    return (
        np.where(swap, b_k, a_k),
        np.where(swap, a_k, b_k),
        np.where(swap, dst, src),
        np.where(swap, src, dst),
    )


class CoherenceStats:
    """Counters of one :class:`CoherentPairEmitter`'s lifetime."""

    __slots__ = (
        "steps", "coherent_steps", "full_rebuilds", "budget_drops",
        "pairs_emitted", "pairs_replayed",
        "cell_pairs_replayed", "cell_pairs_recomputed",
        "probes", "probes_full_equiv",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def hit_rate(self) -> float:
        """Fraction of emitted pairs served from the cross-step cache."""
        return self.pairs_replayed / self.pairs_emitted if self.pairs_emitted else 0.0

    def as_dict(self) -> "dict[str, float]":
        out = {name: getattr(self, name) for name in self.__slots__}
        out["hit_rate"] = self.hit_rate
        return out


class CoherentPairEmitter:
    """Cross-step temporal-coherence candidate-pair emission.

    Satellites move less than one cell per sampling step at realistic
    sampling rates, so consecutive steps revisit almost the same
    (cell, neighbour-cell) pairs.  This emitter exploits that:

    * **Membership diff.**  A per-object cell-key array is diffed against
      the previous processed step (one vectorised compare, batched over
      the whole fused round as a ``(steps, objects)`` matrix).  A cell is
      *clean* when no object entered or left it — its member set is
      exactly the previous step's.
    * **Adjacency carry-over.**  Grid cells are static in space, so an
      occupied-cell adjacency (A, B) persists verbatim while both cells
      stay occupied.  Only *newly occupied* cells need neighbour probes —
      a 26-offset stencil, with the positive-half offset rule keeping
      each new-new adjacency once — instead of the full 13-offset probe
      of every occupied cell.
    * **Pair replay.**  Adjacencies between two clean cells replay their
      cached id pairs untouched (relabelled with the current step);
      adjacencies touching a dirty-but-occupied cell re-expand through the
      shared CSR pass (:func:`_expand_cell_pairs`).
    * **Round-hoisted batching.**  Every expensive operation runs once
      per *round*, not once per step: one membership scatter/diff, one
      sorted-unique over all movers, one batched probe per stencil class
      (:func:`_probe_cells`), one intra-cell expansion.  The per-step
      loop only shuffles the (small) adjacency cache arrays, so the
      emitter's overhead stays proportional to churn rather than to the
      number of numpy calls per step.

    The emitted (i, j, step) multiset is identical to
    ``grid.candidate_pair_steps()`` — the differential suite pins this
    across both grid implementations and both precision policies.  A step
    whose churn exceeds ``rebuild_threshold`` (or the first step after
    construction / a cache drop) falls back to a full half-stencil
    emission that reseeds the cache, so the emitter never degrades far
    below the non-coherent path even under hostile churn.  The byte
    budget is enforced at round granularity: a cache that finishes a
    round over budget is dropped before the next round starts.

    One emitter instance serves one ordered step stream over objects with
    ids ``0 .. n_objects-1``; parallel shards must each own a private
    instance (the multi-device executors create one per shard, which also
    resets the state between shards).
    """

    def __init__(
        self,
        n_objects: int,
        budget_bytes: "int | None" = None,
        rebuild_threshold: float = 0.5,
    ) -> None:
        if n_objects <= 0:
            raise ValueError(f"n_objects must be positive, got {n_objects}")
        self.n_objects = n_objects
        self.budget_bytes = budget_bytes
        self.rebuild_threshold = rebuild_threshold
        self.stats = CoherenceStats()
        self.reset()

    def reset(self) -> None:
        """Drop all cross-step state (cache + previous-step memberships)."""
        self._prev_cells: "np.ndarray | None" = None
        self._prev_occ = np.empty(0, dtype=np.uint64)
        self._adj_a = np.empty(0, dtype=np.uint64)
        self._adj_b = np.empty(0, dtype=np.uint64)
        self._adj_counts = np.empty(0, dtype=np.int64)
        self._adj_start = np.empty(0, dtype=np.int64)
        self._pair_i = np.empty(0, dtype=np.int64)
        self._pair_j = np.empty(0, dtype=np.int64)

    def fresh_window(self) -> None:
        """Reset the emitter to its just-constructed state for a new window.

        A resident shard worker (the persistent process pool) keeps one
        emitter instance alive across screening windows; calling this at
        window start drops both the cross-step cache *and* the lifetime
        stats, so a reused emitter emits — and reports — exactly what a
        freshly constructed one would.  Within a window the cache stays
        resident across rounds, which is where the coherence win lives.
        """
        self.stats = CoherenceStats()
        self.reset()

    def cache_bytes(self) -> int:
        """Actual byte footprint of the coherence cache."""
        prev = 0 if self._prev_cells is None else self._prev_cells.nbytes
        return (
            prev
            + self._prev_occ.nbytes
            + self._adj_a.nbytes + self._adj_b.nbytes
            + self._adj_counts.nbytes + self._adj_start.nbytes
            + self._pair_i.nbytes + self._pair_j.nbytes
        )

    def round_pairs(self, grid) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Candidate pairs ``(i, j, step)`` of a built grid (round or step).

        Drop-in replacement for ``grid.candidate_pair_steps()`` that
        carries coherence state across calls: consecutive rounds diff
        seamlessly because the emitter only tracks "previous processed
        step", not absolute step numbers.
        """
        rv = _round_view(grid)
        if rv is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        stats = self.stats
        p, n = rv.p, self.n_objects
        stats.steps += p
        stats.probes_full_equiv += len(_HALF_OFFSETS_ARR) * len(rv.keys)
        out_i: "list[np.ndarray]" = []
        out_j: "list[np.ndarray]" = []
        out_s: "list[np.ndarray]" = []
        # Intra-cell pairs: always freshly computed (multi-occupancy cells
        # are rare enough that caching them buys nothing measurable), one
        # pass over the whole round.
        intra = _intra_cell_index_pairs(rv.start, rv.counts)
        if intra is not None:
            out_i.append(np.minimum(rv.lane_ids[intra[0]], rv.lane_ids[intra[1]]))
            out_j.append(np.maximum(rv.lane_ids[intra[0]], rv.lane_ids[intra[1]]))
            out_s.append(rv.lane_steps[intra[0]])

        if int(rv.counts.sum()) != p * n:
            # A grid that does not cover the whole population every step
            # (not produced by the screening pipeline) cannot be diffed
            # object-by-object: emit it directly and invalidate the cache.
            src, _, dst, n_probes, _hb = _probe_cells(
                rv, np.arange(len(rv.keys), dtype=np.int64), _HALF_OFFSETS_ARR
            )
            stats.probes += n_probes
            stats.full_rebuilds += p
            pos_i, pos_j, sizes = _expand_cell_pairs(rv.start, rv.counts, src, dst)
            out_i.append(np.minimum(rv.lane_ids[pos_i], rv.lane_ids[pos_j]))
            out_j.append(np.maximum(rv.lane_ids[pos_i], rv.lane_ids[pos_j]))
            out_s.append(np.repeat(rv.cell_steps[src], sizes))
            self.reset()
            return self._finish(out_i, out_j, out_s)

        # --- membership diff, hoisted over the round ------------------
        cur2d = np.empty((p, n), dtype=np.uint64)
        cur2d[rv.lane_steps, rv.lane_ids] = np.repeat(rv.stripped, rv.counts)
        have_prev = self._prev_cells is not None
        changed2d = np.empty((p, n), dtype=bool)
        if p > 1:
            np.not_equal(cur2d[1:], cur2d[:-1], out=changed2d[1:])
        if have_prev:
            np.not_equal(cur2d[0], self._prev_cells, out=changed2d[0])
        else:
            changed2d[0] = False
        full_mask = changed2d.sum(axis=1) > self.rebuild_threshold * n
        if not have_prev:
            full_mask[0] = True

        mov_steps, mov_ids = np.nonzero(changed2d)
        mov_cur = cur2d[mov_steps, mov_ids]
        mov_prev = np.empty(len(mov_cur), dtype=np.uint64)
        first = mov_steps == 0
        later = ~first
        mov_prev[later] = cur2d[mov_steps[later] - 1, mov_ids[later]]
        if have_prev and first.any():
            mov_prev[first] = self._prev_cells[mov_ids[first]]
        mov_bounds = np.searchsorted(mov_steps, np.arange(p + 1))

        # --- newly occupied cells, hoisted: a mover's destination is new
        # iff nothing occupied that cell at the previous step ------------
        shift = np.uint64(3 * rv.bits)
        occ_before = np.zeros(len(mov_cur), dtype=bool)
        if have_prev and first.any():
            occ_before[first] = _in_sorted(self._prev_occ, mov_cur[first])
        if later.any():
            test = mov_cur[later] + ((mov_steps[later] - 1).astype(np.uint64) << shift)
            occ_before[later] = _in_sorted(rv.keys, test)
        cand = ~occ_before & ~full_mask[mov_steps]
        nc = mov_cur[cand] + (mov_steps[cand].astype(np.uint64) << shift)
        nc.sort()
        if len(nc) > 1:
            first_occ = np.empty(len(nc), dtype=bool)
            first_occ[0] = True
            np.not_equal(nc[1:], nc[:-1], out=first_occ[1:])
            new_compound = nc[first_occ]
        else:
            new_compound = nc
        new_cells = np.searchsorted(rv.keys, new_compound)

        # --- batched probes: full-rebuild steps probe every cell with the
        # 13 half offsets, coherent steps probe only their newly occupied
        # cells with the full 26-offset stencil ------------------------
        full_idx = np.nonzero(full_mask)[0]
        if full_idx.size:
            full_src = np.concatenate(
                [
                    np.arange(rv.bounds[k], rv.bounds[k + 1], dtype=np.int64)
                    for k in full_idx
                ]
            )
        else:
            full_src = np.empty(0, dtype=np.int64)
        f_src, _, f_dst, f_probes, f_hb = _probe_cells(rv, full_src, _HALF_OFFSETS_ARR)
        c_src, c_off, c_dst, c_probes, c_hb = _probe_cells(
            rv, new_cells, _FULL_OFFSETS_ARR
        )
        stats.probes += f_probes + c_probes
        if len(c_src):
            # A hit between two new cells is discovered from both ends;
            # keep the positive-offset direction only.
            keep = (c_off < len(_HALF_OFFSETS_ARR)) | ~_in_sorted(
                new_compound, rv.keys[c_dst]
            )
            c_src, c_dst = c_src[keep], c_dst[keep]
            kept_before = np.zeros(len(keep) + 1, dtype=np.int64)
            np.cumsum(keep, out=kept_before[1:])
            c_hb = kept_before[c_hb]
        f_a, f_b, f_ca, f_cb = _canonical_adjacency(rv, f_src, f_dst)
        c_a, c_b, c_ca, c_cb = _canonical_adjacency(rv, c_src, c_dst)

        # --- per-step cache walk: small adjacency bookkeeping only ----
        for k in range(p):
            c0 = int(rv.bounds[k])
            if full_mask[k]:
                stats.full_rebuilds += 1
                s = slice(f_hb[k], f_hb[k + 1])
                pos_i, pos_j, sizes = _expand_cell_pairs(
                    rv.start, rv.counts, f_ca[s], f_cb[s]
                )
                pi = np.minimum(rv.lane_ids[pos_i], rv.lane_ids[pos_j])
                pj = np.maximum(rv.lane_ids[pos_i], rv.lane_ids[pos_j])
                self._set_adjacency(f_a[s], f_b[s], sizes, pi, pj)
                out_i.append(pi)
                out_j.append(pj)
                out_s.append(np.full(len(pi), k, dtype=np.int64))
                continue
            stats.coherent_steps += 1
            m = slice(mov_bounds[k], mov_bounds[k + 1])
            # Cells someone entered or left this step (duplicates are
            # harmless: only membership tests consume this).
            dirty = np.sort(np.concatenate([mov_prev[m], mov_cur[m]]))
            touched = _in_sorted(dirty, self._adj_a) | _in_sorted(dirty, self._adj_b)
            clean = np.nonzero(~touched)[0]
            t_idx = np.nonzero(touched)[0]
            stripped_k = rv.stripped[c0 : int(rv.bounds[k + 1])]
            occupied = _in_sorted(stripped_k, self._adj_a[t_idx]) & _in_sorted(
                stripped_k, self._adj_b[t_idx]
            )
            stale = t_idx[occupied]

            rep_idx = _gather_ranges(self._adj_start[clean], self._adj_counts[clean])
            rep_i = self._pair_i[rep_idx]
            rep_j = self._pair_j[rep_idx]

            s = slice(c_hb[k], c_hb[k + 1])
            re_cells_a = np.concatenate(
                [np.searchsorted(stripped_k, self._adj_a[stale]) + c0, c_ca[s]]
            )
            re_cells_b = np.concatenate(
                [np.searchsorted(stripped_k, self._adj_b[stale]) + c0, c_cb[s]]
            )
            pos_i, pos_j, re_sizes = _expand_cell_pairs(
                rv.start, rv.counts, re_cells_a, re_cells_b
            )
            re_i = np.minimum(rv.lane_ids[pos_i], rv.lane_ids[pos_j])
            re_j = np.maximum(rv.lane_ids[pos_i], rv.lane_ids[pos_j])

            stats.cell_pairs_replayed += len(clean)
            stats.cell_pairs_recomputed += len(re_cells_a)
            stats.pairs_replayed += len(rep_i)

            self._set_adjacency(
                np.concatenate([self._adj_a[clean], self._adj_a[stale], c_a[s]]),
                np.concatenate([self._adj_b[clean], self._adj_b[stale], c_b[s]]),
                np.concatenate([self._adj_counts[clean], re_sizes]),
                np.concatenate([rep_i, re_i]),
                np.concatenate([rep_j, re_j]),
            )
            out_i.append(rep_i)
            out_i.append(re_i)
            out_j.append(rep_j)
            out_j.append(re_j)
            out_s.append(np.full(len(rep_i) + len(re_i), k, dtype=np.int64))

        self._prev_cells = cur2d[p - 1].copy()
        self._prev_occ = rv.stripped[int(rv.bounds[p - 1]) : int(rv.bounds[p])].copy()
        if self.budget_bytes is not None and self.cache_bytes() > self.budget_bytes:
            stats.budget_drops += 1
            self.reset()
        return self._finish(out_i, out_j, out_s)

    # ------------------------------------------------------------------

    def _set_adjacency(self, adj_a, adj_b, adj_counts, pair_i, pair_j):
        self._adj_a = adj_a
        self._adj_b = adj_b
        self._adj_counts = adj_counts
        ends = np.cumsum(adj_counts)
        self._adj_start = (ends - adj_counts).astype(np.int64)
        self._pair_i = pair_i
        self._pair_j = pair_j

    def _finish(self, out_i, out_j, out_s):
        if not out_i:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        i = np.concatenate(out_i)
        j = np.concatenate(out_j)
        s = np.concatenate(out_s)
        self.stats.pairs_emitted += len(i)
        return i, j, s
