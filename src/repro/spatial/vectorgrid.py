"""Data-parallel grid builds: the GPU-kernel analogue of the paper.

Two implementations with identical observable behaviour:

* :class:`SortedGrid` — sort-based cell grouping plus ``searchsorted``
  neighbour lookup.  This is the throughput path: every stage is a fused
  numpy array operation, mirroring how a GPU kernel assigns one thread per
  (satellite, step) tuple with no Python-level loop over satellites.
* :class:`VectorHashGrid` — a faithful emulation of the paper's CUDA
  insertion kernel: a *real* open-addressing table is built in iterative
  CAS-conflict-resolution rounds (one round per contention level, winners
  chosen with ``np.minimum.at`` scatter reductions — the SIMT equivalent of
  "exactly one thread's atomicCAS succeeds per slot per round"), then the
  per-cell singly linked lists are attached with the same round scheme.

Both emit candidate pairs through the shared ragged-cartesian machinery at
the bottom of this module, and the test suite proves they agree with each
other and with the serial :class:`repro.spatial.grid.UniformGrid`.
"""
from __future__ import annotations

import numpy as np

from repro.constants import EMPTY_KEY, NULL_INDEX, SIM_EXTENT, SIM_HALF_EXTENT
from repro.spatial.grid import HALF_NEIGHBOR_OFFSETS
from repro.spatial.hashing import (
    CELL_BITS,
    CELL_RANGE,
    MAX_ROUND_STEPS,
    STEP_CELL_BITS,
    STEP_CELL_RANGE,
    murmur3_fmix64_array,
    pack_cell_key,
    pack_step_cell_key,
    unpack_cell_key,
    unpack_step_cell_key,
)

_EMPTY_U64 = np.uint64(EMPTY_KEY)


def _as_grid_positions(positions: np.ndarray) -> np.ndarray:
    """Position array with its grid-binning dtype.

    float32 inputs (the mixed-precision broad phase) stay float32 so the
    cell-coordinate arithmetic below runs in the same precision the
    positions were produced in; everything else is binned in float64.
    Python float scalars broadcast without promoting float32 arrays, so the
    downstream ``floor((pos + half) / cell)`` preserves this dtype.
    """
    pos = np.asarray(positions)
    if pos.dtype != np.float32:
        pos = pos.astype(np.float64, copy=False)
    return pos


def compute_cell_keys(positions: np.ndarray, cell_size: float) -> np.ndarray:
    """Packed cell keys for an ``(n, 3)`` position array (uint64 ``(n,)``).

    Accepts float64 or float32 positions; the binning arithmetic runs in
    the input dtype (see :func:`_as_grid_positions`).
    """
    pos = _as_grid_positions(positions)
    if np.any(np.abs(pos) > SIM_HALF_EXTENT):
        worst = float(np.abs(pos).max())
        raise ValueError(
            f"position component {worst:.1f} km outside the simulation cube "
            f"(half extent {SIM_HALF_EXTENT:.0f} km)"
        )
    coords = np.floor((pos + SIM_HALF_EXTENT) / cell_size).astype(np.int64)
    return pack_cell_key(coords[:, 0], coords[:, 1], coords[:, 2])


def compute_step_cell_keys(positions: np.ndarray, cell_size: float) -> np.ndarray:
    """Compound (step, cell) keys for a ``(p, n, 3)`` round of positions.

    One flat uint64 array of ``p * n`` lane keys, lane order step-major
    (all of step 0, then all of step 1, ...).  Because the step index sits
    in the key's high bits, a single sort/group or hash build over these
    keys partitions the lanes into per-(step, cell) groups — the fused
    equivalent of building ``p`` independent grids.  float32 rounds (mixed
    precision) are binned in float32, like :func:`compute_cell_keys`.
    """
    pos = _as_grid_positions(positions)
    if pos.ndim != 3 or pos.shape[-1] != 3:
        raise ValueError(f"positions must have shape (p, n, 3), got {pos.shape}")
    p = pos.shape[0]
    if p > MAX_ROUND_STEPS:
        raise ValueError(f"round of {p} steps exceeds the packable maximum {MAX_ROUND_STEPS}")
    if SIM_EXTENT / cell_size >= STEP_CELL_RANGE:
        raise ValueError(
            f"cell size {cell_size} km needs more than {STEP_CELL_RANGE} cells per "
            "axis, too fine for the compound (step, cell) key space"
        )
    if np.any(np.abs(pos) > SIM_HALF_EXTENT):
        worst = float(np.abs(pos).max())
        raise ValueError(
            f"position component {worst:.1f} km outside the simulation cube "
            f"(half extent {SIM_HALF_EXTENT:.0f} km)"
        )
    coords = np.floor((pos + SIM_HALF_EXTENT) / cell_size).astype(np.int64)
    steps = np.repeat(np.arange(p, dtype=np.int64), pos.shape[1])
    return pack_step_cell_key(
        steps,
        coords[:, :, 0].ravel(),
        coords[:, :, 1].ravel(),
        coords[:, :, 2].ravel(),
    )


class SortedGrid:
    """Sort-based cell grouping for one sampling step.

    Parameters
    ----------
    cell_size:
        Cell side length in km.

    After :meth:`build`, the grid exposes the occupied cells in sorted key
    order with start offsets and counts (a CSR-like layout), which both the
    intra-cell and the neighbour pair emission consume without touching
    Python objects.
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0.0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self.sorted_ids: np.ndarray | None = None
        self.sorted_steps: np.ndarray | None = None
        self.unique_keys: np.ndarray | None = None
        self.start: np.ndarray | None = None
        self.counts: np.ndarray | None = None

    def build(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Group the population by cell key (one argsort, no hashing)."""
        keys = compute_cell_keys(positions, self.cell_size)
        self._finalise(keys, np.asarray(sat_ids, dtype=np.int64), None)

    def build_rounds(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Fused build of a whole round: ``positions`` has shape (p, n, 3).

        One sort over ``p * n`` compound (step, cell) keys replaces ``p``
        separate per-step builds — the Section V-B "simultaneous grids"
        realised inside a single key space.  Emission must then go through
        :meth:`candidate_pair_steps`, which labels each pair with the
        within-round step index it was found at.
        """
        pos = _as_grid_positions(positions)
        keys = compute_step_cell_keys(pos, self.cell_size)
        p = pos.shape[0]
        ids = np.tile(np.asarray(sat_ids, dtype=np.int64), p)
        steps = np.repeat(np.arange(p, dtype=np.int64), pos.shape[1])
        self._finalise(keys, ids, steps)

    def _finalise(self, keys: np.ndarray, ids: np.ndarray, steps: "np.ndarray | None") -> None:
        order = np.argsort(keys, kind="stable")
        self.sorted_ids = ids[order]
        self.sorted_steps = None if steps is None else steps[order]
        self.unique_keys, self.start, self.counts = _group_sorted(keys[order])
        # Presence filter for the neighbour probes: one fmix64 bucket flag
        # per occupied cell, sized ~4 buckets per cell.  In the
        # sparse-occupancy regime nearly every neighbour probe misses, so a
        # single byte gather rejects ~90 % of them for the price of one
        # hash — replacing most of the binary searches during emission.
        m_bits = max(int(np.ceil(np.log2(4 * len(self.unique_keys) + 1))), 10)
        self._occ_shift = np.uint64(64 - m_bits)
        occ = np.zeros(1 << m_bits, dtype=bool)
        occ[(murmur3_fmix64_array(self.unique_keys) >> self._occ_shift).astype(np.int64)] = True
        self._occ = occ

    def occupancy(self) -> "dict[int, list[int]]":
        """Mapping packed cell key -> sorted satellite ids (for tests)."""
        self._require_built()
        out: dict[int, list[int]] = {}
        for k, s, c in zip(self.unique_keys, self.start, self.counts):
            out[int(k)] = sorted(int(x) for x in self.sorted_ids[s : s + c])
        return out

    def candidate_pairs(self) -> "tuple[np.ndarray, np.ndarray]":
        """Unordered candidate pairs ``(i, j)`` with ``i < j`` elementwise."""
        self._require_built()
        if self.sorted_steps is not None:
            raise RuntimeError("multi-step build: use candidate_pair_steps()")
        pairs = self._index_pairs()
        if pairs is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        i = self.sorted_ids[pairs[0]]
        j = self.sorted_ids[pairs[1]]
        return np.minimum(i, j), np.maximum(i, j)

    def candidate_pair_steps(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Candidate pairs with the within-round step each was found at.

        Returns ``(i, j, step)`` with ``i < j`` elementwise.  Both members
        of a pair always share one (step, cell)-keyed cell pair, so the
        step label is exact, never inferred.
        """
        self._require_built()
        pairs = self._index_pairs()
        if pairs is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        i = self.sorted_ids[pairs[0]]
        j = self.sorted_ids[pairs[1]]
        if self.sorted_steps is None:
            steps = np.zeros(len(i), dtype=np.int64)
        else:
            steps = self.sorted_steps[pairs[0]]
        return np.minimum(i, j), np.maximum(i, j), steps

    def _index_pairs(self) -> "tuple[np.ndarray, np.ndarray] | None":
        unique_keys = self.unique_keys
        occ, shift = self._occ, self._occ_shift
        n_cells = len(unique_keys)

        def find(nkeys: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
            pos = np.full(len(nkeys), n_cells, dtype=np.int64)
            found = np.zeros(len(nkeys), dtype=bool)
            maybe = np.nonzero(
                occ[(murmur3_fmix64_array(nkeys) >> shift).astype(np.int64)]
            )[0]
            if maybe.size:
                p = np.searchsorted(unique_keys, nkeys[maybe])
                pos[maybe] = p
                found[maybe] = (p < n_cells) & (
                    unique_keys[np.minimum(p, n_cells - 1)] == nkeys[maybe]
                )
            return pos, found

        return _emit_index_pairs(
            unique_keys, self.start, self.counts, self.sorted_steps is not None, find
        )

    @property
    def n_occupied_cells(self) -> int:
        self._require_built()
        return len(self.unique_keys)

    def _require_built(self) -> None:
        if self.sorted_ids is None:
            raise RuntimeError("grid not built yet - call build() first")


class VectorHashGrid:
    """CAS-round emulation of the paper's GPU hash-map insertion kernel.

    Builds a genuine fixed-size open-addressing table (key area initialised
    to the 2^64-1 EMPTY sentinel, linear probing, 2x slot factor) where
    each "round" resolves the CAS winners of all still-contending lanes at
    once:

    1. *slot resolution* — every lane reads its probe slot; lanes seeing
       their own key are done; lanes seeing EMPTY contend, and the winner
       per slot (scatter-min, the deterministic stand-in for "whichever
       thread's atomicCAS lands first") writes its key; losers re-read;
       lanes seeing a foreign key advance linearly (Eq. 2);
    2. *list attach* — every unresolved lane points its entry's ``next`` at
       the current head and the per-slot winner becomes the new head,
       exactly the CAS loop of Section IV-A2.

    The round count equals the deepest contention chain, matching the
    warp-retry behaviour of the CUDA kernel.
    """

    def __init__(self, cell_size: float, capacity: int, slot_factor: int = 2) -> None:
        if cell_size <= 0.0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.cell_size = cell_size
        self.capacity = capacity
        self.n_slots = max(slot_factor * capacity, 8)
        self.table_keys = np.full(self.n_slots, _EMPTY_U64, dtype=np.uint64)
        self.heads = np.full(self.n_slots, NULL_INDEX, dtype=np.int64)
        self.entry_next = np.empty(0, dtype=np.int64)
        self.entry_slot = np.empty(0, dtype=np.int64)
        self.sat_ids = np.empty(0, dtype=np.int64)
        self.lane_steps: np.ndarray | None = None
        self.insert_rounds = 0
        self.attach_rounds = 0

    def build(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Insert the whole batch through CAS-conflict-resolution rounds."""
        ids = np.asarray(sat_ids, dtype=np.int64)
        if len(ids) > self.capacity:
            raise RuntimeError(f"batch of {len(ids)} exceeds grid capacity {self.capacity}")
        keys = compute_cell_keys(positions, self.cell_size)
        self._build_lanes(ids, keys, None)

    def build_rounds(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Fused CAS-round build of a whole round (positions ``(p, n, 3)``).

        Every (satellite, step) lane of the round contends in the same
        table under its compound (step, cell) key, so one pass of the CAS
        machinery covers all ``p`` simultaneous grids.  Capacity must hold
        ``p * n`` lanes.
        """
        pos = _as_grid_positions(positions)
        keys = compute_step_cell_keys(pos, self.cell_size)
        p, per_step = pos.shape[0], pos.shape[1]
        if p * per_step > self.capacity:
            raise RuntimeError(
                f"round of {p * per_step} lanes exceeds grid capacity {self.capacity}"
            )
        ids = np.tile(np.asarray(sat_ids, dtype=np.int64), p)
        steps = np.repeat(np.arange(p, dtype=np.int64), per_step)
        self._build_lanes(ids, keys, steps)

    def _build_lanes(self, ids: np.ndarray, keys: np.ndarray, steps: "np.ndarray | None") -> None:
        n = len(ids)
        self.sat_ids = ids
        self.lane_steps = steps
        self.entry_next = np.full(n, NULL_INDEX, dtype=np.int64)
        self.entry_slot = np.full(n, NULL_INDEX, dtype=np.int64)

        # --- Phase 1: slot resolution rounds -------------------------------
        slot = (murmur3_fmix64_array(keys) % np.uint64(self.n_slots)).astype(np.int64)
        resolved = np.full(n, NULL_INDEX, dtype=np.int64)
        active = np.arange(n, dtype=np.int64)
        rounds = 0
        max_rounds = self.n_slots + n + 2
        while active.size:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("hash table full: slot resolution did not terminate")
            s = slot[active]
            tk = self.table_keys[s]
            mine = tk == keys[active]
            if mine.any():
                resolved[active[mine]] = s[mine]
            empty = tk == _EMPTY_U64
            if empty.any():
                contenders = active[empty]
                cslots = s[empty]
                claim = np.full(self.n_slots, n, dtype=np.int64)
                np.minimum.at(claim, cslots, contenders)
                win = claim[cslots] == contenders
                self.table_keys[cslots[win]] = keys[contenders[win]]
                resolved[contenders[win]] = cslots[win]
            foreign = ~mine & ~empty
            if foreign.any():
                adv = active[foreign]
                slot[adv] = (slot[adv] + 1) % self.n_slots
            active = active[resolved[active] == NULL_INDEX]
        self.entry_slot = resolved
        self.insert_rounds = rounds

        # --- Phase 2: linked-list head-attach rounds ------------------------
        active = np.arange(n, dtype=np.int64)
        rounds = 0
        while active.size:
            rounds += 1
            s = resolved[active]
            self.entry_next[active] = self.heads[s]
            claim = np.full(self.n_slots, n, dtype=np.int64)
            np.minimum.at(claim, s, active)
            win = claim[s] == active
            self.heads[s[win]] = active[win]
            active = active[~win]
        self.attach_rounds = rounds

    def lookup(self, query_keys: np.ndarray) -> np.ndarray:
        """Vectorised table lookup; returns slot indices (-1 on miss)."""
        q = np.asarray(query_keys, dtype=np.uint64)
        slot = (murmur3_fmix64_array(q) % np.uint64(self.n_slots)).astype(np.int64)
        result = np.full(len(q), NULL_INDEX, dtype=np.int64)
        active = np.arange(len(q), dtype=np.int64)
        for _ in range(self.n_slots + 1):
            if not active.size:
                break
            s = slot[active]
            tk = self.table_keys[s]
            hit = tk == q[active]
            result[active[hit]] = s[hit]
            miss = tk == _EMPTY_U64
            keep = ~hit & ~miss
            adv = active[keep]
            slot[adv] = (slot[adv] + 1) % self.n_slots
            active = adv
        return result

    def occupancy(self) -> "dict[int, list[int]]":
        """Mapping packed cell key -> sorted satellite ids (for tests)."""
        out: dict[int, list[int]] = {}
        for s in np.nonzero(self.table_keys != _EMPTY_U64)[0]:
            members = []
            idx = int(self.heads[s])
            guard = 0
            while idx != NULL_INDEX:
                members.append(int(self.sat_ids[idx]))
                idx = int(self.entry_next[idx])
                guard += 1
                if guard > len(self.sat_ids):
                    raise RuntimeError("cycle in linked list - CAS emulation broken")
            out[int(self.table_keys[s])] = sorted(members)
        return out

    def candidate_pairs(self) -> "tuple[np.ndarray, np.ndarray]":
        """Unordered candidate pairs via CSR grouping of the resolved slots.

        Grouping by resolved slot (each slot holds exactly one cell) yields
        the same cell partition as the linked lists; neighbour cells are
        located with the vectorised hash :meth:`lookup` rather than a sort.
        """
        if self.lane_steps is not None:
            raise RuntimeError("multi-step build: use candidate_pair_steps()")
        if len(self.sat_ids) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        order, pairs = self._index_pairs()
        if pairs is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        sorted_ids = self.sat_ids[order]
        i = sorted_ids[pairs[0]]
        j = sorted_ids[pairs[1]]
        return np.minimum(i, j), np.maximum(i, j)

    def candidate_pair_steps(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Candidate pairs as ``(i, j, step)``; see SortedGrid's variant."""
        empty = np.empty(0, dtype=np.int64)
        if len(self.sat_ids) == 0:
            return empty, empty.copy(), empty.copy()
        order, pairs = self._index_pairs()
        if pairs is None:
            return empty, empty.copy(), empty.copy()
        sorted_ids = self.sat_ids[order]
        i = sorted_ids[pairs[0]]
        j = sorted_ids[pairs[1]]
        if self.lane_steps is None:
            steps = np.zeros(len(i), dtype=np.int64)
        else:
            steps = self.lane_steps[order][pairs[0]]
        return np.minimum(i, j), np.maximum(i, j), steps

    def _index_pairs(self) -> "tuple[np.ndarray, tuple[np.ndarray, np.ndarray] | None]":
        """CSR-group the resolved slots; emit positional pairs into that order."""
        order = np.argsort(self.entry_slot, kind="stable")
        slots_u, start, counts = _group_sorted(self.entry_slot[order])
        cell_keys = self.table_keys[slots_u]

        # slot -> dense cell index for the occupied slots
        slot_to_cell = np.full(self.n_slots, NULL_INDEX, dtype=np.int64)
        slot_to_cell[slots_u] = np.arange(len(slots_u), dtype=np.int64)

        def find(nkeys: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
            n_slot = self.lookup(nkeys)
            found = n_slot != NULL_INDEX
            return slot_to_cell[np.where(found, n_slot, 0)], found

        pairs = _emit_index_pairs(
            cell_keys, start, counts, self.lane_steps is not None, find
        )
        return order, pairs

    @property
    def memory_bytes(self) -> int:
        """Table + linked-list footprint, matching V-B's 16 B/slot account."""
        return (
            self.table_keys.nbytes
            + self.heads.nbytes
            + self.entry_next.nbytes
            + self.entry_slot.nbytes
            + self.sat_ids.nbytes
            + (self.lane_steps.nbytes if self.lane_steps is not None else 0)
        )


# ----------------------------------------------------------------------
# Shared CSR-group / ragged-cartesian machinery
# ----------------------------------------------------------------------


def _group_sorted(sorted_vals: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """CSR grouping of an already-sorted array: (unique, start, counts)."""
    if len(sorted_vals) == 0:
        return (
            sorted_vals[:0],
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    boundary = np.empty(len(sorted_vals), dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_vals[1:], sorted_vals[:-1], out=boundary[1:])
    start = np.nonzero(boundary)[0].astype(np.int64)
    counts = np.diff(np.append(start, len(sorted_vals))).astype(np.int64)
    return sorted_vals[start], start, counts


#: Cells larger than this fall back to a per-cell loop in pair expansion —
#: they are vanishingly rare in screening workloads (a cell holding >64
#: objects means a catastrophically dense cloud within one cell volume).
_DENSE_CELL_LIMIT = 64


def _position_matrix(start: np.ndarray, cells: np.ndarray, c: int) -> np.ndarray:
    """Member *positions* of the given equal-size cells, ``(len(cells), c)``.

    Positions index the grid's sorted lane order; callers map them through
    the sorted id (and, for multi-step builds, step) arrays.
    """
    return start[cells][:, None] + np.arange(c, dtype=np.int64)[None, :]


def _emit_index_pairs(
    unique_keys: np.ndarray,
    start: np.ndarray,
    counts: np.ndarray,
    multi_step: bool,
    find,
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Positional candidate pairs over intra-cell and half-neighbour cells.

    ``find(nkeys) -> (cell_indices, found_mask)`` locates occupied
    neighbour cells (searchsorted for :class:`SortedGrid`, hash lookup for
    :class:`VectorHashGrid`).  With ``multi_step`` the keys are compound
    (step, cell) keys: offsets apply to the cell coordinates only and the
    step bits ride along unchanged, so a neighbour can only match within
    the same sampling step.
    """
    if len(unique_keys) == 0:
        return None
    chunks_i: list[np.ndarray] = []
    chunks_j: list[np.ndarray] = []
    intra = _intra_cell_index_pairs(start, counts)
    if intra is not None:
        chunks_i.append(intra[0])
        chunks_j.append(intra[1])

    if multi_step:
        _, ux, uy, uz = unpack_step_cell_key(unique_keys)
        coord_range, bits = STEP_CELL_RANGE, STEP_CELL_BITS
    else:
        ux, uy, uz = unpack_cell_key(unique_keys)
        coord_range, bits = CELL_RANGE, CELL_BITS
    # When every occupied cell sits strictly inside the coordinate range
    # (the usual case: populations live far from the simulation cube's
    # faces), all 26 unit offsets are in range for all cells and the
    # per-offset boundary masks are skipped wholesale.
    interior = bool(
        ux.min() > 0 and ux.max() < coord_range - 1
        and uy.min() > 0 and uy.max() < coord_range - 1
        and uz.min() > 0 and uz.max() < coord_range - 1
    )
    all_src = np.arange(len(unique_keys), dtype=np.int64)
    # Packing is linear in the cell coordinates, so while the offset stays
    # in range a neighbour's key is just key + delta (the step bits, when
    # present, sit above the coordinates and ride along unchanged).
    for dx, dy, dz in HALF_NEIGHBOR_OFFSETS:
        delta = np.uint64((dx + (dy << bits) + (dz << (2 * bits))) % (1 << 64))
        if interior:
            src = all_src
            probe = unique_keys + delta
        else:
            nx, ny, nz = ux + dx, uy + dy, uz + dz
            valid = (
                (nx >= 0) & (nx < coord_range)
                & (ny >= 0) & (ny < coord_range)
                & (nz >= 0) & (nz < coord_range)
            )
            if not valid.any():
                continue
            src = np.nonzero(valid)[0]
            probe = unique_keys[src] + delta
        dst, found = find(probe)
        if not found.any():
            continue
        cross = _cross_cell_index_pairs(start, counts, src[found], dst[found])
        if cross is not None:
            chunks_i.append(cross[0])
            chunks_j.append(cross[1])

    if not chunks_i:
        return None
    return np.concatenate(chunks_i), np.concatenate(chunks_j)


def _intra_cell_index_pairs(
    start: np.ndarray, counts: np.ndarray
) -> "tuple[np.ndarray, np.ndarray] | None":
    """All within-cell position pairs, grouped by cell size for vectorisation."""
    multi = np.nonzero(counts > 1)[0]
    if multi.size == 0:
        return None
    chunks_i: list[np.ndarray] = []
    chunks_j: list[np.ndarray] = []
    small = multi[counts[multi] <= _DENSE_CELL_LIMIT]
    for c in np.unique(counts[small]):
        cells = small[counts[small] == c]
        posm = _position_matrix(start, cells, int(c))
        iu, ju = np.triu_indices(int(c), k=1)
        chunks_i.append(posm[:, iu].ravel())
        chunks_j.append(posm[:, ju].ravel())
    for cell in multi[counts[multi] > _DENSE_CELL_LIMIT]:
        members = np.arange(start[cell], start[cell] + counts[cell], dtype=np.int64)
        iu, ju = np.triu_indices(len(members), k=1)
        chunks_i.append(members[iu])
        chunks_j.append(members[ju])
    return np.concatenate(chunks_i), np.concatenate(chunks_j)


def _cross_cell_index_pairs(
    start: np.ndarray,
    counts: np.ndarray,
    a_cells: np.ndarray,
    b_cells: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Full cartesian product of member positions across each (a, b) cell pair.

    Cell pairs are grouped by their ``(|a|, |b|)`` size combination so each
    group expands with one broadcast; combinations involving an oversize
    cell fall back to a per-pair loop.
    """
    if a_cells.size == 0:
        return None
    ca = counts[a_cells]
    cb = counts[b_cells]
    chunks_i: list[np.ndarray] = []
    chunks_j: list[np.ndarray] = []
    dense = (ca <= _DENSE_CELL_LIMIT) & (cb <= _DENSE_CELL_LIMIT)
    if dense.any():
        combo = ca * (_DENSE_CELL_LIMIT + 1) + cb
        combo = np.where(dense, combo, -1)
        for code in np.unique(combo[dense]):
            mask = combo == code
            va = int(code) // (_DENSE_CELL_LIMIT + 1)
            vb = int(code) % (_DENSE_CELL_LIMIT + 1)
            a_m = _position_matrix(start, a_cells[mask], va)  # (k, va)
            b_m = _position_matrix(start, b_cells[mask], vb)  # (k, vb)
            k = a_m.shape[0]
            chunks_i.append(np.broadcast_to(a_m[:, :, None], (k, va, vb)).reshape(-1))
            chunks_j.append(np.broadcast_to(b_m[:, None, :], (k, va, vb)).reshape(-1))
    for a_cell, b_cell in zip(a_cells[~dense], b_cells[~dense]):
        a_m = np.arange(start[a_cell], start[a_cell] + counts[a_cell], dtype=np.int64)
        b_m = np.arange(start[b_cell], start[b_cell] + counts[b_cell], dtype=np.int64)
        grid_a, grid_b = np.meshgrid(a_m, b_m, indexing="ij")
        chunks_i.append(grid_a.ravel())
        chunks_j.append(grid_b.ravel())
    if not chunks_i:
        return None
    return np.concatenate(chunks_i), np.concatenate(chunks_j)
