"""A 3-D Kd-tree over satellite positions: the related-work comparator.

Budianto-Ho et al. [29] screen conjunctions with Kd-trees over satellite
position bounds; the paper argues grids beat trees because "building the
Kd-tree for every step is tedious".  To reproduce that argument with
measurements (see ``benchmarks/test_ablation_datastructures.py``), this
module provides a median-split static Kd-tree with

* array-backed nodes (no per-node Python objects beyond the arrays),
* batch construction via ``argpartition`` medians,
* radius (fixed-range) neighbour queries with an explicit stack,
* an all-pairs-within-radius sweep used by the Kd-tree screening variant.
"""
from __future__ import annotations

import numpy as np

#: Leaves hold up to this many points; below that brute force wins.
_LEAF_SIZE = 16


class KDTree:
    """Static 3-D Kd-tree for radius queries.

    Parameters
    ----------
    points:
        ``(n, 3)`` positions, km.
    """

    __slots__ = (
        "points", "_index", "_split_dim", "_split_val",
        "_left", "_right", "_start", "_count", "_n_nodes",
    )

    def __init__(self, points: np.ndarray) -> None:
        pts = np.ascontiguousarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(f"points must be (n, 3), got {pts.shape}")
        n = len(pts)
        if n == 0:
            raise ValueError("cannot build a Kd-tree over zero points")
        self.points = pts
        self._index = np.arange(n, dtype=np.int64)
        max_nodes = max(4 * (n // _LEAF_SIZE + 2), 16)
        self._split_dim = np.full(max_nodes, -1, dtype=np.int64)
        self._split_val = np.zeros(max_nodes, dtype=np.float64)
        self._left = np.full(max_nodes, -1, dtype=np.int64)
        self._right = np.full(max_nodes, -1, dtype=np.int64)
        self._start = np.zeros(max_nodes, dtype=np.int64)
        self._count = np.zeros(max_nodes, dtype=np.int64)
        self._n_nodes = 0
        self._build(0, n)

    def _new_node(self) -> int:
        node = self._n_nodes
        self._n_nodes += 1
        if node >= len(self._split_dim):
            grow = len(self._split_dim) * 2
            for name in ("_split_dim", "_split_val", "_left", "_right", "_start", "_count"):
                old = getattr(self, name)
                new = np.resize(old, grow)
                new[len(old):] = -1 if old.dtype == np.int64 else 0.0
                setattr(self, name, new)
        return node

    def _build(self, start: int, end: int) -> int:
        node = self._new_node()
        count = end - start
        self._start[node] = start
        self._count[node] = count
        if count <= _LEAF_SIZE:
            self._split_dim[node] = -1
            return node
        idx_slice = self._index[start:end]
        coords = self.points[idx_slice]
        dim = int(np.argmax(coords.max(axis=0) - coords.min(axis=0)))
        mid = count // 2
        order = np.argpartition(coords[:, dim], mid)
        self._index[start:end] = idx_slice[order]
        split_val = float(self.points[self._index[start + mid], dim])
        self._split_dim[node] = dim
        self._split_val[node] = split_val
        left = self._build(start, start + mid)
        right = self._build(start + mid, end)
        self._left[node] = left
        self._right[node] = right
        return node

    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    def query_radius(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of ``point``."""
        if radius <= 0.0:
            raise ValueError(f"radius must be positive, got {radius}")
        q = np.asarray(point, dtype=np.float64)
        out: "list[np.ndarray]" = []
        stack = [0]
        while stack:
            node = stack.pop()
            if self._split_dim[node] == -1:
                s, c = self._start[node], self._count[node]
                members = self._index[s : s + c]
                d2 = np.einsum(
                    "ij,ij->i", self.points[members] - q, self.points[members] - q
                )
                hit = members[d2 <= radius * radius]
                if hit.size:
                    out.append(hit)
                continue
            dim = self._split_dim[node]
            delta = q[dim] - self._split_val[node]
            near, far = (
                (self._right[node], self._left[node])
                if delta >= 0.0
                else (self._left[node], self._right[node])
            )
            stack.append(near)
            if abs(delta) <= radius:
                stack.append(far)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(out))

    def pairs_within(self, radius: float) -> "tuple[np.ndarray, np.ndarray]":
        """All unordered index pairs within ``radius`` of each other.

        One query per point, keeping only partners with a larger index so
        every pair appears once — the Kd-tree screening variant's
        candidate emission.
        """
        chunks_i: "list[np.ndarray]" = []
        chunks_j: "list[np.ndarray]" = []
        for k in range(len(self.points)):
            hits = self.query_radius(self.points[k], radius)
            hits = hits[hits > k]
            if hits.size:
                chunks_i.append(np.full(hits.size, k, dtype=np.int64))
                chunks_j.append(hits)
        if not chunks_i:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        return np.concatenate(chunks_i), np.concatenate(chunks_j)

    @property
    def memory_bytes(self) -> int:
        """Node array + index footprint (the build cost the paper cites)."""
        return (
            self._index.nbytes + self._split_dim.nbytes + self._split_val.nbytes
            + self._left.nbytes + self._right.nbytes + self._start.nbytes + self._count.nbytes
        )
