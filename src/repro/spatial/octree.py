"""A loose octree over satellite positions: the second tree comparator.

Section IV-A rejects "data structures such as octrees or Kd-tree[s]"
because they "must be recreated each time an object moves"; the related
work cites loose octrees for particle packing [33].  This implementation
lets the data-structure ablation measure that claim against both tree
families.

A *loose* octree relaxes each node's bounding cube by a looseness factor
(classically 2x): an object is stored at the deepest node whose loose cube
fully contains the object's bounding sphere, which keeps insertion O(depth)
with no splitting cascades — the variant used for moving-object workloads.
"""
from __future__ import annotations

import numpy as np

from repro.constants import SIM_HALF_EXTENT

#: Children per node.
_OCTANTS = 8


class LooseOctree:
    """Loose octree with radius queries and an all-pairs sweep.

    Parameters
    ----------
    object_radius:
        Half-extent assigned to every object (satellites are points; the
        radius is the screening coverage, typically the grid cell size).
    max_depth:
        Maximum subdivision depth; the effective leaf size is
        ``2 * SIM_HALF_EXTENT / 2**max_depth``.
    looseness:
        Node-cube relaxation factor (2.0 is the classic loose octree).
    """

    __slots__ = (
        "object_radius", "max_depth", "looseness", "root_half",
        "_node_children", "_node_items", "_positions", "_count",
    )

    def __init__(
        self,
        object_radius: float,
        max_depth: int = 10,
        looseness: float = 2.0,
    ) -> None:
        if object_radius <= 0.0:
            raise ValueError(f"object radius must be positive, got {object_radius}")
        if max_depth < 1 or max_depth > 20:
            raise ValueError(f"max_depth must be in [1, 20], got {max_depth}")
        if looseness < 1.0:
            raise ValueError(f"looseness must be >= 1, got {looseness}")
        self.object_radius = object_radius
        self.max_depth = max_depth
        self.looseness = looseness
        self.root_half = SIM_HALF_EXTENT
        #: node id -> list of 8 child ids (or None while a leaf)
        self._node_children: "list[list[int] | None]" = [None]
        #: node id -> list of stored object indices
        self._node_items: "list[list[int]]" = [[]]
        self._positions: "np.ndarray | None" = None
        self._count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build(self, positions: np.ndarray) -> None:
        """Insert all objects (rebuild from scratch, as per Section IV-A)."""
        pts = np.ascontiguousarray(positions, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(f"positions must be (n, 3), got {pts.shape}")
        if np.any(np.abs(pts) > SIM_HALF_EXTENT):
            raise ValueError("positions outside the simulation cube")
        self._positions = pts
        self._count = len(pts)
        self._node_children = [None]
        self._node_items = [[]]
        for idx in range(len(pts)):
            self._insert(idx)

    def _insert(self, idx: int) -> None:
        """Place one object at the deepest loosely-containing node."""
        pos = self._positions[idx]
        node = 0
        centre = np.zeros(3)
        half = self.root_half
        for _ in range(self.max_depth):
            child_half = half / 2.0
            # The loose cube of a child has half-extent looseness*child_half;
            # the object's sphere fits iff it is within (loose - r) of the
            # child centre in every axis.
            margin = self.looseness * child_half - self.object_radius
            if margin <= 0.0:
                break
            octant = 0
            child_centre = centre.copy()
            for axis in range(3):
                if pos[axis] >= centre[axis]:
                    octant |= 1 << axis
                    child_centre[axis] += child_half
                else:
                    child_centre[axis] -= child_half
            if np.all(np.abs(pos - child_centre) <= margin):
                if self._node_children[node] is None:
                    base = len(self._node_items)
                    self._node_children[node] = list(range(base, base + _OCTANTS))
                    for _ in range(_OCTANTS):
                        self._node_children.append(None)
                        self._node_items.append([])
                node = self._node_children[node][octant]
                centre = child_centre
                half = child_half
            else:
                break
        self._node_items[node].append(idx)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query_radius(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all objects within ``radius`` of ``point``."""
        if self._positions is None:
            raise RuntimeError("octree not built yet - call build() first")
        if radius <= 0.0:
            raise ValueError(f"radius must be positive, got {radius}")
        q = np.asarray(point, dtype=np.float64)
        hits: "list[int]" = []
        # Stack of (node, centre, half).
        stack: "list[tuple[int, np.ndarray, float]]" = [(0, np.zeros(3), self.root_half)]
        reach = radius + self.object_radius
        while stack:
            node, centre, half = stack.pop()
            loose_half = self.looseness * half
            # Prune nodes whose loose cube cannot intersect the query ball.
            if np.any(np.abs(q - centre) > loose_half + reach):
                continue
            items = self._node_items[node]
            if items:
                pts = self._positions[items]
                d2 = np.einsum("ij,ij->i", pts - q, pts - q)
                hits.extend(int(items[k]) for k in np.nonzero(d2 <= radius * radius)[0])
            children = self._node_children[node]
            if children is not None:
                child_half = half / 2.0
                for octant, child in enumerate(children):
                    child_centre = centre + child_half * np.array(
                        [1.0 if octant & (1 << axis) else -1.0 for axis in range(3)]
                    )
                    stack.append((child, child_centre, child_half))
        return np.array(sorted(hits), dtype=np.int64)

    def pairs_within(self, radius: float) -> "tuple[np.ndarray, np.ndarray]":
        """All unordered index pairs within ``radius`` (one query/object)."""
        chunks_i: "list[np.ndarray]" = []
        chunks_j: "list[np.ndarray]" = []
        for k in range(self._count):
            hits = self.query_radius(self._positions[k], radius)
            hits = hits[hits > k]
            if hits.size:
                chunks_i.append(np.full(hits.size, k, dtype=np.int64))
                chunks_j.append(hits)
        if not chunks_i:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        return np.concatenate(chunks_i), np.concatenate(chunks_j)

    @property
    def n_nodes(self) -> int:
        return len(self._node_items)

    @property
    def depth_histogram(self) -> "dict[int, int]":
        """Objects stored per depth level (diagnostic)."""
        out: "dict[int, int]" = {}
        stack = [(0, 0)]
        while stack:
            node, depth = stack.pop()
            if self._node_items[node]:
                out[depth] = out.get(depth, 0) + len(self._node_items[node])
            children = self._node_children[node]
            if children is not None:
                stack.extend((c, depth + 1) for c in children)
        return out
