"""A build-once 4D (space × time-interval) AABB tree over swept boxes.

Bak & Hobbs (arxiv 1901.10475) screen n-to-n by building a 4D AABB tree
**once per window** over each object's swept bounds instead of rebuilding a
spatial structure every sampling step.  This module is that structure on
this library's substrate:

* The window's sampling steps are split into *knot intervals* of
  ``knot_steps`` steps.  Positions are propagated only at the knots; the
  swept box of one (object, interval) is the AABB of its two knot
  positions padded by an error-bounded sweep margin (max-speed × half the
  knot spacing) plus the broad-phase pairing margin (one grid cell, and
  the PR-5 float32 pad under the mixed-precision policy).
* The tree is array-backed (struct-of-arrays, no per-node Python
  objects): an implicit complete binary tree whose leaves are the boxes
  sorted by (interval, Morton code), with node bounds computed bottom-up
  by one vectorised min/max reduction per level.  The fourth dimension is
  the knot-interval index, carried in the same ``(lo, hi)`` arrays as the
  spatial axes, so internal nodes prune by time exactly like they prune
  by space.
* :meth:`AABB4DTree.query_self_pairs` answers the batched n-to-n
  self-overlap query with a level-synchronous frontier traversal — every
  iteration is a handful of fused array ops over the whole frontier.

The guarantee the detection variant builds on: if two objects are within
``2 * cell`` of each other (∞-norm) at any sample step of an interval —
the farthest apart two grid-adjacent satellites can be — their two boxes
for that interval overlap, so the tree's candidate set is a superset of
the grid's cell-adjacency emissions (DESIGN.md §14).
"""
from __future__ import annotations

import numpy as np

from repro.constants import MU_EARTH, SIM_HALF_EXTENT

#: Default sampling steps per knot interval: one box covers this many
#: steps, so propagation during the broad phase is this factor cheaper
#: than the grids' every-object-every-step INS.
DEFAULT_KNOT_STEPS = 32

#: Bits per axis of the leaf-ordering Morton code.
_MORTON_BITS = 10
_MORTON_RANGE = 1 << _MORTON_BITS


def max_speed_kms(population) -> np.ndarray:
    """Per-object speed bound: the vis-viva speed at perigee, km/s.

    On a Keplerian orbit the speed is maximal at perigee, so
    ``sqrt(mu * (2/r_p - 1/a))`` bounds how far an object can drift from a
    propagated knot over a known time span — the sweep-margin input.
    """
    r_p = population.perigee
    return np.sqrt(MU_EARTH * (2.0 / r_p - 1.0 / population.a))


def knot_schedule(n_steps: int, knot_steps: int):
    """Split a window's step indices into knot intervals.

    Returns ``(knots, starts, ends)``: the global step indices of the
    knots (interval edges, including the final step) and per-interval
    inclusive start/end step indices with ``ends[k] == starts[k + 1]``.
    Interval ``k`` *owns* steps ``[starts[k], ends[k])`` half-open — the
    last interval additionally owns its end — so the intervals partition
    the window's steps exactly once.
    """
    if n_steps < 2:
        raise ValueError(f"need at least 2 sampling steps, got {n_steps}")
    if knot_steps < 1:
        raise ValueError(f"knot_steps must be >= 1, got {knot_steps}")
    starts = np.arange(0, n_steps - 1, knot_steps, dtype=np.int64)
    ends = np.minimum(starts + knot_steps, n_steps - 1)
    knots = np.concatenate([starts, ends[-1:]])
    return knots, starts, ends


def swept_boxes(
    knot_positions: np.ndarray,
    interval_dt_s: np.ndarray,
    v_max_kms: np.ndarray,
    pad_km: float,
):
    """Per-(object, interval) swept AABBs from knot-propagated positions.

    ``knot_positions`` is ``(n_knots, n, 3)`` float64; interval ``k`` is
    bounded by knots ``k`` and ``k + 1`` and spans ``interval_dt_s[k]``
    seconds.  Any position of object ``o`` during interval ``k`` lies
    within ``v_max * dt / 2`` of the nearer knot (the object cannot
    outrun its perigee speed), so the AABB of the two knots padded by that
    margin contains the whole sweep; ``pad_km`` adds the caller's pairing
    margin (grid cell + precision pad) on top.

    Returns ``(lo, hi, interval, obj)`` with boxes interval-major:
    box ``k * n + o`` belongs to object ``o`` in interval ``k``.
    """
    if knot_positions.ndim != 3 or knot_positions.shape[-1] != 3:
        raise ValueError(f"knot positions must be (n_knots, n, 3), got {knot_positions.shape}")
    n_knots, n, _ = knot_positions.shape
    if n_knots < 2:
        raise ValueError("need at least 2 knots (1 interval)")
    n_int = n_knots - 1
    p0 = knot_positions[:-1]
    p1 = knot_positions[1:]
    margin = (
        np.asarray(v_max_kms, dtype=np.float64)[None, :, None]
        * np.asarray(interval_dt_s, dtype=np.float64)[:, None, None]
        * 0.5
        + pad_km
    )
    lo = (np.minimum(p0, p1) - margin).reshape(n_int * n, 3)
    hi = (np.maximum(p0, p1) + margin).reshape(n_int * n, 3)
    interval = np.repeat(np.arange(n_int, dtype=np.int64), n)
    obj = np.tile(np.arange(n, dtype=np.int64), n_int)
    return lo, hi, interval, obj


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Spread 10-bit lanes so consecutive bits land 3 apart (Morton)."""
    v = v.astype(np.uint64) & np.uint64(_MORTON_RANGE - 1)
    v = (v | (v << np.uint64(16))) & np.uint64(0x030000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x0300F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x030C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x09249249)
    return v


def morton3(centers: np.ndarray) -> np.ndarray:
    """30-bit Morton codes of ``(n, 3)`` points inside the simulation cube."""
    scale = _MORTON_RANGE / (2.0 * SIM_HALF_EXTENT)
    q = np.clip(
        ((centers + SIM_HALF_EXTENT) * scale).astype(np.int64), 0, _MORTON_RANGE - 1
    )
    return (
        _spread_bits(q[:, 0])
        | (_spread_bits(q[:, 1]) << np.uint64(1))
        | (_spread_bits(q[:, 2]) << np.uint64(2))
    )


def _next_pow2(x: int) -> int:
    return 1 if x <= 1 else 1 << (x - 1).bit_length()


class AABB4DTree:
    """Array-backed implicit BVH over 4D (x, y, z, interval) boxes.

    Leaves are the input boxes sorted by ``(interval, morton(center))``;
    leaf ``s`` (sorted order) lives at node ``n_leaves + s`` of a complete
    binary tree stored in flat arrays (node ``1`` is the root, node ``i``
    has children ``2i`` and ``2i + 1``).  Internal bounds are unions of
    their children, built with one vectorised reduction per level —
    construction does no per-node Python work.

    ``node_max_order`` holds the highest sorted leaf order under each
    node: the self-overlap query prunes any subtree whose leaves all
    precede the query box, which both halves the traversal and emits each
    unordered pair exactly once.
    """

    __slots__ = (
        "n_boxes", "n_leaves", "node_lo", "node_hi", "node_max_order",
        "perm", "build_seconds",
    )

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        interval: np.ndarray,
        obj: "np.ndarray | None" = None,
    ) -> None:
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        interval = np.asarray(interval, dtype=np.int64)
        if lo.shape != hi.shape or lo.ndim != 2 or lo.shape[1] != 3:
            raise ValueError(f"boxes must be (n, 3) lo/hi pairs, got {lo.shape}/{hi.shape}")
        if len(interval) != len(lo):
            raise ValueError("interval array must match the box count")
        b = len(lo)
        self.n_boxes = b
        self.n_leaves = _next_pow2(max(b, 1))
        leaves = self.n_leaves

        centers = 0.5 * (lo + hi)
        keys = (interval.astype(np.uint64) << np.uint64(30)) | morton3(centers)
        order = np.argsort(keys, kind="stable")
        self.perm = order

        self.node_lo = np.full((2 * leaves, 4), np.inf)
        self.node_hi = np.full((2 * leaves, 4), -np.inf)
        self.node_lo[leaves : leaves + b, :3] = lo[order]
        self.node_hi[leaves : leaves + b, :3] = hi[order]
        self.node_lo[leaves : leaves + b, 3] = interval[order]
        self.node_hi[leaves : leaves + b, 3] = interval[order]
        self.node_max_order = np.full(2 * leaves, -1, dtype=np.int64)
        self.node_max_order[leaves : leaves + b] = np.arange(b, dtype=np.int64)

        size = leaves
        while size > 1:
            half = size // 2
            self.node_lo[half:size] = self.node_lo[size : 2 * size].reshape(half, 2, 4).min(axis=1)
            self.node_hi[half:size] = self.node_hi[size : 2 * size].reshape(half, 2, 4).max(axis=1)
            self.node_max_order[half:size] = (
                self.node_max_order[size : 2 * size].reshape(half, 2).max(axis=1)
            )
            size = half

    @property
    def memory_bytes(self) -> int:
        """Resident footprint of the node and permutation arrays."""
        return (
            self.node_lo.nbytes
            + self.node_hi.nbytes
            + self.node_max_order.nbytes
            + self.perm.nbytes
        )

    def query_self_pairs(
        self, active: "np.ndarray | None" = None
    ) -> "tuple[np.ndarray, np.ndarray]":
        """All overlapping box pairs ``(a, b)`` in original box indices.

        Every box (optionally restricted to ``active`` boxes — the
        occupancy prefilter's surviving set) descends the tree as a query;
        overlap requires all four dimensions, so only boxes of the same
        knot interval can ever pair.  The ``node_max_order`` prune keeps
        exactly the pairs whose second member sorts after the first, so
        each unordered pair is emitted once and self-pairs never appear.
        The traversal is level-synchronous: each loop iteration advances
        the whole surviving frontier by one tree level with fused array
        ops (no per-node Python).
        """
        empty = np.empty(0, dtype=np.int64)
        if self.n_boxes < 2:
            return empty, empty.copy()
        leaves = self.n_leaves
        if active is None:
            fq = np.arange(self.n_boxes, dtype=np.int64)
        else:
            mask = np.asarray(active, dtype=bool)
            if len(mask) != self.n_boxes:
                raise ValueError("active mask must match the box count")
            fq = np.nonzero(mask[self.perm])[0].astype(np.int64)
        if fq.size == 0:
            return empty, empty.copy()
        fn = np.ones(fq.size, dtype=np.int64)

        out_a: "list[np.ndarray]" = []
        out_b: "list[np.ndarray]" = []
        while fq.size:
            q_lo = self.node_lo[leaves + fq]
            q_hi = self.node_hi[leaves + fq]
            n_lo = self.node_lo[fn]
            n_hi = self.node_hi[fn]
            ov = (
                np.all(n_lo <= q_hi, axis=1)
                & np.all(q_lo <= n_hi, axis=1)
                & (self.node_max_order[fn] > fq)
            )
            fq = fq[ov]
            fn = fn[ov]
            is_leaf = fn >= leaves
            if is_leaf.any():
                out_a.append(fq[is_leaf])
                out_b.append(fn[is_leaf] - leaves)
            inner = ~is_leaf
            fq = np.repeat(fq[inner], 2)
            fn = np.repeat(fn[inner] * 2, 2)
            fn[1::2] += 1
        if not out_a:
            return empty, empty.copy()
        a = np.concatenate(out_a)
        b = np.concatenate(out_b)
        return self.perm[a], self.perm[b]
