"""Spatial data structures: the paper's core substrate.

* :mod:`repro.spatial.hashing` — MurmurHash3 and 3-D cell-key packing.
* :mod:`repro.spatial.atomic` — CAS-semantics atomic array (the
  ``std::atomic`` / CUDA ``atomicCAS`` stand-in).
* :mod:`repro.spatial.hashmap` — fixed-size open-addressing hash map with
  linear probing and non-blocking insertion (Section IV-A).
* :mod:`repro.spatial.entries` — pre-allocated satellite-entry pool forming
  per-cell singly linked lists (Fig. 6).
* :mod:`repro.spatial.grid` — the uniform grid over the hash map, with
  26-neighbourhood candidate-pair emission.
* :mod:`repro.spatial.vectorgrid` — data-parallel (numpy) grid builds: the
  GPU-kernel analogue.
* :mod:`repro.spatial.conjmap` — the conjunction hash map for (pair, step)
  records with the paper's sizing rule.
"""
from repro.spatial.atomic import AtomicCounter, AtomicUint64Array
from repro.spatial.conjmap import ConjunctionMap, ConjunctionMapFullError
from repro.spatial.entries import EntryPool
from repro.spatial.grid import HALF_NEIGHBOR_OFFSETS, NEIGHBOR_OFFSETS, UniformGrid, cell_size_km
from repro.spatial.hashing import (
    MAX_ROUND_STEPS,
    murmur3_32,
    murmur3_fmix64,
    pack_cell_key,
    pack_step_cell_key,
    unpack_cell_key,
    unpack_step_cell_key,
)
from repro.spatial.hashmap import FixedSizeHashMap
from repro.spatial.kdtree import KDTree
from repro.spatial.octree import LooseOctree
from repro.spatial.vectorgrid import SortedGrid, VectorHashGrid

__all__ = [
    "AtomicCounter",
    "AtomicUint64Array",
    "ConjunctionMap",
    "ConjunctionMapFullError",
    "EntryPool",
    "FixedSizeHashMap",
    "HALF_NEIGHBOR_OFFSETS",
    "KDTree",
    "LooseOctree",
    "MAX_ROUND_STEPS",
    "NEIGHBOR_OFFSETS",
    "SortedGrid",
    "UniformGrid",
    "VectorHashGrid",
    "cell_size_km",
    "murmur3_32",
    "murmur3_fmix64",
    "pack_cell_key",
    "pack_step_cell_key",
    "unpack_cell_key",
    "unpack_step_cell_key",
]
