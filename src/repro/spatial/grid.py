"""The uniform spatial grid over the non-blocking hash map.

Sections III-A and IV-A of the paper: space is divided into cubic cells of
side ``g_c = d + 7.8 * s_ps`` (Eq. 1) so that, between two sampling steps,
no satellite can cross more than one cell boundary and a sub-threshold
approach can never be skipped.  Satellites are inserted in parallel; each
occupied cell is then checked against itself and its 26 neighbours for
candidate pairs.

Pair emission uses the *half* neighbourhood (13 of the 26 offsets plus the
intra-cell combinations): every unordered cell pair is visited exactly
once, which is how duplicate candidates are avoided without consulting the
conjunction map first.
"""
from __future__ import annotations

import itertools
import math

import numpy as np

from repro.constants import LEO_SPEED, NULL_INDEX, SIM_HALF_EXTENT
from repro.spatial.entries import EntryPool
from repro.spatial.hashing import CELL_RANGE, pack_cell_key, unpack_cell_key
from repro.spatial.hashmap import FixedSizeHashMap

#: All 26 neighbour offsets of a cell.
NEIGHBOR_OFFSETS: "tuple[tuple[int, int, int], ...]" = tuple(
    off for off in itertools.product((-1, 0, 1), repeat=3) if off != (0, 0, 0)
)

#: The 13 lexicographically-positive offsets: visiting only these (plus the
#: cell itself) touches every unordered pair of neighbouring cells once.
HALF_NEIGHBOR_OFFSETS: "tuple[tuple[int, int, int], ...]" = tuple(
    off for off in NEIGHBOR_OFFSETS if off > (0, 0, 0)
)

#: The full 26-offset stencil ordered positive-half first: entries ``0..12``
#: are :data:`HALF_NEIGHBOR_OFFSETS`, entries ``13..25`` their negations.
#: The coherent emitter probes newly-occupied cells in all 26 directions
#: and uses the index parity (``< 13``) to keep each new-new cell pair once.
FULL_NEIGHBOR_OFFSETS: "tuple[tuple[int, int, int], ...]" = HALF_NEIGHBOR_OFFSETS + tuple(
    (-dx, -dy, -dz) for dx, dy, dz in HALF_NEIGHBOR_OFFSETS
)


#: Machine epsilon of IEEE-754 binary32 (one unit in the last place of a
#: mantissa-normalised value): 2^-23.
FP32_EPS = 2.0 ** -23

#: Safety factor on the per-axis float32 rounding budget.  The mixed-
#: precision position is not a single rounded value but the result of a
#: short fp32 chain (cast basis vectors, fp32 trig of the fp64-solved
#: anomaly, a three-term multiply-add), each link contributing up to half
#: an ulp per axis — four ulps comfortably dominates the chain's worst
#: case (DESIGN.md §10).
FP32_ULP_SLACK = 4.0


def fp32_cell_pad_km(half_extent_km: float = SIM_HALF_EXTENT) -> float:
    """Error-bounded cell pad ``ε_fp32`` for the mixed-precision broad phase.

    A float32 coordinate inside the simulation cube carries an absolute
    rounding error of at most ``half_extent · 2^-23`` per axis (scaled by
    :data:`FP32_ULP_SLACK` for the arithmetic chain); over three axes that
    is a factor ``√3``, and a *pair* of objects can each err by that much —
    factor 2.  Padding the cell size by this bound restores Eq. (1)'s
    guarantee — no sub-threshold approach can be skipped — under float32
    positions (≈ 70 m at the 42 500 km half extent, ~2 % of a typical
    broad-phase cell).
    """
    return 2.0 * math.sqrt(3.0) * half_extent_km * FP32_EPS * FP32_ULP_SLACK


def cell_size_km(
    threshold_km: float,
    seconds_per_sample: float,
    speed_kms: float = LEO_SPEED,
    precision: str = "fp64",
) -> float:
    """Grid cell side length from Eq. (1): ``g_c = d + v * s_ps``.

    ``d`` is the screening threshold and ``v * s_ps`` is the farthest a
    satellite can travel between samples, which prevents the worst case of
    Fig. 4 (two satellites jumping past each other between samples).

    With ``precision="mixed"`` the cell gains the :func:`fp32_cell_pad_km`
    error bound — ``g_c = d + v·s_ps + ε_fp32`` — so float32 positions keep
    the no-skip guarantee.  Refinement intervals must keep using the
    *unpadded* fp64 cell (the pad covers measurement error of the grid
    coordinates, not the physics).
    """
    if threshold_km <= 0.0:
        raise ValueError(f"screening threshold must be positive, got {threshold_km}")
    if seconds_per_sample <= 0.0:
        raise ValueError(f"seconds per sample must be positive, got {seconds_per_sample}")
    if precision not in ("fp64", "mixed"):
        raise ValueError(f"precision must be 'fp64' or 'mixed', got {precision!r}")
    base = threshold_km + speed_kms * seconds_per_sample
    if precision == "mixed":
        base += fp32_cell_pad_km()
    return base


class UniformGrid:
    """One sampling step's grid: hash map + entry pool + pair emission.

    Parameters
    ----------
    cell_size:
        Cell side length in km (use :func:`cell_size_km`).
    capacity:
        Maximum number of satellites inserted into this grid instance.
    slot_factor:
        Hash-map slots per satellite (the paper uses 2 to break up
        linear-probing clusters).
    """

    def __init__(self, cell_size: float, capacity: int, slot_factor: int = 2) -> None:
        if cell_size <= 0.0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        max_cells = 2.0 * SIM_HALF_EXTENT / cell_size
        if max_cells >= CELL_RANGE:
            raise ValueError(
                f"cell size {cell_size} km produces {max_cells:.0f} cells per axis, "
                f"exceeding the packable range {CELL_RANGE}"
            )
        self.cell_size = cell_size
        self.capacity = capacity
        self.cells = FixedSizeHashMap(max(slot_factor * capacity, 8))
        self.entries = EntryPool(capacity)

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------

    def cell_coords(self, positions: np.ndarray) -> np.ndarray:
        """Integer cell coordinates of ECI positions; shape ``(n, 3)``.

        Positions are offset by the half extent of the simulation cube so
        the coordinates are non-negative and packable.  The input dtype is
        preserved: float32 positions (mixed precision) are binned with
        float32 arithmetic, so every backend — serial, threads, vectorized
        — assigns the identical cells for the identical position bits.
        """
        pos = np.atleast_2d(np.asarray(positions))
        if pos.dtype != np.float32:
            pos = pos.astype(np.float64, copy=False)
        if np.any(np.abs(pos) > SIM_HALF_EXTENT):
            worst = float(np.abs(pos).max())
            raise ValueError(
                f"position component {worst:.1f} km outside the simulation cube "
                f"(half extent {SIM_HALF_EXTENT:.0f} km)"
            )
        return np.floor((pos + SIM_HALF_EXTENT) / self.cell_size).astype(np.int64)

    def cell_keys(self, positions: np.ndarray) -> np.ndarray:
        """Packed 64-bit cell keys of ECI positions; shape ``(n,)``."""
        coords = self.cell_coords(positions)
        return pack_cell_key(coords[:, 0], coords[:, 1], coords[:, 2])

    # ------------------------------------------------------------------
    # Insertion (step 2 of the pipeline)
    # ------------------------------------------------------------------

    def insert(self, sat_id: int, position: np.ndarray) -> int:
        """Thread-safe insertion of one satellite; returns its entry index.

        Claim-then-publish protocol of Section IV-A2:

        1. claim (or find) the cell's hash-map slot with a key CAS;
        2. allocate this satellite's entry from the pre-allocated pool;
        3. publish by CAS-ing the entry onto the cell's list head —
           retrying with the freshly observed head on contention, so no
           concurrent insert is ever lost.
        """
        key = int(self.cell_keys(np.asarray(position)[None, :])[0])
        slot = self.cells.claim_slot(key)
        entry = self.entries.allocate(sat_id, position)
        self.entries.slot[entry] = slot
        while True:
            head = self.cells.get_value(slot)
            self.entries.next[entry] = head
            observed = self.cells.cas_value(slot, head, entry)
            if observed == head:
                return entry

    def insert_batch(self, sat_ids: np.ndarray, positions: np.ndarray) -> None:
        """Insert a batch sequentially (the single-thread reference path)."""
        for sat_id, pos in zip(np.asarray(sat_ids), np.asarray(positions)):
            self.insert(int(sat_id), pos)

    # ------------------------------------------------------------------
    # Cell contents
    # ------------------------------------------------------------------

    def cell_members(self, slot: int) -> "list[int]":
        """Satellite ids stored in the cell at hash-map ``slot``."""
        head = self.cells.get_value(slot)
        return [int(self.entries.sat_id[idx]) for idx in self.entries.chain(head)]

    def occupancy(self) -> "dict[int, list[int]]":
        """Mapping packed cell key -> sorted satellite ids (for tests)."""
        keys = self.cells.keys_array()
        out: dict[int, list[int]] = {}
        for slot in self.cells.occupied_slots():
            out[int(keys[slot])] = sorted(self.cell_members(int(slot)))
        return out

    # ------------------------------------------------------------------
    # Conjunction-candidate emission (step 2, detection part)
    # ------------------------------------------------------------------

    def candidate_pairs(self) -> "list[tuple[int, int]]":
        """All unordered satellite-id pairs sharing a cell or touching cells.

        For every occupied cell: intra-cell combinations, plus the cross
        product with each occupied cell in the 13-offset half
        neighbourhood.  Each unordered pair of (cell, neighbour cell) is
        visited exactly once, so no candidate is emitted twice in one step.
        """
        pairs: list[tuple[int, int]] = []
        keys = self.cells.keys_array()
        for slot in self.cells.occupied_slots():
            key = int(keys[slot])
            members = self.cell_members(int(slot))
            # Intra-cell pairs.
            for a_pos in range(len(members)):
                for b_pos in range(a_pos + 1, len(members)):
                    pairs.append(_ordered(members[a_pos], members[b_pos]))
            # Half-neighbourhood cross pairs.
            cx, cy, cz = unpack_cell_key(key)
            for dx, dy, dz in HALF_NEIGHBOR_OFFSETS:
                nx, ny, nz = cx + dx, cy + dy, cz + dz
                if not (0 <= nx < CELL_RANGE and 0 <= ny < CELL_RANGE and 0 <= nz < CELL_RANGE):
                    continue
                n_slot = self.cells.lookup(pack_cell_key(nx, ny, nz))
                if n_slot == NULL_INDEX:
                    continue
                for a in members:
                    for b in self.cell_members(n_slot):
                        pairs.append(_ordered(a, b))
        return pairs

    def candidate_pairs_parallel(self, n_threads: "int | None" = None) -> "list[tuple[int, int]]":
        """Candidate emission with occupied cells checked in parallel.

        Section IV-A3: "we examine all non-empty slots of the hash map in
        parallel for the conjunction detection".  Each thread processes a
        static chunk of the occupied slots; the per-cell logic is the same
        as :meth:`candidate_pairs`, and the union of the chunk results is
        the same pair set (cells are read-only at this phase).
        """
        from repro.parallel.backend import parallel_for

        occupied = self.cells.occupied_slots()
        keys = self.cells.keys_array()

        def work(start: int, end: int) -> "list[tuple[int, int]]":
            out: "list[tuple[int, int]]" = []
            for slot in occupied[start:end]:
                key = int(keys[slot])
                members = self.cell_members(int(slot))
                for a_pos in range(len(members)):
                    for b_pos in range(a_pos + 1, len(members)):
                        out.append(_ordered(members[a_pos], members[b_pos]))
                cx, cy, cz = unpack_cell_key(key)
                for dx, dy, dz in HALF_NEIGHBOR_OFFSETS:
                    nx, ny, nz = cx + dx, cy + dy, cz + dz
                    if not (0 <= nx < CELL_RANGE and 0 <= ny < CELL_RANGE and 0 <= nz < CELL_RANGE):
                        continue
                    n_slot = self.cells.lookup(pack_cell_key(nx, ny, nz))
                    if n_slot == NULL_INDEX:
                        continue
                    for a in members:
                        for b in self.cell_members(n_slot):
                            out.append(_ordered(a, b))
            return out

        chunks = parallel_for(work, len(occupied), n_threads=n_threads)
        return [pair for chunk in chunks for pair in chunk]

    def reset(self) -> None:
        """Recycle the grid for the next sampling step.

        The paper notes dense array grids would need a full erase each
        iteration; the hash map only needs its (comparatively small) slot
        area re-initialised.
        """
        self.cells = FixedSizeHashMap(self.cells.capacity)
        self.entries.reset()

    @property
    def memory_bytes(self) -> int:
        """Hash map + entry pool footprint (``a_gh + a_l`` of Section V-B)."""
        return self.cells.memory_bytes + self.entries.memory_bytes


def _ordered(a: int, b: int) -> "tuple[int, int]":
    return (a, b) if a < b else (b, a)


def interval_radius_s(cell_size: float, slower_speed_kms: float) -> float:
    """Brent search-interval radius: time for the slower satellite to cross
    two cells (Section IV-C), ``t = 2 * g_c / v_slow``."""
    if slower_speed_kms <= 0.0:
        raise ValueError(f"speed must be positive, got {slower_speed_kms}")
    return 2.0 * cell_size / slower_speed_kms


def max_cells_per_axis(cell_size: float) -> int:
    """Number of cells along one axis of the simulation cube."""
    return int(math.ceil(2.0 * SIM_HALF_EXTENT / cell_size))
