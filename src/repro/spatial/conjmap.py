"""The conjunction hash map: deduplicated (pair, step) candidate records.

Section IV-A3: every candidate pair found during grid detection is inserted
into one global conjunction hash map keyed by the two satellite ids *and*
the sampling step — so a pair seen from both satellites' perspectives is
stored once, while genuinely distinct encounters of the same pair at
different steps are kept.

The map is fixed-size (sized up front from the Extra-P model of Section
V-B, see :mod:`repro.perfmodel.memory`) and uses the same open-addressing
CAS insertion as the grid hash map.  A vectorised ``insert_batch`` mirrors
the GPU path: a whole step's pairs are deduplicated and inserted with array
operations.
"""
from __future__ import annotations

import numpy as np

from repro.spatial.hashmap import FixedSizeHashMap, HashMapFullError

#: Bit widths of the packed (i, j, step) record key: ids up to ~1M objects
#: (20 bits each), steps up to 2^23 samples.
_ID_BITS = 20
_STEP_BITS = 23
MAX_OBJECTS = 1 << _ID_BITS
MAX_STEPS = 1 << _STEP_BITS


def pack_pair_key(i, j, step):
    """Pack an ordered pair and sampling step into one 63-bit key.

    Requires ``i < j`` elementwise (callers normalise first) so each
    unordered pair maps to a unique key.  Works on scalars or arrays.
    """
    if np.ndim(i) == 0:
        if not 0 <= i < j < MAX_OBJECTS:
            raise ValueError(f"need 0 <= i < j < {MAX_OBJECTS}, got ({i}, {j})")
        if not 0 <= step < MAX_STEPS:
            raise ValueError(f"step {step} outside [0, {MAX_STEPS})")
        return int(i) | (int(j) << _ID_BITS) | (int(step) << (2 * _ID_BITS))
    i_a = np.asarray(i, dtype=np.uint64)
    j_a = np.asarray(j, dtype=np.uint64)
    s_a = np.asarray(step, dtype=np.uint64)
    if (i_a >= j_a).any() or (j_a >= MAX_OBJECTS).any() or (s_a >= MAX_STEPS).any():
        raise ValueError("pair key components out of range (need i < j < 2^20, step < 2^23)")
    return i_a | (j_a << np.uint64(_ID_BITS)) | (s_a << np.uint64(2 * _ID_BITS))


def unpack_pair_key(key):
    """Invert :func:`pack_pair_key`; returns ``(i, j, step)``."""
    mask = np.uint64(MAX_OBJECTS - 1)
    if np.ndim(key) == 0:
        k = int(key)
        return (
            k & (MAX_OBJECTS - 1),
            (k >> _ID_BITS) & (MAX_OBJECTS - 1),
            k >> (2 * _ID_BITS),
        )
    k = np.asarray(key, dtype=np.uint64)
    return (
        (k & mask).astype(np.int64),
        ((k >> np.uint64(_ID_BITS)) & mask).astype(np.int64),
        (k >> np.uint64(2 * _ID_BITS)).astype(np.int64),
    )


class ConjunctionMap:
    """Fixed-size deduplicating store of (i, j, step) candidate records."""

    def __init__(self, capacity: int) -> None:
        self._map = FixedSizeHashMap(capacity)
        self._step_keys: np.ndarray = np.empty(0, dtype=np.uint64)
        self._batches: list[np.ndarray] = []
        self._batch_total = 0

    @property
    def capacity(self) -> int:
        return self._map.capacity

    def insert(self, i: int, j: int, step: int) -> bool:
        """Insert one record; returns True if it was new.

        Thread-safe (CAS claim on the record key); duplicates — the same
        pair discovered from both satellites' cells — are absorbed.
        """
        lo, hi = (i, j) if i < j else (j, i)
        key = pack_pair_key(lo, hi, step)
        before = self._map.insert_count
        try:
            self._map.claim_slot(key)
        except HashMapFullError as exc:
            raise HashMapFullError(
                f"conjunction map (capacity {self.capacity}) overflowed; the Extra-P "
                "size model underestimated this population - increase the size margin "
                "or reduce seconds-per-sample (Section V-B)"
            ) from exc
        return self._map.insert_count > before

    def insert_batch(self, i: np.ndarray, j: np.ndarray, step: int) -> int:
        """Vectorised insert of one step's candidate pairs; returns #new.

        The GPU-analogue path: normalise, pack, deduplicate within the
        batch with ``np.unique``, and append — cross-step deduplication is
        unnecessary because the step is part of the key, and cross-batch
        duplicates cannot occur because each step is one batch.
        """
        if len(i) == 0:
            return 0
        lo = np.minimum(i, j)
        hi = np.maximum(i, j)
        keys = np.unique(pack_pair_key(lo, hi, np.full(len(lo), step, dtype=np.int64)))
        if self.size + len(keys) > self.capacity:
            raise HashMapFullError(
                f"conjunction map (capacity {self.capacity}) overflowed; the Extra-P "
                "size model underestimated this population (Section V-B)"
            )
        self._batches.append(keys)
        self._batch_total += len(keys)
        return len(keys)

    def _flush(self) -> None:
        if self._batches:
            parts = [self._step_keys] if self._step_keys.size else []
            parts.extend(self._batches)
            self._step_keys = np.concatenate(parts)
            self._batches = []

    @property
    def size(self) -> int:
        """Number of stored records across both insertion paths.

        Maintained incrementally (CAS inserts count fresh claims, batch
        inserts count deduplicated keys), so this is O(1).
        """
        return self._map.insert_count + self._batch_total

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity

    @property
    def memory_bytes(self) -> int:
        """16 B per slot, matching ``g_ch = c * 16 B`` of Section V-B."""
        return self.capacity * 16

    def records(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """All stored records as ``(i, j, step)`` arrays, sorted by key."""
        self._flush()
        keys = [self._step_keys] if self._step_keys.size else []
        cas_keys = self._map.keys_array()
        occupied = self._map.occupied_slots()
        if occupied.size:
            keys.append(cas_keys[occupied].astype(np.uint64))
        if not keys:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        all_keys = np.sort(np.concatenate(keys))
        return unpack_pair_key(all_keys)

    def unique_pairs(self) -> "tuple[np.ndarray, np.ndarray]":
        """Distinct (i, j) pairs regardless of step."""
        i, j, _ = self.records()
        if len(i) == 0:
            return i, j
        pair_keys = np.unique(
            np.asarray(i, dtype=np.uint64) | (np.asarray(j, dtype=np.uint64) << np.uint64(_ID_BITS))
        )
        return (
            (pair_keys & np.uint64(MAX_OBJECTS - 1)).astype(np.int64),
            (pair_keys >> np.uint64(_ID_BITS)).astype(np.int64),
        )
