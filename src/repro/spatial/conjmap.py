"""The conjunction hash map: deduplicated (pair, step) candidate records.

Section IV-A3: every candidate pair found during grid detection is inserted
into one global conjunction hash map keyed by the two satellite ids *and*
the sampling step — so a pair seen from both satellites' perspectives is
stored once, while genuinely distinct encounters of the same pair at
different steps are kept.

The map is fixed-size (sized up front from the Extra-P model of Section
V-B, see :mod:`repro.perfmodel.memory`) and uses the same open-addressing
CAS insertion as the grid hash map.  A vectorised ``insert_batch`` mirrors
the GPU path: a whole round's pairs (with per-record step indices) are
deduplicated and merged with array operations.

Both insertion paths may legitimately see the same record more than once —
most importantly when an overflow regrows the map and the interrupted
step/round is replayed, re-offering records the regrow already copied over.
``records()``, ``size`` and ``load_factor`` therefore always reflect the
*deduplicated* record set across both paths, making replay idempotent.
"""
from __future__ import annotations

import numpy as np

from repro.spatial.hashmap import FixedSizeHashMap, HashMapFullError


class ConjunctionMapFullError(HashMapFullError):
    """The conjunction map specifically (not a grid hash map) overflowed.

    A distinct type so the overflow→regrow→replay recovery in the
    detection loops can react to conjunction-map pressure without
    misreading an unrelated grid-hashmap overflow raised in the same
    phase — regrowing the wrong structure would replay forever.
    """

#: Bit widths of the packed (i, j, step) record key: ids up to ~1M objects
#: (20 bits each), steps up to 2^23 samples.
_ID_BITS = 20
_STEP_BITS = 23
MAX_OBJECTS = 1 << _ID_BITS
MAX_STEPS = 1 << _STEP_BITS


def pack_pair_key(i, j, step):
    """Pack an ordered pair and sampling step into one 63-bit key.

    Requires ``i < j`` elementwise (callers normalise first) so each
    unordered pair maps to a unique key.  Works on scalars or arrays.
    """
    if np.ndim(i) == 0:
        if not 0 <= i < j < MAX_OBJECTS:
            raise ValueError(f"need 0 <= i < j < {MAX_OBJECTS}, got ({i}, {j})")
        if not 0 <= step < MAX_STEPS:
            raise ValueError(f"step {step} outside [0, {MAX_STEPS})")
        return int(i) | (int(j) << _ID_BITS) | (int(step) << (2 * _ID_BITS))
    i_a = np.asarray(i, dtype=np.uint64)
    j_a = np.asarray(j, dtype=np.uint64)
    s_a = np.asarray(step, dtype=np.uint64)
    if (i_a >= j_a).any() or (j_a >= MAX_OBJECTS).any() or (s_a >= MAX_STEPS).any():
        raise ValueError("pair key components out of range (need i < j < 2^20, step < 2^23)")
    return i_a | (j_a << np.uint64(_ID_BITS)) | (s_a << np.uint64(2 * _ID_BITS))


def unpack_pair_key(key):
    """Invert :func:`pack_pair_key`; returns ``(i, j, step)``."""
    mask = np.uint64(MAX_OBJECTS - 1)
    if np.ndim(key) == 0:
        k = int(key)
        return (
            k & (MAX_OBJECTS - 1),
            (k >> _ID_BITS) & (MAX_OBJECTS - 1),
            k >> (2 * _ID_BITS),
        )
    k = np.asarray(key, dtype=np.uint64)
    return (
        (k & mask).astype(np.int64),
        ((k >> np.uint64(_ID_BITS)) & mask).astype(np.int64),
        (k >> np.uint64(2 * _ID_BITS)).astype(np.int64),
    )


def sorted_unique_records(i, j, step):
    """Normalise, deduplicate and key-sort raw (i, j, step) emissions.

    Returns the records a :class:`ConjunctionMap` would hold for exactly
    this batch, in :meth:`ConjunctionMap.records` order (ascending packed
    key — step-major, since the step occupies the key's high bits).  The
    pipelined schedule leans on this: because each fused round covers a
    disjoint, ascending range of steps, concatenating the rounds' sorted
    batches reproduces the global ``records()`` order without a barrier.
    """
    i = np.asarray(i)
    j = np.asarray(j)
    if len(i) == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    keys = np.unique(pack_pair_key(np.minimum(i, j), np.maximum(i, j), step))
    return unpack_pair_key(keys)


class ConjunctionMap:
    """Fixed-size deduplicating store of (i, j, step) candidate records."""

    def __init__(self, capacity: int) -> None:
        self._map = FixedSizeHashMap(capacity)
        #: Sorted, deduplicated record keys from the batch path.
        self._step_keys: np.ndarray = np.empty(0, dtype=np.uint64)
        #: Cached deduplicated record count across both paths (None = stale).
        self._size_cache: "int | None" = 0

    @property
    def capacity(self) -> int:
        return self._map.capacity

    def insert(self, i: int, j: int, step: int) -> bool:
        """Insert one record; returns True if it claimed a fresh CAS slot.

        Thread-safe (CAS claim on the record key); duplicates — the same
        pair discovered from both satellites' cells, or a record replayed
        after a regrow — are absorbed by the key-level dedup.
        """
        lo, hi = (i, j) if i < j else (j, i)
        key = pack_pair_key(lo, hi, step)
        before = self._map.insert_count
        try:
            self._map.claim_slot(key)
        except HashMapFullError as exc:
            raise ConjunctionMapFullError(
                f"conjunction map (capacity {self.capacity}) overflowed; the Extra-P "
                "size model underestimated this population - increase the size margin "
                "or reduce seconds-per-sample (Section V-B)"
            ) from exc
        fresh = self._map.insert_count > before
        if fresh:
            self._size_cache = None
        return fresh

    def insert_batch(self, i: np.ndarray, j: np.ndarray, step) -> int:
        """Vectorised insert of candidate pairs; returns #new records.

        The GPU-analogue path: normalise, pack, deduplicate and merge with
        array operations.  ``step`` is either one int applied to the whole
        batch (a per-step batch) or an array of per-record step indices (a
        fused multi-step round).  Records already present — from earlier
        batches or the CAS path — are absorbed, so replaying a round after
        a regrow cannot duplicate records.
        """
        if len(i) == 0:
            return 0
        lo = np.minimum(i, j)
        hi = np.maximum(i, j)
        if np.ndim(step) == 0:
            steps = np.full(len(lo), int(step), dtype=np.int64)
        else:
            steps = np.asarray(step, dtype=np.int64)
        keys = np.unique(pack_pair_key(lo, hi, steps))
        merged = np.union1d(self._step_keys, keys)
        total = self._deduped_total(merged)
        if total > self.capacity:
            raise ConjunctionMapFullError(
                f"conjunction map (capacity {self.capacity}) overflowed; the Extra-P "
                "size model underestimated this population (Section V-B)"
            )
        added = len(merged) - len(self._step_keys)
        self._step_keys = merged
        self._size_cache = total
        return added

    def _cas_keys(self) -> np.ndarray:
        occupied = self._map.occupied_slots()
        if occupied.size == 0:
            return np.empty(0, dtype=np.uint64)
        return self._map.keys_array()[occupied].astype(np.uint64)

    def _deduped_total(self, step_keys: np.ndarray) -> int:
        """Distinct records across ``step_keys`` (sorted unique) and the CAS table."""
        cas = self._cas_keys()
        if cas.size == 0:
            return len(step_keys)
        if step_keys.size == 0:
            return len(cas)
        pos = np.searchsorted(step_keys, cas)
        present = (pos < len(step_keys)) & (
            step_keys[np.minimum(pos, len(step_keys) - 1)] == cas
        )
        return len(step_keys) + len(cas) - int(present.sum())

    @property
    def size(self) -> int:
        """Number of *distinct* stored records across both insertion paths.

        Cached after each batch merge; recomputed lazily after CAS inserts.
        """
        if self._size_cache is None:
            self._size_cache = self._deduped_total(self._step_keys)
        return self._size_cache

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity

    @property
    def memory_bytes(self) -> int:
        """16 B per slot, matching ``g_ch = c * 16 B`` of Section V-B."""
        return self.capacity * 16

    def records(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """All distinct records as ``(i, j, step)`` arrays, sorted by key.

        Deduplicates across the CAS and batch insertion paths: after an
        overflow→regrow→replay cycle the same record can legitimately sit
        in both, and refinement must see it exactly once.
        """
        keys = [self._step_keys] if self._step_keys.size else []
        cas = self._cas_keys()
        if cas.size:
            keys.append(cas)
        if not keys:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        all_keys = np.unique(np.concatenate(keys))
        return unpack_pair_key(all_keys)

    def unique_pairs(self) -> "tuple[np.ndarray, np.ndarray]":
        """Distinct (i, j) pairs regardless of step."""
        i, j, _ = self.records()
        if len(i) == 0:
            return i, j
        pair_keys = np.unique(
            np.asarray(i, dtype=np.uint64) | (np.asarray(j, dtype=np.uint64) << np.uint64(_ID_BITS))
        )
        return (
            (pair_keys & np.uint64(MAX_OBJECTS - 1)).astype(np.int64),
            (pair_keys >> np.uint64(_ID_BITS)).astype(np.int64),
        )
