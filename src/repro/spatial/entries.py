"""Pre-allocated satellite-entry pool backing the per-cell linked lists.

Fig. 6 of the paper: each satellite inserted into the grid produces exactly
one *satellite entry* — (slot, id, next-pointer, coordinates) — so all
entries can be allocated in advance; only the ``next`` pointers are set
dynamically while building the per-cell singly linked lists.

Entries are addressed by index into the pool (a GPU-friendly layout);
:data:`repro.constants.NULL_INDEX` terminates a list.
"""
from __future__ import annotations

import numpy as np

from repro.constants import NULL_INDEX
from repro.spatial.atomic import AtomicCounter


class EntryPool:
    """Struct-of-arrays pool of satellite entries.

    Parameters
    ----------
    capacity:
        Maximum number of entries — one per (satellite, sampling step held
        in memory), known in advance (Section V-B, the ``a_l`` allocation).
    """

    __slots__ = ("capacity", "sat_id", "slot", "next", "position", "_cursor")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.sat_id = np.full(capacity, NULL_INDEX, dtype=np.int64)
        self.slot = np.full(capacity, NULL_INDEX, dtype=np.int64)
        self.next = np.full(capacity, NULL_INDEX, dtype=np.int64)
        self.position = np.zeros((capacity, 3), dtype=np.float64)
        self._cursor = AtomicCounter()

    def allocate(self, sat_id: int, position: np.ndarray) -> int:
        """Claim the next free entry; returns its index.

        Thread-safe: indices are handed out with an atomic fetch-and-add,
        and each thread then owns its entry exclusively until it publishes
        the entry by linking it into a cell list.
        """
        idx = self._cursor.fetch_add(1)
        if idx >= self.capacity:
            raise RuntimeError(
                f"entry pool exhausted: capacity {self.capacity}, requested entry {idx + 1}"
            )
        self.sat_id[idx] = sat_id
        self.position[idx] = position
        self.next[idx] = NULL_INDEX
        return idx

    def allocate_batch(self, sat_ids: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Claim a contiguous block of entries for a whole batch at once.

        The data-parallel backend uses this: one reservation, then all
        per-entry fields are written with vectorised stores.
        """
        count = len(sat_ids)
        start = self._cursor.fetch_add(count)
        if start + count > self.capacity:
            raise RuntimeError(
                f"entry pool exhausted: capacity {self.capacity}, requested {start + count}"
            )
        idx = np.arange(start, start + count, dtype=np.int64)
        self.sat_id[idx] = sat_ids
        self.position[idx] = positions
        self.next[idx] = NULL_INDEX
        return idx

    def reset(self) -> None:
        """Recycle the pool for the next sampling round (single-writer)."""
        used = min(self._cursor.value, self.capacity)
        self.sat_id[:used] = NULL_INDEX
        self.slot[:used] = NULL_INDEX
        self.next[:used] = NULL_INDEX
        self._cursor = AtomicCounter()

    @property
    def used(self) -> int:
        """Number of entries allocated so far."""
        return min(self._cursor.value, self.capacity)

    @property
    def memory_bytes(self) -> int:
        """Backing storage size of the pool (the ``a_l`` term of V-B)."""
        return self.sat_id.nbytes + self.slot.nbytes + self.next.nbytes + self.position.nbytes

    def chain(self, head: int) -> "list[int]":
        """Entry indices of one cell's linked list, starting at ``head``.

        Detects accidental cycles (which would indicate a broken CAS
        protocol) and raises instead of looping forever.
        """
        out: list[int] = []
        idx = head
        for _ in range(self.capacity + 1):
            if idx == NULL_INDEX:
                return out
            out.append(idx)
            idx = int(self.next[idx])
        raise RuntimeError("cycle detected in cell linked list - CAS protocol violated")
