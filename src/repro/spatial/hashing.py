"""MurmurHash3 and 3-D cell-key packing.

The paper hashes grid-cell positions with "the fast MurMur3 hash"
(Section IV-A1).  A grid cell is identified by its integer coordinates
``(cx, cy, cz)``; we pack those into a single 64-bit key (21 bits per axis)
and hash the key with the MurmurHash3 64-bit finaliser (``fmix64``) — the
exact component a fixed-width-key table needs from MurmurHash3.  The full
``murmur3_x86_32`` byte-string hash is implemented as well and validated
against the published test vectors.

All hot-path functions have both a scalar and a vectorised (numpy uint64)
form so the GPU-analogue backend can hash whole populations at once.
"""
from __future__ import annotations

import struct

import numpy as np

_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1

#: Bits per axis in a packed cell key: 21*3 = 63 bits, so every valid packed
#: key is < 2^63 and can never collide with the EMPTY sentinel (2^64 - 1).
CELL_BITS = 21
CELL_RANGE = 1 << CELL_BITS
_CELL_MASK = CELL_RANGE - 1

#: Bits per axis in a compound (step, cell) key used by fused multi-step
#: grid builds (Section V-B's ``p`` simultaneous grids in one key space):
#: 16*3 = 48 bits of cell coordinates plus 15 bits of within-round step
#: index = 63 bits, again strictly below the EMPTY sentinel.
STEP_CELL_BITS = 16
STEP_CELL_RANGE = 1 << STEP_CELL_BITS
_STEP_CELL_MASK = STEP_CELL_RANGE - 1
#: Maximum sampling steps a single fused round may cover.
ROUND_STEP_BITS = 15
MAX_ROUND_STEPS = 1 << ROUND_STEP_BITS


def murmur3_fmix64(key: int) -> int:
    """MurmurHash3 64-bit finaliser (scalar).

    A full-avalanche bijection on 64-bit integers; this is what the
    fixed-size hash map uses to spread packed cell keys across slots.
    """
    k = key & _MASK64
    k ^= k >> 33
    k = (k * 0xFF51AFD7ED558CCD) & _MASK64
    k ^= k >> 33
    k = (k * 0xC4CEB9FE1A85EC53) & _MASK64
    k ^= k >> 33
    return k


def murmur3_fmix64_array(keys: np.ndarray) -> np.ndarray:
    """Vectorised :func:`murmur3_fmix64` over a uint64 array."""
    k = keys.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        k ^= k >> np.uint64(33)
        k *= np.uint64(0xFF51AFD7ED558CCD)
        k ^= k >> np.uint64(33)
        k *= np.uint64(0xC4CEB9FE1A85EC53)
        k ^= k >> np.uint64(33)
    return k


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86_32 of a byte string (reference implementation).

    Matches Appleby's smhasher ``MurmurHash3_x86_32``; validated in the
    test suite against the published vectors.
    """
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    h = seed & _MASK32
    n_blocks = len(data) // 4

    for block in struct.unpack_from("<" + "I" * n_blocks, data):
        k = (block * c1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * c2) & _MASK32
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK32

    tail = data[n_blocks * 4 :]
    k = 0
    if len(tail) >= 3:
        k ^= tail[2] << 16
    if len(tail) >= 2:
        k ^= tail[1] << 8
    if len(tail) >= 1:
        k ^= tail[0]
        k = (k * c1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * c2) & _MASK32
        h ^= k

    h ^= len(data)
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def pack_cell_key(cx, cy, cz):
    """Pack integer cell coordinates into a single 64-bit key.

    Each coordinate must lie in ``[0, 2^21)`` — the grid code offsets raw
    (possibly negative) cell indices into this range before packing.
    Accepts scalars (returns ``int``) or integer arrays (returns uint64
    array).

    The packed key occupies only 63 bits, so it can never equal the
    hash-map EMPTY sentinel ``2^64 - 1``.
    """
    if np.ndim(cx) == 0:
        for name, val in (("cx", cx), ("cy", cy), ("cz", cz)):
            if not 0 <= int(val) < CELL_RANGE:
                raise ValueError(f"{name}={val} outside packable range [0, {CELL_RANGE})")
        return int(cx) | (int(cy) << CELL_BITS) | (int(cz) << (2 * CELL_BITS))
    cx_a = np.asarray(cx, dtype=np.uint64)
    cy_a = np.asarray(cy, dtype=np.uint64)
    cz_a = np.asarray(cz, dtype=np.uint64)
    if (
        (cx_a >= CELL_RANGE).any()
        or (cy_a >= CELL_RANGE).any()
        or (cz_a >= CELL_RANGE).any()
    ):
        raise ValueError("cell coordinates outside packable range")
    return cx_a | (cy_a << np.uint64(CELL_BITS)) | (cz_a << np.uint64(2 * CELL_BITS))


def unpack_cell_key(key):
    """Invert :func:`pack_cell_key`; returns ``(cx, cy, cz)``."""
    if np.ndim(key) == 0:
        k = int(key)
        return (
            k & _CELL_MASK,
            (k >> CELL_BITS) & _CELL_MASK,
            (k >> (2 * CELL_BITS)) & _CELL_MASK,
        )
    k = np.asarray(key, dtype=np.uint64)
    mask = np.uint64(_CELL_MASK)
    return (
        (k & mask).astype(np.int64),
        ((k >> np.uint64(CELL_BITS)) & mask).astype(np.int64),
        ((k >> np.uint64(2 * CELL_BITS)) & mask).astype(np.int64),
    )


def pack_step_cell_key(step, cx, cy, cz):
    """Pack a within-round step index and cell coordinates into one key.

    The step occupies the *high* bits, so sorting compound keys groups all
    cells of one step together and two cells can only compare equal when
    they belong to the same step — neighbour expansion with these keys can
    never pair satellites across different sampling steps.

    Coordinates must lie in ``[0, 2^16)`` (cells of at least ~1.3 km over
    the 85,000 km simulation cube) and ``step`` in ``[0, 2^15)``.  Accepts
    scalars (returns ``int``) or integer arrays (returns uint64 array).
    """
    if np.ndim(step) == 0 and np.ndim(cx) == 0:
        if not 0 <= int(step) < MAX_ROUND_STEPS:
            raise ValueError(f"step={step} outside packable range [0, {MAX_ROUND_STEPS})")
        for name, val in (("cx", cx), ("cy", cy), ("cz", cz)):
            if not 0 <= int(val) < STEP_CELL_RANGE:
                raise ValueError(f"{name}={val} outside packable range [0, {STEP_CELL_RANGE})")
        return (
            int(cx)
            | (int(cy) << STEP_CELL_BITS)
            | (int(cz) << (2 * STEP_CELL_BITS))
            | (int(step) << (3 * STEP_CELL_BITS))
        )
    s_a = np.asarray(step, dtype=np.uint64)
    cx_a = np.asarray(cx, dtype=np.uint64)
    cy_a = np.asarray(cy, dtype=np.uint64)
    cz_a = np.asarray(cz, dtype=np.uint64)
    if (s_a >= MAX_ROUND_STEPS).any():
        raise ValueError(f"step index outside packable range [0, {MAX_ROUND_STEPS})")
    if (
        (cx_a >= STEP_CELL_RANGE).any()
        or (cy_a >= STEP_CELL_RANGE).any()
        or (cz_a >= STEP_CELL_RANGE).any()
    ):
        raise ValueError("cell coordinates outside compound-key packable range")
    return (
        cx_a
        | (cy_a << np.uint64(STEP_CELL_BITS))
        | (cz_a << np.uint64(2 * STEP_CELL_BITS))
        | (s_a << np.uint64(3 * STEP_CELL_BITS))
    )


def unpack_step_cell_key(key):
    """Invert :func:`pack_step_cell_key`; returns ``(step, cx, cy, cz)``."""
    if np.ndim(key) == 0:
        k = int(key)
        return (
            k >> (3 * STEP_CELL_BITS),
            k & _STEP_CELL_MASK,
            (k >> STEP_CELL_BITS) & _STEP_CELL_MASK,
            (k >> (2 * STEP_CELL_BITS)) & _STEP_CELL_MASK,
        )
    k = np.asarray(key, dtype=np.uint64)
    mask = np.uint64(_STEP_CELL_MASK)
    return (
        (k >> np.uint64(3 * STEP_CELL_BITS)).astype(np.int64),
        (k & mask).astype(np.int64),
        ((k >> np.uint64(STEP_CELL_BITS)) & mask).astype(np.int64),
        ((k >> np.uint64(2 * STEP_CELL_BITS)) & mask).astype(np.int64),
    )


def fnv1a_64(key: int) -> int:
    """FNV-1a over the key's 8 little-endian bytes.

    A classic multiplicative byte hash: decent avalanche, slightly worse
    clustering than murmur's finaliser on structured keys — one of the
    "other hash methods" the paper's conclusion suggests benchmarking
    (see the hash-function ablation bench).
    """
    h = 0xCBF29CE484222325
    k = key & _MASK64
    for _ in range(8):
        h ^= k & 0xFF
        h = (h * 0x100000001B3) & _MASK64
        k >>= 8
    return h


def xorshift_64(key: int) -> int:
    """A minimal xorshift scrambler: cheap but weak avalanche.

    Deliberately mediocre — included so the ablation bench can show how
    hash quality translates into linear-probing cluster lengths.
    """
    k = (key ^ (key << 13)) & _MASK64
    k ^= k >> 7
    k = (k ^ (k << 17)) & _MASK64
    return k


def identity_hash(key: int) -> int:
    """No mixing at all: the clustering worst case for packed cell keys.

    Neighbouring cells get neighbouring slots, so every occupied spatial
    region becomes one long probe cluster — the pathology murmur3 exists
    to avoid.
    """
    return key & _MASK64


#: Registry of slot hash functions selectable by the hash map.
HASH_FUNCTIONS = {
    "murmur3": murmur3_fmix64,
    "fnv1a": fnv1a_64,
    "xorshift": xorshift_64,
    "identity": identity_hash,
}
