"""The Section V-B memory planner.

Fixed-size hash maps need their sizes up front, so the paper derives:

* ``p`` — sampling steps processable in parallel before memory runs out:
  ``p = (m - a_s - a_k - a_ch) / (a_gh + a_l)``;
* ``o = t / s_ps`` — total samples to process;
* ``r_c = o / p`` — computation rounds;
* the grid hash set gets ``2n`` slots; the conjunction map gets
  ``c = max(c', 10_000) * 2 * 2`` slots of 16 B, with ``c'`` from the
  Extra-P model;
* for the hybrid variant ``s_ps`` is automatically reduced until the
  parallelisation factor reaches about 512 (one CUDA block of the
  detection kernel) and everything fits the budget — the adjustment the
  evaluation observed at 512k (9 -> 4) and 1M satellites (9 -> 1).
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import SIM_HALF_EXTENT
from repro.filters.occupancy import DEFAULT_SHELL_KM
from repro.perfmodel.extrap import paper_conjunction_model
from repro.spatial.aabb4d import DEFAULT_KNOT_STEPS
from repro.spatial.hashing import MAX_ROUND_STEPS

#: Bytes per satellite for the initial element data ``a_s``: six float64
#: elements plus the cached mean motion.
SATELLITE_RECORD_BYTES = 7 * 8

#: Bytes per satellite of precomputed Kepler-solver data ``a_k``: the five
#: per-orbit 3-vectors the propagator stores (see Propagator.memory_bytes).
SOLVER_RECORD_BYTES = 5 * 3 * 8

#: Bytes per hash-map slot (key + value), Section V-B.
SLOT_BYTES = 16

#: Bytes per linked-list satellite entry: id, slot, next, 3 coordinates.
ENTRY_BYTES = 6 * 8

#: Mixed-precision (``precision="mixed"``) per-slot cost: the modelled GPU
#: layout narrows the per-step key and value to 32 bits (a per-step grid
#: never needs more than 32-bit cell keys or satellite indices).
SLOT_BYTES_MIXED = 8

#: Mixed-precision per-entry cost: 32-bit id/slot/next plus three float32
#: coordinates — exactly half of :data:`ENTRY_BYTES`.
ENTRY_BYTES_MIXED = 6 * 4

#: The paper's target parallelisation factor: one CUDA block of the grid
#: conjunction-detection kernel.
TARGET_PARALLEL_FACTOR = 512

#: Floor on the conjunction-map base size.
MIN_CONJUNCTIONS = 10_000

#: Floor on one *device shard's* conjunction-map slots: dividing the
#: full-run capacity across many devices must never starve a shard.
MIN_DEVICE_CONJUNCTIONS = 1_000

#: Bytes per cached candidate pair in the temporal-coherence cache: two
#: int64 satellite-id lanes.
COHERENCE_PAIR_BYTES = 2 * 8

#: Bytes per cached cell adjacency: two uint64 cell keys plus the int64
#: CSR count and start offsets into the pair lanes.
COHERENCE_ADJACENCY_BYTES = 4 * 8

#: Floor on the coherence-cache budget — below this the cache would drop
#: constantly and coherence might as well be off.
MIN_COHERENCE_BUDGET_BYTES = 1 << 20


def coherence_cache_bytes(
    n_objects: int, n_cells: int, n_adjacencies: int, n_pairs: int
) -> int:
    """A-priori footprint of one coherence cache (planning estimate).

    Per-object previous cell keys (8 B), previous occupied-cell key set
    (8 B per cell), the adjacency index (:data:`COHERENCE_ADJACENCY_BYTES`
    each) and the cached pair lanes (:data:`COHERENCE_PAIR_BYTES` each).
    The emitter reports its *actual* footprint at runtime
    (``CoherentPairEmitter.cache_bytes``); this helper prices scenarios in
    advance for budget planning and the DESIGN.md arithmetic.
    """
    return (
        8 * n_objects
        + 8 * n_cells
        + COHERENCE_ADJACENCY_BYTES * n_adjacencies
        + COHERENCE_PAIR_BYTES * n_pairs
    )


def coherence_budget_bytes(
    n_objects: int, memory_budget_bytes: "int | None" = None
) -> int:
    """Byte budget for the temporal-coherence cache.

    In the sparse-occupancy regime the cache holds about one occupied
    cell and a handful of adjacencies per object, so ~64 B per object is
    generous headroom; with an explicit Section V-B run budget the cache
    is capped at an eighth of it (it sits outside the paper's allocation
    formula, so it must never crowd out the planned structures).  Either
    way the budget never drops below
    :data:`MIN_COHERENCE_BUDGET_BYTES` — an over-budget cache drops and
    rebuilds, it never raises.
    """
    budget = max(64 * n_objects, MIN_COHERENCE_BUDGET_BYTES)
    if memory_budget_bytes is not None:
        budget = max(min(budget, memory_budget_bytes // 8), MIN_COHERENCE_BUDGET_BYTES)
    return budget


def _next_pow2(x: int) -> int:
    return 1 if x <= 1 else 1 << (x - 1).bit_length()


def aabb_interval_count(total_samples: int, knot_steps: int = DEFAULT_KNOT_STEPS) -> int:
    """Knot intervals of one ``aabb4d`` window — mirrors ``knot_schedule``."""
    if total_samples < 2:
        raise ValueError(f"need at least 2 samples, got {total_samples}")
    if knot_steps < 1:
        raise ValueError(f"knot_steps must be >= 1, got {knot_steps}")
    return int(math.ceil((total_samples - 1) / knot_steps))


def aabb_tree_bytes(
    n_satellites: int, total_samples: int, knot_steps: int = DEFAULT_KNOT_STEPS
) -> int:
    """Planned footprint of the build-once 4D AABB tree.

    One box per (object, knot interval); the implicit complete binary
    tree pads the leaf count to a power of two and stores per node two
    float64 4-vectors (lo/hi) plus an int64 max-leaf-order, and one int64
    permutation lane per box — exactly ``AABB4DTree.memory_bytes``, priced
    in advance so :func:`plan_memory` can charge it as a fixed allocation.
    """
    boxes = n_satellites * aabb_interval_count(total_samples, knot_steps)
    leaves = _next_pow2(max(boxes, 1))
    node_bytes = 2 * leaves * (2 * 4 * 8 + 8)
    return node_bytes + boxes * 8


def occupancy_bitmap_bytes(
    n_satellites: int,
    total_samples: int,
    knot_steps: int = DEFAULT_KNOT_STEPS,
    shell_km: float = DEFAULT_SHELL_KM,
) -> int:
    """Planned footprint of the occupancy prefilter's histogram.

    The (interval × shell) crowded-prefix table (int32) plus the three
    per-box int64 lanes (shell range and interval id) — mirrors
    ``OccupancyBitmap.memory_bytes``.
    """
    if shell_km <= 0.0:
        raise ValueError(f"shell thickness must be positive, got {shell_km}")
    n_intervals = aabb_interval_count(total_samples, knot_steps)
    n_shells = int(math.sqrt(3.0) * SIM_HALF_EXTENT / shell_km) + 1
    boxes = n_satellites * n_intervals
    return n_intervals * (n_shells + 1) * 4 + 3 * boxes * 8


def grid_instance_bytes(n_satellites: int, precision: str = "fp64") -> int:
    """Footprint of one per-step grid instance: ``a_gh + a_l``.

    The hash area (2 slots per satellite at :data:`SLOT_BYTES`) plus the
    entry pool (:data:`ENTRY_BYTES` per satellite) — the single source of
    truth for the per-grid constants, shared by :class:`MemoryPlan` and
    the multi-device peak-byte accounting.

    ``precision="mixed"`` prices the float32 broad phase
    (:data:`SLOT_BYTES_MIXED` / :data:`ENTRY_BYTES_MIXED`): 40 bytes per
    satellite instead of 80, which doubles the parallelisation factor
    ``p`` under a fixed budget.  Note this models the paper's CUDA layout;
    the numpy emulation keeps 64-bit compound keys at runtime.
    """
    if precision == "mixed":
        return 2 * n_satellites * SLOT_BYTES_MIXED + n_satellites * ENTRY_BYTES_MIXED
    return 2 * n_satellites * SLOT_BYTES + n_satellites * ENTRY_BYTES


def device_conjunction_capacity(
    n_satellites: int,
    seconds_per_sample: float,
    duration_s: float,
    threshold_km: float,
    variant: str,
    n_devices: int,
) -> int:
    """Conjunction-map slots one device shard allocates.

    The full-run capacity divided across devices (each device sees about
    ``1/D`` of the records under round-robin step sharding), floored at
    :data:`MIN_DEVICE_CONJUNCTIONS`.  This is exactly what
    ``screen_grid_multidevice`` allocates per shard, so device memory
    plans and the runtime agree by construction.
    """
    if n_devices <= 0:
        raise ValueError(f"n_devices must be positive, got {n_devices}")
    full = conjunction_capacity(
        n_satellites, seconds_per_sample, duration_s, threshold_km, variant
    )
    return max(full // n_devices, MIN_DEVICE_CONJUNCTIONS)


def conjunction_capacity(
    n_satellites: int,
    seconds_per_sample: float,
    duration_s: float,
    threshold_km: float,
    variant: str,
) -> int:
    """Conjunction hash-map slot count: ``max(c', 10000) * 2 * 2``.

    One doubling is the usual open-addressing headroom; the second absorbs
    the population-dependence the Extra-P base model cannot capture.

    The ``aabb4d`` variant emits the grid's records by construction (its
    narrow phase shares the grid's cell quantiser), so it is priced with
    the grid's Extra-P model.
    """
    model = paper_conjunction_model("grid" if variant == "aabb4d" else variant)
    c_prime = model.predict(
        n=float(n_satellites), s=seconds_per_sample, t=duration_s, d=threshold_km
    )
    return int(math.ceil(max(c_prime, MIN_CONJUNCTIONS))) * 2 * 2


@dataclass(frozen=True)
class MemoryPlan:
    """Outcome of the Section V-B parameterisation."""

    n_satellites: int
    variant: str
    #: Effective seconds per sample after any automatic reduction.
    seconds_per_sample: float
    #: The requested value before adjustment.
    requested_seconds_per_sample: float
    budget_bytes: int
    #: Fixed allocations.
    satellite_bytes: int
    solver_bytes: int
    conjunction_map_slots: int
    conjunction_map_bytes: int
    #: Per-grid-instance cost.
    grid_hash_bytes: int
    entry_pool_bytes: int
    #: Parallelisation factor: grids processable simultaneously.
    parallel_steps: int
    #: Total samples ``o`` and computation rounds ``r_c``.
    total_samples: int
    computation_rounds: int
    #: Arithmetic policy the grid/round bytes were priced for ("fp64" or
    #: "mixed"); fixed allocations (elements, solver data, conjunction map)
    #: stay float64 under both.
    precision: str = "fp64"
    #: Build-once structures of the ``aabb4d`` variant (zero for the
    #: grid/hybrid variants): the 4D tree's node arrays and the occupancy
    #: prefilter's histogram, both resident for the whole window and
    #: therefore charged as fixed allocations.
    tree_bytes: int = 0
    bitmap_bytes: int = 0

    @property
    def per_grid_bytes(self) -> int:
        return self.grid_hash_bytes + self.entry_pool_bytes

    @property
    def round_lanes(self) -> int:
        """(satellite, step) lanes one fused round processes: ``p * n``.

        The vectorized backend builds *one* multi-step grid per round
        instead of ``p`` per-step grids; its key/entry arrays are sized for
        this many lanes (Section V-B's simultaneous grids collapsed into a
        single compound-keyed structure).
        """
        return self.parallel_steps * self.n_satellites

    @property
    def fused_grid_slots(self) -> int:
        """Hash slots of the fused multi-step grid: 2 slots per lane.

        The same 2x slot factor the paper gives each per-step grid, applied
        to the whole round's lanes — byte-identical to ``p`` separate grid
        hash areas (``p * a_gh``), just allocated as one table.
        """
        return 2 * self.round_lanes

    @property
    def fused_round_bytes(self) -> int:
        """Footprint of one fused round's grid + entry lanes.

        Equals ``parallel_steps * per_grid_bytes``: fusing reshapes the
        allocation, it does not change the Section V-B budget arithmetic.
        """
        return self.parallel_steps * self.per_grid_bytes

    @property
    def fixed_bytes(self) -> int:
        return (
            self.satellite_bytes
            + self.solver_bytes
            + self.conjunction_map_bytes
            + self.tree_bytes
            + self.bitmap_bytes
        )

    @property
    def total_bytes(self) -> int:
        """Footprint of the planned configuration."""
        return self.fixed_bytes + self.parallel_steps * self.per_grid_bytes

    @property
    def was_adjusted(self) -> bool:
        return self.seconds_per_sample != self.requested_seconds_per_sample


def _plan_once(
    n: int,
    seconds_per_sample: float,
    duration_s: float,
    threshold_km: float,
    variant: str,
    budget_bytes: int,
    conj_slots: "int | None" = None,
    total_samples: "int | None" = None,
    precision: str = "fp64",
    knot_steps: int = DEFAULT_KNOT_STEPS,
    occupancy_shell_km: float = DEFAULT_SHELL_KM,
) -> MemoryPlan:
    """One planning pass.  ``conj_slots`` / ``total_samples`` override the
    duration-derived defaults for device shards, whose conjunction map and
    step count are fixed by the sharding, not by the full-run formulas.

    ``precision`` prices the per-grid byte costs by dtype; the fixed
    allocations (float64 elements, solver data, the 64-bit-record
    conjunction map) are precision-independent.  For ``variant="aabb4d"``
    the build-once tree and occupancy histogram are charged as additional
    fixed allocations before the per-round free space is divided."""
    slot_b = SLOT_BYTES_MIXED if precision == "mixed" else SLOT_BYTES
    entry_b = ENTRY_BYTES_MIXED if precision == "mixed" else ENTRY_BYTES
    a_s = n * SATELLITE_RECORD_BYTES
    a_k = n * SOLVER_RECORD_BYTES
    if conj_slots is None:
        conj_slots = conjunction_capacity(n, seconds_per_sample, duration_s, threshold_km, variant)
    a_ch = conj_slots * SLOT_BYTES
    a_gh = 2 * n * slot_b
    a_l = n * entry_b
    if total_samples is None:
        o = max(int(math.ceil(duration_s / seconds_per_sample)) + 1, 2)
    else:
        o = int(total_samples)
    a_tree = 0
    a_bitmap = 0
    if variant == "aabb4d" and o >= 2:
        a_tree = aabb_tree_bytes(n, o, knot_steps)
        a_bitmap = occupancy_bitmap_bytes(n, o, knot_steps, occupancy_shell_km)
    free = budget_bytes - a_s - a_k - a_ch - a_tree - a_bitmap
    p = max(int(free // (a_gh + a_l)), 0)
    r_c = int(math.ceil(o / p)) if p > 0 else 0
    return MemoryPlan(
        n_satellites=n,
        variant=variant,
        seconds_per_sample=seconds_per_sample,
        requested_seconds_per_sample=seconds_per_sample,
        budget_bytes=budget_bytes,
        satellite_bytes=a_s,
        solver_bytes=a_k,
        conjunction_map_slots=conj_slots,
        conjunction_map_bytes=a_ch,
        grid_hash_bytes=a_gh,
        entry_pool_bytes=a_l,
        parallel_steps=p,
        total_samples=o,
        computation_rounds=r_c,
        precision=precision,
        tree_bytes=a_tree,
        bitmap_bytes=a_bitmap,
    )


def plan_memory(
    n_satellites: int,
    seconds_per_sample: float,
    duration_s: float,
    threshold_km: float,
    variant: str,
    budget_bytes: int,
    auto_adjust: bool = True,
    target_parallel: int = TARGET_PARALLEL_FACTOR,
    precision: str = "fp64",
    knot_steps: int = DEFAULT_KNOT_STEPS,
    occupancy_shell_km: float = DEFAULT_SHELL_KM,
) -> MemoryPlan:
    """Plan a run's memory, optionally auto-reducing ``s_ps``.

    For the hybrid variant (or whenever ``auto_adjust`` is on), the
    seconds-per-sample is lowered step by step — shrinking the conjunction
    map, whose size grows like ``s^{4/3..5/3}`` — until either the target
    parallelisation factor is reached or ``s_ps`` hits 1 s, mirroring the
    9 -> 4 -> 1 adjustments reported in Section V-C.

    Raises
    ------
    ValueError
        If even ``s_ps = 1`` cannot fit a single grid instance into the
        budget.
    """
    if n_satellites <= 0:
        raise ValueError(f"n_satellites must be positive, got {n_satellites}")
    if budget_bytes <= 0:
        raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
    requested = seconds_per_sample
    sps = seconds_per_sample
    plan = _plan_once(
        n_satellites, sps, duration_s, threshold_km, variant, budget_bytes,
        precision=precision, knot_steps=knot_steps,
        occupancy_shell_km=occupancy_shell_km,
    )
    if auto_adjust:
        while plan.parallel_steps < min(target_parallel, plan.total_samples) and sps > 1.0:
            sps = max(sps - 1.0, 1.0)
            plan = _plan_once(
                n_satellites, sps, duration_s, threshold_km, variant, budget_bytes,
                precision=precision, knot_steps=knot_steps,
                occupancy_shell_km=occupancy_shell_km,
            )
    if plan.parallel_steps == 0:
        raise ValueError(
            f"memory budget {budget_bytes} B cannot hold even one grid instance for "
            f"{n_satellites} satellites (fixed allocations {plan.fixed_bytes} B, "
            f"per-grid {plan.per_grid_bytes} B)"
        )
    return MemoryPlan(
        **{
            **plan.__dict__,
            "requested_seconds_per_sample": requested,
        }
    )


def position_step_bytes(n_satellites: int, precision: str = "fp64") -> int:
    """Bytes one sampling step's position block occupies: ``n`` 3-vectors.

    ``fp64`` positions are 24 B per satellite; the mixed broad phase emits
    float32 positions at 12 B.  The streaming planner charges *two* of
    these per in-flight round step (the double buffer: the round being
    screened plus the slice being prefetched).
    """
    per_axis = 4 if precision == "mixed" else 8
    return 3 * per_axis * n_satellites


#: Bytes of one queued candidate record: the (i, j, step) int64 triple the
#: pipelined schedule's CandidateQueue holds between CD and REF.
CANDIDATE_RECORD_BYTES = 3 * 8


def pipeline_queue_bytes(
    n_satellites: int,
    seconds_per_sample: float,
    duration_s: float,
    threshold_km: float,
    variant: str,
    round_size: int,
    queue_rounds: int,
) -> int:
    """Planned peak bytes of the pipelined schedule's candidate queue.

    The queue holds at most ``queue_rounds`` round batches; each round
    covers ``round_size`` of the window's sampling steps, so its expected
    record count is the Extra-P conjunction prediction prorated by the
    round's share of the steps.  Like :func:`conjunction_capacity` this is
    a planning estimate, not a cap — the runtime bound is the queue's
    round depth, and the *record* count of a pathological round can
    exceed the prorated share.
    """
    if round_size < 1:
        raise ValueError(f"round_size must be >= 1, got {round_size}")
    if queue_rounds < 1:
        raise ValueError(f"queue_rounds must be >= 1, got {queue_rounds}")
    capacity = conjunction_capacity(
        n_satellites, seconds_per_sample, duration_s, threshold_km, variant
    )
    o = max(int(math.ceil(duration_s / seconds_per_sample)) + 1, 2)
    per_round = int(math.ceil(capacity * min(round_size, o) / o))
    return queue_rounds * per_round * CANDIDATE_RECORD_BYTES


@dataclass(frozen=True)
class StreamPlan:
    """A device shard's out-of-core round plan.

    When the Section V-B parallelisation factor of a full fused round does
    not fit the device budget, the shard *streams*: it slices its step
    shard into rounds of ``round_size`` steps and pipes each slice's
    positions through a bounded double buffer (compute the current slice's
    grid while the next slice propagates).  ``round_size`` is the largest
    slice whose grid lanes **plus** two position buffers fit the budget's
    free space — never zero, so a 1M-object shard degrades to
    one-step-at-a-time streaming instead of failing.
    """

    plan: MemoryPlan
    #: Steps per streamed round actually dispatched to the shard kernel.
    round_size: int
    #: True when the budget forced ``round_size`` below the requested
    #: fused-round width — the shard is genuinely out-of-core.
    streamed: bool
    #: Bytes held by the two in-flight position slices.
    buffer_bytes: int
    #: Planned bytes of the pipelined schedule's candidate queue (0 when
    #: planning a barrier run).
    queue_bytes: int = 0

    @property
    def rounds(self) -> int:
        """Streamed rounds the shard will run over its step shard."""
        o = self.plan.total_samples
        return int(math.ceil(o / self.round_size)) if o else 0

    @property
    def total_bytes(self) -> int:
        """Peak planned footprint: fixed allocations + one resident round."""
        return (
            self.plan.fixed_bytes
            + self.round_size * self.plan.per_grid_bytes
            + self.buffer_bytes
            + self.queue_bytes
        )


def plan_stream_rounds(
    n_satellites: int,
    seconds_per_sample: float,
    duration_s: float,
    threshold_km: float,
    variant: str,
    budget_bytes: int,
    n_devices: int,
    device_steps: int,
    requested_round_size: "int | None" = None,
    precision: str = "fp64",
    queue_rounds: int = 0,
    knot_steps: int = DEFAULT_KNOT_STEPS,
    occupancy_shell_km: float = DEFAULT_SHELL_KM,
) -> StreamPlan:
    """Plan one device shard's streamed rounds under a byte budget.

    Unlike :func:`plan_device_memory` this never raises on a tight budget:
    when even one fused grid instance does not fit, the shard streams
    single steps (``round_size=1``) — the out-of-core degradation the 1M
    workload needs.  ``requested_round_size`` caps the round width (the
    caller's preferred fused-round size); ``None`` means "as wide as the
    budget and the shard allow", bounded by :data:`MAX_ROUND_STEPS`.

    ``queue_rounds`` > 0 plans for the pipelined schedule: the candidate
    queue's worst-case footprint (:func:`pipeline_queue_bytes` at the
    chosen round size) is charged against the free space and the round
    width re-fitted once — queued-but-unrefined rounds are resident
    memory the barrier schedule never holds.
    """
    if n_satellites <= 0:
        raise ValueError(f"n_satellites must be positive, got {n_satellites}")
    if budget_bytes <= 0:
        raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
    if device_steps < 0:
        raise ValueError(f"device_steps must be non-negative, got {device_steps}")
    conj_slots = device_conjunction_capacity(
        n_satellites, seconds_per_sample, duration_s, threshold_km, variant, n_devices
    )
    plan = _plan_once(
        n_satellites,
        seconds_per_sample,
        duration_s,
        threshold_km,
        variant,
        budget_bytes,
        conj_slots=conj_slots,
        total_samples=device_steps,
        precision=precision,
        knot_steps=knot_steps,
        occupancy_shell_km=occupancy_shell_km,
    )
    pos_bytes = position_step_bytes(n_satellites, precision)
    free = budget_bytes - plan.fixed_bytes
    # Each in-flight round step costs one grid slice plus two position
    # buffers (current + prefetch).  Floor at one step: streaming exists
    # precisely so tight budgets degrade instead of raising.
    fit = max(int(free // (plan.per_grid_bytes + 2 * pos_bytes)), 1)
    cap = requested_round_size if requested_round_size is not None else MAX_ROUND_STEPS
    if cap <= 0:
        raise ValueError(f"requested_round_size must be positive, got {cap}")
    round_size = max(1, min(fit, cap, max(device_steps, 1), MAX_ROUND_STEPS))
    wanted = min(cap, max(device_steps, 1), MAX_ROUND_STEPS)
    queue_bytes = 0
    if queue_rounds > 0:
        queue_bytes = pipeline_queue_bytes(
            n_satellites,
            seconds_per_sample,
            duration_s,
            threshold_km,
            variant,
            round_size,
            queue_rounds,
        )
        refit = max(int((free - queue_bytes) // (plan.per_grid_bytes + 2 * pos_bytes)), 1)
        round_size = max(1, min(refit, round_size))
        queue_bytes = pipeline_queue_bytes(
            n_satellites,
            seconds_per_sample,
            duration_s,
            threshold_km,
            variant,
            round_size,
            queue_rounds,
        )
    return StreamPlan(
        plan=plan,
        round_size=round_size,
        streamed=round_size < wanted,
        buffer_bytes=2 * round_size * pos_bytes,
        queue_bytes=queue_bytes,
    )


def plan_device_memory(
    n_satellites: int,
    seconds_per_sample: float,
    duration_s: float,
    threshold_km: float,
    variant: str,
    budget_bytes: int,
    n_devices: int,
    device_steps: int,
    precision: str = "fp64",
) -> MemoryPlan:
    """The Section V-B plan of **one device shard** of a multi-device run.

    Unlike scaling the duration by ``1/D`` (which rounds the step count
    through the sampling formula and re-runs the Extra-P model on a
    fictitious time span), the device plan reflects the shard the device
    actually executes:

    * ``total_samples`` is ``device_steps`` — the length of the device's
      round-robin step shard from ``partition_steps``;
    * the conjunction map gets :func:`device_conjunction_capacity` slots —
      the same per-device allocation the runtime makes.

    Raises :class:`ValueError` when the budget cannot hold a single grid
    instance, like :func:`plan_memory`.
    """
    if n_satellites <= 0:
        raise ValueError(f"n_satellites must be positive, got {n_satellites}")
    if budget_bytes <= 0:
        raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
    if device_steps < 0:
        raise ValueError(f"device_steps must be non-negative, got {device_steps}")
    conj_slots = device_conjunction_capacity(
        n_satellites, seconds_per_sample, duration_s, threshold_km, variant, n_devices
    )
    plan = _plan_once(
        n_satellites,
        seconds_per_sample,
        duration_s,
        threshold_km,
        variant,
        budget_bytes,
        conj_slots=conj_slots,
        total_samples=device_steps,
        precision=precision,
    )
    if plan.parallel_steps == 0:
        raise ValueError(
            f"memory budget {budget_bytes} B cannot hold even one grid instance for "
            f"{n_satellites} satellites (fixed allocations {plan.fixed_bytes} B, "
            f"per-grid {plan.per_grid_bytes} B)"
        )
    return plan
