"""Extra-P-style empirical power-law performance models.

Section V-B: the size of the conjunction hash map cannot be known in
advance, so the paper fits an empirical model with Extra-P — a tool that
selects, per parameter, an exponent from a small candidate set and a
multiplicative coefficient by least squares — yielding

.. math::
    c' = 2.32\\cdot10^{-9} \\; n^2 \\, s^{4/3} \\, t \\, d^{7/4}   (grid)

    c' = 2.14\\cdot10^{-9} \\; n^2 \\, s^{5/3} \\, t \\, d         (hybrid)

This module implements the same model class and fitting procedure:
log-space least squares over a candidate exponent grid per parameter,
picking the combination with the smallest residual (the discrete search
Extra-P's Performance Model Normal Form performs).
"""
from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

#: The candidate exponents Extra-P's normal form draws from: small rational
#: powers.  The paper's fitted exponents (2, 4/3, 5/3, 1, 7/4) all occur.
DEFAULT_EXPONENT_CANDIDATES: "tuple[float, ...]" = (
    0.0, 1.0 / 4.0, 1.0 / 3.0, 1.0 / 2.0, 2.0 / 3.0, 3.0 / 4.0, 1.0,
    4.0 / 3.0, 3.0 / 2.0, 5.0 / 3.0, 7.0 / 4.0, 2.0, 7.0 / 3.0, 5.0 / 2.0, 3.0,
)


@dataclass(frozen=True)
class PowerLawModel:
    """``predict = coefficient * prod(params[k] ** exponents[k])``."""

    parameter_names: "tuple[str, ...]"
    exponents: "tuple[float, ...]"
    coefficient: float
    residual: float = 0.0

    def predict(self, **params: float) -> float:
        """Evaluate the model; every named parameter must be supplied."""
        missing = set(self.parameter_names) - params.keys()
        if missing:
            raise ValueError(f"missing model parameters: {sorted(missing)}")
        value = self.coefficient
        for name, exp in zip(self.parameter_names, self.exponents):
            p = params[name]
            if p <= 0.0:
                raise ValueError(f"parameter {name} must be positive, got {p}")
            value *= p**exp
        return value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        terms = " * ".join(
            f"{n}^{e:.3g}" for n, e in zip(self.parameter_names, self.exponents) if e != 0.0
        )
        return f"{self.coefficient:.3g} * {terms}" if terms else f"{self.coefficient:.3g}"


def fit_power_law(
    parameter_names: "list[str]",
    observations: "list[tuple[dict[str, float], float]]",
    candidates: "tuple[float, ...]" = DEFAULT_EXPONENT_CANDIDATES,
) -> PowerLawModel:
    """Fit a power-law model by discrete exponent search + log-space LSQ.

    ``observations`` is a list of ``(params, measured_value)``.  For every
    combination of candidate exponents the optimal coefficient in log
    space is the mean residual; the combination minimising the sum of
    squared log residuals wins — exactly the PMNF search strategy.

    Requires at least two observations and strictly positive measurements.
    """
    if len(observations) < 2:
        raise ValueError("need at least two observations to fit a model")
    values = np.array([v for _, v in observations], dtype=np.float64)
    if np.any(values <= 0.0):
        raise ValueError("all measured values must be positive for a log-space fit")
    log_v = np.log(values)
    log_p = np.empty((len(observations), len(parameter_names)))
    for row, (params, _) in enumerate(observations):
        for col, name in enumerate(parameter_names):
            if name not in params:
                raise ValueError(f"observation {row} is missing parameter {name!r}")
            if params[name] <= 0.0:
                raise ValueError(f"parameter {name} must be positive in observation {row}")
            log_p[row, col] = math.log(params[name])

    # Parameters that never vary across observations cannot be identified:
    # pin their exponent to 0 rather than letting them absorb noise.
    varies = np.ptp(log_p, axis=0) > 1e-12
    search_axes = [
        candidates if varies[col] else (0.0,) for col in range(len(parameter_names))
    ]

    best: "tuple[float, tuple[float, ...], float] | None" = None
    for combo in itertools.product(*search_axes):
        pred = log_p @ np.asarray(combo)
        log_c = float(np.mean(log_v - pred))
        residual = float(np.sum((log_v - pred - log_c) ** 2))
        if best is None or residual < best[0] - 1e-15:
            best = (residual, combo, log_c)
    residual, combo, log_c = best
    return PowerLawModel(
        parameter_names=tuple(parameter_names),
        exponents=tuple(combo),
        coefficient=math.exp(log_c),
        residual=residual,
    )


def crossover_point(
    model_a: PowerLawModel,
    model_b: PowerLawModel,
    parameter: str,
    lo: float,
    hi: float,
    fixed: "dict[str, float] | None" = None,
    tolerance: float = 1e-3,
) -> "float | None":
    """Smallest ``parameter`` value in ``[lo, hi]`` where ``model_a <= model_b``.

    The scaling-benchmark question "from which n does the process pool
    beat single-device?" asked of two fitted runtime models.  Both models
    are monotone power laws of ``parameter`` (all other parameters pinned
    via ``fixed``), so their log-ratio is monotone and log-space bisection
    finds the crossing.  Returns ``lo`` when ``model_a`` already wins at
    the low end, ``None`` when it never wins inside the bracket.
    """
    if not (0.0 < lo <= hi):
        raise ValueError(f"need 0 < lo <= hi, got lo={lo}, hi={hi}")
    params = dict(fixed or {})

    def gap(x: float) -> float:
        params[parameter] = x
        return math.log(model_a.predict(**params)) - math.log(model_b.predict(**params))

    if gap(lo) <= 0.0:
        return lo
    if gap(hi) > 0.0:
        return None
    log_lo, log_hi = math.log(lo), math.log(hi)
    while log_hi - log_lo > tolerance:
        mid = 0.5 * (log_lo + log_hi)
        if gap(math.exp(mid)) <= 0.0:
            log_hi = mid
        else:
            log_lo = mid
    return math.exp(log_hi)


def paper_conjunction_model(variant: str) -> PowerLawModel:
    """The paper's published conjunction-count models (Eqs. 3 and 4).

    Parameters are ``n`` (satellites), ``s`` (seconds per sample), ``t``
    (simulated span, s) and ``d`` (screening threshold, km); the prediction
    is the expected number of conjunction records ``c'``.
    """
    if variant == "grid":
        return PowerLawModel(("n", "s", "t", "d"), (2.0, 4.0 / 3.0, 1.0, 7.0 / 4.0), 2.32e-9)
    if variant == "hybrid":
        return PowerLawModel(("n", "s", "t", "d"), (2.0, 5.0 / 3.0, 1.0, 1.0), 2.14e-9)
    raise ValueError(f"variant must be 'grid' or 'hybrid', got {variant!r}")
