"""Runtime modelling and crossover prediction.

Fig. 10's narrative is a sequence of *crossovers*: "at 4000 satellites,
the grid-based GPU method is already approximately 30% faster [than
legacy]", "the grid-based GPU variant beats the hybrid CPU variant at
128,000 satellites", and so on.  This module turns measured runtime
samples into the same statements:

* :func:`fit_runtime_model` — a power law ``t(n) = C n^k`` per variant
  from (n, seconds) samples (Extra-P machinery underneath);
* :func:`crossover_population` — the population size where one variant's
  model overtakes another's;
* :class:`RuntimeComparison` — the full who-wins-where table for a set of
  variants over a population range.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfmodel.extrap import PowerLawModel, fit_power_law


def fit_runtime_model(samples: "list[tuple[int, float]]") -> PowerLawModel:
    """Fit ``t(n) = C * n^k`` to (population size, seconds) samples."""
    if len(samples) < 2:
        raise ValueError("need at least two (n, seconds) samples")
    observations = [({"n": float(n)}, float(t)) for n, t in samples]
    return fit_power_law(["n"], observations)


def crossover_population(
    slower_small: PowerLawModel, faster_small: PowerLawModel
) -> "float | None":
    """Population where ``slower_small`` overtakes ``faster_small``.

    Both models must be single-parameter in ``n``.  Returns None when the
    curves never cross for n > 1 (the first model is slower everywhere or
    faster everywhere), else the crossing n.
    """
    for model in (slower_small, faster_small):
        if model.parameter_names != ("n",):
            raise ValueError("crossover needs single-parameter models in n")
    k1 = slower_small.exponents[0]
    k2 = faster_small.exponents[0]
    if k1 == k2:
        return None
    # C1 n^k1 = C2 n^k2  ->  n = (C2/C1)^(1/(k1-k2))
    n_cross = (faster_small.coefficient / slower_small.coefficient) ** (1.0 / (k1 - k2))
    if not math.isfinite(n_cross) or n_cross <= 1.0:
        return None
    return float(n_cross)


@dataclass(frozen=True)
class RuntimeComparison:
    """Fitted models for several variants plus the crossover table."""

    models: "dict[str, PowerLawModel]"

    def predict(self, variant: str, n: int) -> float:
        return self.models[variant].predict(n=float(n))

    def winner_at(self, n: int) -> str:
        """The fastest variant at population size ``n``."""
        return min(self.models, key=lambda v: self.predict(v, n))

    def crossovers(self) -> "list[tuple[str, str, float]]":
        """All pairwise crossings ``(overtaken, overtaker, n)``, sorted by n.

        ``overtaker`` is cheaper beyond ``n`` — the Fig. 10 statements.
        """
        out = []
        names = sorted(self.models)
        for a in names:
            for b in names:
                if a >= b:
                    continue
                ka = self.models[a].exponents[0]
                kb = self.models[b].exponents[0]
                if ka == kb:
                    continue
                steep, flat = (a, b) if ka > kb else (b, a)
                n_cross = crossover_population(self.models[steep], self.models[flat])
                if n_cross is not None:
                    out.append((steep, flat, n_cross))
        return sorted(out, key=lambda row: row[2])


def compare_runtimes(
    samples_by_variant: "dict[str, list[tuple[int, float]]]"
) -> RuntimeComparison:
    """Fit all variants and build the comparison."""
    if len(samples_by_variant) < 2:
        raise ValueError("need at least two variants to compare")
    return RuntimeComparison(
        models={name: fit_runtime_model(samples) for name, samples in samples_by_variant.items()}
    )


# ---------------------------------------------------------------------------
# REF-phase work model (PR 2): what did convergence-awareness buy?
# ---------------------------------------------------------------------------

#: Golden-section iterations the seed's fixed-iteration REF kernel always ran.
FIXED_GOLDEN_ITERATIONS = 60
#: Distance evaluations outside the golden loop (2 bracket probes + 3 per
#: parabolic polish step x 2 steps).
FIXED_EXTRA_EVALS = 2 + 6


def ref_phase_summary(telemetry) -> "dict[str, float]":
    """Digest a :class:`repro.parallel.backend.RefTelemetry` into the
    quantities the Fig. 9-style phase breakdown cares about.

    ``modelled_speedup`` is the analytic work ratio against the seed's REF
    kernel — every lane minimised for :data:`FIXED_GOLDEN_ITERATIONS`
    golden iterations with a cold 10-iteration Kepler solve per distance
    evaluation — using the *measured* Kepler iteration total as the actual
    cost.  Wall-clock speedups land below this bound (fixed per-call
    overheads dilute it), so benches report both.
    """
    lanes = telemetry.lanes_total
    baseline_lane_evals = lanes * (FIXED_GOLDEN_ITERATIONS + FIXED_EXTRA_EVALS)
    # Two Kepler lane-solves (one per satellite of the pair) per evaluation.
    baseline_kepler_iters = baseline_lane_evals * 2 * telemetry.FIXED_BASELINE_KEPLER_ITERS
    actual = telemetry.kepler_iterations
    retired = telemetry.lanes_retired_per_iteration
    return {
        "lanes_total": float(lanes),
        "golden_iterations": float(telemetry.golden_iterations),
        "mean_kepler_iterations": telemetry.mean_kepler_iterations,
        "kepler_iterations_saved": float(telemetry.kepler_iterations_saved),
        "lanes_retired_peak_iteration": float(
            max(range(len(retired)), key=retired.__getitem__) if retired else 0
        ),
        "modelled_speedup": (baseline_kepler_iters / actual) if actual else 1.0,
    }
