"""Runtime modelling and crossover prediction.

Fig. 10's narrative is a sequence of *crossovers*: "at 4000 satellites,
the grid-based GPU method is already approximately 30% faster [than
legacy]", "the grid-based GPU variant beats the hybrid CPU variant at
128,000 satellites", and so on.  This module turns measured runtime
samples into the same statements:

* :func:`fit_runtime_model` — a power law ``t(n) = C n^k`` per variant
  from (n, seconds) samples (Extra-P machinery underneath);
* :func:`crossover_population` — the population size where one variant's
  model overtakes another's;
* :class:`RuntimeComparison` — the full who-wins-where table for a set of
  variants over a population range.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfmodel.extrap import PowerLawModel, fit_power_law


def fit_runtime_model(samples: "list[tuple[int, float]]") -> PowerLawModel:
    """Fit ``t(n) = C * n^k`` to (population size, seconds) samples."""
    if len(samples) < 2:
        raise ValueError("need at least two (n, seconds) samples")
    observations = [({"n": float(n)}, float(t)) for n, t in samples]
    return fit_power_law(["n"], observations)


def crossover_population(
    slower_small: PowerLawModel, faster_small: PowerLawModel
) -> "float | None":
    """Population where ``slower_small`` overtakes ``faster_small``.

    Both models must be single-parameter in ``n``.  Returns None when the
    curves never cross for n > 1 (the first model is slower everywhere or
    faster everywhere), else the crossing n.
    """
    for model in (slower_small, faster_small):
        if model.parameter_names != ("n",):
            raise ValueError("crossover needs single-parameter models in n")
    k1 = slower_small.exponents[0]
    k2 = faster_small.exponents[0]
    if k1 == k2:
        return None
    # C1 n^k1 = C2 n^k2  ->  n = (C2/C1)^(1/(k1-k2))
    n_cross = (faster_small.coefficient / slower_small.coefficient) ** (1.0 / (k1 - k2))
    if not math.isfinite(n_cross) or n_cross <= 1.0:
        return None
    return float(n_cross)


@dataclass(frozen=True)
class RuntimeComparison:
    """Fitted models for several variants plus the crossover table."""

    models: "dict[str, PowerLawModel]"

    def predict(self, variant: str, n: int) -> float:
        return self.models[variant].predict(n=float(n))

    def winner_at(self, n: int) -> str:
        """The fastest variant at population size ``n``."""
        return min(self.models, key=lambda v: self.predict(v, n))

    def crossovers(self) -> "list[tuple[str, str, float]]":
        """All pairwise crossings ``(overtaken, overtaker, n)``, sorted by n.

        ``overtaker`` is cheaper beyond ``n`` — the Fig. 10 statements.
        """
        out = []
        names = sorted(self.models)
        for a in names:
            for b in names:
                if a >= b:
                    continue
                ka = self.models[a].exponents[0]
                kb = self.models[b].exponents[0]
                if ka == kb:
                    continue
                steep, flat = (a, b) if ka > kb else (b, a)
                n_cross = crossover_population(self.models[steep], self.models[flat])
                if n_cross is not None:
                    out.append((steep, flat, n_cross))
        return sorted(out, key=lambda row: row[2])


def compare_runtimes(
    samples_by_variant: "dict[str, list[tuple[int, float]]]"
) -> RuntimeComparison:
    """Fit all variants and build the comparison."""
    if len(samples_by_variant) < 2:
        raise ValueError("need at least two variants to compare")
    return RuntimeComparison(
        models={name: fit_runtime_model(samples) for name, samples in samples_by_variant.items()}
    )
