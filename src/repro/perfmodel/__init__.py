"""Empirical performance modelling and memory parameterisation.

* :mod:`repro.perfmodel.extrap` — Extra-P-style power-law model fitting,
  reproducing the methodology behind the paper's conjunction-count models
  (Eqs. 3 and 4).
* :mod:`repro.perfmodel.memory` — the Section V-B memory planner: how many
  sampling steps fit into memory at once (``p``), total samples (``o``),
  computation rounds (``r_c``), hash-map sizing, and the automatic
  seconds-per-sample reduction.
"""
from repro.perfmodel.extrap import PowerLawModel, fit_power_law, paper_conjunction_model
from repro.perfmodel.memory import MemoryPlan, conjunction_capacity, plan_memory
from repro.perfmodel.runtime import (
    RuntimeComparison,
    compare_runtimes,
    crossover_population,
    fit_runtime_model,
)

__all__ = [
    "MemoryPlan",
    "PowerLawModel",
    "RuntimeComparison",
    "compare_runtimes",
    "conjunction_capacity",
    "crossover_population",
    "fit_power_law",
    "fit_runtime_model",
    "paper_conjunction_model",
    "plan_memory",
]
