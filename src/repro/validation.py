"""Ground-truth validation: the brute-force reference screener.

The paper validates its variants against the legacy implementation
(Section V-D).  For the reproduction's own test suite we go one level
deeper: a no-filter, no-data-structure oracle that densely samples *every*
pair's distance function and refines every bracketed minimum — O(n^2 x
steps), unusable at scale, but incapable of the systematic errors a filter
or grid bug could introduce.  The integration tests compare every variant
against this.
"""
from __future__ import annotations

import numpy as np

from repro.detection.brent import brent_minimize
from repro.detection.pca_tca import PairDistanceScalar, merge_conjunctions
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer


def brute_force_screen(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    oversample: int = 4,
) -> ScreeningResult:
    """Exhaustive reference screening (tests and validation only).

    Samples every pair's distance at ``oversample`` times the grid
    variant's sampling rate (so no minimum can hide between samples even
    in adversarial geometries), brackets every local minimum, and refines
    each with Brent.
    """
    if oversample < 1:
        raise ValueError(f"oversample must be >= 1, got {oversample}")
    timers = PhaseTimer()
    n = len(population)
    dt = config.seconds_per_sample / oversample
    times = np.arange(0.0, config.duration_s + dt, dt)
    prop = Propagator(population, solver=config.solver)

    with timers.phase("SAMPLE"):
        # (steps, n, 3) is fine at test scale.
        positions = np.stack([prop.positions(float(t)) for t in times])

    hits: "list[tuple[int, int, float, float]]" = []
    with timers.phase("REF"):
        for i in range(n):
            diff = positions[:, i + 1 :, :] - positions[:, i : i + 1, :]
            dists = np.sqrt(np.einsum("tjk,tjk->tj", diff, diff))  # (steps, n-i-1)
            for col in range(dists.shape[1]):
                j = i + 1 + col
                d = dists[:, col]
                interior = np.nonzero((d[1:-1] <= d[:-2]) & (d[1:-1] <= d[2:]))[0] + 1
                candidates = [k for k in interior if d[k] <= config.threshold_km * 2.0]
                if d[0] < d[1] and d[0] <= config.threshold_km * 2.0:
                    candidates.append(0)
                if d[-1] < d[-2] and d[-1] <= config.threshold_km * 2.0:
                    candidates.append(len(d) - 1)
                if not candidates:
                    continue
                dist_fn = PairDistanceScalar(population, i, j)
                for k in candidates:
                    a = float(times[max(k - 1, 0)])
                    b = float(times[min(k + 1, len(times) - 1)])
                    if b <= a:
                        continue
                    res = brent_minimize(dist_fn, a, b, tol=config.brent_tol)
                    if res.fx <= config.threshold_km:
                        hits.append((i, j, res.x, res.fx))

    if hits:
        arr = np.array(hits)
        i_arr = arr[:, 0].astype(np.int64)
        j_arr = arr[:, 1].astype(np.int64)
        tca = arr[:, 2]
        pca = arr[:, 3]
        i_arr, j_arr, tca, pca = merge_conjunctions(
            i_arr, j_arr, tca, pca, max(config.tca_merge_tol_s, dt)
        )
    else:
        i_arr = np.empty(0, dtype=np.int64)
        j_arr = np.empty(0, dtype=np.int64)
        tca = np.empty(0, dtype=np.float64)
        pca = np.empty(0, dtype=np.float64)

    return ScreeningResult(
        method="brute-force",
        backend="serial",
        i=i_arr,
        j=j_arr,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=n * (n - 1) // 2,
        timers=timers,
    )
