"""Collision probability from miss distance under position uncertainty.

Implements the circular-covariance special case of the encounter-plane
("Foster") integral.  With combined position uncertainty ``sigma`` (km,
1-sigma, isotropic in the encounter plane), a combined hard-body radius
``R``, and the screened miss distance ``d``, the probability that the true
miss is below ``R`` follows the Rice distribution's CDF:

.. math::
    P_c = \\int_0^{R} \\frac{r}{\\sigma^2}
          \\exp\\!\\left(-\\frac{r^2 + d^2}{2\\sigma^2}\\right)
          I_0\\!\\left(\\frac{r d}{\\sigma^2}\\right) dr

evaluated by adaptive quadrature with the exponentially scaled Bessel
function (numerically safe for ``d >> sigma``).
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.integrate import quad
from scipy.special import i0e

from repro.detection.types import ScreeningResult


def collision_probability(
    miss_km: float, sigma_km: float, hard_body_radius_km: float
) -> float:
    """Probability that the true approach undercuts the hard-body radius.

    Parameters
    ----------
    miss_km:
        Screened (nominal) miss distance — the PCA.
    sigma_km:
        Combined 1-sigma position uncertainty, isotropic in the encounter
        plane.
    hard_body_radius_km:
        Sum of the two objects' effective radii.
    """
    if miss_km < 0.0:
        raise ValueError(f"miss distance must be non-negative, got {miss_km}")
    if sigma_km <= 0.0:
        raise ValueError(f"sigma must be positive, got {sigma_km}")
    if hard_body_radius_km <= 0.0:
        raise ValueError(f"hard-body radius must be positive, got {hard_body_radius_km}")

    s2 = sigma_km * sigma_km

    def integrand(r: float) -> float:
        # i0e(x) = I0(x) * exp(-|x|): fold the exponent in analytically.
        x = r * miss_km / s2
        return (r / s2) * math.exp(-((r - miss_km) ** 2) / (2.0 * s2)) * i0e(x)

    value, _err = quad(integrand, 0.0, hard_body_radius_km, limit=200)
    return float(min(max(value, 0.0), 1.0))


@dataclass(frozen=True)
class RiskEntry:
    """One conjunction annotated with its collision probability."""

    i: int
    j: int
    tca_s: float
    pca_km: float
    probability: float


def rank_conjunctions(
    result: ScreeningResult,
    sigma_km: float = 0.5,
    hard_body_radius_km: float = 0.02,
    top: "int | None" = None,
) -> "list[RiskEntry]":
    """Annotate a screening result with P_c and sort by descending risk.

    Defaults model a typical LEO screening: 500 m combined uncertainty and
    a 20 m combined hard-body radius.
    """
    entries = [
        RiskEntry(
            i=int(result.i[k]),
            j=int(result.j[k]),
            tca_s=float(result.tca_s[k]),
            pca_km=float(result.pca_km[k]),
            probability=collision_probability(
                float(result.pca_km[k]), sigma_km, hard_body_radius_km
            ),
        )
        for k in range(result.n_conjunctions)
    ]
    entries.sort(key=lambda e: e.probability, reverse=True)
    return entries[:top] if top is not None else entries
