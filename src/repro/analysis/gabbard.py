"""Gabbard diagrams: the classic fragmentation-cloud fingerprint.

A Gabbard diagram plots each object's apogee and perigee altitude against
its orbital period.  A fresh breakup cloud forms the characteristic "X":
fragments boosted prograde gain period and apogee (upper-right arm) while
their perigees stay pinned at the breakup altitude; retrograde fragments
mirror it.  The data behind the plot is exactly what debris analysts
extract from events like the Yunhai 1-02 collision the paper's
introduction cites.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import R_EARTH
from repro.orbits.elements import OrbitalElementsArray


@dataclass(frozen=True)
class GabbardData:
    """Per-object series of a Gabbard diagram."""

    period_min: np.ndarray  # orbital period, minutes
    apogee_alt_km: np.ndarray  # apogee altitude above the surface
    perigee_alt_km: np.ndarray  # perigee altitude above the surface

    def __len__(self) -> int:
        return len(self.period_min)

    @property
    def pinned_altitude_km(self) -> float:
        """The breakup altitude estimate: where apogee and perigee arms
        meet — the median of each object's closer-to-pin apsis."""
        pin_candidates = np.where(
            np.abs(self.apogee_alt_km - np.median(self.perigee_alt_km))
            < np.abs(self.perigee_alt_km - np.median(self.apogee_alt_km)),
            self.apogee_alt_km,
            self.perigee_alt_km,
        )
        return float(np.median(pin_candidates))

    def ascii_plot(self, width: int = 72, height: int = 20) -> str:
        """Monospace rendering: ``o`` = apogee, ``.`` = perigee points."""
        p_lo, p_hi = float(self.period_min.min()), float(self.period_min.max())
        alts = np.concatenate([self.apogee_alt_km, self.perigee_alt_km])
        a_lo, a_hi = float(alts.min()), float(alts.max())
        p_span = max(p_hi - p_lo, 1e-9)
        a_span = max(a_hi - a_lo, 1e-9)
        canvas = [[" "] * width for _ in range(height)]
        for alt_series, mark in ((self.apogee_alt_km, "o"), (self.perigee_alt_km, ".")):
            for p, alt in zip(self.period_min, alt_series):
                x = int((p - p_lo) / p_span * (width - 1))
                y = height - 1 - int((alt - a_lo) / a_span * (height - 1))
                canvas[y][x] = mark
        lines = [f"{a_hi:8.0f} km |" + "".join(canvas[0])]
        lines += ["            |" + "".join(row) for row in canvas[1:-1]]
        lines.append(f"{a_lo:8.0f} km |" + "".join(canvas[-1]))
        lines.append("            +" + "-" * width)
        lines.append(f"             {p_lo:.1f} min{'':{max(width - 22, 1)}}{p_hi:.1f} min")
        return "\n".join(lines)


def gabbard_data(population: OrbitalElementsArray) -> GabbardData:
    """Compute the Gabbard series for a population (typically a cloud)."""
    return GabbardData(
        period_min=population.period / 60.0,
        apogee_alt_km=population.apogee - R_EARTH,
        perigee_alt_km=population.perigee - R_EARTH,
    )
