"""Post-screening analysis: collision probability and risk ranking.

The paper's screening phase hands "all encounters with a minimal distance
below this threshold ... for further assessment" to "a more detailed
subsequent conjunction assessment process" (Section III).  This subpackage
implements that downstream step: per-conjunction collision probability
from the miss distance under position uncertainty, and risk ranking of a
screening result.
"""
from repro.analysis.complexity import (
    ShellDecomposition,
    decompose_shells,
    predicted_candidates_per_step,
)
from repro.analysis.poc import collision_probability, rank_conjunctions

__all__ = [
    "ShellDecomposition",
    "collision_probability",
    "decompose_shells",
    "predicted_candidates_per_step",
    "rank_conjunctions",
]
