"""Section III-B's average-case complexity machinery, made executable.

The paper's average-case argument partitions space into hollow spheres
``S_1..S_k`` by orbit radius, assigns each satellite to the sphere of its
orbital altitude, and bounds the candidate-pair work per sphere by
``n_i * (2 n_i / b_i)`` with ``b_i`` the cells along an orbit in ``S_i``.

This module computes those quantities for a concrete population and grid,
so the bound can be compared against the measured candidate counts (see
``benchmarks/test_complexity_model.py``): per-sphere populations, the
``b_i`` estimate, the predicted pair bound, and the naive quadratic count
it replaces.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.orbits.elements import OrbitalElementsArray


@dataclass(frozen=True)
class ShellDecomposition:
    """Hollow-sphere decomposition of a population (Section III-B)."""

    edges_km: np.ndarray  # (k+1,) sphere boundary radii
    counts: np.ndarray  # (k,) satellites per sphere
    cells_per_orbit: np.ndarray  # (k,) the b_i estimate
    pair_bound: np.ndarray  # (k,) 2 * n_i^2 / b_i

    @property
    def total_pair_bound(self) -> float:
        """Predicted candidate pairs per orbital period, all spheres."""
        return float(self.pair_bound.sum())

    @property
    def naive_pairs(self) -> int:
        """The all-on-all count the decomposition replaces."""
        n = int(self.counts.sum())
        return n * (n - 1) // 2

    @property
    def reduction_factor(self) -> float:
        """How much smaller the bound is than the naive pair count."""
        bound = self.total_pair_bound
        if bound <= 0.0:
            return math.inf
        return self.naive_pairs / bound


def decompose_shells(
    population: OrbitalElementsArray,
    cell_size_km: float,
    shell_width_km: float = 100.0,
) -> ShellDecomposition:
    """Build the hollow-sphere decomposition for a population and grid.

    Satellites are assigned by semi-major axis (the paper's "height of
    their orbit" under its near-circular approximation).  ``b_i`` is the
    orbit circumference at the sphere's mid radius divided by the cell
    size — the cells a near-circular orbit traverses per period.
    """
    if cell_size_km <= 0.0:
        raise ValueError(f"cell size must be positive, got {cell_size_km}")
    if shell_width_km <= 0.0:
        raise ValueError(f"shell width must be positive, got {shell_width_km}")
    a = population.a
    lo = math.floor(a.min() / shell_width_km) * shell_width_km
    hi = math.ceil(a.max() / shell_width_km) * shell_width_km
    if hi <= lo:  # degenerate: every orbit at the same quantised altitude
        hi = lo + shell_width_km
    edges = np.arange(lo, hi + shell_width_km, shell_width_km)
    counts, _ = np.histogram(a, bins=edges)
    mids = 0.5 * (edges[:-1] + edges[1:])
    cells_per_orbit = np.maximum(2.0 * math.pi * mids / cell_size_km, 1.0)
    pair_bound = 2.0 * counts.astype(np.float64) ** 2 / cells_per_orbit
    return ShellDecomposition(
        edges_km=edges,
        counts=counts,
        cells_per_orbit=cells_per_orbit,
        pair_bound=pair_bound,
    )


def predicted_candidates_per_step(
    population: OrbitalElementsArray,
    cell_size_km: float,
    shell_width_km: float = 100.0,
) -> float:
    """Expected candidate pairs per sampling step from the shell model.

    The per-period bound divided by the cells per orbit gives the
    simultaneous co-location probability per step; summing the per-sphere
    expectations yields a step-level prediction comparable with the
    measured conjunction-map growth.
    """
    dec = decompose_shells(population, cell_size_km, shell_width_km)
    # Per step, a pair in sphere i collides with probability ~ 2/b_i * (27
    # neighbour cells / b_i ... ) — keep the paper's first-order form:
    # n_i^2 / b_i per period, spread over b_i step-positions.
    per_step = dec.counts.astype(np.float64) ** 2 * 27.0 / dec.cells_per_orbit**2
    return float(per_step.sum())
