"""Collision-avoidance maneuver sizing.

The whole point of early conjunction detection (Section I: "to avoid
devastating collisions at an early stage ... initiate suitable collision
avoidance maneuvers") is to buy time for a cheap maneuver.  This module
sizes the classical along-track avoidance burn:

* :func:`apply_maneuver` — impulsively change one object's velocity at a
  chosen epoch and return its post-burn orbit (via rv -> coe);
* :func:`miss_distance_after` — re-evaluate the pair's minimum distance
  around the original TCA after a burn;
* :func:`size_avoidance_maneuver` — find the smallest along-track delta-v
  that lifts the miss distance above a clearance target, by bisection on
  the (empirically monotone near zero) |dv| -> miss mapping, probing both
  burn directions.

The classic operational result — the same clearance costs dramatically
less delta-v when the burn happens orbits earlier, because an along-track
burn changes the period and the phase error accumulates — is reproduced in
the tests.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.brent import brent_minimize
from repro.detection.pca_tca import PairDistanceScalar
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.kepler import mean_to_true
from repro.orbits.state import elements_to_state, state_to_elements


def apply_maneuver(
    elements: KeplerElements, burn_time_s: float, delta_v_kms: np.ndarray
) -> KeplerElements:
    """The orbit after an impulsive burn at ``burn_time_s``.

    Returns elements whose epoch is still t=0 (the mean anomaly is wound
    back), so the maneuvered orbit can be propagated on the same timeline
    as the rest of the population.
    """
    m_at_burn = elements.mean_anomaly_at(burn_time_s)
    nu = float(mean_to_true(m_at_burn, elements.e))
    pos, vel = elements_to_state(
        KeplerElements(
            a=elements.a, e=elements.e, i=elements.i,
            raan=elements.raan, argp=elements.argp, m0=elements.m0,
        ),
        nu,
    )
    new_el, nu_new = state_to_elements(pos, vel + np.asarray(delta_v_kms, dtype=np.float64))
    # state_to_elements returns m0 at the burn epoch; rewind to t=0.
    m0_at_t0 = (new_el.m0 - new_el.mean_motion * burn_time_s) % (2.0 * np.pi)
    return KeplerElements(
        a=new_el.a, e=new_el.e, i=new_el.i, raan=new_el.raan, argp=new_el.argp, m0=m0_at_t0
    )


def along_track_direction(elements: KeplerElements, t: float) -> np.ndarray:
    """Unit velocity vector of the object at time ``t`` (burn direction)."""
    pop = OrbitalElementsArray.from_elements([elements])
    from repro.orbits.propagation import Propagator

    vel = Propagator(pop).velocities(t)[0]
    return vel / np.linalg.norm(vel)


def miss_distance_after(
    target: KeplerElements,
    chaser: KeplerElements,
    tca_s: float,
    search_radius_s: float = 60.0,
) -> float:
    """Minimum pair distance near the (pre-burn) TCA for given orbits."""
    pop = OrbitalElementsArray.from_elements([target, chaser])
    dist = PairDistanceScalar(pop, 0, 1)
    res = brent_minimize(dist, tca_s - search_radius_s, tca_s + search_radius_s, tol=1e-6)
    return res.fx


@dataclass(frozen=True)
class ManeuverPlan:
    """A sized avoidance maneuver."""

    delta_v_kms: float  # signed: positive = prograde
    burn_time_s: float
    miss_before_km: float
    miss_after_km: float

    @property
    def delta_v_cms(self) -> float:
        """Magnitude in cm/s — the operational unit for avoidance burns."""
        return abs(self.delta_v_kms) * 1e5


def size_avoidance_maneuver(
    target: KeplerElements,
    chaser: KeplerElements,
    tca_s: float,
    burn_time_s: float,
    clearance_km: float,
    max_dv_kms: float = 0.01,
    tol_kms: float = 1e-7,
) -> ManeuverPlan:
    """Smallest along-track burn on ``target`` achieving the clearance.

    Tries prograde and retrograde; on each side the burn magnitude is
    grown geometrically until the clearance is met, then bisected to the
    minimum.  Raises if even ``max_dv_kms`` (default 10 m/s — far beyond a
    normal avoidance burn) cannot achieve the clearance.
    """
    if not burn_time_s < tca_s:
        raise ValueError(f"burn ({burn_time_s}) must precede the TCA ({tca_s})")
    if clearance_km <= 0.0:
        raise ValueError(f"clearance must be positive, got {clearance_km}")
    miss_before = miss_distance_after(target, chaser, tca_s)
    direction = along_track_direction(target, burn_time_s)

    def miss_for(dv: float) -> float:
        burned = apply_maneuver(target, burn_time_s, dv * direction)
        return miss_distance_after(burned, chaser, tca_s)

    best: "ManeuverPlan | None" = None
    for sign in (+1.0, -1.0):
        # Geometric growth to bracket the clearance.
        dv = tol_kms * 10.0
        achieved = None
        while dv <= max_dv_kms:
            if miss_for(sign * dv) >= clearance_km:
                achieved = dv
                break
            dv *= 2.0
        if achieved is None:
            continue
        lo, hi = achieved / 2.0, achieved
        while hi - lo > tol_kms:
            mid = 0.5 * (lo + hi)
            if miss_for(sign * mid) >= clearance_km:
                hi = mid
            else:
                lo = mid
        plan = ManeuverPlan(
            delta_v_kms=sign * hi,
            burn_time_s=burn_time_s,
            miss_before_km=miss_before,
            miss_after_km=miss_for(sign * hi),
        )
        if best is None or abs(plan.delta_v_kms) < abs(best.delta_v_kms):
            best = plan
    if best is None:
        raise RuntimeError(
            f"no along-track burn up to {max_dv_kms * 1e3:.1f} m/s achieves "
            f"{clearance_km} km clearance from this geometry"
        )
    return best
