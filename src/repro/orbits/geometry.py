"""Orbit-to-orbit geometry used by the classical filter chain.

Implements the geometric quantities behind the Hoots-style filters
(Section II of the paper): apogee/perigee ranges, coplanarity angles, the
mutual node line of two orbital planes, the orbit radius evaluated at the
node crossings, and a sampled minimum orbit-to-orbit distance that serves
as a slow-but-sure oracle in tests.
"""
from __future__ import annotations

import math

import numpy as np

from repro.constants import TWO_PI
from repro.orbits.elements import KeplerElements
from repro.orbits.frames import orbit_normal, perifocal_to_eci_matrix


def plane_angle(e1: KeplerElements, e2: KeplerElements) -> float:
    """Angle between the two orbital planes, radians in [0, pi]."""
    n1 = orbit_normal(e1.i, e1.raan)
    n2 = orbit_normal(e2.i, e2.raan)
    return math.acos(max(-1.0, min(1.0, float(np.dot(n1, n2)))))


def is_coplanar(e1: KeplerElements, e2: KeplerElements, tol_rad: float = math.radians(1.0)) -> bool:
    """Whether the two orbit planes are (anti-)parallel within ``tol_rad``.

    The hybrid variant treats coplanar pairs separately (Section IV-C)
    because their mutual node line — hence the node-based search interval —
    is undefined.
    """
    ang = plane_angle(e1, e2)
    return ang < tol_rad or math.pi - ang < tol_rad


def mutual_node_line(e1: KeplerElements, e2: KeplerElements) -> np.ndarray:
    """Unit vector along the intersection of the two orbital planes (ECI).

    Raises
    ------
    ValueError
        If the planes are parallel (coplanar orbits) and the line is
        undefined.  Callers should test :func:`is_coplanar` first.
    """
    n1 = orbit_normal(e1.i, e1.raan)
    n2 = orbit_normal(e2.i, e2.raan)
    line = np.cross(n1, n2)
    norm = float(np.linalg.norm(line))
    if norm < 1e-12:
        raise ValueError("coplanar orbits have no unique mutual node line")
    return line / norm


def true_anomaly_of_direction(elements: KeplerElements, direction: np.ndarray) -> float:
    """True anomaly at which the orbit crosses the given in-plane direction.

    ``direction`` must lie (approximately) in the orbital plane; it is
    projected onto the plane before measuring the angle from perigee.
    """
    rot = perifocal_to_eci_matrix(elements.i, elements.raan, elements.argp)
    p_axis, q_axis = rot[:, 0], rot[:, 1]
    x = float(np.dot(direction, p_axis))
    y = float(np.dot(direction, q_axis))
    if abs(x) < 1e-15 and abs(y) < 1e-15:
        raise ValueError("direction is orthogonal to the orbital plane")
    return math.atan2(y, x) % TWO_PI


def radius_at_true_anomaly(elements: KeplerElements, nu) -> "float | np.ndarray":
    """Orbit radius ``r = p / (1 + e cos(nu))`` in km."""
    p = elements.semi_latus_rectum
    return p / (1.0 + elements.e * np.cos(nu))


def node_crossing_radii(e1: KeplerElements, e2: KeplerElements) -> "tuple[tuple[float, float], tuple[float, float]]":
    """Radii of both orbits at the two mutual node crossings.

    Returns ``((r1_asc, r2_asc), (r1_desc, r2_desc))`` where *asc* is the
    crossing along ``+node`` and *desc* along ``-node``.  This is the core
    quantity of the Hoots orbit-path filter: if at both crossings the radii
    differ by more than the padded threshold, the orbits can never come
    close near the node line.
    """
    node = mutual_node_line(e1, e2)
    nu1_asc = true_anomaly_of_direction(e1, node)
    nu2_asc = true_anomaly_of_direction(e2, node)
    nu1_desc = (nu1_asc + math.pi) % TWO_PI
    nu2_desc = (nu2_asc + math.pi) % TWO_PI
    return (
        (float(radius_at_true_anomaly(e1, nu1_asc)), float(radius_at_true_anomaly(e2, nu2_asc))),
        (float(radius_at_true_anomaly(e1, nu1_desc)), float(radius_at_true_anomaly(e2, nu2_desc))),
    )


def sampled_orbit_distance(
    e1: KeplerElements, e2: KeplerElements, samples: int = 720
) -> float:
    """Minimum distance between the two orbit *curves* by dense sampling.

    An O(samples^2)-free approximation: sample both ellipses at ``samples``
    true anomalies and take the minimum pairwise distance, refined by one
    local grid pass.  Used as the conservative oracle in tests for the
    analytic orbit-path filter (the true MOID is <= this value; with enough
    samples it converges to the MOID).
    """
    pts1 = _orbit_points(e1, samples)
    pts2 = _orbit_points(e2, samples)
    # (samples, samples) distance matrix is fine for the test-scale sample counts.
    diff = pts1[:, None, :] - pts2[None, :, :]
    d2 = np.einsum("ijk,ijk->ij", diff, diff)
    flat = int(np.argmin(d2))
    i0, j0 = divmod(flat, samples)
    # Local refinement around the coarse minimum.
    nu1 = TWO_PI * i0 / samples
    nu2 = TWO_PI * j0 / samples
    span = TWO_PI / samples
    fine = 64
    nus1 = nu1 + np.linspace(-span, span, fine)
    nus2 = nu2 + np.linspace(-span, span, fine)
    fine1 = _points_at(e1, nus1)
    fine2 = _points_at(e2, nus2)
    diff = fine1[:, None, :] - fine2[None, :, :]
    d2 = np.einsum("ijk,ijk->ij", diff, diff)
    return float(math.sqrt(float(d2.min())))


def _orbit_points(elements: KeplerElements, samples: int) -> np.ndarray:
    nus = np.linspace(0.0, TWO_PI, samples, endpoint=False)
    return _points_at(elements, nus)


def _points_at(elements: KeplerElements, nus: np.ndarray) -> np.ndarray:
    r = radius_at_true_anomaly(elements, nus)
    rot = perifocal_to_eci_matrix(elements.i, elements.raan, elements.argp)
    pqw = np.stack([r * np.cos(nus), r * np.sin(nus), np.zeros_like(nus)], axis=-1)
    return pqw @ rot.T
