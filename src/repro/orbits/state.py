"""Conversions between Cartesian state vectors and Kepler elements.

``elements_to_state`` / ``state_to_elements`` (classical coe2rv / rv2coe)
are needed by the fragmentation scenario generator: a breakup perturbs the
parent's velocity vector, and the debris pieces' new orbits are recovered
from the perturbed state vectors.  They are round-trip tested against the
propagator.
"""
from __future__ import annotations

import math

import numpy as np

from repro.constants import MU_EARTH, TWO_PI
from repro.orbits.elements import KeplerElements
from repro.orbits.frames import perifocal_to_eci_matrix
from repro.orbits.kepler import true_to_mean

#: Below this magnitude, vectors are treated as degenerate (equatorial /
#: circular special cases).
_EPS = 1e-11


def elements_to_state(
    elements: KeplerElements, true_anomaly: float
) -> "tuple[np.ndarray, np.ndarray]":
    """ECI position (km) and velocity (km/s) at the given true anomaly."""
    a, e = elements.a, elements.e
    p = elements.semi_latus_rectum
    r = p / (1.0 + e * math.cos(true_anomaly))
    pos_pqw = np.array([r * math.cos(true_anomaly), r * math.sin(true_anomaly), 0.0])
    coeff = math.sqrt(MU_EARTH / p)
    vel_pqw = np.array(
        [-coeff * math.sin(true_anomaly), coeff * (e + math.cos(true_anomaly)), 0.0]
    )
    rot = perifocal_to_eci_matrix(elements.i, elements.raan, elements.argp)
    return rot @ pos_pqw, rot @ vel_pqw


def state_to_elements(position: np.ndarray, velocity: np.ndarray) -> "tuple[KeplerElements, float]":
    """Kepler elements and true anomaly from an ECI state vector.

    Returns ``(elements, true_anomaly)`` where ``elements.m0`` is the mean
    anomaly corresponding to the state (so propagating the elements by
    ``t=0`` reproduces the input position).

    Raises
    ------
    ValueError
        If the state is not an ellipse (specific energy >= 0) or is
        rectilinear (zero angular momentum).
    """
    r_vec = np.asarray(position, dtype=np.float64)
    v_vec = np.asarray(velocity, dtype=np.float64)
    r = float(np.linalg.norm(r_vec))
    v = float(np.linalg.norm(v_vec))
    if r <= 0.0:
        raise ValueError("position vector must be non-zero")

    h_vec = np.cross(r_vec, v_vec)
    h = float(np.linalg.norm(h_vec))
    if h < _EPS:
        raise ValueError("rectilinear trajectory: angular momentum is zero")

    energy = 0.5 * v * v - MU_EARTH / r
    if energy >= 0.0:
        raise ValueError(f"state is not elliptic (specific energy {energy:.6g} >= 0)")
    a = -MU_EARTH / (2.0 * energy)

    e_vec = np.cross(v_vec, h_vec) / MU_EARTH - r_vec / r
    e = float(np.linalg.norm(e_vec))
    if e >= 1.0:
        raise ValueError(f"eccentricity {e} >= 1 despite negative energy (degenerate state)")

    inc = math.acos(max(-1.0, min(1.0, h_vec[2] / h)))

    # Node vector: k x h.
    n_vec = np.array([-h_vec[1], h_vec[0], 0.0])
    n = float(np.linalg.norm(n_vec))

    if n < _EPS:
        # Equatorial orbit: RAAN undefined, conventionally zero.
        raan = 0.0
        if e < _EPS:
            argp = 0.0
            nu = math.atan2(r_vec[1], r_vec[0]) % TWO_PI
            if inc > math.pi / 2.0:
                nu = (TWO_PI - nu) % TWO_PI
        else:
            argp = math.atan2(e_vec[1], e_vec[0]) % TWO_PI
            if h_vec[2] < 0.0:
                argp = (TWO_PI - argp) % TWO_PI
            nu = _angle_between(e_vec, r_vec, h_vec)
    else:
        raan = math.atan2(n_vec[1], n_vec[0]) % TWO_PI
        if e < _EPS:
            # Circular inclined: argument of perigee undefined, use zero and
            # measure the anomaly from the ascending node.
            argp = 0.0
            nu = _angle_between(n_vec, r_vec, h_vec)
        else:
            argp = _angle_between(n_vec, e_vec, h_vec)
            nu = _angle_between(e_vec, r_vec, h_vec)

    m0 = float(true_to_mean(nu, e)) if e >= _EPS else nu
    return KeplerElements(a=a, e=e, i=inc, raan=raan, argp=argp, m0=m0), nu


def _angle_between(u: np.ndarray, w: np.ndarray, h_vec: np.ndarray) -> float:
    """Angle from ``u`` to ``w`` measured positively around ``h_vec``."""
    nu = math.atan2(float(np.dot(np.cross(u, w), h_vec / np.linalg.norm(h_vec))), float(np.dot(u, w)))
    return nu % TWO_PI
