"""Orbital-mechanics substrate: Kepler elements, anomaly solvers, two-body
propagation, frames, state-vector conversion, and orbit geometry.

The paper (Section IV-B) propagates every satellite from its six Kepler
elements, recomputing the true anomaly as a function of time with a contour
Kepler solver.  This subpackage implements that substrate from scratch.
"""
from repro.orbits.elements import (
    KeplerElements,
    OrbitalElementsArray,
)
from repro.orbits.j2 import J2Propagator, j2_secular_rates
from repro.orbits.kepler import (
    eccentric_to_mean,
    eccentric_to_true,
    mean_to_eccentric,
    mean_to_true,
    solve_kepler_bisect,
    solve_kepler_contour,
    solve_kepler_halley,
    solve_kepler_newton,
    true_to_eccentric,
    true_to_mean,
)
from repro.orbits.propagation import (
    Propagator,
    propagate_all,
    propagate_one,
)
from repro.orbits.state import elements_to_state, state_to_elements

__all__ = [
    "J2Propagator",
    "KeplerElements",
    "OrbitalElementsArray",
    "Propagator",
    "j2_secular_rates",
    "eccentric_to_mean",
    "eccentric_to_true",
    "elements_to_state",
    "mean_to_eccentric",
    "mean_to_true",
    "propagate_all",
    "propagate_one",
    "solve_kepler_bisect",
    "solve_kepler_contour",
    "solve_kepler_halley",
    "solve_kepler_newton",
    "state_to_elements",
    "true_to_eccentric",
    "true_to_mean",
]
