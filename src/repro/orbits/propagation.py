"""Two-body Keplerian propagation of single objects and whole populations.

This is step 2 of the paper's pipeline (Section III): every sampling step
advances each satellite's mean anomaly linearly in time, solves Kepler's
equation for the eccentric anomaly, and rotates the perifocal position into
Cartesian ECI coordinates for grid insertion.

The batch path precomputes, once per population, everything that does not
depend on time (rotated in-plane basis vectors scaled by the ellipse axes)
— exactly the strategy the paper uses for its GPU solver, which stores the
reusable partial computations in global memory rather than recomputing them
for every (satellite, time) tuple.
"""
from __future__ import annotations

import numpy as np

from repro.constants import MU_EARTH, TWO_PI
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.frames import perifocal_to_eci_matrix
from repro.orbits.kepler import WARM_SOLVERS, mean_to_eccentric


class Propagator:
    """Batch propagator for an :class:`OrbitalElementsArray` population.

    Parameters
    ----------
    population:
        The orbits to propagate.
    solver:
        Kepler-equation solver name (``newton``, ``halley``, ``bisect``,
        ``contour``).  The contour solver is the analogue of the paper's
        GPU Kepler solver.

    warm_start:
        Carry each satellite's last solved eccentric anomaly across calls
        and use it to seed the next Newton/Halley solve (consecutive
        sampling steps move ``E`` only slightly, so the warm solve needs
        1–2 iterations instead of ~5).  Direct solvers ignore the cache.

    precision:
        ``fp64`` (default) emits float64 positions.  ``mixed`` emits
        float32 positions for the broad phase: the Kepler solve and the
        warm-start cache stay float64 (authoritative — float32 anomalies
        would drift the cache and blow the error budget), and only the
        final rotation runs in float32 (cast trig of the fp64 anomaly,
        float32 copies of the scaled basis vectors).  Per-axis error is
        bounded by a few float32 ulps of the orbital radius, which the
        grid's :func:`repro.spatial.grid.fp32_cell_pad_km` pad covers.
        ``states``/``velocities``/``speeds`` (refinement inputs) always
        stay float64.

    Notes
    -----
    The constructor performs the one-time precomputation (the paper's
    "Kepler solver data" allocation ``a_k``): the ECI unit vectors ``P`` and
    ``Q`` of each orbit scaled by ``a`` and ``b = a*sqrt(1-e^2)``.  After
    that each :meth:`positions` call costs one Kepler solve plus two fused
    multiply-adds per object.
    """

    def __init__(
        self,
        population: OrbitalElementsArray,
        solver: str = "newton",
        warm_start: bool = True,
        telemetry=None,
        precision: str = "fp64",
    ) -> None:
        if precision not in ("fp64", "mixed"):
            raise ValueError(f"precision must be 'fp64' or 'mixed', got {precision!r}")
        self.population = population
        self.solver = solver
        self.warm_start = warm_start and solver in WARM_SOLVERS
        self.telemetry = telemetry
        self.precision = precision
        #: Lazily materialised float32 copies of the scaled basis vectors.
        self._basis32: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None
        #: Last solved eccentric anomaly per satellite, shape ``(n,)``;
        #: None until the first solve.
        self._warm_E: "np.ndarray | None" = None
        rot = perifocal_to_eci_matrix(population.i, population.raan, population.argp)
        a = population.a
        e = population.e
        b = a * np.sqrt(1.0 - e * e)
        #: P axis scaled by the semi-major axis: (n, 3)
        self._pa = rot[:, :, 0] * a[:, None]
        #: Q axis scaled by the semi-minor axis: (n, 3)
        self._qb = rot[:, :, 1] * b[:, None]
        #: Offset of the ellipse centre from the focus along -P: (n, 3)
        self._focus_offset = rot[:, :, 0] * (a * e)[:, None]
        self._p_unit = rot[:, :, 0]
        self._q_unit = rot[:, :, 1]

    def reset_warm_start(self) -> None:
        """Drop the warm-start cache: the next solve starts cold.

        A resident propagator (the persistent process pool keeps one per
        worker across screening windows) must start every window with the
        same cold cache a freshly constructed propagator has, so a reused
        pool solves the identical Newton sequences as a fresh run.
        """
        self._warm_E = None

    @property
    def memory_bytes(self) -> int:
        """Approximate size of the precomputed solver data (``a_k``)."""
        return sum(
            arr.nbytes
            for arr in (self._pa, self._qb, self._focus_offset, self._p_unit, self._q_unit)
        )

    def eccentric_anomaly(self, t: float) -> np.ndarray:
        """Eccentric anomaly of every object at time ``t`` seconds past epoch."""
        m = self.population.mean_anomaly_at(t)
        E = mean_to_eccentric(
            m,
            self.population.e,
            solver=self.solver,
            warm_start=self._warm_E if self.warm_start else None,
            telemetry=self.telemetry,
        )
        if self.warm_start:
            self._warm_E = np.atleast_1d(E)
        return E

    def _fp32_basis(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        if self._basis32 is None:
            self._basis32 = (
                self._pa.astype(np.float32),
                self._qb.astype(np.float32),
                self._focus_offset.astype(np.float32),
            )
        return self._basis32

    def positions(self, t: float) -> np.ndarray:
        """ECI positions of all objects at time ``t``, km, shape ``(n, 3)``.

        Uses the ellipse parameterisation
        ``r = P*a*(cos E - e) + Q*b*sin E``, which avoids the extra
        eccentric-to-true conversion in the hot path.  With
        ``precision="mixed"`` the rotation runs in float32 (the Kepler
        solve above it stays float64) and the result is a float32 array.
        """
        E = self.eccentric_anomaly(t)
        if self.precision == "mixed":
            e32 = E.astype(np.float32)
            cos_e = np.cos(e32)[:, None]
            sin_e = np.sin(e32)[:, None]
            pa, qb, foc = self._fp32_basis()
            return pa * cos_e - foc + qb * sin_e
        cos_e = np.cos(E)[:, None]
        sin_e = np.sin(E)[:, None]
        return self._pa * cos_e - self._focus_offset + self._qb * sin_e

    def positions_batch(self, times: np.ndarray) -> np.ndarray:
        """Positions at several sample times at once: shape ``(p, n, 3)``.

        This is the paper's "calculate as many grids as possible in
        parallel" (Sections IV-A, V-B): all ``p`` steps' Kepler solves run
        as one fused batch of ``p * n`` anomalies — the GPU's
        one-thread-per-(satellite, time)-tuple decomposition.  The caller
        bounds ``p`` with the Section V-B memory plan.
        """
        t_arr = np.asarray(times, dtype=np.float64)
        if t_arr.ndim != 1:
            raise ValueError(f"times must be 1-D, got shape {t_arr.shape}")
        pop = self.population
        m = np.mod(pop.m0[None, :] + pop.n[None, :] * t_arr[:, None], TWO_PI)  # (p, n)
        if self.solver != "contour":
            # The 2-D broadcast view of e goes straight into the solver — no
            # materialised p*n eccentricity array.  The per-satellite warm
            # cache seeds every step of the round; the last step's solution
            # seeds the next round.
            E = mean_to_eccentric(
                m,
                pop.e[None, :],
                solver=self.solver,
                warm_start=self._warm_E[None, :] if self.warm_start and self._warm_E is not None else None,
                telemetry=self.telemetry,
            )
            if self.warm_start and len(t_arr):
                self._warm_E = E[-1].copy()
        else:
            # Direct solvers (contour) are written for 1-D batches: flatten.
            e_tiled = np.broadcast_to(pop.e[None, :], m.shape)
            E = mean_to_eccentric(m.ravel(), e_tiled.ravel(), solver=self.solver).reshape(m.shape)
        if self.precision == "mixed":
            # The float32 bulk path: trig of the float64-solved anomaly in
            # float32, FMA against the float32 basis copies.  Halves the
            # (p, n, 3) round traffic, which dominates once the warm-started
            # Kepler solves converge in 1-2 iterations.
            e32 = E.astype(np.float32)
            cos_e = np.cos(e32)[:, :, None]
            sin_e = np.sin(e32)[:, :, None]
            pa, qb, foc = self._fp32_basis()
            return pa[None, :, :] * cos_e - foc[None, :, :] + qb[None, :, :] * sin_e
        cos_e = np.cos(E)[:, :, None]
        sin_e = np.sin(E)[:, :, None]
        return self._pa[None, :, :] * cos_e - self._focus_offset[None, :, :] + self._qb[None, :, :] * sin_e

    def velocities(self, t: float) -> np.ndarray:
        """ECI velocities of all objects at time ``t``, km/s, shape ``(n, 3)``.

        ``v = (a*n / (1 - e cos E)) * (-P sin E + Q sqrt(1-e^2) cos E)``.
        """
        pop = self.population
        E = self.eccentric_anomaly(t)
        cos_e = np.cos(E)
        sin_e = np.sin(E)
        rate = pop.a * pop.n / (1.0 - pop.e * cos_e)
        vel = (
            -self._p_unit * (pop.a * sin_e)[:, None]
            + self._q_unit * (pop.a * np.sqrt(1.0 - pop.e**2) * cos_e)[:, None]
        )
        return vel * (rate / pop.a)[:, None]

    def states(self, t: float) -> "tuple[np.ndarray, np.ndarray]":
        """Positions and velocities at ``t`` with one shared Kepler solve."""
        pop = self.population
        E = self.eccentric_anomaly(t)
        cos_e = np.cos(E)[:, None]
        sin_e = np.sin(E)[:, None]
        pos = self._pa * cos_e - self._focus_offset + self._qb * sin_e
        rate = (pop.a * pop.n / (1.0 - pop.e * cos_e[:, 0]))[:, None]
        vel = (
            -self._p_unit * sin_e + self._q_unit * (np.sqrt(1.0 - pop.e**2))[:, None] * cos_e
        ) * rate
        return pos, vel

    def speeds(self, t: float) -> np.ndarray:
        """Speed of every object at time ``t`` via the vis-viva equation."""
        pop = self.population
        E = self.eccentric_anomaly(t)
        r = pop.a * (1.0 - pop.e * np.cos(E))
        return np.sqrt(MU_EARTH * (2.0 / r - 1.0 / pop.a))


def propagate_all(
    population: OrbitalElementsArray, t: float, solver: str = "newton"
) -> np.ndarray:
    """Convenience one-shot batch propagation: positions at ``t``, ``(n, 3)``.

    For repeated sampling of the same population construct a
    :class:`Propagator` once instead — it caches the per-orbit rotation
    work.
    """
    return Propagator(population, solver=solver).positions(t)


def propagate_one(elements: KeplerElements, t: float, solver: str = "newton") -> np.ndarray:
    """ECI position of a single object at time ``t``, km, shape ``(3,)``."""
    pop = OrbitalElementsArray.from_elements([elements])
    return Propagator(pop, solver=solver).positions(t)[0]
