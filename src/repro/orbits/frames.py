"""Reference-frame utilities: perifocal -> ECI rotations and plane normals.

The grid divides Euclidean (Cartesian ECI) space rather than element space
(Section III-A1), so every propagation step ends with a perifocal-to-ECI
rotation.  The rotation is the classical 3-1-3 sequence through RAAN,
inclination, and argument of perigee (Fig. 8 of the paper).
"""
from __future__ import annotations

import numpy as np


def perifocal_to_eci_matrix(i, raan, argp) -> np.ndarray:
    """Rotation matrices from the perifocal (PQW) frame to ECI.

    Accepts scalars (returns one ``(3, 3)`` matrix) or equal-length arrays
    (returns ``(n, 3, 3)``).  Columns are the ECI coordinates of the P, Q, W
    unit vectors: P points at perigee, Q is 90 degrees ahead in the orbital
    plane, W is the orbit normal.
    """
    i_arr = np.atleast_1d(np.asarray(i, dtype=np.float64))
    raan_arr = np.atleast_1d(np.asarray(raan, dtype=np.float64))
    argp_arr = np.atleast_1d(np.asarray(argp, dtype=np.float64))
    i_arr, raan_arr, argp_arr = np.broadcast_arrays(i_arr, raan_arr, argp_arr)

    co, so = np.cos(raan_arr), np.sin(raan_arr)
    ci, si = np.cos(i_arr), np.sin(i_arr)
    cw, sw = np.cos(argp_arr), np.sin(argp_arr)

    rot = np.empty(i_arr.shape + (3, 3), dtype=np.float64)
    rot[..., 0, 0] = co * cw - so * sw * ci
    rot[..., 0, 1] = -co * sw - so * cw * ci
    rot[..., 0, 2] = so * si
    rot[..., 1, 0] = so * cw + co * sw * ci
    rot[..., 1, 1] = -so * sw + co * cw * ci
    rot[..., 1, 2] = -co * si
    rot[..., 2, 0] = sw * si
    rot[..., 2, 1] = cw * si
    rot[..., 2, 2] = ci

    if np.ndim(i) == 0 and np.ndim(raan) == 0 and np.ndim(argp) == 0:
        return rot[0]
    return rot


def orbit_normal(i, raan) -> np.ndarray:
    """Unit normal vector(s) of the orbital plane in ECI coordinates.

    ``h_hat = (sin(i) sin(raan), -sin(i) cos(raan), cos(i))`` — the third
    column of the perifocal rotation, independent of the argument of
    perigee.  Scalars give shape ``(3,)``; arrays give ``(n, 3)``.
    """
    i_arr = np.atleast_1d(np.asarray(i, dtype=np.float64))
    raan_arr = np.atleast_1d(np.asarray(raan, dtype=np.float64))
    i_arr, raan_arr = np.broadcast_arrays(i_arr, raan_arr)
    normal = np.stack(
        [np.sin(i_arr) * np.sin(raan_arr), -np.sin(i_arr) * np.cos(raan_arr), np.cos(i_arr)],
        axis=-1,
    )
    if np.ndim(i) == 0 and np.ndim(raan) == 0:
        return normal[0]
    return normal
