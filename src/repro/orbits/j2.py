"""J2 secular perturbation propagation.

The paper's propagation is pure two-body ("we can neglect the forces
between the simulated objects"), but lists "other propagators instead of
the Kepler Contour solver" as future work.  This module supplies the
simplest physically meaningful upgrade: the secular J2 drift of the
node, perigee and mean anomaly caused by Earth's oblateness — the
dominant perturbation for LEO screening over multi-day spans.

The secular rates (Vallado, 4th ed., Eq. 9-38):

.. math::
    \\dot\\Omega = -\\frac{3}{2} J_2 n \\left(\\frac{R_E}{p}\\right)^2 \\cos i

    \\dot\\omega = \\frac{3}{4} J_2 n \\left(\\frac{R_E}{p}\\right)^2 (5\\cos^2 i - 1)

    \\dot M_{J2} = \\frac{3}{4} J_2 n \\left(\\frac{R_E}{p}\\right)^2
                   \\sqrt{1-e^2} (3\\cos^2 i - 1)

A :class:`J2Propagator` mirrors the two-body :class:`~repro.orbits.propagation.Propagator`
API so the screening variants can swap it in; because the orbital *plane*
now rotates, the perifocal precomputation is refreshed per call from the
drifted angles.
"""
from __future__ import annotations

import numpy as np

from repro.constants import R_EARTH, TWO_PI
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.frames import perifocal_to_eci_matrix
from repro.orbits.kepler import mean_to_eccentric

#: Earth's second zonal harmonic (WGS-84).
J2 = 1.08262668e-3


def j2_secular_rates(
    population: OrbitalElementsArray,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Secular drift rates ``(raan_dot, argp_dot, m_dot_extra)`` in rad/s."""
    n = population.n
    p = population.a * (1.0 - population.e**2)
    factor = 1.5 * J2 * n * (R_EARTH / p) ** 2
    cos_i = np.cos(population.i)
    raan_dot = -factor * cos_i
    argp_dot = 0.5 * factor * (5.0 * cos_i**2 - 1.0)
    m_dot_extra = 0.5 * factor * np.sqrt(1.0 - population.e**2) * (3.0 * cos_i**2 - 1.0)
    return raan_dot, argp_dot, m_dot_extra


def nodal_regression_period_days(population: OrbitalElementsArray) -> np.ndarray:
    """Days for one full nodal revolution (diagnostic; inf for polar-ish)."""
    raan_dot, _, _ = j2_secular_rates(population)
    with np.errstate(divide="ignore"):
        return np.abs(TWO_PI / raan_dot) / 86400.0


class J2Propagator:
    """Mean-element J2 propagator with the two-body ``Propagator`` API.

    Angles drift linearly at their secular rates; the in-plane motion stays
    Keplerian with an adjusted mean motion.  Short-periodic J2 oscillations
    are not modelled (they are sub-km in LEO and irrelevant at screening
    thresholds of kilometres).
    """

    def __init__(self, population: OrbitalElementsArray, solver: str = "newton") -> None:
        self.population = population
        self.solver = solver
        self._raan_dot, self._argp_dot, self._m_dot_extra = j2_secular_rates(population)
        self._b_over_a = np.sqrt(1.0 - population.e**2)

    def elements_at(self, t: float) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Drifted ``(raan, argp, M)`` at time ``t``."""
        pop = self.population
        raan = np.mod(pop.raan + self._raan_dot * t, TWO_PI)
        argp = np.mod(pop.argp + self._argp_dot * t, TWO_PI)
        m = np.mod(pop.m0 + (pop.n + self._m_dot_extra) * t, TWO_PI)
        return raan, argp, m

    def positions(self, t: float) -> np.ndarray:
        """ECI positions under secular J2 drift, km, shape ``(n, 3)``."""
        pop = self.population
        raan, argp, m = self.elements_at(t)
        E = mean_to_eccentric(m, pop.e, solver=self.solver)
        rot = perifocal_to_eci_matrix(pop.i, raan, argp)
        x_pf = pop.a * (np.cos(E) - pop.e)
        y_pf = (pop.a * self._b_over_a) * np.sin(E)
        return rot[:, :, 0] * x_pf[:, None] + rot[:, :, 1] * y_pf[:, None]

    def speeds(self, t: float) -> np.ndarray:
        """Speed via vis-viva (J2 secular drift conserves a and e)."""
        pop = self.population
        _, _, m = self.elements_at(t)
        E = mean_to_eccentric(m, pop.e, solver=self.solver)
        r = pop.a * (1.0 - pop.e * np.cos(E))
        from repro.constants import MU_EARTH

        return np.sqrt(MU_EARTH * (2.0 / r - 1.0 / pop.a))

    @property
    def memory_bytes(self) -> int:
        """Per-orbit precomputed rate storage."""
        return self._raan_dot.nbytes + self._argp_dot.nbytes + self._m_dot_extra.nbytes
