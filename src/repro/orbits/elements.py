"""Kepler orbital elements: scalar records and struct-of-arrays populations.

Two representations are provided:

* :class:`KeplerElements` — an immutable scalar record, convenient for tests,
  examples, and didactic code.
* :class:`OrbitalElementsArray` — a struct-of-arrays container holding one
  numpy array per element for a whole population.  All performance-critical
  code paths (propagation, grid insertion, filters) operate on this form so
  they can be fully vectorised, as the HPC guides recommend.

Element conventions (Fig. 7/8 of the paper):

==============================  ======  =========================
semi-major axis                 ``a``   km, > 0 (elliptical only)
eccentricity                    ``e``   [0, 1)
inclination                     ``i``   [0, pi]
RAAN (ascending-node long.)     ``raan``  [0, 2*pi)
argument of perigee             ``argp``  [0, 2*pi)
mean anomaly at epoch           ``m0``  [0, 2*pi)
==============================  ======  =========================
"""
from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import MU_EARTH, TWO_PI, mean_motion, orbital_period


@dataclass(frozen=True)
class KeplerElements:
    """Six classical Kepler elements of one object (angles in radians).

    The record stores the *mean anomaly at epoch* rather than the true
    anomaly: propagation advances the mean anomaly linearly in time and the
    true anomaly is recovered through the Kepler solvers.
    """

    a: float
    e: float
    i: float
    raan: float
    argp: float
    m0: float

    def __post_init__(self) -> None:
        if not self.a > 0.0:
            raise ValueError(f"semi-major axis must be > 0 km, got {self.a}")
        if not 0.0 <= self.e < 1.0:
            raise ValueError(f"eccentricity must lie in [0, 1), got {self.e}")
        if not 0.0 <= self.i <= math.pi + 1e-12:
            raise ValueError(f"inclination must lie in [0, pi], got {self.i}")

    @property
    def mean_motion(self) -> float:
        """Mean motion ``n`` in rad/s."""
        return mean_motion(self.a)

    @property
    def period(self) -> float:
        """Orbital period in seconds."""
        return orbital_period(self.a)

    @property
    def apogee(self) -> float:
        """Apogee radius ``a * (1 + e)`` in km (distance from Earth centre)."""
        return self.a * (1.0 + self.e)

    @property
    def perigee(self) -> float:
        """Perigee radius ``a * (1 - e)`` in km."""
        return self.a * (1.0 - self.e)

    @property
    def semi_latus_rectum(self) -> float:
        """Semi-latus rectum ``p = a * (1 - e^2)`` in km."""
        return self.a * (1.0 - self.e**2)

    @property
    def specific_angular_momentum(self) -> float:
        """Magnitude of the specific angular momentum, km^2/s."""
        return math.sqrt(MU_EARTH * self.semi_latus_rectum)

    def mean_anomaly_at(self, t: float) -> float:
        """Mean anomaly ``M(t) = M0 + n*t`` wrapped to [0, 2*pi)."""
        return (self.m0 + self.mean_motion * t) % TWO_PI


class OrbitalElementsArray:
    """Struct-of-arrays population of ``n`` orbits.

    Attributes are 1-D float64 arrays of equal length: ``a, e, i, raan,
    argp, m0`` plus the derived ``n`` (mean motion, cached because every
    propagation step needs it).
    """

    __slots__ = ("a", "e", "i", "raan", "argp", "m0", "n")

    def __init__(
        self,
        a: np.ndarray,
        e: np.ndarray,
        i: np.ndarray,
        raan: np.ndarray,
        argp: np.ndarray,
        m0: np.ndarray,
    ) -> None:
        arrays = [np.ascontiguousarray(x, dtype=np.float64) for x in (a, e, i, raan, argp, m0)]
        sizes = {arr.shape for arr in arrays}
        if len(sizes) != 1 or arrays[0].ndim != 1:
            raise ValueError(f"all element arrays must be 1-D of equal length, got shapes {sizes}")
        self.a, self.e, self.i, self.raan, self.argp, self.m0 = arrays
        if np.any(self.a <= 0.0):
            raise ValueError("all semi-major axes must be > 0 km")
        if np.any((self.e < 0.0) | (self.e >= 1.0)):
            raise ValueError("all eccentricities must lie in [0, 1)")
        self.n = np.sqrt(MU_EARTH / self.a**3)

    def __len__(self) -> int:
        return self.a.shape[0]

    def __getitem__(self, idx: int) -> KeplerElements:
        """Extract one object as a scalar :class:`KeplerElements`."""
        return KeplerElements(
            a=float(self.a[idx]),
            e=float(self.e[idx]),
            i=float(self.i[idx]),
            raan=float(self.raan[idx]),
            argp=float(self.argp[idx]),
            m0=float(self.m0[idx]),
        )

    def subset(self, indices: np.ndarray) -> "OrbitalElementsArray":
        """A new population containing only the given object indices."""
        idx = np.asarray(indices)
        return OrbitalElementsArray(
            self.a[idx], self.e[idx], self.i[idx], self.raan[idx], self.argp[idx], self.m0[idx]
        )

    @classmethod
    def from_elements(cls, elements: "list[KeplerElements]") -> "OrbitalElementsArray":
        """Build a population from a list of scalar records."""
        if not elements:
            raise ValueError("population must contain at least one object")
        return cls(
            a=np.array([el.a for el in elements]),
            e=np.array([el.e for el in elements]),
            i=np.array([el.i for el in elements]),
            raan=np.array([el.raan for el in elements]),
            argp=np.array([el.argp for el in elements]),
            m0=np.array([el.m0 for el in elements]),
        )

    @classmethod
    def concatenate(cls, pops: "list[OrbitalElementsArray]") -> "OrbitalElementsArray":
        """Merge several populations, preserving order."""
        if not pops:
            raise ValueError("need at least one population")
        return cls(
            a=np.concatenate([p.a for p in pops]),
            e=np.concatenate([p.e for p in pops]),
            i=np.concatenate([p.i for p in pops]),
            raan=np.concatenate([p.raan for p in pops]),
            argp=np.concatenate([p.argp for p in pops]),
            m0=np.concatenate([p.m0 for p in pops]),
        )

    @property
    def period(self) -> np.ndarray:
        """Orbital periods, seconds."""
        return TWO_PI / self.n

    @property
    def apogee(self) -> np.ndarray:
        """Apogee radii ``a * (1 + e)``, km."""
        return self.a * (1.0 + self.e)

    @property
    def perigee(self) -> np.ndarray:
        """Perigee radii ``a * (1 - e)``, km."""
        return self.a * (1.0 - self.e)

    def mean_anomaly_at(self, t: float) -> np.ndarray:
        """Mean anomalies of every object at time ``t`` (seconds past epoch)."""
        return np.mod(self.m0 + self.n * t, TWO_PI)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OrbitalElementsArray(n={len(self)}, "
            f"a=[{self.a.min():.0f}..{self.a.max():.0f}] km, "
            f"e<= {self.e.max():.4f})"
        )
