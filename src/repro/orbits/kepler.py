"""Kepler-equation solvers and anomaly conversions.

The paper propagates satellites by recomputing the true anomaly as a
function of time (Section IV-B), using a modified version of the
high-performance *contour* Kepler solver ("Kepler's Goat Herd", Philcox et
al. 2021) restructured so that each GPU thread solves one anomaly
independently.  This module reproduces that substrate:

* :func:`solve_kepler_newton` — classic Newton–Raphson (2nd order).
* :func:`solve_kepler_halley` — Halley iteration (3rd order), the usual CPU
  work-horse.
* :func:`solve_kepler_bisect` — bisection safeguard, slow but guaranteed.
* :func:`solve_kepler_contour` — derivative-ratio contour-integration solver
  (Delves–Lyness quadrature on a circle enclosing the unique real root),
  batch-vectorised over arrays of mean anomalies exactly like the paper's
  GPU kernel evaluates one anomaly per thread.

All solvers accept scalars or numpy arrays for both the mean anomaly and
the eccentricity (broadcast against each other) and solve

.. math:: E - e \\sin E = M

for the eccentric anomaly ``E`` with ``0 <= e < 1``.
"""
from __future__ import annotations

import numpy as np

from repro.constants import TWO_PI

#: Default convergence tolerance on |E - e sin E - M| (radians).
TOL = 1e-13

#: Hard iteration cap for the iterative solvers.
MAX_ITER = 50


def _broadcast(mean_anomaly, e) -> "tuple[np.ndarray, np.ndarray, bool]":
    """Broadcast (M, e) to a common 1-D shape; report whether input was scalar."""
    m = np.asarray(mean_anomaly, dtype=np.float64)
    ecc = np.asarray(e, dtype=np.float64)
    if np.any((ecc < 0.0) | (ecc >= 1.0)):
        raise ValueError("eccentricity must lie in [0, 1) for elliptic orbits")
    scalar = m.ndim == 0 and ecc.ndim == 0
    m, ecc = np.broadcast_arrays(np.atleast_1d(m), np.atleast_1d(ecc))
    # np.mod materialises a fresh writable M; the eccentricity stays a
    # broadcast *view* — solvers only read it, so no p*n copy is made.
    return np.mod(m, TWO_PI), ecc, scalar


def _ret(E: np.ndarray, scalar: bool):
    return float(E[0]) if scalar else E


def _starter(m: np.ndarray, ecc: np.ndarray, warm_start) -> np.ndarray:
    """Initial guess ``E0``: cold ``M + e sin M``, or warm ``M + e sin E_prev``.

    The warm form carries a previous solution through the periodic term
    ``e sin E`` rather than through ``E`` itself, so it stays valid across
    the ``mod 2*pi`` wrap of the mean anomaly: ``E - M = e sin E`` is what
    actually varies slowly between nearby solves.
    """
    if warm_start is None:
        return m + ecc * np.sin(m)
    warm = np.asarray(warm_start, dtype=np.float64)
    return m + ecc * np.sin(np.broadcast_to(warm, m.shape))


def solve_kepler_newton(mean_anomaly, e, tol: float = TOL, warm_start=None, telemetry=None):
    """Solve Kepler's equation by Newton–Raphson iteration.

    Uses the starter ``E0 = M + e*sin(M)`` — or, when ``warm_start`` holds a
    previous per-lane eccentric anomaly, ``E0 = M + e*sin(E_prev)`` (1–2
    iterations instead of ~5 when the anomaly moved only slightly) — and
    falls back to bisection for any element that fails to converge within
    :data:`MAX_ITER` iterations, so the result is always accurate to
    ``tol``.  The iteration reuses preallocated scratch via ``out=`` ufuncs:
    no per-iteration temporaries.  ``telemetry`` (anything with a
    ``record_kepler(lanes, iterations)`` method) observes the work done.
    """
    m, ecc, scalar = _broadcast(mean_anomaly, e)
    E = _starter(m, ecc, warm_start)
    # Scratch buffers reused by every iteration (allocation-free hot loop).
    f = np.empty_like(E)
    fp = np.empty_like(E)
    absf = np.empty_like(E)
    converged = np.zeros(E.shape, dtype=bool)
    active = np.empty(E.shape, dtype=bool)
    iterations = 0
    for iterations in range(1, MAX_ITER + 1):
        np.sin(E, out=f)
        np.multiply(ecc, f, out=f)
        np.subtract(E, f, out=f)
        np.subtract(f, m, out=f)  # f = E - e sin E - M
        np.abs(f, out=absf)
        np.less(absf, tol, out=converged)
        if converged.all():
            break
        np.cos(E, out=fp)
        np.multiply(ecc, fp, out=fp)
        np.subtract(1.0, fp, out=fp)  # f' = 1 - e cos E
        np.divide(f, fp, out=f)
        # Damp absurd steps near e -> 1, M -> 0 where fp is tiny.
        np.clip(f, -1.0, 1.0, out=f)
        np.logical_not(converged, out=active)
        np.multiply(f, active, out=f)  # freeze already-converged lanes
        np.subtract(E, f, out=E)
    if telemetry is not None:
        telemetry.record_kepler(E.size, iterations * E.size)
    if not converged.all():
        # Recheck the residual *after* the final in-loop update: lanes that
        # converged on the very last iteration would otherwise be re-solved
        # by bisection on a stale mask.
        np.sin(E, out=f)
        np.multiply(ecc, f, out=f)
        np.subtract(E, f, out=f)
        np.subtract(f, m, out=f)
        np.abs(f, out=absf)
        np.less(absf, tol, out=converged)
        if not converged.all():
            bad = ~converged
            E[bad] = solve_kepler_bisect(m[bad], ecc[bad], tol=tol)
    return _ret(E, scalar)


def solve_kepler_halley(mean_anomaly, e, tol: float = TOL, warm_start=None, telemetry=None):
    """Solve Kepler's equation by Halley's third-order iteration."""
    m, ecc, scalar = _broadcast(mean_anomaly, e)
    E = _starter(m, ecc, warm_start)
    converged = np.zeros(E.shape, dtype=bool)
    iterations = 0
    for iterations in range(1, MAX_ITER + 1):
        sin_e = np.sin(E)
        cos_e = np.cos(E)
        f = E - ecc * sin_e - m
        converged = np.abs(f) < tol
        if converged.all():
            break
        fp = 1.0 - ecc * cos_e
        fpp = ecc * sin_e
        denom = fp - 0.5 * f * fpp / fp
        step = f / denom
        np.clip(step, -1.0, 1.0, out=step)
        E = E - np.where(converged, 0.0, step)
    if telemetry is not None:
        telemetry.record_kepler(E.size, iterations * E.size)
    if not converged.all():
        # Same post-loop recheck as the Newton solver: the in-loop mask is
        # stale by one update when the cap is hit.
        f = E - ecc * np.sin(E) - m
        converged = np.abs(f) < tol
        if not converged.all():
            bad = ~converged
            E[bad] = solve_kepler_bisect(m[bad], ecc[bad], tol=tol)
    return _ret(E, scalar)


def solve_kepler_bisect(mean_anomaly, e, tol: float = TOL):
    """Solve Kepler's equation by bisection on ``[M - e, M + e]``.

    Slow (linear convergence) but unconditionally convergent: used both as a
    reference oracle in tests and as the safeguard of the fast solvers.
    The bracket is valid because ``f(M - e) <= 0 <= f(M + e)``.
    """
    m, ecc, scalar = _broadcast(mean_anomaly, e)
    lo = m - ecc
    hi = m + ecc
    for _ in range(128):
        mid = 0.5 * (lo + hi)
        f = mid - ecc * np.sin(mid) - m
        if ((hi - lo) < tol).all():
            break
        pos = f > 0.0
        hi = np.where(pos, mid, hi)
        lo = np.where(pos, lo, mid)
    E = 0.5 * (lo + hi)
    return _ret(E, scalar)


def solve_kepler_contour(mean_anomaly, e, n_points: int = 32):
    """Solve Kepler's equation with the contour-integration method.

    For each mean anomaly the unique root ``E`` of
    ``f(E) = E - e sin E - M`` inside a circle ``C`` is extracted with the
    Delves–Lyness moment *ratio*

    .. math::
        E = \\frac{\\oint_C z / f(z) \\, dz}{\\oint_C 1 / f(z) \\, dz},

    (both contour integrals have their residue at the simple root, so the
    unknown ``f'(E)`` factor cancels), evaluated by the trapezoidal rule on
    ``n_points`` equispaced samples of the circle — exponentially
    convergent for analytic integrands.  The circle is centred on the
    first-order root estimate ``E0 = M + e sin M``; since the true root
    satisfies ``|E - E0| = e |sin E - sin M| <= e |E - M| <= e^2``, a
    radius of ``1.5 e^2`` always encloses it with margin.  Two Newton
    polish steps remove the residual quadrature error, and any element
    still unconverged (possible only for extreme eccentricities where
    complex roots crowd the contour) is rescued by bisection.

    This mirrors the paper's GPU Kepler solver: the whole batch of
    anomalies is processed with one fused array computation (one virtual
    thread per anomaly), with no data-dependent branching in the hot loop.
    """
    m, ecc, scalar = _broadcast(mean_anomaly, e)
    if n_points < 8:
        raise ValueError(f"n_points must be >= 8 for a usable quadrature, got {n_points}")

    center = m + ecc * np.sin(m)
    radius = 1.5 * ecc * ecc + 1e-9
    phi = np.linspace(0.0, TWO_PI, n_points, endpoint=False)
    ring = np.exp(1j * phi)  # unit circle samples, (n_points,)
    circ = radius[:, None] * ring[None, :]  # (n, n_points)
    z = center[:, None] + circ
    f = z - ecc[:, None] * np.sin(z) - m[:, None]
    # Trapezoid of g(z)/f(z) * dz with dz = i*circ*dphi; the common factors
    # cancel in the ratio, leaving plain means over the samples.
    w = circ / f
    E = np.real((z * w).mean(axis=1) / w.mean(axis=1))
    for _ in range(2):
        fE = E - ecc * np.sin(E) - m
        E = E - fE / (1.0 - ecc * np.cos(E))
    residual = np.abs(E - ecc * np.sin(E) - m)
    bad = ~(residual < 1e-9)  # catches NaN from degenerate quadratures too
    if bad.any():
        E[bad] = solve_kepler_bisect(m[bad], ecc[bad])
    return _ret(E, scalar)


def eccentric_to_true(E, e):
    """True anomaly from eccentric anomaly, continuous through quadrants."""
    E_arr, ecc, scalar = _broadcast(E, e)
    beta_p = np.sqrt(1.0 + ecc)
    beta_m = np.sqrt(1.0 - ecc)
    nu = 2.0 * np.arctan2(beta_p * np.sin(E_arr / 2.0), beta_m * np.cos(E_arr / 2.0))
    nu = np.mod(nu, TWO_PI)
    return _ret(nu, scalar)


def true_to_eccentric(nu, e):
    """Eccentric anomaly from true anomaly."""
    nu_arr, ecc, scalar = _broadcast(nu, e)
    beta_p = np.sqrt(1.0 + ecc)
    beta_m = np.sqrt(1.0 - ecc)
    E = 2.0 * np.arctan2(beta_m * np.sin(nu_arr / 2.0), beta_p * np.cos(nu_arr / 2.0))
    E = np.mod(E, TWO_PI)
    return _ret(E, scalar)


def eccentric_to_mean(E, e):
    """Mean anomaly from eccentric anomaly (Kepler's equation, forward)."""
    E_arr, ecc, scalar = _broadcast(E, e)
    M = np.mod(E_arr - ecc * np.sin(E_arr), TWO_PI)
    return _ret(M, scalar)


def true_to_mean(nu, e):
    """Mean anomaly from true anomaly."""
    return eccentric_to_mean(true_to_eccentric(nu, e), e)


#: Registry of Kepler solvers usable by name throughout the library.
SOLVERS = {
    "newton": solve_kepler_newton,
    "halley": solve_kepler_halley,
    "bisect": solve_kepler_bisect,
    "contour": solve_kepler_contour,
}


#: Solvers that accept ``warm_start`` / ``telemetry`` keyword arguments.
WARM_SOLVERS = ("newton", "halley")


def mean_to_eccentric(M, e, solver: str = "newton", warm_start=None, telemetry=None):
    """Eccentric anomaly from mean anomaly using the named solver.

    ``solver`` is one of ``newton``, ``halley``, ``bisect``, ``contour``.
    ``warm_start`` (a previous per-lane eccentric anomaly, broadcastable to
    the solve shape) seeds the iterative solvers; the direct solvers ignore
    it.  ``telemetry`` observes iteration counts where supported.
    """
    if solver not in SOLVERS:
        raise ValueError(f"unknown Kepler solver {solver!r}; choose from {sorted(SOLVERS)}")
    if solver in WARM_SOLVERS:
        return SOLVERS[solver](M, e, warm_start=warm_start, telemetry=telemetry)
    return SOLVERS[solver](M, e)


def mean_to_true(M, e, solver: str = "newton"):
    """True anomaly from mean anomaly (solve Kepler, then convert)."""
    return eccentric_to_true(mean_to_eccentric(M, e, solver=solver), e)
