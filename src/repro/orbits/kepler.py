"""Kepler-equation solvers and anomaly conversions.

The paper propagates satellites by recomputing the true anomaly as a
function of time (Section IV-B), using a modified version of the
high-performance *contour* Kepler solver ("Kepler's Goat Herd", Philcox et
al. 2021) restructured so that each GPU thread solves one anomaly
independently.  This module reproduces that substrate:

* :func:`solve_kepler_newton` — classic Newton–Raphson (2nd order).
* :func:`solve_kepler_halley` — Halley iteration (3rd order), the usual CPU
  work-horse.
* :func:`solve_kepler_bisect` — bisection safeguard, slow but guaranteed.
* :func:`solve_kepler_contour` — derivative-ratio contour-integration solver
  (Delves–Lyness quadrature on a circle enclosing the unique real root),
  batch-vectorised over arrays of mean anomalies exactly like the paper's
  GPU kernel evaluates one anomaly per thread.

All solvers accept scalars or numpy arrays for both the mean anomaly and
the eccentricity (broadcast against each other) and solve

.. math:: E - e \\sin E = M

for the eccentric anomaly ``E`` with ``0 <= e < 1``.
"""
from __future__ import annotations

import numpy as np

from repro.constants import TWO_PI

#: Default convergence tolerance on |E - e sin E - M| (radians).
TOL = 1e-13

#: Hard iteration cap for the iterative solvers.
MAX_ITER = 50


def _broadcast(mean_anomaly, e) -> "tuple[np.ndarray, np.ndarray, bool]":
    """Broadcast (M, e) to a common 1-D shape; report whether input was scalar."""
    m = np.asarray(mean_anomaly, dtype=np.float64)
    ecc = np.asarray(e, dtype=np.float64)
    if np.any((ecc < 0.0) | (ecc >= 1.0)):
        raise ValueError("eccentricity must lie in [0, 1) for elliptic orbits")
    scalar = m.ndim == 0 and ecc.ndim == 0
    m, ecc = np.broadcast_arrays(np.atleast_1d(m), np.atleast_1d(ecc))
    return np.mod(m, TWO_PI).astype(np.float64), ecc.astype(np.float64), scalar


def _ret(E: np.ndarray, scalar: bool):
    return float(E[0]) if scalar else E


def solve_kepler_newton(mean_anomaly, e, tol: float = TOL):
    """Solve Kepler's equation by Newton–Raphson iteration.

    Uses the starter ``E0 = M + e*sin(M)`` and falls back to bisection for
    any element that fails to converge within :data:`MAX_ITER` iterations,
    so the result is always accurate to ``tol``.
    """
    m, ecc, scalar = _broadcast(mean_anomaly, e)
    E = m + ecc * np.sin(m)
    converged = np.zeros(m.shape, dtype=bool)
    for _ in range(MAX_ITER):
        f = E - ecc * np.sin(E) - m
        converged = np.abs(f) < tol
        if converged.all():
            break
        fp = 1.0 - ecc * np.cos(E)
        step = f / fp
        # Damp absurd steps near e -> 1, M -> 0 where fp is tiny.
        np.clip(step, -1.0, 1.0, out=step)
        E = E - np.where(converged, 0.0, step)
    if not converged.all():
        bad = ~converged
        E[bad] = solve_kepler_bisect(m[bad], ecc[bad], tol=tol)
    return _ret(E, scalar)


def solve_kepler_halley(mean_anomaly, e, tol: float = TOL):
    """Solve Kepler's equation by Halley's third-order iteration."""
    m, ecc, scalar = _broadcast(mean_anomaly, e)
    E = m + ecc * np.sin(m)
    converged = np.zeros(m.shape, dtype=bool)
    for _ in range(MAX_ITER):
        sin_e = np.sin(E)
        cos_e = np.cos(E)
        f = E - ecc * sin_e - m
        converged = np.abs(f) < tol
        if converged.all():
            break
        fp = 1.0 - ecc * cos_e
        fpp = ecc * sin_e
        denom = fp - 0.5 * f * fpp / fp
        step = f / denom
        np.clip(step, -1.0, 1.0, out=step)
        E = E - np.where(converged, 0.0, step)
    if not converged.all():
        bad = ~converged
        E[bad] = solve_kepler_bisect(m[bad], ecc[bad], tol=tol)
    return _ret(E, scalar)


def solve_kepler_bisect(mean_anomaly, e, tol: float = TOL):
    """Solve Kepler's equation by bisection on ``[M - e, M + e]``.

    Slow (linear convergence) but unconditionally convergent: used both as a
    reference oracle in tests and as the safeguard of the fast solvers.
    The bracket is valid because ``f(M - e) <= 0 <= f(M + e)``.
    """
    m, ecc, scalar = _broadcast(mean_anomaly, e)
    lo = m - ecc
    hi = m + ecc
    for _ in range(128):
        mid = 0.5 * (lo + hi)
        f = mid - ecc * np.sin(mid) - m
        if ((hi - lo) < tol).all():
            break
        pos = f > 0.0
        hi = np.where(pos, mid, hi)
        lo = np.where(pos, lo, mid)
    E = 0.5 * (lo + hi)
    return _ret(E, scalar)


def solve_kepler_contour(mean_anomaly, e, n_points: int = 32):
    """Solve Kepler's equation with the contour-integration method.

    For each mean anomaly the unique root ``E`` of
    ``f(E) = E - e sin E - M`` inside a circle ``C`` is extracted with the
    Delves–Lyness moment *ratio*

    .. math::
        E = \\frac{\\oint_C z / f(z) \\, dz}{\\oint_C 1 / f(z) \\, dz},

    (both contour integrals have their residue at the simple root, so the
    unknown ``f'(E)`` factor cancels), evaluated by the trapezoidal rule on
    ``n_points`` equispaced samples of the circle — exponentially
    convergent for analytic integrands.  The circle is centred on the
    first-order root estimate ``E0 = M + e sin M``; since the true root
    satisfies ``|E - E0| = e |sin E - sin M| <= e |E - M| <= e^2``, a
    radius of ``1.5 e^2`` always encloses it with margin.  Two Newton
    polish steps remove the residual quadrature error, and any element
    still unconverged (possible only for extreme eccentricities where
    complex roots crowd the contour) is rescued by bisection.

    This mirrors the paper's GPU Kepler solver: the whole batch of
    anomalies is processed with one fused array computation (one virtual
    thread per anomaly), with no data-dependent branching in the hot loop.
    """
    m, ecc, scalar = _broadcast(mean_anomaly, e)
    if n_points < 8:
        raise ValueError(f"n_points must be >= 8 for a usable quadrature, got {n_points}")

    center = m + ecc * np.sin(m)
    radius = 1.5 * ecc * ecc + 1e-9
    phi = np.linspace(0.0, TWO_PI, n_points, endpoint=False)
    ring = np.exp(1j * phi)  # unit circle samples, (n_points,)
    circ = radius[:, None] * ring[None, :]  # (n, n_points)
    z = center[:, None] + circ
    f = z - ecc[:, None] * np.sin(z) - m[:, None]
    # Trapezoid of g(z)/f(z) * dz with dz = i*circ*dphi; the common factors
    # cancel in the ratio, leaving plain means over the samples.
    w = circ / f
    E = np.real((z * w).mean(axis=1) / w.mean(axis=1))
    for _ in range(2):
        fE = E - ecc * np.sin(E) - m
        E = E - fE / (1.0 - ecc * np.cos(E))
    residual = np.abs(E - ecc * np.sin(E) - m)
    bad = ~(residual < 1e-9)  # catches NaN from degenerate quadratures too
    if bad.any():
        E[bad] = solve_kepler_bisect(m[bad], ecc[bad])
    return _ret(E, scalar)


def eccentric_to_true(E, e):
    """True anomaly from eccentric anomaly, continuous through quadrants."""
    E_arr, ecc, scalar = _broadcast(E, e)
    beta_p = np.sqrt(1.0 + ecc)
    beta_m = np.sqrt(1.0 - ecc)
    nu = 2.0 * np.arctan2(beta_p * np.sin(E_arr / 2.0), beta_m * np.cos(E_arr / 2.0))
    nu = np.mod(nu, TWO_PI)
    return _ret(nu, scalar)


def true_to_eccentric(nu, e):
    """Eccentric anomaly from true anomaly."""
    nu_arr, ecc, scalar = _broadcast(nu, e)
    beta_p = np.sqrt(1.0 + ecc)
    beta_m = np.sqrt(1.0 - ecc)
    E = 2.0 * np.arctan2(beta_m * np.sin(nu_arr / 2.0), beta_p * np.cos(nu_arr / 2.0))
    E = np.mod(E, TWO_PI)
    return _ret(E, scalar)


def eccentric_to_mean(E, e):
    """Mean anomaly from eccentric anomaly (Kepler's equation, forward)."""
    E_arr, ecc, scalar = _broadcast(E, e)
    M = np.mod(E_arr - ecc * np.sin(E_arr), TWO_PI)
    return _ret(M, scalar)


def true_to_mean(nu, e):
    """Mean anomaly from true anomaly."""
    return eccentric_to_mean(true_to_eccentric(nu, e), e)


#: Registry of Kepler solvers usable by name throughout the library.
SOLVERS = {
    "newton": solve_kepler_newton,
    "halley": solve_kepler_halley,
    "bisect": solve_kepler_bisect,
    "contour": solve_kepler_contour,
}


def mean_to_eccentric(M, e, solver: str = "newton"):
    """Eccentric anomaly from mean anomaly using the named solver.

    ``solver`` is one of ``newton``, ``halley``, ``bisect``, ``contour``.
    """
    if solver not in SOLVERS:
        raise ValueError(f"unknown Kepler solver {solver!r}; choose from {sorted(SOLVERS)}")
    return SOLVERS[solver](M, e)


def mean_to_true(M, e, solver: str = "newton"):
    """True anomaly from mean anomaly (solve Kepler, then convert)."""
    return eccentric_to_true(mean_to_eccentric(M, e, solver=solver), e)
