"""Brent's minimisation algorithm (Brent 1971) and a batch golden-section
variant.

The paper refines every candidate pair with "the Brent optimization
algorithm that combines a golden-section search's reliability with an
interpolation method's performance", via Boost's reference implementation.
:func:`brent_minimize` is that algorithm from scratch (successive parabolic
interpolation guarded by golden-section steps); the test suite validates
it against ``scipy.optimize.minimize_scalar``.

:func:`golden_minimize_batch` is the data-parallel counterpart used by the
vectorized backend: a fixed-iteration golden-section contraction applied to
whole arrays of intervals at once — branch-free, exactly the shape a GPU
kernel wants — followed by a parabolic polish.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Golden ratio constant used by both implementations.
_CGOLD = 0.3819660112501051
_GOLD_RATIO = 0.6180339887498949


@dataclass(frozen=True)
class BrentResult:
    """Outcome of a scalar minimisation."""

    x: float
    fx: float
    iterations: int
    #: True when the minimiser stopped within tolerance of an interval
    #: endpoint — the paper's cue to probe beyond the boundary and possibly
    #: discard the candidate (Section IV-C).
    at_edge: bool


def brent_minimize(
    f: Callable[[float], float],
    a: float,
    b: float,
    tol: float = 1e-8,
    max_iter: int = 100,
) -> BrentResult:
    """Minimise ``f`` on ``[a, b]`` with Brent's method.

    Parameters mirror Boost's ``brent_find_minima``: ``tol`` is the
    absolute x-tolerance.  The function need not be unimodal — like any
    local method, a local minimum is returned.
    """
    if not a < b:
        raise ValueError(f"invalid interval [{a}, {b}]")
    if tol <= 0.0:
        raise ValueError(f"tolerance must be positive, got {tol}")

    x = w = v = a + _CGOLD * (b - a)
    fx = fw = fv = f(x)
    d = e = 0.0
    lo, hi = a, b
    iterations = 0
    for iterations in range(1, max_iter + 1):
        mid = 0.5 * (lo + hi)
        tol1 = tol * abs(x) + 1e-12
        tol2 = 2.0 * tol1
        if abs(x - mid) <= tol2 - 0.5 * (hi - lo):
            break
        use_golden = True
        if abs(e) > tol1:
            # Trial parabolic fit through x, w, v.
            r = (x - w) * (fx - fv)
            q = (x - v) * (fx - fw)
            p = (x - v) * q - (x - w) * r
            q = 2.0 * (q - r)
            if q > 0.0:
                p = -p
            q = abs(q)
            e_prev = e
            e = d
            if abs(p) < abs(0.5 * q * e_prev) and q * (lo - x) < p < q * (hi - x):
                d = p / q
                u = x + d
                if u - lo < tol2 or hi - u < tol2:
                    d = math.copysign(tol1, mid - x)
                use_golden = False
        if use_golden:
            e = (hi if x < mid else lo) - x
            d = _CGOLD * e
        u = x + d if abs(d) >= tol1 else x + math.copysign(tol1, d)
        fu = f(u)
        if fu <= fx:
            if u >= x:
                lo = x
            else:
                hi = x
            v, w, x = w, x, u
            fv, fw, fx = fw, fx, fu
        else:
            if u < x:
                lo = u
            else:
                hi = u
            if fu <= fw or w == x:
                v, w = w, u
                fv, fw = fw, fu
            elif fu <= fv or v == x or v == w:
                v, fv = u, fu
    edge_tol = max(tol * max(abs(a), abs(b), 1.0) * 4.0, 4e-12)
    at_edge = (x - a) <= edge_tol or (b - x) <= edge_tol
    return BrentResult(x=x, fx=fx, iterations=iterations, at_edge=at_edge)


def golden_minimize_batch(
    f: Callable[..., np.ndarray],
    a: np.ndarray,
    b: np.ndarray,
    iterations: int = 60,
    polish: int = 2,
    tol: "float | None" = None,
    telemetry=None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Minimise ``f`` elementwise on the intervals ``[a[k], b[k]]``.

    Two execution modes:

    * **Fixed-iteration** (``tol=None``) — the SIMT-friendly reference:
      every lane runs all ``iterations`` golden-section contractions
      (``0.618^60 ~ 3e-13`` of the initial span), branch-free across the
      batch.  ``f`` maps an abscissa array to a value array.
    * **Convergence-aware compaction** (``tol`` set) — the GPU
      retire-finished-threads analogue: once a lane's interval contracts
      below ``tol`` it is scattered to the result arrays and the surviving
      lanes are gathered into a dense active set, so later iterations (and
      their distance evaluations) run only on live lanes, with early exit
      when the batch drains.  ``f`` must then accept ``(x, lanes)`` where
      ``lanes`` indexes the original batch — the contract that lets a
      warm-started distance kernel address its per-lane caches.

    Both modes finish with ``polish`` parabolic steps over the full batch.
    ``telemetry`` (a :class:`repro.parallel.backend.RefTelemetry`-like
    object) observes lanes entered, iterations run and lanes retired per
    iteration.

    Returns ``(x, fx, at_edge)`` arrays; ``at_edge`` flags minima within
    ``1e-6 * span`` of an interval endpoint.
    """
    a0 = np.asarray(a, dtype=np.float64)
    b0 = np.asarray(b, dtype=np.float64)
    if np.any(a0 >= b0):
        raise ValueError("every interval must satisfy a < b")
    if tol is not None and tol <= 0.0:
        raise ValueError(f"tolerance must be positive, got {tol}")
    span0 = b0 - a0
    if telemetry is not None:
        telemetry.record_lanes(a0.size)

    if tol is None:
        x, fx, width = _golden_fixed(f, a0, b0, iterations, telemetry)
        evalf = f
    else:
        x, fx, width = _golden_compacted(f, a0, b0, iterations, tol, telemetry)
        all_lanes = np.arange(a0.size, dtype=np.int64)
        evalf = lambda xs: f(xs, all_lanes)  # noqa: E731

    # Parabolic polish: fit through (x-h, x, x+h) and step to the vertex.
    h = np.maximum(width * 0.5, 1e-9)
    for _ in range(polish):
        xl = x - h
        xr = x + h
        fl = evalf(xl)
        fr = evalf(xr)
        denom = fl - 2.0 * fx + fr
        safe = np.abs(denom) > 1e-300
        step = np.where(safe, 0.5 * h * (fl - fr) / np.where(safe, denom, 1.0), 0.0)
        step = np.clip(step, -h, h)
        x_new = np.clip(x + step, a0, b0)
        f_new = evalf(x_new)
        better = f_new < fx
        x = np.where(better, x_new, x)
        fx = np.where(better, f_new, fx)
        h = h * 0.25

    edge_tol = 1e-6 * span0
    at_edge = ((x - a0) <= edge_tol) | ((b0 - x) <= edge_tol)
    return x, fx, at_edge


def _golden_fixed(f, a0, b0, iterations, telemetry):
    """Fixed-iteration golden contraction over the full batch (reference)."""
    lo = a0.copy()
    hi = b0.copy()
    x1 = hi - _GOLD_RATIO * (hi - lo)
    x2 = lo + _GOLD_RATIO * (hi - lo)
    f1 = f(x1)
    f2 = f(x2)
    for _ in range(iterations):
        take_left = f1 < f2
        # Shrink toward the lower probe: [lo, x2] when the left probe wins,
        # [x1, hi] otherwise.  The surviving interior probe becomes the
        # opposite probe of the shrunken interval (golden-ratio identity
        # phi^2 = 1 - phi), so only one fresh f-evaluation per iteration is
        # needed — evaluated as a single merged abscissa array.
        hi = np.where(take_left, x2, hi)
        lo = np.where(take_left, lo, x1)
        x_fresh = np.where(
            take_left,
            hi - _GOLD_RATIO * (hi - lo),
            lo + _GOLD_RATIO * (hi - lo),
        )
        f_fresh = f(x_fresh)
        x1_old, f1_old = x1, f1
        x1 = np.where(take_left, x_fresh, x2)
        f1 = np.where(take_left, f_fresh, f2)
        x2 = np.where(take_left, x1_old, x_fresh)
        f2 = np.where(take_left, f1_old, f_fresh)
        if telemetry is not None:
            telemetry.record_golden_iteration(0)
    x = np.where(f1 < f2, x1, x2)
    fx = np.minimum(f1, f2)
    return x, fx, hi - lo


def _golden_compacted(f, a0, b0, iterations, tol, telemetry):
    """Convergence-aware contraction: retire lanes below ``tol``, gather the
    survivors into a dense active set, early-exit when the batch drains."""
    m = a0.size
    x_out = np.empty(m, dtype=np.float64)
    fx_out = np.empty(m, dtype=np.float64)
    width_out = np.empty(m, dtype=np.float64)

    idx = np.arange(m, dtype=np.int64)  # active lane -> original lane
    lo = a0.copy()
    hi = b0.copy()
    x1 = hi - _GOLD_RATIO * (hi - lo)
    x2 = lo + _GOLD_RATIO * (hi - lo)
    f1 = np.asarray(f(x1, idx), dtype=np.float64)
    f2 = np.asarray(f(x2, idx), dtype=np.float64)

    it = 0
    while idx.size and it < iterations:
        take_left = f1 < f2
        # In-place contraction of the dense active intervals (same update
        # rule as the fixed mode, expressed with copyto instead of fresh
        # np.where temporaries).
        np.copyto(hi, x2, where=take_left)
        np.copyto(lo, x1, where=~take_left)
        width = hi - lo
        x_fresh = np.where(take_left, hi - _GOLD_RATIO * width, lo + _GOLD_RATIO * width)
        f_fresh = np.asarray(f(x_fresh, idx), dtype=np.float64)
        x1_old, f1_old = x1, f1
        x1 = np.where(take_left, x_fresh, x2)
        f1 = np.where(take_left, f_fresh, f2)
        x2 = np.where(take_left, x1_old, x_fresh)
        f2 = np.where(take_left, f1_old, f_fresh)
        it += 1

        done = width <= tol
        retired = int(np.count_nonzero(done))
        if retired:
            # Scatter finished lanes to the results...
            sel = idx[done]
            x_out[sel] = np.where(f1[done] < f2[done], x1[done], x2[done])
            fx_out[sel] = np.minimum(f1[done], f2[done])
            width_out[sel] = width[done]
            # ... and compact the survivors into a dense set.
            live = ~done
            idx = idx[live]
            lo, hi = lo[live], hi[live]
            x1, x2, f1, f2 = x1[live], x2[live], f1[live], f2[live]
        if telemetry is not None:
            telemetry.record_golden_iteration(retired)

    if idx.size:  # iteration cap hit with lanes still live
        x_out[idx] = np.where(f1 < f2, x1, x2)
        fx_out[idx] = np.minimum(f1, f2)
        width_out[idx] = hi - lo
    return x_out, fx_out, width_out
