"""Conjunction-detection variants: the paper's primary contribution.

* :mod:`repro.detection.legacy` — the all-on-all filter-chain baseline.
* :mod:`repro.detection.gridbased` — the purely grid-based variant.
* :mod:`repro.detection.hybrid` — grid prefilter + classical orbital filters.
* :mod:`repro.detection.kdtree_variant` — the Kd-tree comparator of [29].
* :mod:`repro.detection.aabb4d_variant` — the build-once 4D AABB-tree
  broad phase with the occupancy prefilter (Bak & Hobbs; Rivero et al.).
* :mod:`repro.detection.cube` — the statistical Cube method of [21].
* :mod:`repro.detection.api` — the top-level :func:`screen` entry point.
"""
from repro.detection.aabb4d_variant import screen_aabb4d
from repro.detection.api import screen
from repro.detection.brent import BrentResult, brent_minimize, golden_minimize_batch
from repro.detection.cube import CubeEstimate, cube_estimate
from repro.detection.gridbased import screen_grid
from repro.detection.hybrid import screen_hybrid
from repro.detection.kdtree_variant import screen_kdtree
from repro.detection.legacy import screen_legacy
from repro.detection.types import Conjunction, ScreeningConfig, ScreeningResult

__all__ = [
    "BrentResult",
    "Conjunction",
    "CubeEstimate",
    "ScreeningConfig",
    "ScreeningResult",
    "brent_minimize",
    "cube_estimate",
    "golden_minimize_batch",
    "screen",
    "screen_aabb4d",
    "screen_grid",
    "screen_hybrid",
    "screen_kdtree",
    "screen_legacy",
]
