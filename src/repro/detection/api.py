"""Top-level screening entry point."""
from __future__ import annotations

from repro.detection.gridbased import screen_grid
from repro.detection.hybrid import screen_hybrid
from repro.detection.kdtree_variant import screen_kdtree
from repro.detection.legacy import screen_legacy
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.orbits.elements import OrbitalElementsArray

#: The implemented screening methods.  ``grid``/``hybrid`` are the paper's
#: contributions, ``legacy`` its baseline, ``kdtree`` the related-work
#: comparator of [29].
METHODS = ("grid", "hybrid", "legacy", "kdtree")


def screen(
    population: OrbitalElementsArray,
    config: "ScreeningConfig | None" = None,
    method: str = "hybrid",
    backend: str = "vectorized",
) -> ScreeningResult:
    """Screen a population for conjunctions.

    Parameters
    ----------
    population:
        The orbits to screen (see :mod:`repro.population` for generators).
    config:
        Screening parameters; defaults to the paper's evaluation setup
        (2 km threshold, one hour span).
    method:
        ``grid`` (purely grid-based), ``hybrid`` (grid + orbital filters,
        the fastest when memory allows) or ``legacy`` (the O(n^2)
        filter-chain baseline).
    backend:
        ``vectorized`` (data-parallel numpy — the GPU analogue),
        ``threads`` (thread pool over the shared CAS structures — the
        OpenMP analogue) or ``serial``.  The legacy method is
        single-threaded by definition and ignores this argument.

    Returns
    -------
    ScreeningResult
        Detected conjunctions plus phase timings, filter statistics and
        memory metadata.
    """
    if config is None:
        config = ScreeningConfig()
    if method == "grid":
        return screen_grid(population, config, backend=backend)
    if method == "hybrid":
        return screen_hybrid(population, config, backend=backend)
    if method == "legacy":
        return screen_legacy(population, config)
    if method == "kdtree":
        return screen_kdtree(population, config)
    raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
