"""Top-level screening entry point."""
from __future__ import annotations

from repro.detection.aabb4d_variant import screen_aabb4d
from repro.detection.gridbased import screen_grid
from repro.detection.hybrid import screen_hybrid
from repro.detection.kdtree_variant import screen_kdtree
from repro.detection.legacy import screen_legacy
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.obs.tracer import NULL_TRACER
from repro.orbits.elements import OrbitalElementsArray

#: The implemented screening methods.  ``grid``/``hybrid`` are the paper's
#: contributions, ``legacy`` its baseline, ``kdtree`` the related-work
#: comparator of [29], ``aabb4d`` the build-once 4D-tree broad phase
#: (Bak & Hobbs) with the Rivero-style occupancy prefilter.
METHODS = ("grid", "hybrid", "legacy", "kdtree", "aabb4d")


def screen(
    population: OrbitalElementsArray,
    config: "ScreeningConfig | None" = None,
    method: str = "hybrid",
    backend: str = "vectorized",
    tracer=None,
    metrics=None,
) -> ScreeningResult:
    """Screen a population for conjunctions.

    Parameters
    ----------
    population:
        The orbits to screen (see :mod:`repro.population` for generators).
    config:
        Screening parameters; defaults to the paper's evaluation setup
        (2 km threshold, one hour span).  By default the vectorized grid
        backends emit candidate pairs through the temporal-coherence
        cache (``config.use_coherence``) — identical results, most
        cell-pair work skipped on quiet steps; set it to ``False`` to
        force the paper's re-emit-every-step behaviour.
    method:
        ``grid`` (purely grid-based), ``hybrid`` (grid + orbital filters,
        the fastest when memory allows) or ``legacy`` (the O(n^2)
        filter-chain baseline).
    backend:
        ``vectorized`` (data-parallel numpy — the GPU analogue),
        ``threads`` (thread pool over the shared CAS structures — the
        OpenMP analogue) or ``serial``.  The legacy method is
        single-threaded by definition and ignores this argument.
    tracer:
        A :class:`repro.obs.Tracer` receiving the run's span tree
        (``window`` → ``phase:*`` → ``round`` → …).  ``None`` (the
        default) uses the zero-overhead null tracer.
    metrics:
        A :class:`repro.obs.MetricsRegistry` receiving structure-health
        counters and the per-stage candidate funnel.  ``None`` disables
        metrics collection.

    Returns
    -------
    ScreeningResult
        Detected conjunctions plus phase timings, filter statistics,
        memory metadata and (when requested) the metrics registry.
    """
    if config is None:
        config = ScreeningConfig()
    if tracer is None:
        tracer = NULL_TRACER
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    if config.schedule == "pipelined" and method in ("legacy", "kdtree", "aabb4d"):
        raise ValueError(
            f"schedule='pipelined' is only implemented for the grid/hybrid "
            f"variants; method={method!r} runs barrier-only"
        )
    with tracer.span(
        "window", method=method, backend=backend, objects=len(population)
    ):
        if method == "grid":
            return screen_grid(
                population, config, backend=backend, tracer=tracer, metrics=metrics
            )
        if method == "hybrid":
            return screen_hybrid(
                population, config, backend=backend, tracer=tracer, metrics=metrics
            )
        if method == "legacy":
            return screen_legacy(population, config, tracer=tracer, metrics=metrics)
        if method == "aabb4d":
            return screen_aabb4d(population, config, tracer=tracer, metrics=metrics)
        return screen_kdtree(population, config, tracer=tracer, metrics=metrics)
