"""Window scanning: find all sub-threshold minima of a pair's distance.

Shared by the legacy baseline (over time-filter overlap windows or the
whole span) and the hybrid variant's non-coplanar path (over the node
windows the orbital filters determine, Section IV-C): sample the distance
function coarsely, bracket every local minimum, and refine each bracket
with Brent.
"""
from __future__ import annotations

import math

import numpy as np

from repro.detection.brent import brent_minimize
from repro.detection.pca_tca import PairDistanceScalar
from repro.orbits.elements import OrbitalElementsArray


def scan_pair_windows(
    population: OrbitalElementsArray,
    i: int,
    j: int,
    windows: "list[tuple[float, float]]",
    threshold_km: float,
    samples_per_period: int = 30,
    brent_tol: float = 1e-6,
    telemetry=None,
) -> "list[tuple[float, float]]":
    """All (tca, pca) with ``pca <= threshold`` inside the given windows.

    The sampling step is the shorter orbital period divided by
    ``samples_per_period`` — fine enough to bracket every local minimum of
    the relative distance, whose oscillation is governed by the orbital
    periods.  Window-edge minima are refined against the clipped window, so
    a conjunction exactly at a window boundary is still caught.
    """
    dist = PairDistanceScalar(population, i, j)
    period = min(float(population.period[i]), float(population.period[j]))
    dt = period / samples_per_period
    found: "list[tuple[float, float]]" = []
    for lo, hi in windows:
        if hi <= lo:
            continue
        n_samples = max(int(math.ceil((hi - lo) / dt)) + 1, 3)
        ts = np.linspace(lo, hi, n_samples)
        ds = np.array([dist(float(t)) for t in ts])
        # Interior local minima.
        interior = np.nonzero((ds[1:-1] <= ds[:-2]) & (ds[1:-1] <= ds[2:]))[0] + 1
        brackets = [(float(ts[k - 1]), float(ts[k + 1])) for k in interior]
        # Boundary minima: the window edge may clip a descending slope.
        if ds[0] < ds[1]:
            brackets.append((float(ts[0]), float(ts[1])))
        if ds[-1] < ds[-2]:
            brackets.append((float(ts[-2]), float(ts[-1])))
        for a, b in brackets:
            if b <= a:
                continue
            res = brent_minimize(dist, a, b, tol=brent_tol)
            if telemetry is not None:
                telemetry.record_brent(res.iterations)
            if res.fx <= threshold_km:
                found.append((res.x, res.fx))
    return _dedupe(found, tol_s=1.0)


def _dedupe(minima: "list[tuple[float, float]]", tol_s: float) -> "list[tuple[float, float]]":
    """Merge refined minima closer than ``tol_s`` (overlapping brackets)."""
    if not minima:
        return []
    minima = sorted(minima)
    out = [minima[0]]
    for tca, pca in minima[1:]:
        if tca - out[-1][0] <= tol_s:
            if pca < out[-1][1]:
                out[-1] = (tca, pca)
        else:
            out.append((tca, pca))
    return out
