"""Configuration and result types of the screening pipeline."""
from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.filters.coplanarity import DEFAULT_COPLANAR_TOL_RAD
from repro.parallel.backend import PhaseTimer


@dataclass(frozen=True)
class ScreeningConfig:
    """Parameters of one conjunction-screening run.

    Defaults follow the paper's evaluation: a 2 km screening threshold
    (typical rough screening), 9 s between samples for the hybrid variant,
    and a fine 1 s sampling for the purely grid-based variant (which
    "requires comparably small grid cells ... propagating the position on
    the orbit in small steps").
    """

    #: Screening threshold ``d`` in km: encounters with PCA below this are
    #: reported (Section III, Fig. 2).
    threshold_km: float = 2.0
    #: Screened time span in seconds (``t`` in Section V-B).
    duration_s: float = 3600.0
    #: Seconds between samples for the grid-based variant (``s_ps``).
    seconds_per_sample: float = 1.0
    #: Seconds between samples for the hybrid variant (coarser: larger
    #: cells, fewer steps, more pairs per step — "trading time for space").
    hybrid_seconds_per_sample: float = 9.0
    #: Kepler-equation solver used for propagation.
    solver: str = "newton"
    #: Plane angle below which a pair counts as coplanar.
    coplanar_tol_rad: float = DEFAULT_COPLANAR_TOL_RAD
    #: Absolute time tolerance of the PCA/TCA minimisation (seconds).
    brent_tol: float = 1e-6
    #: Conjunctions of one pair with TCAs closer than this merge into one.
    tca_merge_tol_s: float = 0.05
    #: Whether the legacy baseline restricts its search to time-filter
    #: overlap windows (Section II) instead of scanning the whole span.
    use_time_filter: bool = True
    #: Whether the grid variant applies the smart sieve (Section II, [17])
    #: to its candidate records before PCA/TCA refinement: records whose
    #: step segment is kinematically proven clean are dropped without a
    #: Brent search.
    use_smart_sieve: bool = False
    #: Coarse samples per (shorter) orbital period in the legacy search.
    legacy_samples_per_period: int = 30
    #: Thread count for the ``threads`` backend (None = automatic).
    n_threads: "int | None" = None
    #: Grid implementation for the vectorized backend: ``sorted`` (sort-
    #: based grouping) or ``hashmap`` (CAS-round open-addressing emulation).
    grid_impl: str = "sorted"
    #: PCA/TCA refinement engine: ``batch`` routes every backend through
    #: the shared convergence-aware batch kernel (active-lane compaction +
    #: warm-started Kepler solves, chunked over a fixed lane grid);
    #: ``scalar`` keeps the per-candidate Brent loop on the serial/threads
    #: backends — the differential-test oracle.  The vectorized backend
    #: always uses the batch engine.
    ref_engine: str = "batch"
    #: Optional memory budget in bytes for the Section V-B planner; when
    #: set, the effective seconds-per-sample may be reduced automatically.
    memory_budget_bytes: "int | None" = None
    #: Whether the vectorized grid backends emit candidate pairs through
    #: the temporal-coherence cache (:class:`repro.spatial.vectorgrid
    #: .CoherentPairEmitter`): consecutive sampling steps diff each
    #: object's cell membership and replay the cached pairs of unchanged
    #: cell adjacencies instead of re-probing every occupied cell.  The
    #: emitted pair set is identical either way (the differential tests
    #: pin it); turning this off recovers the paper's
    #: re-emit-every-step behaviour for benchmarking.
    use_coherence: bool = True
    #: Pipeline-wide arithmetic policy.  ``fp64`` runs everything in double
    #: precision (the reference).  ``mixed`` runs the broad phase (INS
    #: propagation, cell keys, candidate emission) in float32 — the GPU's
    #: native throughput currency — with the cell size padded by the
    #: worst-case float32 rounding error (:func:`repro.spatial.grid
    #: .fp32_cell_pad_km`) so no true conjunction is ever missed, while REF
    #: keeps solving in float64 from the float64 elements.
    precision: str = "fp64"
    #: Phase schedule of the grid/hybrid variants.  ``barrier`` runs the
    #: paper's strict INS → CD → REF sequence; ``pipelined`` streams each
    #: fused round's candidate records through a bounded queue into a
    #: continuously draining REF consumer while the next round's INS
    #: propagates on its own thread (DESIGN.md §13).  The conjunction
    #: records are byte-identical either way — the differential suite in
    #: ``tests/detection/test_pipeline.py`` pins it.
    schedule: str = "barrier"
    #: Bounded depth of the pipelined schedule's candidate queue, in
    #: rounds — the producer blocks once this many round batches await
    #: REF, capping resident candidate memory
    #: (:func:`repro.perfmodel.memory.pipeline_queue_bytes`).
    pipeline_queue_rounds: int = 2
    #: REF consumer placement for ``schedule="pipelined"``: ``thread``
    #: drains the queue on a dedicated consumer thread (the overlapping
    #: schedule); ``inline`` feeds the same incremental consumer
    #: synchronously after each round — no overlap, but the identical
    #: chunk stream, which makes it the differential reference.
    pipeline_consumer: str = "thread"
    #: Sampling steps per knot interval of the ``aabb4d`` broad phase:
    #: each (object, interval) swept box covers this many steps, so the
    #: broad phase propagates ~1/aabb_knot_steps as many positions as the
    #: grids' INS.  Larger values cheapen the build but inflate the boxes
    #: (sweep margin grows with the knot spacing), admitting more
    #: candidates into the narrow phase.
    aabb_knot_steps: int = 32
    #: Altitude-shell thickness of the ``aabb4d`` occupancy prefilter, km
    #: (:class:`repro.filters.occupancy.OccupancyBitmap`).
    occupancy_shell_km: float = 50.0

    def __post_init__(self) -> None:
        if self.threshold_km <= 0.0:
            raise ValueError(f"threshold_km must be positive, got {self.threshold_km}")
        if self.duration_s <= 0.0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.seconds_per_sample <= 0.0:
            raise ValueError(f"seconds_per_sample must be positive, got {self.seconds_per_sample}")
        if self.hybrid_seconds_per_sample <= 0.0:
            raise ValueError(
                f"hybrid_seconds_per_sample must be positive, got {self.hybrid_seconds_per_sample}"
            )
        if self.grid_impl not in ("sorted", "hashmap"):
            raise ValueError(f"grid_impl must be 'sorted' or 'hashmap', got {self.grid_impl!r}")
        if self.ref_engine not in ("batch", "scalar"):
            raise ValueError(f"ref_engine must be 'batch' or 'scalar', got {self.ref_engine!r}")
        if self.precision not in ("fp64", "mixed"):
            raise ValueError(f"precision must be 'fp64' or 'mixed', got {self.precision!r}")
        if self.legacy_samples_per_period < 4:
            raise ValueError("legacy_samples_per_period must be at least 4")
        if self.schedule not in ("barrier", "pipelined"):
            raise ValueError(
                f"schedule must be 'barrier' or 'pipelined', got {self.schedule!r}"
            )
        if self.pipeline_queue_rounds < 1:
            raise ValueError(
                f"pipeline_queue_rounds must be >= 1, got {self.pipeline_queue_rounds}"
            )
        if self.pipeline_consumer not in ("thread", "inline"):
            raise ValueError(
                f"pipeline_consumer must be 'thread' or 'inline', got {self.pipeline_consumer!r}"
            )
        if self.aabb_knot_steps < 1:
            raise ValueError(
                f"aabb_knot_steps must be >= 1, got {self.aabb_knot_steps}"
            )
        if self.occupancy_shell_km <= 0.0:
            raise ValueError(
                f"occupancy_shell_km must be positive, got {self.occupancy_shell_km}"
            )
        if self.schedule == "pipelined" and self.use_smart_sieve:
            raise ValueError(
                "schedule='pipelined' is incompatible with use_smart_sieve: the "
                "sieve evaluates propagator states mid-REF, racing the INS "
                "producer thread that owns the propagator; run schedule='barrier'"
            )

    def sample_times(self, seconds_per_sample: "float | None" = None) -> np.ndarray:
        """The equidistant sampling instants of the screening span."""
        sps = seconds_per_sample if seconds_per_sample is not None else self.seconds_per_sample
        n_steps = max(int(math.ceil(self.duration_s / sps)) + 1, 2)
        return np.arange(n_steps, dtype=np.float64) * sps


@dataclass(frozen=True)
class Conjunction:
    """One detected encounter below the screening threshold."""

    i: int
    j: int
    tca_s: float
    pca_km: float


@dataclass
class ScreeningResult:
    """Everything a screening run produces.

    ``i``, ``j``, ``tca_s``, ``pca_km`` are parallel arrays: one entry per
    detected conjunction (a pair may appear several times with distinct
    TCAs — distinct local minima below the threshold, as in Fig. 2).
    """

    method: str
    backend: str
    i: np.ndarray
    j: np.ndarray
    tca_s: np.ndarray
    pca_km: np.ndarray
    #: Candidate pairs handed to the PCA/TCA refinement (the quantity the
    #: complexity analysis of Section III-B counts).
    candidates_refined: int
    timers: PhaseTimer = field(default_factory=PhaseTimer)
    filter_stats: "dict[str, dict[str, int]]" = field(default_factory=dict)
    extra: "dict[str, object]" = field(default_factory=dict)
    #: The run's metrics registry (``repro.obs``) when metrics collection
    #: was requested; ``None`` otherwise.
    metrics: "object | None" = None

    @property
    def n_conjunctions(self) -> int:
        return len(self.tca_s)

    def unique_pairs(self) -> "set[tuple[int, int]]":
        """Distinct (i, j) pairs with at least one conjunction."""
        return set(zip(self.i.tolist(), self.j.tolist()))

    def conjunctions(self) -> "list[Conjunction]":
        """The detections as a list of records, sorted by TCA."""
        order = np.argsort(self.tca_s, kind="stable")
        return [
            Conjunction(int(self.i[k]), int(self.j[k]), float(self.tca_s[k]), float(self.pca_km[k]))
            for k in order
        ]

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.method}/{self.backend}: {self.n_conjunctions} conjunctions "
            f"({len(self.unique_pairs())} pairs) from {self.candidates_refined} candidates "
            f"in {self.timers.total:.3f}s"
        )


def empty_result(method: str, backend: str) -> ScreeningResult:
    """A result with zero conjunctions (shared by all variants)."""
    z = np.empty(0, dtype=np.int64)
    zf = np.empty(0, dtype=np.float64)
    return ScreeningResult(
        method=method, backend=backend, i=z, j=z.copy(), tca_s=zf, pca_km=zf.copy(),
        candidates_refined=0,
    )
