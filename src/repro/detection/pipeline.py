"""Round-granular INS → CD → REF pipelining (DESIGN.md §13).

The barrier schedule runs the paper's phases strictly in sequence: every
round's grid build and pair emission completes, then one monolithic REF
pass refines the conjunction map.  This module supplies the
``schedule="pipelined"`` alternative: the producer side (the existing
fused round loop) pushes each round's deduplicated record batch onto a
bounded :class:`CandidateQueue` the moment CD emits it, and a REF
consumer — a dedicated thread, or the caller inline — drains the queue
continuously through an incremental :class:`ChunkedRefiner`.  Combined
with :func:`repro.detection.gridbased.stream_round_positions` prefetching
round ``k+1``'s propagation on its own thread, the three phases run on
three tracks and ``repro.obs.analysis.overlap_report`` can prove it.

Byte-identity with the barrier schedule rests on three facts:

* ``pack_pair_key`` stores the step in the key's **high** bits, and a
  fused round covers a disjoint, ascending slice of steps — so the
  concatenation of per-round sorted-unique record batches
  (:func:`repro.spatial.conjmap.sorted_unique_records`) *is* the global
  ``ConjunctionMap.records()`` order, with no sort barrier.
* REF chunking happens on the same fixed ``REF_CHUNK_LANES`` grid over
  that stream, so chunk boundaries — and therefore the exact
  ``refine_batch`` invocations — match the barrier run's.
* ``refine_batch`` retires lanes individually (masked updates + golden
  compaction), so a lane's refined values do not depend on its chunk
  mates anyway; the per-shard consumers of the multidevice composition
  lean on this.

Shutdown ordering: the producer finishes (or dies) first, then
``close()`` (or ``close(abort=True)``) unblocks the consumer, then
``ConsumerRunner.finish`` joins the thread and re-raises any consumer
exception.  A consumer death marks the queue broken and empties it, so a
producer blocked in ``put`` wakes immediately with
:class:`PipelineBrokenError` instead of deadlocking on a full queue.
"""
from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.detection.pca_tca import interval_radii, refine_batch
from repro.parallel.backend import PhaseTimer, RefTelemetry
from repro.spatial.conjmap import _ID_BITS, sorted_unique_records


class PipelineBrokenError(RuntimeError):
    """Raised to the *producer* when the REF consumer has failed.

    The consumer's actual exception is re-raised by
    :meth:`ConsumerRunner.finish`; this signal only tells the producer to
    stop emitting rounds.
    """


class CandidateQueue:
    """Bounded queue of per-round candidate-record batches.

    Depth is measured in rounds (the producer's natural work unit and the
    unit :func:`repro.perfmodel.memory.pipeline_queue_bytes` prices).  The
    producer blocks in :meth:`put` when ``max_rounds`` batches are
    pending — backpressure that bounds resident candidate memory no matter
    how far REF falls behind.
    """

    def __init__(self, max_rounds: int) -> None:
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.max_rounds = max_rounds
        self._items: "deque[tuple]" = deque()
        self._cv = threading.Condition()
        self._closed = False
        self._broken = False
        #: Highest number of batches simultaneously pending.
        self.peak_depth = 0
        #: Number of ``put`` calls that had to wait on a full queue.
        self.backpressure_waits = 0

    def put(self, batch: tuple) -> None:
        """Enqueue one round's batch; blocks while the queue is full."""
        with self._cv:
            if len(self._items) >= self.max_rounds and not self._broken:
                self.backpressure_waits += 1
            while len(self._items) >= self.max_rounds and not self._broken:
                self._cv.wait()
            if self._broken:
                raise PipelineBrokenError("REF consumer failed")
            if self._closed:
                raise RuntimeError("put() after close()")
            self._items.append(batch)
            self.peak_depth = max(self.peak_depth, len(self._items))
            self._cv.notify_all()

    def get(self) -> "tuple | None":
        """Dequeue the next batch; ``None`` once closed and drained."""
        with self._cv:
            while not self._items and not self._closed:
                self._cv.wait()
            if not self._items:
                return None
            batch = self._items.popleft()
            self._cv.notify_all()
            return batch

    def close(self, abort: bool = False) -> None:
        """End of stream.  ``abort`` drops pending batches (producer died)."""
        with self._cv:
            self._closed = True
            if abort:
                self._items.clear()
            self._cv.notify_all()

    def mark_broken(self) -> None:
        """Consumer died: empty the queue and fail all future ``put`` calls."""
        with self._cv:
            self._broken = True
            self._items.clear()
            self._cv.notify_all()


@dataclass(frozen=True)
class PipelineStats:
    """What the pipelined schedule did, for ``extra`` and ``repro.obs``."""

    consumer: str
    rounds: int
    records: int
    ref_chunks: int
    queue_capacity_rounds: int
    queue_peak_rounds: int
    backpressure_waits: int

    def as_dict(self) -> "dict[str, object]":
        return {
            "consumer": self.consumer,
            "rounds": self.rounds,
            "records": self.records,
            "ref_chunks": self.ref_chunks,
            "queue_capacity_rounds": self.queue_capacity_rounds,
            "queue_peak_rounds": self.queue_peak_rounds,
            "backpressure_waits": self.backpressure_waits,
        }


class ChunkedRefiner:
    """Incremental REF over a record stream, on the fixed chunk grid.

    Feeding batches in emission order and refining every time
    ``REF_CHUNK_LANES`` records have accumulated reproduces exactly the
    chunk boundaries of :func:`repro.detection.gridbased.refine_records`
    over the concatenated stream — the identity the differential suite
    pins.  With ``keep_per_record=True`` the refiner additionally keeps
    hit/TCA/PCA aligned per *record* (not just the surviving hits), which
    is what lets a device shard ship refined results the parent can
    re-sort into global record order.
    """

    def __init__(
        self,
        population,
        times: np.ndarray,
        ref_cell: float,
        config,
        timers: PhaseTimer,
        keep_per_record: bool = False,
    ) -> None:
        from repro.detection.gridbased import REF_CHUNK_LANES

        self._population = population
        self._times = times
        self._ref_cell = ref_cell
        self._config = config
        self._timers = timers
        self._chunk_lanes = REF_CHUNK_LANES
        self._keep_per_record = keep_per_record
        self._buf: "list[tuple[np.ndarray, np.ndarray, np.ndarray]]" = []
        self._buffered = 0
        self._hits: "list[tuple]" = []
        self._per_record: "list[tuple]" = []
        self.records_fed = 0
        self.chunks = 0

    def feed_batch(self, rec_i: np.ndarray, rec_j: np.ndarray, rec_step: np.ndarray) -> None:
        if len(rec_i) == 0:
            return
        self._buf.append((rec_i, rec_j, rec_step))
        self._buffered += len(rec_i)
        self.records_fed += len(rec_i)
        if self._buffered < self._chunk_lanes:
            return
        ci, cj, cs = self._concat_buffer()
        pos = 0
        while len(ci) - pos >= self._chunk_lanes:
            end = pos + self._chunk_lanes
            self._refine_chunk(ci[pos:end], cj[pos:end], cs[pos:end])
            pos = end
        if pos < len(ci):
            self._buf = [(ci[pos:], cj[pos:], cs[pos:])]
            self._buffered = len(ci) - pos

    def _concat_buffer(self):
        if len(self._buf) == 1:
            ci, cj, cs = self._buf[0]
        else:
            ci = np.concatenate([b[0] for b in self._buf])
            cj = np.concatenate([b[1] for b in self._buf])
            cs = np.concatenate([b[2] for b in self._buf])
        self._buf = []
        self._buffered = 0
        return ci, cj, cs

    def _refine_chunk(self, ci, cj, cs) -> None:
        with self._timers.phase("REF"):
            centers = self._times[cs]
            radii = interval_radii(self._population, ci, cj, self._ref_cell)
            tele = RefTelemetry()
            keep, tca, pca = refine_batch(
                self._population,
                ci,
                cj,
                centers,
                radii,
                self._config.threshold_km,
                tol=self._config.brent_tol,
                telemetry=tele,
            )
            self._timers.ref.merge(tele)
            self._hits.append((ci[keep], cj[keep], tca, pca))
            if self._keep_per_record:
                hit = np.zeros(len(ci), dtype=bool)
                hit[keep] = True
                tca_rec = np.full(len(ci), np.nan)
                pca_rec = np.full(len(ci), np.nan)
                tca_rec[keep] = tca
                pca_rec[keep] = pca
                self._per_record.append((hit, tca_rec, pca_rec))
        self.chunks += 1

    def finish(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Refine the trailing partial chunk and return the raw hits."""
        if self._buffered:
            self._refine_chunk(*self._concat_buffer())
        if not self._hits:
            e = np.empty(0, dtype=np.int64)
            f = np.empty(0, dtype=np.float64)
            return e, e.copy(), f, f.copy()
        return (
            np.concatenate([h[0] for h in self._hits]),
            np.concatenate([h[1] for h in self._hits]),
            np.concatenate([h[2] for h in self._hits]),
            np.concatenate([h[3] for h in self._hits]),
        )

    def per_record_results(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Stream-aligned ``(hit, tca, pca)`` (requires ``keep_per_record``)."""
        if not self._keep_per_record:
            raise RuntimeError("refiner was not built with keep_per_record=True")
        if not self._per_record:
            return (
                np.empty(0, dtype=bool),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.float64),
            )
        return (
            np.concatenate([r[0] for r in self._per_record]),
            np.concatenate([r[1] for r in self._per_record]),
            np.concatenate([r[2] for r in self._per_record]),
        )


#: Per-pair verdicts of the hybrid consumer's one-time filter pass.
_DROPPED, _COPLANAR, _NONCOPLANAR = 0, 1, 2


class HybridRoundConsumer:
    """Incremental COP + REF for the pipelined hybrid variant.

    Each unique pair is filtered exactly once, at its first sighting in
    the record stream; the verdict (dropped / coplanar / non-coplanar) is
    cached for every later record of that pair.  Coplanar records stream
    into a :class:`ChunkedRefiner` (the emission-order mask of a cached
    verdict commutes with the barrier's whole-stream mask, so the chunk
    stream is identical); non-coplanar pairs get their node-window scan at
    first sighting, and the rows are stably re-sorted into ascending
    pair-key order at :meth:`finish` — the order the barrier's
    ``unique_pairs()`` walk produces.
    """

    def __init__(
        self, population, times: np.ndarray, ref_cell: float, config, timers: PhaseTimer
    ) -> None:
        from repro.filters.apogee_perigee import apogee_perigee_filter
        from repro.filters.chain import FilterChain
        from repro.filters.orbit_path import orbit_path_filter

        self._population = population
        self._config = config
        self._timers = timers
        self.refiner = ChunkedRefiner(population, times, ref_cell, config, timers)
        self.chain = FilterChain()
        self.chain.add(
            "apogee_perigee",
            lambda pop, pi, pj: apogee_perigee_filter(pop, pi, pj, config.threshold_km),
        )
        self.chain.add(
            "orbit_path",
            lambda pop, pi, pj: orbit_path_filter(
                pop, pi, pj, config.threshold_km, config.coplanar_tol_rad
            ),
        )
        self._verdict: "dict[int, int]" = {}
        self._noncop_rows: "list[tuple]" = []
        self.records_total = 0
        self.cop_records = 0
        self.surv_pairs = 0
        self.cop_pairs = 0
        self.noncop_pairs = 0

    @property
    def unique_pairs(self) -> int:
        return len(self._verdict)

    def feed_batch(self, rec_i: np.ndarray, rec_j: np.ndarray, rec_step: np.ndarray) -> None:
        if len(rec_i) == 0:
            return
        self.records_total += len(rec_i)
        pkeys = rec_i.astype(np.uint64) | (rec_j.astype(np.uint64) << np.uint64(_ID_BITS))
        uniq, inverse = np.unique(pkeys, return_inverse=True)
        fresh = [k for k in uniq.tolist() if k not in self._verdict]
        if fresh:
            self._classify_fresh_pairs(np.asarray(fresh, dtype=np.uint64))
        verd = np.fromiter(
            (self._verdict[k] for k in uniq.tolist()), dtype=np.int8, count=len(uniq)
        )[inverse]
        cop = verd == _COPLANAR
        self.cop_records += int(cop.sum())
        self.refiner.feed_batch(rec_i[cop], rec_j[cop], rec_step[cop])

    def _classify_fresh_pairs(self, fresh_keys: np.ndarray) -> None:
        from repro.detection.hybrid import _refine_noncoplanar
        from repro.filters.coplanarity import coplanar_mask

        mask = np.uint64((1 << _ID_BITS) - 1)
        pi = (fresh_keys & mask).astype(np.int64)
        pj = (fresh_keys >> np.uint64(_ID_BITS)).astype(np.int64)
        with self._timers.phase("COP"):
            for k in fresh_keys.tolist():
                self._verdict[k] = _DROPPED
            surv_i, surv_j = self.chain.apply(self._population, pi, pj)
            coplanar = (
                coplanar_mask(
                    self._population, surv_i, surv_j, self._config.coplanar_tol_rad
                )
                if len(surv_i)
                else np.zeros(0, dtype=bool)
            )
            surv_keys = surv_i.astype(np.uint64) | (
                surv_j.astype(np.uint64) << np.uint64(_ID_BITS)
            )
            for k, is_cop in zip(surv_keys.tolist(), coplanar.tolist()):
                self._verdict[k] = _COPLANAR if is_cop else _NONCOPLANAR
            self.surv_pairs += len(surv_i)
            self.cop_pairs += int(coplanar.sum())
            self.noncop_pairs += int((~coplanar).sum())
        nn_i = surv_i[~coplanar]
        nn_j = surv_j[~coplanar]
        if len(nn_i):
            with self._timers.phase("REF"):
                ni, nj, ntca, npca = _refine_noncoplanar(
                    self._population,
                    nn_i,
                    nn_j,
                    self._config,
                    "vectorized",
                    telemetry=self._timers.ref,
                )
            if len(ni):
                self._noncop_rows.append((ni, nj, ntca, npca))

    def finish(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Raw hits: coplanar chunk results, then pair-key-sorted scans."""
        ci, cj, ctca, cpca = self.refiner.finish()
        if self._noncop_rows:
            ni = np.concatenate([r[0] for r in self._noncop_rows])
            nj = np.concatenate([r[1] for r in self._noncop_rows])
            ntca = np.concatenate([r[2] for r in self._noncop_rows])
            npca = np.concatenate([r[3] for r in self._noncop_rows])
            # Pairs were scanned in first-sighting order; the barrier scans
            # them in ascending pair-key order.  A stable sort restores it
            # (rows within one pair keep their window order).
            order = np.argsort(
                ni.astype(np.uint64) | (nj.astype(np.uint64) << np.uint64(_ID_BITS)),
                kind="stable",
            )
            ni, nj, ntca, npca = ni[order], nj[order], ntca[order], npca[order]
        else:
            ni = np.empty(0, dtype=np.int64)
            nj = np.empty(0, dtype=np.int64)
            ntca = np.empty(0, dtype=np.float64)
            npca = np.empty(0, dtype=np.float64)
        return (
            np.concatenate([ci, ni]),
            np.concatenate([cj, nj]),
            np.concatenate([ctca, ntca]),
            np.concatenate([cpca, npca]),
        )


class ConsumerRunner:
    """Drive a consumer from round callbacks, threaded or inline.

    Threaded mode owns one ``repro-ref-consumer`` thread draining a
    :class:`CandidateQueue`; inline mode calls the consumer synchronously
    from :meth:`offer_round` (the serial-consumer arm of the differential
    suite, and the sensible choice on one core).  The consumer object
    needs ``feed_batch(i, j, step)`` and ``finish()``.
    """

    def __init__(self, consumer, threaded: bool, queue_rounds: int) -> None:
        self._consumer = consumer
        self._threaded = threaded
        self._exc: "BaseException | None" = None
        self.rounds_offered = 0
        self.queue = CandidateQueue(queue_rounds) if threaded else None
        self._thread = None
        if threaded:
            self._thread = threading.Thread(
                target=self._drain, name="repro-ref-consumer", daemon=True
            )
            self._thread.start()

    def _drain(self) -> None:
        try:
            while True:
                batch = self.queue.get()
                if batch is None:
                    return
                self._consumer.feed_batch(*batch)
        except BaseException as exc:  # noqa: BLE001 — re-raised in finish()
            self._exc = exc
            self.queue.mark_broken()

    def offer_round(self, ci: np.ndarray, cj: np.ndarray, gsteps: np.ndarray) -> None:
        """CD hook: dedup/sort one round's raw emissions and hand them off.

        Raises :class:`PipelineBrokenError` if the consumer has failed —
        the producer loop should stop; :meth:`finish` re-raises the cause.
        """
        batch = sorted_unique_records(ci, cj, gsteps)
        self.rounds_offered += 1
        if self._threaded:
            self.queue.put(batch)
        else:
            self._consumer.feed_batch(*batch)

    def abort(self) -> None:
        """Producer died: stop the consumer without masking the cause."""
        if self._threaded:
            self.queue.close(abort=True)
            self._thread.join()

    def finish(self):
        """Close the stream, join, re-raise consumer errors, finalise."""
        if self._threaded:
            self.queue.close()
            self._thread.join()
            if self._exc is not None:
                raise self._exc
        return self._consumer.finish()

    def stats(self) -> PipelineStats:
        refiner = getattr(self._consumer, "refiner", self._consumer)
        return PipelineStats(
            consumer="thread" if self._threaded else "inline",
            rounds=self.rounds_offered,
            records=getattr(self._consumer, "records_total", refiner.records_fed),
            ref_chunks=refiner.chunks,
            queue_capacity_rounds=self.queue.max_rounds if self._threaded else 0,
            queue_peak_rounds=self.queue.peak_depth if self._threaded else 0,
            backpressure_waits=self.queue.backpressure_waits if self._threaded else 0,
        )
