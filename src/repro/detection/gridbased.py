"""The purely grid-based conjunction-detection variant (Sections III/IV).

Pipeline (the paper's step structure):

1. **ALLOC** — size the grid hash set, entry pool and conjunction map.
2. **INS** — per sampling step, propagate every satellite and insert it
   into the step's grid (data-parallel or thread-parallel).
3. **CD** — emit candidate pairs from occupied cells and their
   neighbourhoods into the conjunction map, deduplicated per step.
4. **REF** — Brent-refine every (pair, step) record to its PCA/TCA and keep
   the sub-threshold minima.
"""
from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.detection.pca_tca import (
    PairDistanceScalar,
    interval_radii,
    merge_conjunctions,
    refine_batch,
    refine_candidate,
)
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.obs.collect import observe_coherence, observe_conjmap, observe_grid
from repro.obs.tracer import NULL_SPAN, NULL_TRACER
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer, RefTelemetry, parallel_for, resolve_backend
from repro.perfmodel.memory import (
    coherence_budget_bytes,
    conjunction_capacity,
    plan_memory,
)
from repro.spatial.conjmap import ConjunctionMap, ConjunctionMapFullError
from repro.spatial.grid import UniformGrid, cell_size_km
from repro.spatial.hashing import MAX_ROUND_STEPS
from repro.spatial.vectorgrid import CoherentPairEmitter, SortedGrid, VectorHashGrid


def screen_grid(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    backend: str = "vectorized",
    tracer=NULL_TRACER,
    metrics=None,
) -> ScreeningResult:
    """Run the grid-based variant; see module docstring for the pipeline.

    ``tracer`` receives the run's span tree (phases, rounds); ``metrics``
    — a :class:`repro.obs.metrics.MetricsRegistry` — receives the hot
    structures' health counters and the candidate funnel.  Both default to
    off with negligible overhead.
    """
    backend = resolve_backend(backend)
    if config.schedule == "pipelined" and backend != "vectorized":
        raise ValueError(
            "schedule='pipelined' requires the vectorized backend (the fused "
            f"round loop is the producer), got backend={backend!r}"
        )
    timers = PhaseTimer(tracer=tracer)
    n = len(population)

    with timers.phase("ALLOC"):
        # The grid bins positions with the (precision-padded) cell; REF
        # search intervals keep using the unpadded Eq. (1) cell so the
        # refinement of a given record is identical across precisions.
        cell = cell_size_km(
            config.threshold_km, config.seconds_per_sample, precision=config.precision
        )
        ref_cell = cell_size_km(config.threshold_km, config.seconds_per_sample)
        times = config.sample_times()
        conj = _make_conjmap(n, config, "grid", config.seconds_per_sample)
        propagator = Propagator(
            population, solver=config.solver, precision=config.precision
        )
        ids = np.arange(n, dtype=np.int64)
        plan = None
        round_size = None
        if config.memory_budget_bytes is not None:
            plan = plan_memory(
                n,
                config.seconds_per_sample,
                config.duration_s,
                config.threshold_km,
                "grid",
                config.memory_budget_bytes,
                auto_adjust=False,
                precision=config.precision,
            )
            round_size = plan.parallel_steps

    if config.schedule == "pipelined":
        return _screen_grid_pipelined(
            population, config, backend, tracer, metrics, timers,
            cell, ref_cell, times, conj, propagator, ids, plan, round_size,
        )

    with tracer.span("phase:GRID"):
        conj = collect_grid_candidates(
            propagator, ids, times, cell, conj, config, backend, timers,
            round_size=round_size, tracer=tracer, metrics=metrics,
        )
    if metrics is not None:
        observe_conjmap(metrics, conj)

    with timers.phase("REF"):
        rec_i, rec_j, rec_step = conj.records()
        n_records = len(rec_i)
        centers = times[rec_step]
        radii = interval_radii(population, rec_i, rec_j, ref_cell)
        sieved_away = 0
        if config.use_smart_sieve and len(rec_i):
            keep = sieve_records(
                propagator, rec_i, rec_j, centers, radii, config.threshold_km
            )
            sieved_away = int((~keep).sum())
            rec_i, rec_j = rec_i[keep], rec_j[keep]
            centers, radii = centers[keep], radii[keep]
        i, j, tca, pca = refine_records(
            population, rec_i, rec_j, centers, radii, config, backend,
            telemetry=timers.ref,
        )
        raw_hits = len(i)
        i, j, tca, pca = merge_conjunctions(i, j, tca, pca, config.tca_merge_tol_s)

    if metrics is not None:
        metrics.counter(f"screen.precision_{config.precision}").add(1)
        funnel = metrics.funnel("screen")
        funnel.record("emit", metrics.counter("cd.pairs_emitted").value, n_records)
        funnel.record("sieve", n_records, n_records - sieved_away)
        funnel.record("refine", n_records - sieved_away, raw_hits)
        funnel.record("merge", raw_hits, len(i))

    return ScreeningResult(
        method="grid",
        backend=backend,
        i=i,
        j=j,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=len(rec_i),
        timers=timers,
        metrics=metrics,
        extra={
            "cell_size_km": cell,
            "ref_cell_size_km": ref_cell,
            "precision": config.precision,
            "schedule": "barrier",
            "n_steps": len(times),
            "conjunction_map_capacity": conj.capacity,
            "conjunction_records": conj.size,
            "memory_plan": plan,
            "sieved_records": sieved_away,
            "ref_telemetry": timers.ref.as_dict(),
        },
    )


def _screen_grid_pipelined(
    population, config, backend, tracer, metrics, timers,
    cell, ref_cell, times, conj, propagator, ids, plan, round_size,
) -> ScreeningResult:
    """The grid variant on the pipelined schedule (DESIGN.md §13).

    The fused round loop is unchanged — same grids, same emissions, same
    conjunction map — but each round's deduplicated record batch is also
    handed to a REF consumer the moment CD finishes it, so refinement
    overlaps the next rounds' INS/CD instead of waiting for the window.
    The propagation runs under its own per-thread :class:`PhaseTimer`
    (``ins_timers``), as does the consumer (``ref_timers``); both merge
    into the run's timers at the end, keeping span totals and timer
    totals consistent across the three tracks.
    """
    from repro.detection.pipeline import (
        ChunkedRefiner,
        ConsumerRunner,
        PipelineBrokenError,
    )
    from repro.obs.collect import observe_pipeline
    from repro.perfmodel.memory import pipeline_queue_bytes

    ins_timers = PhaseTimer(tracer=tracer)
    ref_timers = PhaseTimer(tracer=tracer)
    refiner = ChunkedRefiner(population, times, ref_cell, config, timers=ref_timers)
    runner = ConsumerRunner(
        refiner,
        threaded=(config.pipeline_consumer == "thread"),
        queue_rounds=config.pipeline_queue_rounds,
    )
    with tracer.span("phase:GRID"):
        try:
            conj = collect_grid_candidates(
                propagator, ids, times, cell, conj, config, backend, timers,
                round_size=round_size, tracer=tracer, metrics=metrics,
                on_round=runner.offer_round, worker_timers=ins_timers,
            )
        except PipelineBrokenError:
            pass  # the consumer's own exception is re-raised by finish()
        except BaseException:
            runner.abort()
            raise
    i, j, tca, pca = runner.finish()
    raw_hits = len(i)
    n_records = refiner.records_fed
    with timers.phase("REF"):
        i, j, tca, pca = merge_conjunctions(i, j, tca, pca, config.tca_merge_tol_s)
    timers.merge(ins_timers)
    timers.merge(ref_timers)

    stats = runner.stats()
    if metrics is not None:
        observe_conjmap(metrics, conj)
        observe_pipeline(metrics, stats)
        metrics.counter(f"screen.precision_{config.precision}").add(1)
        funnel = metrics.funnel("screen")
        funnel.record("emit", metrics.counter("cd.pairs_emitted").value, n_records)
        funnel.record("sieve", n_records, n_records)
        funnel.record("refine", n_records, raw_hits)
        funnel.record("merge", raw_hits, len(i))

    return ScreeningResult(
        method="grid",
        backend=backend,
        i=i,
        j=j,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=n_records,
        timers=timers,
        metrics=metrics,
        extra={
            "cell_size_km": cell,
            "ref_cell_size_km": ref_cell,
            "precision": config.precision,
            "schedule": "pipelined",
            "pipeline": stats.as_dict(),
            "pipeline_queue_bytes": pipeline_queue_bytes(
                len(population),
                config.seconds_per_sample,
                config.duration_s,
                config.threshold_km,
                "grid",
                round_size if round_size is not None else 16,
                config.pipeline_queue_rounds,
            ),
            "n_steps": len(times),
            "conjunction_map_capacity": conj.capacity,
            "conjunction_records": conj.size,
            "memory_plan": plan,
            "sieved_records": 0,
            "ref_telemetry": timers.ref.as_dict(),
        },
    )


def _make_conjmap(
    n: int, config: ScreeningConfig, variant: str, seconds_per_sample: float
) -> ConjunctionMap:
    capacity = conjunction_capacity(
        n, seconds_per_sample, config.duration_s, config.threshold_km, variant
    )
    return ConjunctionMap(capacity)


@dataclass(frozen=True)
class RoundDescriptor:
    """One fused round's step slice — the lightweight unit of round work.

    A shard (or a single-device run) is described by a list of these
    instead of a population-sized payload: global step indices plus their
    absolute sample times.  ``steps`` maps a grid's within-round step
    labels back to global step numbers (``steps[csteps]``), which is what
    keeps record step indices global no matter how the rounds are sliced
    or sharded.
    """

    index: int
    #: Global sampling-step indices of this slice (round-robin shards are
    #: strided; single-device rounds are contiguous).
    steps: np.ndarray
    #: Absolute sample times of those steps.
    times: np.ndarray


def shard_round_descriptors(
    times: np.ndarray, steps: np.ndarray, round_size: int
) -> "list[RoundDescriptor]":
    """Slice a shard's step list into fused-round descriptors.

    ``steps`` holds *global* step indices (a ``partition_steps`` shard, or
    ``arange(len(times))`` for a single device); each descriptor covers up
    to ``round_size`` of them.  An empty shard yields no descriptors.
    """
    if round_size <= 0:
        raise ValueError(f"round_size must be positive, got {round_size}")
    steps = np.asarray(steps, dtype=np.int64)
    out = []
    for index, start in enumerate(range(0, len(steps), round_size)):
        sl = steps[start : start + round_size]
        out.append(RoundDescriptor(index=index, steps=sl, times=times[sl]))
    return out


def stream_round_positions(
    propagator: Propagator,
    descriptors: "list[RoundDescriptor]",
    timers: PhaseTimer,
    prefetch: bool = True,
    worker_timers: "PhaseTimer | None" = None,
):
    """Yield ``(descriptor, positions)`` through a bounded double buffer.

    While the consumer runs round ``k``'s grid build and pair emission,
    one background thread propagates round ``k+1``'s positions — numpy's
    ufuncs release the GIL, so INS genuinely overlaps CD.  The buffer is
    bounded at one round in flight (two position slices resident: the one
    being consumed and the one being filled), which is exactly what
    :func:`repro.perfmodel.memory.plan_stream_rounds` budgets.

    Propagation order is strictly sequential — slice ``k+1`` is only
    submitted once slice ``k``'s solve returned — so the warm-start cache
    sees the identical solve sequence as the unprefetched loop and the
    positions are bit-identical to it.  The ``INS`` timer records only the
    time the consumer actually *waits* for a prefetched slice.

    ``worker_timers`` (the pipelined schedule) moves the INS accounting to
    the prefetch thread instead: every propagation — including the first —
    runs inside ``worker_timers.phase("INS")`` *on that thread*, so the
    spans land on their own trace track and record the solve's real
    duration; the consumer's waits go untimed (they are idle, not INS).
    ``worker_timers`` must not be the consumer's timer — PhaseTimer is not
    thread-safe, which is exactly why it is a separate instance.
    """
    if not descriptors:
        return
    if not prefetch or len(descriptors) == 1:
        for rd in descriptors:
            with timers.phase("INS"):
                positions = propagator.positions_batch(rd.times)
            yield rd, positions
        return

    if worker_timers is not None:
        def _solve(ts):
            with worker_timers.phase("INS"):
                return propagator.positions_batch(ts)
    else:
        _solve = propagator.positions_batch

    with ThreadPoolExecutor(max_workers=1) as pool:
        if worker_timers is not None:
            positions = pool.submit(_solve, descriptors[0].times).result()
        else:
            with timers.phase("INS"):
                positions = propagator.positions_batch(descriptors[0].times)
        for k, rd in enumerate(descriptors):
            pending = (
                pool.submit(_solve, descriptors[k + 1].times)
                if k + 1 < len(descriptors)
                else None
            )
            yield rd, positions
            if pending is not None:
                if worker_timers is not None:
                    positions = pending.result()
                else:
                    with timers.phase("INS"):
                        positions = pending.result()


def collect_grid_candidates(
    propagator: Propagator,
    ids: np.ndarray,
    times: np.ndarray,
    cell: float,
    conj: ConjunctionMap,
    config: ScreeningConfig,
    backend: str,
    timers: PhaseTimer,
    round_size: "int | None" = None,
    fused: bool = True,
    tracer=NULL_TRACER,
    metrics=None,
    on_round=None,
    worker_timers: "PhaseTimer | None" = None,
) -> ConjunctionMap:
    """Steps 2-3: per computation round, build grids and record candidates.

    Shared by the grid-based and hybrid variants (which differ only in the
    sampling step / cell size feeding this loop and in what happens to the
    records afterwards).  On conjunction-map overflow the map is regrown
    and the interrupted step (or round) replayed — the runtime analogue of
    the paper's "treat the Extra-P model as a base size assumption".  Only
    :class:`ConjunctionMapFullError` triggers that recovery: a grid
    hash-map overflow raised in the same phase is a sizing bug and must
    propagate, not regrow the wrong structure and replay forever.

    ``round_size`` is the Section V-B parallelisation factor ``p``: that
    many steps are processed per computation round.  On the vectorized
    backend (with ``fused``, the default) the whole round is one fused
    pass: one batched Kepler solve over ``p * n`` lanes, one multi-step
    grid build keyed by compound (step, cell) keys, one pair emission and
    one conjunction-map batch merge — no Python loop over the round's
    steps.  The serial and threads backends (and ``fused=False``) keep the
    per-step loop as the reference semantics; the differential tests prove
    both paths emit the identical record set.  ``None`` chooses a default
    round size.

    ``on_round`` (the pipelined schedule's CD→REF seam) is called once per
    fused round with the raw emissions ``(ci, cj, global_steps)`` *after*
    they are safely in the conjunction map, outside the CD timer — queue
    backpressure inside the hook must read as idle time, not as CD.
    ``worker_timers`` is forwarded to :func:`stream_round_positions`.
    Both hooks require the fused vectorized path: the per-step loop has no
    round granularity to hand over.
    """
    if round_size is None:
        round_size = 16 if backend == "vectorized" else 1
    round_size = max(1, min(round_size, len(times), MAX_ROUND_STEPS))

    if (on_round is not None or worker_timers is not None) and not (
        backend == "vectorized" and fused
    ):
        raise ValueError(
            "round hooks (on_round / worker_timers) require the fused "
            f"vectorized path, got backend={backend!r}, fused={fused}"
        )

    trace_rounds = tracer.enabled

    # The temporal-coherence emitter only serves the vectorized grids
    # (SortedGrid / VectorHashGrid); the serial and threads backends keep
    # the reference per-object emission the differential tests pin it to.
    emitter = None
    if backend == "vectorized" and config.use_coherence:
        emitter = CoherentPairEmitter(
            len(ids),
            budget_bytes=coherence_budget_bytes(len(ids), config.memory_budget_bytes),
        )

    if backend == "vectorized" and fused:
        descriptors = shard_round_descriptors(
            times, np.arange(len(times), dtype=np.int64), round_size
        )
        for rd, positions in stream_round_positions(
            propagator, descriptors, timers, worker_timers=worker_timers
        ):
            span = (
                tracer.span("round", start_step=int(rd.steps[0]), n_steps=len(rd.steps))
                if trace_rounds
                else NULL_SPAN
            )
            with span:
                with timers.phase("INS"):
                    grid = _build_round_grid(ids, positions, cell, config)
                with timers.phase("CD"):
                    if emitter is not None:
                        ci, cj, csteps = emitter.round_pairs(grid)
                    else:
                        ci, cj, csteps = grid.candidate_pair_steps()
                    gsteps = rd.steps[csteps]
                    # Insert-only overflow replay: the emitted arrays are
                    # already in hand, so a full map only costs a regrow and
                    # a batch retry — never a second Kepler solve or grid
                    # build (insert_batch raises before mutating).
                    while True:
                        try:
                            conj.insert_batch(ci, cj, gsteps)
                            break
                        except ConjunctionMapFullError:
                            conj = _regrow(conj, incoming=len(ci), metrics=metrics)
                if metrics is not None:
                    metrics.counter("cd.pairs_emitted").add(len(ci))
                    metrics.counter("cd.rounds").add(1)
                    observe_grid(metrics, grid, precision=config.precision)
                if on_round is not None:
                    on_round(ci, cj, gsteps)
        if metrics is not None and emitter is not None:
            observe_coherence(metrics, emitter.stats)
        return conj

    step = 0
    round_start = -1
    round_positions: "np.ndarray | None" = None
    while step < len(times):
        chunk_start = (step // round_size) * round_size
        span = (
            tracer.span("round", start_step=step, n_steps=1)
            if trace_rounds
            else NULL_SPAN
        )
        with span:
            if chunk_start != round_start:
                with timers.phase("INS"):
                    chunk = times[chunk_start : chunk_start + round_size]
                    round_positions = propagator.positions_batch(chunk)
                round_start = chunk_start
            with timers.phase("INS"):
                positions = round_positions[step - round_start]
                grid = _build_grid(ids, positions, cell, config, backend)
            with timers.phase("CD"):
                if backend == "vectorized":
                    if emitter is not None:
                        ci, cj, _ = emitter.round_pairs(grid)
                    else:
                        ci, cj = grid.candidate_pairs()
                    emitted = len(ci)
                    while True:
                        try:
                            conj.insert_batch(ci, cj, step)
                            break
                        except ConjunctionMapFullError:
                            conj = _regrow(conj, incoming=emitted, metrics=metrics)
                else:
                    if backend == "threads":
                        # Section IV-A3: non-empty slots are examined in
                        # parallel, each thread inserting into the shared map.
                        pairs = grid.candidate_pairs_parallel(n_threads=config.n_threads)
                    else:
                        pairs = grid.candidate_pairs()
                    emitted = len(pairs)
                    # Resume from the failing pair after a mid-step overflow
                    # — the step's earlier inserts are already in the
                    # regrown map, so replaying from pair 0 (as the seed
                    # code did) only re-walks slots for dedup to discard.
                    k = 0
                    while k < emitted:
                        a, b = pairs[k]
                        try:
                            conj.insert(a, b, step)
                        except ConjunctionMapFullError:
                            conj = _regrow(conj, incoming=emitted - k, metrics=metrics)
                            continue
                        k += 1
            if metrics is not None:
                metrics.counter("cd.pairs_emitted").add(emitted)
                metrics.counter("cd.rounds").add(1)
                observe_grid(metrics, grid, precision=config.precision)
        step += 1
    if metrics is not None and emitter is not None:
        observe_coherence(metrics, emitter.stats)
    return conj


def _build_round_grid(ids, positions, cell, config: ScreeningConfig):
    """One multi-step grid covering a whole round (positions ``(p, n, 3)``)."""
    lanes = positions.shape[0] * len(ids)
    if config.grid_impl == "hashmap":
        grid = VectorHashGrid(cell, capacity=lanes)
    else:
        grid = SortedGrid(cell)
    grid.build_rounds(ids, positions)
    return grid


def _build_grid(ids, positions, cell, config: ScreeningConfig, backend: str):
    if backend == "vectorized":
        if config.grid_impl == "hashmap":
            grid = VectorHashGrid(cell, capacity=len(ids))
        else:
            grid = SortedGrid(cell)
        grid.build(ids, positions)
        return grid
    grid = UniformGrid(cell, capacity=len(ids))
    if backend == "threads":
        def insert_range(start: int, end: int) -> None:
            for k in range(start, end):
                grid.insert(int(ids[k]), positions[k])

        parallel_for(insert_range, len(ids), n_threads=config.n_threads)
    else:
        grid.insert_batch(ids, positions)
    return grid


def _next_pow2(x: int) -> int:
    """Smallest power of two >= ``x`` (1 for non-positive ``x``)."""
    return 1 if x <= 1 else 1 << (x - 1).bit_length()


def _regrow(old: ConjunctionMap, incoming: int = 0, metrics=None) -> ConjunctionMap:
    """Regrow an overflowed conjunction map in **one** step.

    Sized to ``max(2·capacity, next_pow2(records + incoming))``: a round
    whose candidate batch dwarfs the current capacity regrows once instead
    of doubling (and replaying the whole round) log2 times.  ``incoming``
    is the size of the batch whose insertion overflowed — an upper bound,
    since deduplication may absorb part of it.
    """
    capacity = max(old.capacity * 2, _next_pow2(old.size + incoming))
    new = ConjunctionMap(capacity)
    i, j, step = old.records()
    new.insert_batch(i, j, step)
    if metrics is not None:
        metrics.counter("conjmap.regrows").add(1)
    return new


def sieve_records(
    propagator: Propagator,
    rec_i: np.ndarray,
    rec_j: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
    threshold_km: float,
) -> np.ndarray:
    """Smart-sieve keep-mask over (pair, step) records (Section II, [17]).

    For each record the pair's relative state at the sample time is tested
    against the linear-motion minimum over the record's refinement
    interval ``[c - r, c + r]``, padded for gravitational curvature; a
    record whose segment provably stays above the threshold needs no Brent
    search.  States are computed once per distinct sample time.

    Records are grouped by sample time with one stable argsort and
    contiguous CSR slices (like the grids' ``_group_sorted``) — the old
    per-unique-time ``centers == t`` full scans were O(records × unique
    steps), quadratic over a fine-sampled span.
    """
    from repro.filters.smart_sieve import curvature_pad_km
    from repro.spatial.vectorgrid import _group_sorted

    keep = np.ones(len(rec_i), dtype=bool)
    order = np.argsort(centers, kind="stable")
    uniq_t, start, counts = _group_sorted(centers[order])
    for g in range(len(uniq_t)):
        t = uniq_t[g]
        sel = order[start[g] : start[g] + counts[g]]
        pos, vel = propagator.states(float(t))
        ii = rec_i[sel]
        jj = rec_j[sel]
        dr = pos[ii] - pos[jj]
        dv = vel[ii] - vel[jj]
        r = radii[sel]
        # Linear minimum over [-r, +r] around the sample (anchor tau at the
        # unconstrained vertex, clamped into the symmetric interval).
        vv = np.einsum("ij,ij->i", dv, dv)
        rv = np.einsum("ij,ij->i", dr, dv)
        tau = np.clip(np.where(vv > 1e-300, -rv / np.maximum(vv, 1e-300), 0.0), -r, r)
        closest = dr + dv * tau[:, None]
        d_min = np.sqrt(np.einsum("ij,ij->i", closest, closest))
        r_orbit = np.minimum(
            np.sqrt(np.einsum("ij,ij->i", pos[ii], pos[ii])),
            np.sqrt(np.einsum("ij,ij->i", pos[jj], pos[jj])),
        )
        pad = 1.5 * curvature_pad_km(r_orbit, float(r.max()))
        keep[sel] = d_min <= threshold_km + pad
    return keep


#: Lane count of one REF chunk.  The chunk grid is *fixed* — independent of
#: backend and thread count — so every backend hands the identical lane
#: batches to the identical kernel and the refined record set is
#: bit-for-bit reproducible across serial/threads/vectorized.
REF_CHUNK_LANES = 16384


def refine_records(
    population: OrbitalElementsArray,
    rec_i: np.ndarray,
    rec_j: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
    config: ScreeningConfig,
    backend: str,
    telemetry: "RefTelemetry | None" = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Step 4: PCA/TCA for every (pair, step) record (shared with hybrid).

    All backends route through the convergence-aware batch engine
    (:func:`repro.detection.pca_tca.refine_batch` with active-lane
    compaction and warm-started Kepler solves) over a fixed chunk grid:
    the serial backend walks the chunks in order, the threads backend
    spreads them over the pool, the vectorized backend is simply the same
    loop with chunk-sized batches.  ``config.ref_engine = "scalar"`` keeps
    the per-candidate Brent oracle for the serial/threads backends — the
    reference the differential tests hold the batch engine against.
    """
    if len(rec_i) == 0:
        e = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return e, e.copy(), f, f.copy()

    if backend != "vectorized" and config.ref_engine == "scalar":
        return _refine_records_scalar(
            population, rec_i, rec_j, centers, radii, config, backend, telemetry
        )

    n = len(rec_i)
    bounds = [(s, min(s + REF_CHUNK_LANES, n)) for s in range(0, n, REF_CHUNK_LANES)]
    results: "list[tuple | None]" = [None] * len(bounds)
    chunk_tele: "list[RefTelemetry | None]" = [None] * len(bounds)

    def refine_chunks(first: int, last: int) -> None:
        for c in range(first, last):
            s, e = bounds[c]
            tele = RefTelemetry() if telemetry is not None else None
            keep, tca, pca = refine_batch(
                population,
                rec_i[s:e],
                rec_j[s:e],
                centers[s:e],
                radii[s:e],
                config.threshold_km,
                tol=config.brent_tol,
                telemetry=tele,
            )
            results[c] = (keep + s, tca, pca)
            chunk_tele[c] = tele

    n_threads = config.n_threads if backend == "threads" else 1
    parallel_for(refine_chunks, len(bounds), n_threads=n_threads)
    if telemetry is not None:
        for tele in chunk_tele:
            if tele is not None:
                telemetry.merge(tele)

    keep = np.concatenate([r[0] for r in results])
    tca = np.concatenate([r[1] for r in results])
    pca = np.concatenate([r[2] for r in results])
    return rec_i[keep], rec_j[keep], tca, pca


def _refine_records_scalar(
    population: OrbitalElementsArray,
    rec_i: np.ndarray,
    rec_j: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
    config: ScreeningConfig,
    backend: str,
    telemetry: "RefTelemetry | None" = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """The scalar Brent oracle: one candidate at a time (pre-PR-2 path)."""

    def refine_range(start: int, end: int):
        out = []
        for k in range(start, end):
            dist = PairDistanceScalar(population, int(rec_i[k]), int(rec_j[k]))
            hit = refine_candidate(
                dist,
                float(centers[k]),
                float(radii[k]),
                config.threshold_km,
                tol=config.brent_tol,
                telemetry=telemetry,
            )
            if hit is not None:
                out.append((int(rec_i[k]), int(rec_j[k]), hit[0], hit[1]))
        return out

    n_threads = config.n_threads if backend == "threads" else 1
    chunks = parallel_for(refine_range, len(rec_i), n_threads=n_threads)
    flat = [rec for chunk in chunks for rec in chunk]
    if not flat:
        e = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return e, e.copy(), f, f.copy()
    arr = np.array(flat, dtype=np.float64)
    return (
        arr[:, 0].astype(np.int64),
        arr[:, 1].astype(np.int64),
        arr[:, 2],
        arr[:, 3],
    )
