"""Kd-tree screening variant: the related-work comparator end to end.

Implements the Budianto-Ho-style pipeline [29] on this library's
substrate: per sampling step, build a Kd-tree over the propagated
positions, emit all pairs within the coverage radius, and refine like the
grid variant.  Exists to measure the paper's claim that per-step tree
construction loses to the hash grid (see the data-structure ablation
bench); it is *correct* — it finds the same conjunctions — just slower.
"""
from __future__ import annotations

import numpy as np

from repro.detection.gridbased import refine_records
from repro.detection.pca_tca import interval_radii, merge_conjunctions
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.obs.collect import observe_conjmap
from repro.obs.tracer import NULL_TRACER
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.perfmodel.memory import conjunction_capacity
from repro.spatial.conjmap import ConjunctionMap
from repro.spatial.grid import cell_size_km
from repro.spatial.hashmap import HashMapFullError
from repro.spatial.kdtree import KDTree


def screen_kdtree(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    tracer=NULL_TRACER,
    metrics=None,
) -> ScreeningResult:
    """Kd-tree counterpart of :func:`repro.detection.gridbased.screen_grid`.

    The query radius equals the grid's cell size ``g_c`` (Eq. 1): any pair
    that would share or neighbour a grid cell at the decisive sample is
    within ``g_c`` at that sample, so completeness matches the grid
    variant's guarantee.  ``tracer`` / ``metrics`` are the optional
    ``repro.obs`` instruments, threaded exactly like the other three
    methods: phase spans ride the timer, and the run emits the
    structure-health counters plus the ``screen`` candidate funnel.
    """
    if tracer is None:
        tracer = NULL_TRACER
    timers = PhaseTimer(tracer=tracer)
    pairs_emitted = 0
    n = len(population)
    with timers.phase("ALLOC"):
        radius = cell_size_km(config.threshold_km, config.seconds_per_sample)
        times = config.sample_times()
        conj = ConjunctionMap(
            conjunction_capacity(
                n, config.seconds_per_sample, config.duration_s, config.threshold_km, "grid"
            )
        )
        propagator = Propagator(population, solver=config.solver)
        ids = np.arange(n, dtype=np.int64)

    build_time = 0.0
    step = 0
    while step < len(times):
        t = float(times[step])
        with timers.phase("INS"):
            positions = propagator.positions(t)
            import time as _time

            t0 = _time.perf_counter()
            tree = KDTree(positions)
            build_time += _time.perf_counter() - t0
        try:
            with timers.phase("CD"):
                pi, pj = tree.pairs_within(radius)
                conj.insert_batch(ids[pi], ids[pj], step)
                pairs_emitted += len(pi)
        except HashMapFullError:
            bigger = ConjunctionMap(conj.capacity * 2)
            ri, rj, rs = conj.records()
            for s in np.unique(rs):
                m = rs == s
                bigger.insert_batch(ri[m], rj[m], int(s))
            conj = bigger
            continue
        step += 1

    with timers.phase("REF"):
        rec_i, rec_j, rec_step = conj.records()
        centers = times[rec_step]
        radii = interval_radii(population, rec_i, rec_j, radius)
        i, j, tca, pca = refine_records(
            population, rec_i, rec_j, centers, radii, config, "vectorized"
        )
        raw_hits = len(i)
        i, j, tca, pca = merge_conjunctions(i, j, tca, pca, config.tca_merge_tol_s)

    if metrics is not None:
        observe_conjmap(metrics, conj)
        metrics.counter("cd.pairs_emitted").add(pairs_emitted)
        metrics.counter(f"screen.precision_{config.precision}").add(1)
        funnel = metrics.funnel("screen")
        funnel.record("emit", pairs_emitted, len(rec_i))
        funnel.record("refine", len(rec_i), raw_hits)
        funnel.record("merge", raw_hits, len(i))

    return ScreeningResult(
        method="kdtree",
        backend="vectorized",
        i=i,
        j=j,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=len(rec_i),
        timers=timers,
        metrics=metrics,
        extra={
            "query_radius_km": radius,
            "n_steps": len(times),
            "tree_build_seconds": build_time,
            "conjunction_records": conj.size,
        },
    )
