"""The Cube method: statistical (volumetric) conjunction-rate estimation.

Related work of Section II (Liou et al. [21]): instead of deterministic
screening, the Cube method samples *uniformly random* points in time,
randomises every object's position along its orbit (uniform mean
anomaly), bins the positions into cubic volumes, and accumulates a
kinetic-theory collision rate for each pair sharing a cube:

.. math::
    \\dot P_{ij} = s_i \\, s_j \\, v_{rel} \\, \\sigma \\, dU

with residence probabilities ``s = 1/dU`` per occupied cube of volume
``dU``, relative speed ``v_rel`` and collision cross-section ``sigma``.

The paper dismisses the method for its purpose because it "can not be
used to generate deterministic conjunctions ... and [is] not suited for
the simulation of large satellite constellations" (Lewis et al. [22]):
with randomised anomalies, two *phased* satellites sharing an orbit —
which never physically meet — still co-occupy cubes and accrue a rate.
``tests/detection/test_cube.py`` reproduces exactly that limitation.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import TWO_PI
from repro.obs.tracer import NULL_TRACER
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.spatial.vectorgrid import SortedGrid


@dataclass(frozen=True)
class CubeEstimate:
    """Outcome of a Cube-method run."""

    #: Expected number of conjunctions per second, summed over all pairs.
    total_rate_per_s: float
    #: Pair -> accumulated rate (only pairs that ever shared a cube).
    pair_rates: "dict[tuple[int, int], float]"
    #: Monte-Carlo samples taken.
    n_samples: int
    cube_size_km: float

    def expected_conjunctions(self, span_s: float) -> float:
        """Expected conjunction count over a span (rate x time)."""
        if span_s <= 0.0:
            raise ValueError(f"span must be positive, got {span_s}")
        return self.total_rate_per_s * span_s


def cube_estimate(
    population: OrbitalElementsArray,
    cube_size_km: float = 10.0,
    n_samples: int = 200,
    collision_radius_km: float = 2.0,
    seed: "int | None" = None,
    tracer=NULL_TRACER,
    metrics=None,
) -> CubeEstimate:
    """Run the Cube method over a population.

    Each Monte-Carlo sample draws independent uniform mean anomalies for
    every object (the method's defining randomisation), bins positions
    into cubes of ``cube_size_km`` via the library's sorted grid, and adds
    ``v_rel * sigma / dU`` for every cohabiting pair.

    ``tracer`` / ``metrics`` are the ``repro.obs`` instruments every other
    detection entry point already takes: the run emits ``phase:INS``
    (anomaly randomisation + propagation) and ``phase:CD`` (binning +
    rate accumulation) spans under a ``cube`` span, plus the ``screen``
    candidate funnel (grid pairs → same-cube pairs → distinct rated
    pairs) and a ``cube.samples`` counter.
    """
    if cube_size_km <= 0.0:
        raise ValueError(f"cube size must be positive, got {cube_size_km}")
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if collision_radius_km <= 0.0:
        raise ValueError(f"collision radius must be positive, got {collision_radius_km}")
    if tracer is None:
        tracer = NULL_TRACER
    rng = np.random.default_rng(seed)
    n = len(population)
    sigma = np.pi * collision_radius_km**2  # collision cross-section, km^2
    du = cube_size_km**3
    ids = np.arange(n, dtype=np.int64)
    timers = PhaseTimer(tracer=tracer)
    grid_pairs = 0
    cohabiting_pairs = 0

    pair_rates: "dict[tuple[int, int], float]" = {}
    with tracer.span("cube", objects=n, samples=n_samples):
        for _ in range(n_samples):
            with timers.phase("INS"):
                randomized = OrbitalElementsArray(
                    a=population.a,
                    e=population.e,
                    i=population.i,
                    raan=population.raan,
                    argp=population.argp,
                    m0=rng.uniform(0.0, TWO_PI, size=n),
                )
                prop = Propagator(randomized)
                pos, vel = prop.states(0.0)
            with timers.phase("CD"):
                grid = SortedGrid(cube_size_km)
                grid.build(ids, pos)
                # Cube uses *same-cube* cohabitation only (no
                # neighbourhoods): reuse the grid's intra-cell machinery
                # by dropping cross pairs.
                pi, pj = grid.candidate_pairs()
                grid_pairs += len(pi)
                if len(pi) == 0:
                    continue
                same_cube = (
                    np.all(
                        np.floor(pos[pi] / cube_size_km)
                        == np.floor(pos[pj] / cube_size_km),
                        axis=1,
                    )
                )
                pi, pj = pi[same_cube], pj[same_cube]
                cohabiting_pairs += len(pi)
                v_rel = np.linalg.norm(vel[pi] - vel[pj], axis=1)
                rates = v_rel * sigma / du
                for a, b, r in zip(pi.tolist(), pj.tolist(), rates.tolist()):
                    key = (a, b)
                    pair_rates[key] = pair_rates.get(key, 0.0) + r

    # Average over samples.
    pair_rates = {k: v / n_samples for k, v in pair_rates.items()}
    if metrics is not None:
        metrics.counter("cube.samples").add(n_samples)
        metrics.counter("cd.pairs_emitted").add(cohabiting_pairs)
        funnel = metrics.funnel("screen")
        funnel.record("same_cube", grid_pairs, cohabiting_pairs)
        funnel.record("rate", cohabiting_pairs, len(pair_rates))
    return CubeEstimate(
        total_rate_per_s=float(sum(pair_rates.values())),
        pair_rates=pair_rates,
        n_samples=n_samples,
        cube_size_km=cube_size_km,
    )
