"""The legacy baseline: all-on-all deterministic filter chain.

The traditional conjunction-detection structure the paper compares against
(after Burgis et al. [45]): every unordered pair of objects enters a chain
of orbital filters — apogee/perigee, then orbit path — and each surviving
pair is searched numerically for sub-threshold distance minima, either
over the time-filter overlap windows (``use_time_filter=True``) or over
the whole screening span.

Runtime is inherently O(n^2) in the pair-generation and filter stages —
the quadratic wall the grid variants tear down.  Pair generation is
chunked so memory stays bounded for large populations.
"""
from __future__ import annotations

import numpy as np

from repro.detection.pca_tca import merge_conjunctions
from repro.detection.scan import scan_pair_windows
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.filters.apogee_perigee import apogee_perigee_filter
from repro.filters.chain import FilterChain
from repro.filters.coplanarity import coplanar_mask, plane_angles
from repro.filters.orbit_path import _node_anomalies, orbit_path_filter
from repro.filters.time_filter import pair_overlap_windows
from repro.obs.tracer import NULL_SPAN, NULL_TRACER
from repro.orbits.elements import OrbitalElementsArray
from repro.parallel.backend import PhaseTimer

#: Row-block width of the chunked pair generation: bounds the peak pair
#: array size at roughly ``_BLOCK * n`` entries.
_BLOCK = 256


def iter_pair_blocks(n: int, block: int = _BLOCK):
    """Yield the upper triangle of the n x n pair matrix in row blocks."""
    for r0 in range(0, n, block):
        r1 = min(r0 + block, n)
        rows = np.arange(r0, r1, dtype=np.int64)
        lengths = n - rows - 1
        total = int(lengths.sum())
        if total == 0:
            continue
        pair_i = np.repeat(rows, lengths)
        offsets = np.concatenate([np.arange(r + 1, n, dtype=np.int64) for r in rows])
        yield pair_i, offsets


def screen_legacy(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    tracer=NULL_TRACER,
    metrics=None,
) -> ScreeningResult:
    """Run the single-threaded legacy baseline.

    ``tracer`` / ``metrics`` are the optional ``repro.obs`` instruments;
    the chunked filter blocks become ``round`` spans and their per-stage
    counts accumulate into one funnel.
    """
    timers = PhaseTimer(tracer=tracer)
    n = len(population)
    funnel = metrics.funnel("screen") if metrics is not None else None
    total_pairs = n * (n - 1) // 2
    if funnel is not None:
        funnel.record("pairs", total_pairs, total_pairs)
    chain = FilterChain()
    chain.add(
        "apogee_perigee",
        lambda pop, pi, pj: apogee_perigee_filter(pop, pi, pj, config.threshold_km),
    )
    chain.add(
        "orbit_path",
        lambda pop, pi, pj: orbit_path_filter(
            pop, pi, pj, config.threshold_km, config.coplanar_tol_rad
        ),
    )

    if funnel is not None:
        chain.attach_funnel(funnel)

    with timers.phase("FILTER"):
        surv_i_parts: "list[np.ndarray]" = []
        surv_j_parts: "list[np.ndarray]" = []
        trace_rounds = tracer.enabled
        for block, (pair_i, pair_j) in enumerate(iter_pair_blocks(n)):
            span = (
                tracer.span("round", block=block, n_pairs=len(pair_i))
                if trace_rounds
                else NULL_SPAN
            )
            with span:
                keep_i, keep_j = chain.apply(population, pair_i, pair_j)
            if len(keep_i):
                surv_i_parts.append(keep_i)
                surv_j_parts.append(keep_j)
        if surv_i_parts:
            surv_i = np.concatenate(surv_i_parts)
            surv_j = np.concatenate(surv_j_parts)
        else:
            surv_i = np.empty(0, dtype=np.int64)
            surv_j = np.empty(0, dtype=np.int64)

    with timers.phase("REF"):
        hits: "list[tuple[int, int, float, float]]" = []
        if len(surv_i):
            coplanar = coplanar_mask(population, surv_i, surv_j, config.coplanar_tol_rad)
            windows_full = [(0.0, config.duration_s)]
            if config.use_time_filter:
                noncop = np.nonzero(~coplanar)[0]
                nu_i, nu_j = _node_anomalies(population, surv_i[noncop], surv_j[noncop])
                angles = plane_angles(population, surv_i[noncop], surv_j[noncop])
                s_alpha = np.maximum(np.sin(angles), 1e-12)
                w_i = np.arcsin(
                    np.clip(
                        config.threshold_km / (population.perigee[surv_i[noncop]] * s_alpha),
                        0.0,
                        1.0,
                    )
                )
                w_j = np.arcsin(
                    np.clip(
                        config.threshold_km / (population.perigee[surv_j[noncop]] * s_alpha),
                        0.0,
                        1.0,
                    )
                )
                w_i = np.maximum(2.0 * w_i, np.radians(0.5))
                w_j = np.maximum(2.0 * w_j, np.radians(0.5))
            for k in range(len(surv_i)):
                a, b = int(surv_i[k]), int(surv_j[k])
                if config.use_time_filter and not coplanar[k]:
                    pos = int(np.searchsorted(noncop, k))
                    windows = pair_overlap_windows(
                        population[a],
                        population[b],
                        float(nu_i[pos]),
                        float(nu_j[pos]),
                        float(w_i[pos]),
                        float(w_j[pos]),
                        span_s=config.duration_s,
                        pad_s=30.0,
                    )
                else:
                    windows = windows_full
                for tca, pca in scan_pair_windows(
                    population,
                    a,
                    b,
                    windows,
                    config.threshold_km,
                    samples_per_period=config.legacy_samples_per_period,
                    brent_tol=config.brent_tol,
                    telemetry=timers.ref,
                ):
                    hits.append((a, b, tca, pca))

        raw_hits = len(hits)
        if hits:
            arr = np.array(hits, dtype=np.float64)
            i = arr[:, 0].astype(np.int64)
            j = arr[:, 1].astype(np.int64)
            tca = arr[:, 2]
            pca = arr[:, 3]
            i, j, tca, pca = merge_conjunctions(i, j, tca, pca, config.tca_merge_tol_s)
        else:
            i = np.empty(0, dtype=np.int64)
            j = np.empty(0, dtype=np.int64)
            tca = np.empty(0, dtype=np.float64)
            pca = np.empty(0, dtype=np.float64)

    if funnel is not None:
        funnel.record("scan", len(surv_i), raw_hits)
        funnel.record("merge", raw_hits, len(i))

    return ScreeningResult(
        method="legacy",
        backend="serial",
        i=i,
        j=j,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=len(surv_i),
        timers=timers,
        filter_stats=chain.stats(),
        metrics=metrics,
        extra={
            "total_pairs": total_pairs,
            "surviving_pairs": len(surv_i),
            "ref_telemetry": timers.ref.as_dict(),
        },
    )
