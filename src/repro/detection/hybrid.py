"""The hybrid conjunction-detection variant (grid + classical filters).

The grid runs with a *coarser* sampling step (larger cells, fewer steps,
more candidates per step — Section III: "effectively trading time for
space").  Candidates then pass through the classical orbital filters:

* apogee/perigee filter,
* orbit-path filter,
* coplanarity classification (its own timed phase, Section V-C1).

Surviving non-coplanar pairs get their PCA/TCA search intervals from the
orbital geometry — the time-filter overlap windows around the mutual nodes
— while coplanar pairs fall back to the grid-style per-step interval
(Section IV-C).
"""
from __future__ import annotations

import math

import numpy as np

from repro.detection.gridbased import (
    _make_conjmap,
    collect_grid_candidates,
    refine_records,
)
from repro.detection.pca_tca import interval_radii, merge_conjunctions
from repro.detection.scan import scan_pair_windows
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.filters.apogee_perigee import apogee_perigee_filter
from repro.filters.chain import FilterChain
from repro.filters.coplanarity import coplanar_mask
from repro.filters.orbit_path import _node_anomalies, orbit_path_filter
from repro.filters.time_filter import pair_overlap_windows
from repro.obs.collect import observe_conjmap
from repro.obs.tracer import NULL_TRACER
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer, parallel_for, resolve_backend
from repro.perfmodel.memory import plan_memory
from repro.spatial.grid import cell_size_km


def screen_hybrid(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    backend: str = "vectorized",
    tracer=NULL_TRACER,
    metrics=None,
) -> ScreeningResult:
    """Run the hybrid variant; see module docstring for the pipeline.

    ``tracer`` / ``metrics`` are the optional ``repro.obs`` instruments
    (span tree, structure health, candidate funnel); both default to off.
    """
    backend = resolve_backend(backend)
    if config.schedule == "pipelined" and backend != "vectorized":
        raise ValueError(
            "schedule='pipelined' requires the vectorized backend (the fused "
            f"round loop is the producer), got backend={backend!r}"
        )
    timers = PhaseTimer(tracer=tracer)
    n = len(population)

    with timers.phase("ALLOC"):
        sps = config.hybrid_seconds_per_sample
        plan = None
        if config.memory_budget_bytes is not None:
            plan = plan_memory(
                n,
                sps,
                config.duration_s,
                config.threshold_km,
                "hybrid",
                config.memory_budget_bytes,
                precision=config.precision,
            )
            sps = plan.seconds_per_sample
        # Padded cell for the float32 grid build; unpadded cell for the
        # refinement intervals (see screen_grid).
        cell = cell_size_km(config.threshold_km, sps, precision=config.precision)
        ref_cell = cell_size_km(config.threshold_km, sps)
        times = config.sample_times(sps)
        conj = _make_conjmap(n, config, "hybrid", sps)
        propagator = Propagator(
            population, solver=config.solver, precision=config.precision
        )
        ids = np.arange(n, dtype=np.int64)

    if config.schedule == "pipelined":
        return _screen_hybrid_pipelined(
            population, config, backend, tracer, metrics, timers,
            cell, ref_cell, times, conj, propagator, ids, plan, sps,
        )

    with tracer.span("phase:GRID"):
        conj = collect_grid_candidates(
            propagator, ids, times, cell, conj, config, backend, timers,
            round_size=plan.parallel_steps if plan is not None else None,
            tracer=tracer, metrics=metrics,
        )
    if metrics is not None:
        observe_conjmap(metrics, conj)
        metrics.counter(f"screen.precision_{config.precision}").add(1)
    funnel = metrics.funnel("screen") if metrics is not None else None

    with timers.phase("COP"):
        rec_i, rec_j, rec_step = conj.records()
        uniq_i, uniq_j = conj.unique_pairs()
        if funnel is not None:
            funnel.record(
                "emit", metrics.counter("cd.pairs_emitted").value, len(rec_i)
            )
            funnel.record("pairs", len(rec_i), len(uniq_i))
        chain = FilterChain()
        chain.add(
            "apogee_perigee",
            lambda pop, pi, pj: apogee_perigee_filter(pop, pi, pj, config.threshold_km),
        )
        chain.add(
            "orbit_path",
            lambda pop, pi, pj: orbit_path_filter(
                pop, pi, pj, config.threshold_km, config.coplanar_tol_rad
            ),
        )
        if funnel is not None:
            chain.attach_funnel(funnel)
        surv_i, surv_j = chain.apply(population, uniq_i, uniq_j)
        coplanar = (
            coplanar_mask(population, surv_i, surv_j, config.coplanar_tol_rad)
            if len(surv_i)
            else np.zeros(0, dtype=bool)
        )
        if funnel is not None:
            # The classifier splits (coplanar vs not) without dropping pairs.
            funnel.record("classify", len(surv_i), len(surv_i))

    with timers.phase("REF"):
        # Coplanar pairs: grid-style per-(pair, step) refinement.
        cop_set = _pair_set(surv_i[coplanar], surv_j[coplanar])
        noncop_set = _pair_set(surv_i[~coplanar], surv_j[~coplanar])
        rec_mask_cop = _records_in(rec_i, rec_j, cop_set)
        centers = times[rec_step[rec_mask_cop]]
        radii = interval_radii(
            population, rec_i[rec_mask_cop], rec_j[rec_mask_cop], ref_cell
        )
        ci, cj, ctca, cpca = refine_records(
            population,
            rec_i[rec_mask_cop],
            rec_j[rec_mask_cop],
            centers,
            radii,
            config,
            backend,
            telemetry=timers.ref,
        )

        # Non-coplanar pairs: node-window search over the whole span.
        ni, nj, ntca, npca = _refine_noncoplanar(
            population,
            surv_i[~coplanar],
            surv_j[~coplanar],
            config,
            backend,
            telemetry=timers.ref,
        )

        i = np.concatenate([ci, ni])
        j = np.concatenate([cj, nj])
        tca = np.concatenate([ctca, ntca])
        pca = np.concatenate([cpca, npca])
        raw_hits = len(i)
        i, j, tca, pca = merge_conjunctions(i, j, tca, pca, config.tca_merge_tol_s)

    candidates = int(rec_mask_cop.sum()) + len(noncop_set)
    if funnel is not None:
        # Coplanar pairs expand into per-step records; non-coplanar pairs
        # become one node-window scan each.
        funnel.record("expand", len(surv_i), candidates)
        funnel.record("refine", candidates, raw_hits)
        funnel.record("merge", raw_hits, len(i))
    return ScreeningResult(
        method="hybrid",
        backend=backend,
        i=i,
        j=j,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=candidates,
        timers=timers,
        filter_stats=chain.stats(),
        metrics=metrics,
        extra={
            "cell_size_km": cell,
            "ref_cell_size_km": ref_cell,
            "precision": config.precision,
            "schedule": "barrier",
            "n_steps": len(times),
            "seconds_per_sample": sps,
            "memory_plan": plan,
            "conjunction_map_capacity": conj.capacity,
            "conjunction_records": conj.size,
            "grid_pairs": len(uniq_i),
            "filtered_pairs": len(surv_i),
            "coplanar_pairs": int(coplanar.sum()),
            "ref_telemetry": timers.ref.as_dict(),
        },
    )


def _screen_hybrid_pipelined(
    population, config, backend, tracer, metrics, timers,
    cell, ref_cell, times, conj, propagator, ids, plan, sps,
) -> ScreeningResult:
    """The hybrid variant on the pipelined schedule (DESIGN.md §13).

    The round loop streams record batches to a
    :class:`repro.detection.pipeline.HybridRoundConsumer`, which filters
    each unique pair once at first sighting, chunk-refines coplanar
    records in emission order, and node-window-scans non-coplanar pairs —
    all overlapping the producer's INS/CD.  Records, filter statistics and
    final conjunctions are identical to the barrier run; only the
    schedule (and the funnel's single end-of-run accounting pass) differs.
    """
    from repro.detection.pipeline import (
        ConsumerRunner,
        HybridRoundConsumer,
        PipelineBrokenError,
    )
    from repro.obs.collect import observe_pipeline
    from repro.perfmodel.memory import pipeline_queue_bytes

    ins_timers = PhaseTimer(tracer=tracer)
    cons_timers = PhaseTimer(tracer=tracer)
    consumer = HybridRoundConsumer(population, times, ref_cell, config, cons_timers)
    runner = ConsumerRunner(
        consumer,
        threaded=(config.pipeline_consumer == "thread"),
        queue_rounds=config.pipeline_queue_rounds,
    )
    round_size = plan.parallel_steps if plan is not None else None
    with tracer.span("phase:GRID"):
        try:
            conj = collect_grid_candidates(
                propagator, ids, times, cell, conj, config, backend, timers,
                round_size=round_size, tracer=tracer, metrics=metrics,
                on_round=runner.offer_round, worker_timers=ins_timers,
            )
        except PipelineBrokenError:
            pass  # the consumer's own exception is re-raised by finish()
        except BaseException:
            runner.abort()
            raise
    i, j, tca, pca = runner.finish()
    raw_hits = len(i)
    with timers.phase("REF"):
        i, j, tca, pca = merge_conjunctions(i, j, tca, pca, config.tca_merge_tol_s)
    timers.merge(ins_timers)
    timers.merge(cons_timers)

    stats = runner.stats()
    n_records = consumer.records_total
    candidates = consumer.cop_records + consumer.noncop_pairs
    if metrics is not None:
        observe_conjmap(metrics, conj)
        observe_pipeline(metrics, stats)
        metrics.counter(f"screen.precision_{config.precision}").add(1)
        funnel = metrics.funnel("screen")
        funnel.record("emit", metrics.counter("cd.pairs_emitted").value, n_records)
        funnel.record("pairs", n_records, consumer.unique_pairs)
        for name, st in consumer.chain.stats().items():
            funnel.record(f"filter:{name}", st["seen"], st["seen"] - st["excluded"])
        funnel.record("classify", consumer.surv_pairs, consumer.surv_pairs)
        funnel.record("expand", consumer.surv_pairs, candidates)
        funnel.record("refine", candidates, raw_hits)
        funnel.record("merge", raw_hits, len(i))

    return ScreeningResult(
        method="hybrid",
        backend=backend,
        i=i,
        j=j,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=candidates,
        timers=timers,
        filter_stats=consumer.chain.stats(),
        metrics=metrics,
        extra={
            "cell_size_km": cell,
            "ref_cell_size_km": ref_cell,
            "precision": config.precision,
            "schedule": "pipelined",
            "pipeline": stats.as_dict(),
            "pipeline_queue_bytes": pipeline_queue_bytes(
                len(population),
                sps,
                config.duration_s,
                config.threshold_km,
                "hybrid",
                round_size if round_size is not None else 16,
                config.pipeline_queue_rounds,
            ),
            "n_steps": len(times),
            "seconds_per_sample": sps,
            "memory_plan": plan,
            "conjunction_map_capacity": conj.capacity,
            "conjunction_records": conj.size,
            "grid_pairs": consumer.unique_pairs,
            "filtered_pairs": consumer.surv_pairs,
            "coplanar_pairs": consumer.cop_pairs,
            "ref_telemetry": timers.ref.as_dict(),
        },
    )


def _pair_set(i: np.ndarray, j: np.ndarray) -> "set[tuple[int, int]]":
    return set(zip(i.tolist(), j.tolist()))


def _records_in(rec_i: np.ndarray, rec_j: np.ndarray, pairs: "set[tuple[int, int]]") -> np.ndarray:
    if not pairs or len(rec_i) == 0:
        return np.zeros(len(rec_i), dtype=bool)
    return np.fromiter(
        ((int(a), int(b)) in pairs for a, b in zip(rec_i, rec_j)),
        dtype=bool,
        count=len(rec_i),
    )


def _refine_noncoplanar(
    population: OrbitalElementsArray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    config: ScreeningConfig,
    backend: str,
    telemetry=None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Node-window scan of the surviving non-coplanar pairs.

    The search interval comes from the orbital filters (Section IV-C): the
    times when both objects sit inside their anomaly windows around the
    same mutual node.  The windows are padded by one coarse sampling step
    so edge minima are not clipped.
    """
    if len(pair_i) == 0:
        e = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return e, e.copy(), f, f.copy()

    nu_i, nu_j = _node_anomalies(population, pair_i, pair_j)
    from repro.filters.coplanarity import plane_angles  # local to avoid cycle at import

    angles = plane_angles(population, pair_i, pair_j)
    s_alpha = np.maximum(np.sin(angles), 1e-12)
    w_i = np.arcsin(
        np.clip(config.threshold_km / (population.perigee[pair_i] * s_alpha), 0.0, 1.0)
    )
    w_j = np.arcsin(
        np.clip(config.threshold_km / (population.perigee[pair_j] * s_alpha), 0.0, 1.0)
    )
    # Safety margin: double the window, floor it at 0.5 degrees.
    w_i = np.maximum(2.0 * w_i, math.radians(0.5))
    w_j = np.maximum(2.0 * w_j, math.radians(0.5))

    def scan_range(start: int, end: int):
        out = []
        for k in range(start, end):
            a, b = int(pair_i[k]), int(pair_j[k])
            windows = pair_overlap_windows(
                population[a],
                population[b],
                float(nu_i[k]),
                float(nu_j[k]),
                float(w_i[k]),
                float(w_j[k]),
                span_s=config.duration_s,
                pad_s=30.0,
            )
            for tca, pca in scan_pair_windows(
                population,
                a,
                b,
                windows,
                config.threshold_km,
                samples_per_period=config.legacy_samples_per_period,
                brent_tol=config.brent_tol,
                telemetry=telemetry,
            ):
                out.append((a, b, tca, pca))
        return out

    n_threads = config.n_threads if backend == "threads" else 1
    chunks = parallel_for(scan_range, len(pair_i), n_threads=n_threads)
    flat = [rec for chunk in chunks for rec in chunk]
    if not flat:
        e = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return e, e.copy(), f, f.copy()
    arr = np.array(flat, dtype=np.float64)
    return (
        arr[:, 0].astype(np.int64),
        arr[:, 1].astype(np.int64),
        arr[:, 2],
        arr[:, 3],
    )
