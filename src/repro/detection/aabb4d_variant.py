"""Build-once 4D AABB-tree screening variant with an occupancy prefilter.

The grids rebuild their spatial structure at every sampling step; this
variant builds **one** structure per screening window (Bak & Hobbs, arxiv
1901.10475) and removes the per-step build from the hot path entirely:

1. **Broad phase** (INS + CD): propagate float64 positions only at coarse
   *knots* (every ``config.aabb_knot_steps`` steps), wrap each object's
   motion over each knot interval in an error-bounded swept AABB
   (:func:`repro.spatial.aabb4d.swept_boxes`), reject provably-isolated
   boxes with the Rivero-style altitude-shell occupancy bitmap
   (:class:`repro.filters.occupancy.OccupancyBitmap`), and collect the
   surviving boxes' overlaps from one 4D tree self-query.
2. **Narrow phase**: only objects named by some box pair are propagated
   at full sampling resolution (under the config's precision policy), and
   a pair is emitted for a step exactly when the grid's cell-adjacency
   criterion holds — :func:`repro.spatial.vectorgrid.compute_cell_coords`
   is shared with the grids, so the emitted ``(i, j, step)`` records are
   the grids' records, byte for byte.
3. **REF** is the grid variant's refinement verbatim.

Because the swept boxes are padded by one (precision-padded) grid cell
plus the sweep margin, every grid-adjacent pair's boxes overlap (DESIGN.md
§14), making the broad phase a strict superset of the grid's candidates —
completeness comes from geometry, equality from the shared narrow-phase
quantiser.  The differential suite in ``tests/detection/test_aabb4d.py``
pins byte-identical final conjunction sets against the grid oracle across
{sorted, hashmap} × {fp64, mixed} × {serial, processes}.
"""
from __future__ import annotations

import time as _time

import numpy as np

from repro.detection.gridbased import _make_conjmap, _regrow, refine_records, sieve_records
from repro.detection.pca_tca import interval_radii, merge_conjunctions
from repro.detection.types import ScreeningConfig, ScreeningResult
from repro.filters.occupancy import OccupancyBitmap
from repro.obs.collect import observe_conjmap
from repro.obs.tracer import NULL_TRACER
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.perfmodel.memory import plan_memory
from repro.spatial.aabb4d import AABB4DTree, knot_schedule, max_speed_kms, swept_boxes
from repro.spatial.grid import cell_size_km, fp32_cell_pad_km
from repro.spatial.hashmap import HashMapFullError
from repro.spatial.vectorgrid import compute_cell_coords


def screen_aabb4d(
    population: OrbitalElementsArray,
    config: ScreeningConfig,
    tracer=NULL_TRACER,
    metrics=None,
) -> ScreeningResult:
    """Build-once counterpart of :func:`repro.detection.gridbased.screen_grid`.

    Emits the same conjunction records as the grid oracle (and therefore
    byte-identical refined results); the win is the broad phase, which
    propagates ``~n_steps / aabb_knot_steps`` knot positions instead of
    every object at every step and builds one tree instead of one grid
    per step.  ``tracer`` / ``metrics`` are threaded like every other
    variant: phase spans ride the timer, the occupancy prefilter and tree
    stages land in the ``screen`` funnel.
    """
    if tracer is None:
        tracer = NULL_TRACER
    timers = PhaseTimer(tracer=tracer)
    n = len(population)

    with timers.phase("ALLOC"):
        cell = cell_size_km(
            config.threshold_km, config.seconds_per_sample, precision=config.precision
        )
        ref_cell = cell_size_km(config.threshold_km, config.seconds_per_sample)
        times = config.sample_times()
        n_steps = len(times)
        conj = _make_conjmap(n, config, "aabb4d", config.seconds_per_sample)
        knots, starts, ends = knot_schedule(n_steps, config.aabb_knot_steps)
        n_intervals = len(starts)
        plan = None
        if config.memory_budget_bytes is not None:
            plan = plan_memory(
                n,
                config.seconds_per_sample,
                config.duration_s,
                config.threshold_km,
                "aabb4d",
                config.memory_budget_bytes,
                auto_adjust=False,
                precision=config.precision,
                knot_steps=config.aabb_knot_steps,
                occupancy_shell_km=config.occupancy_shell_km,
            )

    # ---- Broad phase: knot propagation + swept boxes (the INS analogue).
    with timers.phase("INS"):
        # Knots are always float64: the sweep margin must bound the true
        # (reference) motion, and the float32 binning deviation is covered
        # by the same PR-5 pad the mixed-precision grid uses.
        knot_prop = Propagator(population, solver=config.solver)
        knot_positions = knot_prop.positions_batch(times[knots])
        pad = cell
        if config.precision == "mixed":
            pad += fp32_cell_pad_km()
        interval_dt = times[ends] - times[starts]
        lo, hi, box_interval, box_obj = swept_boxes(
            knot_positions, interval_dt, max_speed_kms(population), pad
        )

    # ---- Broad phase: occupancy prefilter + one tree build + self-query.
    with timers.phase("CD"):
        bitmap = OccupancyBitmap(
            lo, hi, box_interval, n_intervals, config.occupancy_shell_km
        )
        active = bitmap.active_mask()
        n_boxes = len(lo)
        n_active = int(active.sum())

        t0 = _time.perf_counter()
        tree = AABB4DTree(lo, hi, box_interval)
        build_seconds = _time.perf_counter() - t0

        t0 = _time.perf_counter()
        box_a, box_b = tree.query_self_pairs(active)
        query_seconds = _time.perf_counter() - t0

        # Boxes are interval-major (k * n + o): recover interval + objects
        # and group the candidate pairs by knot interval for the narrow
        # sweep below.  Same-interval overlap is guaranteed by the 4th
        # tree dimension.
        pair_interval = box_a // n
        cand_i = box_a % n
        cand_j = box_b % n
        order = np.argsort(pair_interval, kind="stable")
        pair_interval = pair_interval[order]
        cand_i = cand_i[order]
        cand_j = cand_j[order]
        group_edges = np.searchsorted(pair_interval, np.arange(n_intervals + 1))

        involved = np.unique(np.concatenate([cand_i, cand_j]))

    # ---- Narrow phase: full-resolution sweep of only the involved
    # objects, interval by interval, emitting via the grids' quantiser.
    pairs_emitted = 0
    lanes_checked = 0
    if len(involved):
        with timers.phase("INS"):
            sub_population = population.subset(involved)
            sub_prop = Propagator(
                sub_population, solver=config.solver, precision=config.precision
            )
        sub_i = np.searchsorted(involved, cand_i)
        sub_j = np.searchsorted(involved, cand_j)
        for k in range(n_intervals):
            g0, g1 = group_edges[k], group_edges[k + 1]
            if g0 == g1:
                continue
            # Interval k owns steps [starts[k], ends[k]) half-open — the
            # last interval also owns its end — so each step is checked
            # exactly once across intervals (see knot_schedule).
            s0 = int(starts[k])
            s1 = int(ends[k]) + (1 if k == n_intervals - 1 else 0)
            with timers.phase("INS"):
                positions = sub_prop.positions_batch(times[s0:s1])
            with timers.phase("CD"):
                coords = compute_cell_coords(positions, cell)
                pi = sub_i[g0:g1]
                pj = sub_j[g0:g1]
                delta = np.abs(coords[:, pi, :] - coords[:, pj, :]).max(axis=2)
                step_idx, pair_idx = np.nonzero(delta <= 1)
                lanes_checked += delta.size
                gi = cand_i[g0:g1][pair_idx]
                gj = cand_j[g0:g1][pair_idx]
                gs = s0 + step_idx
                while True:
                    try:
                        conj.insert_batch(gi, gj, gs)
                        break
                    except HashMapFullError:
                        conj = _regrow(conj, incoming=len(gi), metrics=metrics)
                pairs_emitted += len(gi)

    # ---- REF: the grid variant's refinement, verbatim.
    with timers.phase("REF"):
        rec_i, rec_j, rec_step = conj.records()
        n_records = len(rec_i)
        centers = times[rec_step]
        radii = interval_radii(population, rec_i, rec_j, ref_cell)
        sieved_away = 0
        if config.use_smart_sieve and len(rec_i):
            sieve_prop = Propagator(
                population, solver=config.solver, precision=config.precision
            )
            keep = sieve_records(
                sieve_prop, rec_i, rec_j, centers, radii, config.threshold_km
            )
            sieved_away = int((~keep).sum())
            rec_i, rec_j = rec_i[keep], rec_j[keep]
            centers, radii = centers[keep], radii[keep]
        i, j, tca, pca = refine_records(
            population, rec_i, rec_j, centers, radii, config, "vectorized",
            telemetry=timers.ref,
        )
        raw_hits = len(i)
        i, j, tca, pca = merge_conjunctions(i, j, tca, pca, config.tca_merge_tol_s)

    occupancy_rejection = 1.0 - (n_active / n_boxes) if n_boxes else 0.0
    if metrics is not None:
        observe_conjmap(metrics, conj)
        metrics.counter("cd.pairs_emitted").add(pairs_emitted)
        metrics.counter("aabb.boxes").add(n_boxes)
        metrics.counter("aabb.boxes_active").add(n_active)
        metrics.counter("aabb.box_pairs").add(len(box_a))
        metrics.counter(f"screen.precision_{config.precision}").add(1)
        funnel = metrics.funnel("screen")
        funnel.record("occupancy", n_boxes, n_active)
        funnel.record("tree", n_active, len(box_a))
        # Chained in candidate units so the funnel self-check holds:
        # box pairs fan out into per-step lanes inside the narrow stage.
        metrics.counter("cd.lanes_checked").add(lanes_checked)
        funnel.record("narrow", len(box_a), pairs_emitted)
        funnel.record("emit", pairs_emitted, n_records)
        funnel.record("sieve", n_records, n_records - sieved_away)
        funnel.record("refine", n_records - sieved_away, raw_hits)
        funnel.record("merge", raw_hits, len(i))

    return ScreeningResult(
        method="aabb4d",
        backend="vectorized",
        i=i,
        j=j,
        tca_s=tca,
        pca_km=pca,
        candidates_refined=len(rec_i),
        timers=timers,
        metrics=metrics,
        extra={
            "cell_size_km": cell,
            "ref_cell_size_km": ref_cell,
            "precision": config.precision,
            "schedule": "barrier",
            "n_steps": n_steps,
            "knot_steps": config.aabb_knot_steps,
            "n_intervals": n_intervals,
            "n_boxes": n_boxes,
            "n_boxes_active": n_active,
            "occupancy_rejection_rate": occupancy_rejection,
            "occupancy_shell_km": config.occupancy_shell_km,
            "box_pairs": len(box_a),
            "narrow_objects": len(involved),
            "tree_build_seconds": build_seconds,
            "tree_query_seconds": query_seconds,
            "tree_bytes": tree.memory_bytes,
            "bitmap_bytes": bitmap.memory_bytes,
            "conjunction_map_capacity": conj.capacity,
            "conjunction_records": conj.size,
            "memory_plan": plan,
            "sieved_records": sieved_away,
            "ref_telemetry": timers.ref.as_dict(),
        },
    )
