"""PCA/TCA refinement of candidate pairs (Section IV-C).

Every candidate ``(i, j, step)`` becomes a scalar minimisation of the
inter-satellite distance over the interval ``I = [c - t, c + t]``, where
``c`` is the sample time and ``t`` the time the *slower* satellite needs to
cross two grid cells.  A minimum found *at* an interval edge triggers the
paper's probe-and-discard rule: look slightly beyond the edge; if the
distance keeps falling the true minimum belongs to the neighbouring
interval and this candidate is dropped (it will be found there).

Two execution paths:

* :func:`refine_candidate` — scalar Brent, used by the serial / threads
  backends, one candidate at a time;
* :func:`refine_batch` — the data-parallel path: all candidates minimised
  simultaneously with :func:`repro.detection.brent.golden_minimize_batch`.
"""
from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.constants import MU_EARTH, TWO_PI
from repro.detection.brent import brent_minimize, golden_minimize_batch
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.frames import perifocal_to_eci_matrix
from repro.orbits.kepler import solve_kepler_bisect

#: How far beyond an interval edge the probe looks, as a fraction of the
#: interval radius.
EDGE_PROBE_FRACTION = 0.05


def _scalar_kepler(m: float, e: float) -> float:
    """Newton solve of Kepler's equation on Python floats (hot scalar path)."""
    E = m + e * math.sin(m)
    for _ in range(50):
        f = E - e * math.sin(E) - m
        if abs(f) < 1e-13:
            return E
        E -= f / (1.0 - e * math.cos(E))
    return E


class PairDistanceScalar:
    """Distance between two satellites as a scalar function of time.

    Precomputes the perifocal bases once so each evaluation is two scalar
    Kepler solves plus a handful of multiply-adds (the Brent inner loop
    calls this tens of times per candidate).
    """

    __slots__ = ("_dat_i", "_dat_j")

    def __init__(self, population: OrbitalElementsArray, i: int, j: int) -> None:
        self._dat_i = _scalar_orbit_data(population, i)
        self._dat_j = _scalar_orbit_data(population, j)

    def __call__(self, t: float) -> float:
        xi, yi, zi = _scalar_position(self._dat_i, t)
        xj, yj, zj = _scalar_position(self._dat_j, t)
        return math.sqrt((xi - xj) ** 2 + (yi - yj) ** 2 + (zi - zj) ** 2)


def _scalar_orbit_data(pop: OrbitalElementsArray, idx: int):
    rot = perifocal_to_eci_matrix(float(pop.i[idx]), float(pop.raan[idx]), float(pop.argp[idx]))
    a = float(pop.a[idx])
    e = float(pop.e[idx])
    b = a * math.sqrt(1.0 - e * e)
    p_axis = rot[:, 0]
    q_axis = rot[:, 1]
    return (
        float(pop.m0[idx]),
        float(pop.n[idx]),
        e,
        a * p_axis[0], a * p_axis[1], a * p_axis[2],
        b * q_axis[0], b * q_axis[1], b * q_axis[2],
        a * e * p_axis[0], a * e * p_axis[1], a * e * p_axis[2],
    )


def _scalar_position(dat, t: float):
    m0, n, e, pax, pay, paz, qbx, qby, qbz, fox, foy, foz = dat
    m = (m0 + n * t) % TWO_PI
    E = _scalar_kepler(m, e)
    c = math.cos(E)
    s = math.sin(E)
    return (
        pax * c - fox + qbx * s,
        pay * c - foy + qby * s,
        paz * c - foz + qbz * s,
    )


def refine_candidate(
    dist: Callable[[float], float],
    center: float,
    radius: float,
    threshold_km: float,
    tol: float = 1e-6,
    telemetry=None,
) -> "tuple[float, float] | None":
    """Scalar PCA/TCA search on ``[center - radius, center + radius]``.

    Returns ``(tca, pca)`` if a genuine local minimum at or below the
    screening threshold lies in the interval, else ``None`` (either the
    minimum exceeds the threshold, or it sits at an edge with the distance
    still falling beyond — the neighbouring interval's responsibility).
    """
    if radius <= 0.0:
        raise ValueError(f"interval radius must be positive, got {radius}")
    a = center - radius
    b = center + radius
    res = brent_minimize(dist, a, b, tol=tol)
    if telemetry is not None:
        telemetry.record_brent(res.iterations)
    if res.at_edge:
        probe = radius * EDGE_PROBE_FRACTION
        if abs(res.x - a) <= abs(b - res.x):
            beyond = dist(a - probe)
        else:
            beyond = dist(b + probe)
        if beyond < res.fx:
            return None  # still descending: the true minimum is next door
    if res.fx <= threshold_km:
        return res.x, res.fx
    return None


#: Convergence tolerance of the warm-started Newton solve inside the batch
#: distance kernel.  Near-machine tightness matters: the distance function
#: is flat at its minimum, so a residual of 1e-12 in eccentric anomaly can
#: shift the refined TCA by several microseconds — above ``brent_tol``.
#: Newton converges quadratically from a warm start, so the extra decade
#: costs well under one additional iteration per lane on average.
REF_KEPLER_TOL = 1e-14

#: Iteration cap of that solve; unconverged lanes fall back to bisection.
REF_KEPLER_MAX_ITER = 20

#: Newton iterations of the seed's fixed cold kernel (the ablation baseline).
FIXED_KEPLER_ITERS = 10


class BatchPairDistance:
    """Distance of many pairs, each at its own time, in one array op.

    ``__call__(t)`` takes per-pair times ``t`` of shape ``(m,)`` and
    returns the ``(m,)`` distances — the function signature
    :func:`golden_minimize_batch` expects.  ``__call__(t, lanes)`` restricts
    the evaluation to the given lane subset, the contract of the
    compaction mode.  All orbital data is gathered once at construction.

    With ``warm_start`` (the default) each side carries its previous
    eccentric-anomaly solution per lane: golden-section probes move every
    lane's time only slightly between evaluations, so the warm Newton solve
    needs 1–2 iterations instead of the fixed 10 cold iterations of the
    seed kernel (``warm_start=False`` preserves those numerics exactly, as
    the ablation baseline).
    """

    def __init__(
        self,
        population: OrbitalElementsArray,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        warm_start: bool = True,
        telemetry=None,
    ) -> None:
        self._side_i = _BatchSide(population, pair_i, warm_start, telemetry)
        self._side_j = _BatchSide(population, pair_j, warm_start, telemetry)

    def __call__(self, t: np.ndarray, lanes: "np.ndarray | None" = None) -> np.ndarray:
        diff = self._side_i.positions(t, lanes)
        np.subtract(diff, self._side_j.positions(t, lanes), out=diff)
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))


class _BatchSide:
    """Gathered orbit data of one side of a pair batch."""

    __slots__ = ("m0", "n", "e", "pa", "qb", "foc", "warm_start", "telemetry", "_E")

    def __init__(
        self, pop: OrbitalElementsArray, idx: np.ndarray, warm_start: bool = True,
        telemetry=None,
    ) -> None:
        rot = perifocal_to_eci_matrix(pop.i[idx], pop.raan[idx], pop.argp[idx])
        a = pop.a[idx]
        e = pop.e[idx]
        b = a * np.sqrt(1.0 - e * e)
        self.m0 = pop.m0[idx]
        self.n = pop.n[idx]
        self.e = e
        self.pa = rot[:, :, 0] * a[:, None]
        self.qb = rot[:, :, 1] * b[:, None]
        self.foc = rot[:, :, 0] * (a * e)[:, None]
        self.warm_start = warm_start
        self.telemetry = telemetry
        #: Per-lane eccentric anomaly of the previous evaluation.
        self._E: "np.ndarray | None" = None

    def positions(self, t: np.ndarray, lanes: "np.ndarray | None" = None) -> np.ndarray:
        if lanes is None:
            m0, n, e = self.m0, self.n, self.e
            pa, qb, foc = self.pa, self.qb, self.foc
            warm = self._E if self.warm_start else None
        else:
            m0, n, e = self.m0[lanes], self.n[lanes], self.e[lanes]
            pa, qb, foc = self.pa[lanes], self.qb[lanes], self.foc[lanes]
            warm = self._E[lanes] if self.warm_start and self._E is not None else None
        m = np.mod(m0 + n * t, TWO_PI)
        E = self._solve(m, e, warm)
        if self.warm_start:
            if self._E is None:
                self._E = np.zeros(len(self.m0), dtype=np.float64)
                self._E[:] = self.m0  # neutral seed for lanes never evaluated
            if lanes is None:
                self._E[:] = E
            else:
                self._E[lanes] = E
        c = np.cos(E)[:, None]
        s = np.sin(E)[:, None]
        out = pa * c
        np.subtract(out, foc, out=out)
        out += qb * s
        return out

    def _solve(self, m: np.ndarray, e: np.ndarray, warm: "np.ndarray | None") -> np.ndarray:
        if not self.warm_start:
            # The seed's fixed-iteration cold kernel, byte-for-byte: the
            # ablation baseline of benchmarks/test_ref_compaction.py.
            E = m + e * np.sin(m)
            for _ in range(FIXED_KEPLER_ITERS):
                f = E - e * np.sin(E) - m
                E = E - f / (1.0 - e * np.cos(E))
            if self.telemetry is not None:
                self.telemetry.record_kepler(m.size, FIXED_KEPLER_ITERS * m.size)
            return E
        # Warm-started convergence-checked Newton with preallocated scratch
        # (allocation-free per iteration).  ``E0 = M + e sin(E_prev)`` is
        # wrap-safe: the periodic term e sin E is what varies slowly.
        E = m + e * np.sin(m if warm is None else warm)
        f = np.empty_like(E)
        fp = np.empty_like(E)
        absf = np.empty_like(E)
        converged = np.zeros(E.shape, dtype=bool)
        active = np.empty(E.shape, dtype=bool)
        iterations = 0
        for iterations in range(1, REF_KEPLER_MAX_ITER + 1):
            np.sin(E, out=f)
            np.multiply(e, f, out=f)
            np.subtract(E, f, out=f)
            np.subtract(f, m, out=f)  # residual
            np.abs(f, out=absf)
            np.less(absf, REF_KEPLER_TOL, out=converged)
            if converged.all():
                break
            np.cos(E, out=fp)
            np.multiply(e, fp, out=fp)
            np.subtract(1.0, fp, out=fp)
            np.divide(f, fp, out=f)
            np.clip(f, -1.0, 1.0, out=f)
            np.logical_not(converged, out=active)
            np.multiply(f, active, out=f)
            np.subtract(E, f, out=E)
        if self.telemetry is not None:
            self.telemetry.record_kepler(m.size, iterations * m.size)
        if not converged.all():
            # Post-update recheck, then the guaranteed fallback.
            resid = np.abs(E - e * np.sin(E) - m)
            bad = ~(resid < REF_KEPLER_TOL)
            if bad.any():
                E[bad] = solve_kepler_bisect(m[bad], e[bad], tol=REF_KEPLER_TOL)
        return E


def interval_radii(
    population: OrbitalElementsArray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    cell_size_km: float,
) -> np.ndarray:
    """Brent interval radius per pair: slower member crossing two cells.

    The slowest possible speed of a satellite on its orbit is the apogee
    speed (vis-viva at ``r = a(1+e)``) — using it makes the interval
    conservative without needing the velocity vector at the sample time.
    """
    v_apo_i = _apogee_speed(population, pair_i)
    v_apo_j = _apogee_speed(population, pair_j)
    v_slow = np.minimum(v_apo_i, v_apo_j)
    return 2.0 * cell_size_km / v_slow


def _apogee_speed(pop: OrbitalElementsArray, idx: np.ndarray) -> np.ndarray:
    r_apo = pop.a[idx] * (1.0 + pop.e[idx])
    return np.sqrt(MU_EARTH * (2.0 / r_apo - 1.0 / pop.a[idx]))


def refine_batch(
    population: OrbitalElementsArray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
    threshold_km: float,
    iterations: int = 60,
    tol: "float | None" = None,
    warm_start: bool = True,
    telemetry=None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Data-parallel PCA/TCA refinement of a candidate batch.

    Returns ``(keep_index, tca, pca)``: positions into the input batch that
    produced an accepted conjunction, with their times and distances.
    Implements the same edge-probe-and-discard rule as the scalar path,
    vectorised: edge minima whose outward probe is lower are dropped.

    ``tol`` switches the golden search into convergence-aware compaction
    (lanes retire once their interval is below ``tol`` seconds; iterations
    run only on the survivors); ``tol=None`` keeps the fixed-iteration
    schedule.  ``warm_start`` selects the warm-started convergence-checked
    Kepler kernel over the seed's fixed cold one.  ``telemetry`` observes
    the engine's work counters.
    """
    if len(pair_i) == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.float64),
        )
    dist = BatchPairDistance(
        population, pair_i, pair_j, warm_start=warm_start, telemetry=telemetry
    )
    a = centers - radii
    b = centers + radii
    x, fx, at_edge = golden_minimize_batch(
        dist, a, b, iterations=iterations, tol=tol, telemetry=telemetry
    )

    discard = np.zeros(len(x), dtype=bool)
    if at_edge.any():
        edge_idx = np.nonzero(at_edge)[0]
        near_lower = (x[edge_idx] - a[edge_idx]) <= (b[edge_idx] - x[edge_idx])
        probe_t = np.where(
            near_lower,
            a[edge_idx] - radii[edge_idx] * EDGE_PROBE_FRACTION,
            b[edge_idx] + radii[edge_idx] * EDGE_PROBE_FRACTION,
        )
        beyond = dist(probe_t, edge_idx)
        discard[edge_idx] = beyond < fx[edge_idx]

    accept = (~discard) & (fx <= threshold_km)
    keep = np.nonzero(accept)[0]
    return keep, x[keep], fx[keep]


def merge_conjunctions(
    i: np.ndarray,
    j: np.ndarray,
    tca: np.ndarray,
    pca: np.ndarray,
    tol_s: float,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Collapse re-detections of the same minimum from adjacent steps.

    Within each pair, TCAs closer than ``tol_s`` are one physical
    conjunction (the overlapping search intervals of neighbouring sampling
    steps both converged to it); the smallest PCA of the cluster is kept.
    Distinct minima of the same pair remain separate conjunctions.
    """
    if len(i) == 0:
        return i, j, tca, pca
    pair_key = i.astype(np.int64) * (int(j.max()) + 1) + j.astype(np.int64)
    order = np.lexsort((tca, pair_key))
    pk = pair_key[order]
    ts = tca[order]
    ps = pca[order]
    new_cluster = np.ones(len(order), dtype=bool)
    new_cluster[1:] = (pk[1:] != pk[:-1]) | ((ts[1:] - ts[:-1]) > tol_s)
    cluster_id = np.cumsum(new_cluster) - 1
    n_clusters = int(cluster_id[-1]) + 1
    best_pca = np.full(n_clusters, np.inf)
    np.minimum.at(best_pca, cluster_id, ps)
    # Representative TCA: the one attaining the cluster's best PCA.
    rep_tca = np.zeros(n_clusters)
    is_best = ps == best_pca[cluster_id]
    # Later writes win; all writers of a cluster share (nearly) the same tca.
    rep_tca[cluster_id[is_best]] = ts[is_best]
    first = np.nonzero(new_cluster)[0]
    return (
        i[order][first],
        j[order][first],
        rep_tca,
        best_pca,
    )
