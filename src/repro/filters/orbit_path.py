"""The orbit-path filter: geometry of two orbits near their mutual nodes.

A close approach of two objects on non-coplanar orbits must happen near the
intersection line of the two orbital planes: for points ``p1`` (plane 1)
and ``p2`` (plane 2) with ``|p1 - p2| <= d``, the distance from ``p1`` to
plane 2 is ``r1 * sin(g1) * sin(alpha)`` (``g1`` the in-plane angle from
the node line, ``alpha`` the dihedral angle), so
``sin(g1) <= d / (r1 * sin(alpha))`` — each object is confined to a small
anomaly window around each node crossing.

Within those windows the 3-D distance is bounded below by the radius
difference (``|p1 - p2| >= | |p1| - |p2| |``), so if the radial intervals
swept by the two orbits over their windows are separated by more than the
threshold at *both* nodes, the pair can never conjunct.  This keeps the
filter strictly conservative, which the test suite verifies against a
sampled orbit-distance oracle.
"""
from __future__ import annotations

import math

import numpy as np

from repro.constants import TWO_PI
from repro.filters.coplanarity import DEFAULT_COPLANAR_TOL_RAD, plane_angles
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.frames import orbit_normal, perifocal_to_eci_matrix


def _node_anomalies(
    population: OrbitalElementsArray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """True anomaly of each pair member at the ascending mutual node.

    Returns ``(nu_i, nu_j)`` for the ``+node`` direction; the descending
    crossing is at ``nu + pi``.  Pairs must be non-coplanar.
    """
    normals = orbit_normal(population.i, population.raan)
    node = np.cross(normals[pair_i], normals[pair_j])
    norm = np.linalg.norm(node, axis=1, keepdims=True)
    node = node / np.maximum(norm, 1e-300)
    rot = perifocal_to_eci_matrix(population.i, population.raan, population.argp)
    nu_i = _direction_anomaly(rot, pair_i, node)
    nu_j = _direction_anomaly(rot, pair_j, node)
    return nu_i, nu_j


def _direction_anomaly(rot: np.ndarray, idx: np.ndarray, direction: np.ndarray) -> np.ndarray:
    x = np.einsum("ij,ij->i", direction, rot[idx, :, 0])
    y = np.einsum("ij,ij->i", direction, rot[idx, :, 1])
    return np.mod(np.arctan2(y, x), TWO_PI)


def _radius_bounds_over_window(
    a: np.ndarray, e: np.ndarray, nu0: np.ndarray, half_width: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Min/max orbit radius over the anomaly window ``[nu0-w, nu0+w]``.

    ``r = p / (1 + e cos nu)`` is monotone in ``cos nu``; the extrema of
    ``cos`` on the interval are at the endpoints or at ``nu = 0 / pi`` if
    the interval covers them.
    """
    p = a * (1.0 - e * e)
    lo = nu0 - half_width
    hi = nu0 + half_width
    cos_lo = np.cos(lo)
    cos_hi = np.cos(hi)
    cos_max = np.maximum(cos_lo, cos_hi)
    cos_min = np.minimum(cos_lo, cos_hi)
    # Does the interval contain an angle congruent to 0 (cos = +1)?
    k_zero = np.ceil(lo / TWO_PI)
    covers_zero = k_zero * TWO_PI <= hi
    cos_max = np.where(covers_zero, 1.0, cos_max)
    # ... or to pi (cos = -1)?
    k_pi = np.ceil((lo - math.pi) / TWO_PI)
    covers_pi = math.pi + k_pi * TWO_PI <= hi
    cos_min = np.where(covers_pi, -1.0, cos_min)
    r_min = p / (1.0 + e * cos_max)
    r_max = p / (1.0 + e * cos_min)
    return r_min, r_max


def orbit_path_filter(
    population: OrbitalElementsArray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    threshold_km: float,
    coplanar_tol_rad: float = DEFAULT_COPLANAR_TOL_RAD,
) -> np.ndarray:
    """Boolean keep-mask: False only for pairs provably unable to conjunct.

    Coplanar pairs (plane angle below ``coplanar_tol_rad``) always survive:
    their node line is ill-defined, so this filter cannot say anything
    about them (the caller routes them to the coplanar handling path).
    """
    if threshold_km <= 0.0:
        raise ValueError(f"threshold must be positive, got {threshold_km}")
    m = len(pair_i)
    if m == 0:
        return np.zeros(0, dtype=bool)

    angles = plane_angles(population, pair_i, pair_j)
    sin_alpha = np.sin(angles)
    coplanar = (angles < coplanar_tol_rad) | (math.pi - angles < coplanar_tol_rad)
    keep = coplanar.copy()

    active = np.nonzero(~coplanar)[0]
    if active.size == 0:
        return keep
    ai = pair_i[active]
    aj = pair_j[active]
    nu_i_asc, nu_j_asc = _node_anomalies(population, ai, aj)

    # Window half-width per member: sin(g) <= d / (r_perigee * sin(alpha)).
    # Perigee is the smallest radius, giving the widest (most conservative)
    # window; a tiny floor keeps the asin argument meaningful.
    s_alpha = np.maximum(sin_alpha[active], 1e-12)
    w_i = np.arcsin(np.clip(threshold_km / (population.perigee[ai] * s_alpha), 0.0, 1.0))
    w_j = np.arcsin(np.clip(threshold_km / (population.perigee[aj] * s_alpha), 0.0, 1.0))

    survive = np.zeros(active.size, dtype=bool)
    for nu_i0, nu_j0 in (
        (nu_i_asc, nu_j_asc),
        (np.mod(nu_i_asc + math.pi, TWO_PI), np.mod(nu_j_asc + math.pi, TWO_PI)),
    ):
        ri_min, ri_max = _radius_bounds_over_window(
            population.a[ai], population.e[ai], nu_i0, w_i
        )
        rj_min, rj_max = _radius_bounds_over_window(
            population.a[aj], population.e[aj], nu_j0, w_j
        )
        gap = np.maximum(ri_min, rj_min) - np.minimum(ri_max, rj_max)
        survive |= gap <= threshold_km
    keep[active] = survive
    return keep
