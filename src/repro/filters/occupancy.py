"""Rivero-style space-occupancy prefilter for the 4D-tree broad phase.

Rivero et al. (arxiv 2309.02379) reject most satellite pairs before any
pairwise work by asking whether two objects ever *occupy* the same coarse
region of space during the same stretch of time.  This module is that
idea specialised to the swept boxes the 4D AABB tree is built from: a
(knot-interval × altitude-shell) occupancy histogram.

Soundness: two boxes can only intersect spatially if their radial ranges
(distance from the geocenter) intersect, and intersecting radial ranges
always share at least one altitude shell.  So a box whose shells are
occupied by *no other box of its interval* — every shell count along its
radial range is exactly one, itself — provably overlaps nothing and can
skip tree descent entirely.  The filter never rejects a real candidate;
it only prunes provably-lonely boxes, which in sparse populations and
eccentric-orbit regimes is most of them.

Implementation is fully vectorised: per-interval shell counts come from a
difference-array range increment (+1 at the box's lowest shell, -1 past
its highest, cumulative-summed), and the "does my range contain a shell
with count ≥ 2" query is a prefix-sum range lookup — O(1) per box.
"""
from __future__ import annotations

import math

import numpy as np

from repro.constants import SIM_HALF_EXTENT

#: Default altitude-shell thickness, km.  Coarse on purpose: the filter
#: only needs to separate non-interacting altitude bands, and a thinner
#: shell grows the histogram without rejecting meaningfully more boxes.
DEFAULT_SHELL_KM = 50.0

#: Largest geocentric distance representable inside the simulation cube
#: (its corner), which bounds the number of shells.
_MAX_RADIUS_KM = math.sqrt(3.0) * SIM_HALF_EXTENT


def box_radial_ranges(lo: np.ndarray, hi: np.ndarray):
    """Per-box ``(r_lo, r_hi)`` geocentric distance bounds, km.

    ``r_lo`` is the distance from the origin to the box (zero if the box
    contains the origin): per axis the gap is ``max(lo, -hi, 0)``.
    ``r_hi`` is the distance to the farthest corner: the norm of the
    per-axis ``max(|lo|, |hi|)``.
    """
    gap = np.maximum(np.maximum(lo, -hi), 0.0)
    r_lo = np.sqrt(np.sum(gap * gap, axis=1))
    far = np.maximum(np.abs(lo), np.abs(hi))
    r_hi = np.sqrt(np.sum(far * far, axis=1))
    return r_lo, r_hi


class OccupancyBitmap:
    """(knot-interval × altitude-shell) occupancy counts with an O(1)
    crowded-range query.

    Built once per window from the same swept boxes the tree indexes;
    :meth:`active_mask` returns the boxes that share at least one shell
    of their interval with another box — the only ones worth descending
    the tree for.
    """

    __slots__ = (
        "n_intervals", "n_shells", "shell_km",
        "_s_lo", "_s_hi", "_interval", "_crowded_prefix",
    )

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        interval: np.ndarray,
        n_intervals: int,
        shell_km: float = DEFAULT_SHELL_KM,
    ) -> None:
        if shell_km <= 0.0:
            raise ValueError(f"shell thickness must be positive, got {shell_km}")
        interval = np.asarray(interval, dtype=np.int64)
        self.n_intervals = int(n_intervals)
        self.shell_km = float(shell_km)
        self.n_shells = int(_MAX_RADIUS_KM / shell_km) + 1

        r_lo, r_hi = box_radial_ranges(np.asarray(lo), np.asarray(hi))
        s_lo = np.minimum((r_lo / shell_km).astype(np.int64), self.n_shells - 1)
        s_hi = np.minimum((r_hi / shell_km).astype(np.int64), self.n_shells - 1)
        self._s_lo = s_lo
        self._s_hi = s_hi
        self._interval = interval

        # Difference-array range increment: counts[k, s] = number of
        # interval-k boxes whose radial range covers shell s.
        diff = np.zeros((self.n_intervals, self.n_shells + 1), dtype=np.int32)
        np.add.at(diff, (interval, s_lo), 1)
        np.add.at(diff, (interval, s_hi + 1), -1)
        counts = np.cumsum(diff[:, :-1], axis=1)

        # Prefix sums of the >=2-occupancy indicator let active_mask ask
        # "any crowded shell in [s_lo, s_hi]?" with two lookups per box.
        crowded = (counts >= 2).astype(np.int32)
        self._crowded_prefix = np.concatenate(
            [
                np.zeros((self.n_intervals, 1), dtype=np.int32),
                # cumsum silently promotes int32 to the platform int;
                # pin the dtype so the table stays at 4 bytes per cell.
                np.cumsum(crowded, axis=1, dtype=np.int32),
            ],
            axis=1,
        )

    @property
    def memory_bytes(self) -> int:
        """Resident footprint of the prefix table and per-box shell data."""
        return (
            self._crowded_prefix.nbytes
            + self._s_lo.nbytes
            + self._s_hi.nbytes
            + self._interval.nbytes
        )

    def active_mask(self) -> np.ndarray:
        """Boolean per-box mask: True iff the box shares a shell.

        A False entry is a proof of isolation — no other box of the same
        knot interval has an overlapping radial range — so the box can be
        dropped from the broad phase without losing any candidate.
        """
        flat = self._crowded_prefix.ravel()
        row = self._interval * self._crowded_prefix.shape[1]
        crowded_in_range = flat[row + self._s_hi + 1] - flat[row + self._s_lo]
        return crowded_in_range > 0
