"""Coplanarity classification of orbit pairs.

The hybrid variant distinguishes coplanar from non-coplanar pairs
(Section IV-C): non-coplanar pairs get their Brent search interval from the
mutual-node geometry, coplanar pairs fall back to the grid-style interval.
The relative-time breakdown of Section V-C1 reports this check as its own
phase ("determining if orbits are coplanar").
"""
from __future__ import annotations

import math

import numpy as np

from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.frames import orbit_normal

#: Default coplanarity tolerance: below this plane angle the mutual node
#: line is too ill-conditioned to aim a filter or a search interval at.
DEFAULT_COPLANAR_TOL_RAD = math.radians(1.0)


def plane_angles(
    population: OrbitalElementsArray, pair_i: np.ndarray, pair_j: np.ndarray
) -> np.ndarray:
    """Angle between the orbital planes of each pair, radians in [0, pi]."""
    normals = orbit_normal(population.i, population.raan)
    cos_ang = np.einsum("ij,ij->i", normals[pair_i], normals[pair_j])
    return np.arccos(np.clip(cos_ang, -1.0, 1.0))


def coplanar_mask(
    population: OrbitalElementsArray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    tol_rad: float = DEFAULT_COPLANAR_TOL_RAD,
) -> np.ndarray:
    """True where the pair's planes are parallel or anti-parallel within tol."""
    ang = plane_angles(population, pair_i, pair_j)
    return (ang < tol_rad) | (math.pi - ang < tol_rad)
