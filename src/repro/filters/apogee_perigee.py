"""The apogee/perigee filter (Hoots et al. 1984).

Every orbit confines its satellite to the radial shell
``[perigee, apogee]``.  If two shells are separated by more than the
screening threshold, the satellites can never come within the threshold of
each other, no matter where on their orbits they are — the cheapest and
first filter of the classical chain.
"""
from __future__ import annotations

import numpy as np

from repro.orbits.elements import OrbitalElementsArray


def apogee_perigee_filter(
    population: OrbitalElementsArray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    threshold_km: float,
) -> np.ndarray:
    """Boolean keep-mask over the given pairs.

    ``True`` means the pair *survives* (cannot be excluded): the radial
    shells, padded by the threshold, overlap —
    ``max(q_i, q_j) - min(Q_i, Q_j) <= d`` with perigee ``q`` and apogee
    ``Q`` (the classical formulation).
    """
    if threshold_km < 0.0:
        raise ValueError(f"threshold must be non-negative, got {threshold_km}")
    apogee = population.apogee
    perigee = population.perigee
    highest_perigee = np.maximum(perigee[pair_i], perigee[pair_j])
    lowest_apogee = np.minimum(apogee[pair_i], apogee[pair_j])
    return highest_perigee - lowest_apogee <= threshold_km
