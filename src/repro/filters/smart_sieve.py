"""The (smart) sieve filter: step-to-step trajectory exclusion.

Section II cites the sieve [Healy 1995] and smart-sieve [Rodriguez et al.
2002] methods: given the propagated Cartesian states of two objects at two
consecutive sample times, cheap kinematic checks decide whether their
trajectories can have crossed within the threshold *between* the samples.
This module implements the two classic checks, vectorised over pair
batches, as an optional extra stage for the hybrid/legacy chains:

1. **Range sieve** — if the separation at both samples exceeds the
   threshold plus the largest possible closing distance over the step
   (relative speed x step), the segment is clean.
2. **Minimum-approach sieve** — treating the relative motion across the
   step as linear, the minimum of ``|dr + v_rel * tau|`` over
   ``tau in [0, dt]`` must undercut an (acceleration-padded) threshold for
   the pair to stay a candidate.
"""
from __future__ import annotations

import numpy as np

from repro.constants import MU_EARTH

#: Padding factor on the linear-motion minimum: absorbs the quadratic
#: (gravity-turn) term of the true relative motion over one step.
_CURVATURE_SAFETY = 1.5


def relative_linear_minimum(
    dr: np.ndarray, dv: np.ndarray, dt: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Min distance and its time for linear relative motion over ``[0, dt]``.

    ``dr``/``dv`` are ``(m, 3)`` relative position (km) and velocity
    (km/s); returns ``(d_min, tau_min)`` arrays.
    """
    if dt <= 0.0:
        raise ValueError(f"step must be positive, got {dt}")
    vv = np.einsum("ij,ij->i", dv, dv)
    rv = np.einsum("ij,ij->i", dr, dv)
    with np.errstate(invalid="ignore", divide="ignore"):
        tau = np.where(vv > 1e-300, -rv / np.maximum(vv, 1e-300), 0.0)
    tau = np.clip(tau, 0.0, dt)
    closest = dr + dv * tau[:, None]
    return np.sqrt(np.einsum("ij,ij->i", closest, closest)), tau


def curvature_pad_km(r_km: np.ndarray, dt: float) -> np.ndarray:
    """Bound on the deviation from linear motion over ``dt``: ``g dt^2 / 2``.

    Uses each pair's smaller orbit radius, where gravity — the only force —
    is strongest; the *relative* acceleration is at most twice the
    single-object value, hence the factor 2 folded in.
    """
    g = MU_EARTH / np.maximum(r_km, 1.0) ** 2
    return g * dt * dt  # 2 * (g dt^2 / 2)


def smart_sieve(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    vel_i: np.ndarray,
    vel_j: np.ndarray,
    dt: float,
    threshold_km: float,
) -> np.ndarray:
    """Keep-mask over pair states at one sample time.

    ``True`` means the pair may undercut ``threshold_km`` somewhere in
    ``[t, t + dt]`` and must stay a candidate; ``False`` is a proven-clean
    segment.  All arrays are ``(m, 3)``.
    """
    if threshold_km <= 0.0:
        raise ValueError(f"threshold must be positive, got {threshold_km}")
    dr = pos_i - pos_j
    dv = vel_i - vel_j

    # Check 1: gross range sieve.
    dist_now = np.sqrt(np.einsum("ij,ij->i", dr, dr))
    rel_speed = np.sqrt(np.einsum("ij,ij->i", dv, dv))
    possibly_close = dist_now <= threshold_km + rel_speed * dt

    # Check 2: linear minimum with curvature padding (only for the
    # survivors of check 1 — the expensive part is already vectorised, but
    # the masking keeps the semantics of a chained sieve).
    keep = possibly_close.copy()
    idx = np.nonzero(possibly_close)[0]
    if idx.size:
        d_min, _ = relative_linear_minimum(dr[idx], dv[idx], dt)
        r_min = np.minimum(
            np.sqrt(np.einsum("ij,ij->i", pos_i[idx], pos_i[idx])),
            np.sqrt(np.einsum("ij,ij->i", pos_j[idx], pos_j[idx])),
        )
        pad = _CURVATURE_SAFETY * curvature_pad_km(r_min, dt)
        keep[idx] = d_min <= threshold_km + pad
    return keep
