"""Classical orbital filters (Section II of the paper).

The legacy baseline passes every satellite pair through this chain; the
hybrid variant applies it to the (far fewer) grid candidates.  All filters
are *conservative*: they only exclude pairs that provably cannot produce a
conjunction under two-body motion, a property the test suite checks against
a sampled orbit-distance oracle.
"""
from repro.filters.apogee_perigee import apogee_perigee_filter
from repro.filters.chain import FilterChain, FilterStage
from repro.filters.coplanarity import coplanar_mask, plane_angles
from repro.filters.orbit_path import orbit_path_filter
from repro.filters.time_filter import node_passage_windows, pair_overlap_windows

__all__ = [
    "FilterChain",
    "FilterStage",
    "apogee_perigee_filter",
    "coplanar_mask",
    "node_passage_windows",
    "orbit_path_filter",
    "pair_overlap_windows",
    "plane_angles",
]
