"""Composable filter chains with per-stage exclusion statistics.

The topological methods of Section II "encompass a series of sequential
filters that ... successively exclude object pairs".  :class:`FilterChain`
strings mask-producing stages together and records how many pairs each
stage removed — the numbers the evaluation's relative-time and accuracy
discussions are built on.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.orbits.elements import OrbitalElementsArray

#: A stage maps (population, pair_i, pair_j) -> boolean keep mask.
StageFn = Callable[[OrbitalElementsArray, np.ndarray, np.ndarray], np.ndarray]


@dataclass
class FilterStage:
    """One named filter stage and its running statistics."""

    name: str
    fn: StageFn
    seen: int = 0
    excluded: int = 0

    def apply(
        self, population: OrbitalElementsArray, pair_i: np.ndarray, pair_j: np.ndarray
    ) -> np.ndarray:
        mask = self.fn(population, pair_i, pair_j)
        if mask.shape != pair_i.shape or mask.dtype != np.bool_:
            raise TypeError(
                f"filter stage {self.name!r} must return a boolean mask of shape "
                f"{pair_i.shape}, got {mask.dtype} of shape {mask.shape}"
            )
        self.seen += len(pair_i)
        self.excluded += int((~mask).sum())
        return mask


@dataclass
class FilterChain:
    """Sequential application of filter stages with early shrink.

    Each stage only sees the pairs that survived all previous stages (the
    classical chain structure), so cheap filters placed first save the
    expensive ones most of their work.

    When a :class:`repro.obs.metrics.Funnel` is attached (see
    :meth:`attach_funnel`), every application additionally records one
    funnel row per stage — pairs in, pairs surviving — accumulating across
    chunked calls, which is how the legacy baseline's block loop sums into
    one per-stage funnel.
    """

    stages: "list[FilterStage]" = field(default_factory=list)
    #: Optional candidate funnel receiving per-stage in/out counts.
    funnel: "object | None" = None
    #: Stage-name prefix inside the funnel (namespaces the chain's rows).
    funnel_prefix: str = "filter:"

    def add(self, name: str, fn: StageFn) -> "FilterChain":
        """Append a stage; returns self for chaining."""
        self.stages.append(FilterStage(name, fn))
        return self

    def attach_funnel(self, funnel, prefix: str = "filter:") -> "FilterChain":
        """Record per-stage survival into ``funnel``; returns self."""
        self.funnel = funnel
        self.funnel_prefix = prefix
        return self

    def apply(
        self, population: OrbitalElementsArray, pair_i: np.ndarray, pair_j: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Run the chain; returns the surviving ``(pair_i, pair_j)``."""
        for stage in self.stages:
            if len(pair_i) == 0:
                # Keep the funnel's stage shape (0 in, 0 out) without
                # invoking stage functions on empty inputs.
                if self.funnel is not None:
                    self.funnel.record(f"{self.funnel_prefix}{stage.name}", 0, 0)
                continue
            mask = stage.apply(population, pair_i, pair_j)
            kept_i = pair_i[mask]
            kept_j = pair_j[mask]
            if self.funnel is not None:
                self.funnel.record(
                    f"{self.funnel_prefix}{stage.name}", len(pair_i), len(kept_i)
                )
            pair_i = kept_i
            pair_j = kept_j
        return pair_i, pair_j

    def stats(self) -> "dict[str, dict[str, int]]":
        """Per-stage {seen, excluded} counters."""
        return {s.name: {"seen": s.seen, "excluded": s.excluded} for s in self.stages}

    def reset_stats(self) -> None:
        for s in self.stages:
            s.seen = 0
            s.excluded = 0
