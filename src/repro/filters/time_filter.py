"""The time filter: when is each object inside its node anomaly window?

Section II: after the geometric filters, the true-anomaly window around the
mutual node line is converted to periodic *time* windows, and a pair can
only conjunct while both objects occupy their windows around the same node
simultaneously.  The legacy baseline uses the resulting overlap intervals
to restrict its numerical PCA/TCA search to the only parts of the screening
span where a conjunction is geometrically possible.
"""
from __future__ import annotations

import math

from repro.constants import TWO_PI
from repro.orbits.elements import KeplerElements
from repro.orbits.kepler import true_to_mean

#: Maximum windows returned for one object over one span — a guard against
#: pathological window/period combinations blowing up memory.
_MAX_WINDOWS = 100_000


def node_passage_windows(
    elements: KeplerElements,
    node_anomaly: float,
    half_width: float,
    span_s: float,
) -> "list[tuple[float, float]]":
    """Time intervals within ``[0, span_s]`` where the object's true anomaly
    lies in ``[node_anomaly - half_width, node_anomaly + half_width]``.

    The window edges are mapped through Kepler's equation to mean anomalies
    (the map is monotone), turning the window into a periodically repeating
    time interval.
    """
    if span_s <= 0.0:
        raise ValueError(f"span must be positive, got {span_s}")
    if half_width <= 0.0:
        raise ValueError(f"half width must be positive, got {half_width}")
    if half_width >= math.pi:
        return [(0.0, span_s)]

    m_lo = float(true_to_mean(node_anomaly - half_width, elements.e))
    m_hi = float(true_to_mean(node_anomaly + half_width, elements.e))
    width = (m_hi - m_lo) % TWO_PI
    if width == 0.0:
        width = TWO_PI

    n = elements.mean_motion
    period = elements.period
    t_start = ((m_lo - elements.m0) % TWO_PI) / n
    duration = width / n

    windows: "list[tuple[float, float]]" = []
    # The window may already be open at t=0 (previous period's window).
    t0 = t_start - period
    k = 0
    while t0 <= span_s:
        if k > _MAX_WINDOWS:
            raise RuntimeError("window enumeration exploded - span/period ratio too large")
        t1 = t0 + duration
        if t1 > 0.0:
            windows.append((max(t0, 0.0), min(t1, span_s)))
        t0 += period
        k += 1
    return windows


def intersect_windows(
    a: "list[tuple[float, float]]", b: "list[tuple[float, float]]"
) -> "list[tuple[float, float]]":
    """Pairwise intersection of two sorted interval lists (sweep merge)."""
    out: "list[tuple[float, float]]" = []
    ia = ib = 0
    while ia < len(a) and ib < len(b):
        lo = max(a[ia][0], b[ib][0])
        hi = min(a[ia][1], b[ib][1])
        if lo < hi:
            out.append((lo, hi))
        if a[ia][1] < b[ib][1]:
            ia += 1
        else:
            ib += 1
    return out


def merge_windows(windows: "list[tuple[float, float]]", slack_s: float = 0.0) -> "list[tuple[float, float]]":
    """Union of intervals, merging any that touch within ``slack_s``."""
    if not windows:
        return []
    windows = sorted(windows)
    merged = [windows[0]]
    for lo, hi in windows[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + slack_s:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def pair_overlap_windows(
    el_i: KeplerElements,
    el_j: KeplerElements,
    node_anomaly_i: float,
    node_anomaly_j: float,
    half_width_i: float,
    half_width_j: float,
    span_s: float,
    pad_s: float = 0.0,
) -> "list[tuple[float, float]]":
    """Times when both objects are inside their windows around the same node.

    Checks both the ascending (``nu``) and descending (``nu + pi``)
    crossings; each window is padded by ``pad_s`` on both sides before
    intersecting, so the caller can absorb window-edge minima.
    """
    overlaps: "list[tuple[float, float]]" = []
    for d_nu in (0.0, math.pi):
        wins_i = node_passage_windows(el_i, node_anomaly_i + d_nu, half_width_i, span_s)
        wins_j = node_passage_windows(el_j, node_anomaly_j + d_nu, half_width_j, span_s)
        if pad_s > 0.0:
            wins_i = [(max(0.0, lo - pad_s), min(span_s, hi + pad_s)) for lo, hi in wins_i]
            wins_j = [(max(0.0, lo - pad_s), min(span_s, hi + pad_s)) for lo, hi in wins_j]
            wins_i = merge_windows(wins_i)
            wins_j = merge_windows(wins_j)
        overlaps.extend(intersect_windows(wins_i, wins_j))
    return merge_windows(overlaps)
