"""Shared fixtures for the test suite."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.population.generator import generate_population


@pytest.fixture(scope="session")
def small_population() -> OrbitalElementsArray:
    """A deterministic 200-object synthetic population."""
    return generate_population(200, seed=1234)


@pytest.fixture(scope="session")
def crossing_pair() -> OrbitalElementsArray:
    """Two near-circular orbits in different planes engineered to conjunct
    near their mutual node around t=0 (PCA about 1.2 km)."""
    el1 = KeplerElements(a=7000.0, e=0.001, i=math.radians(50), raan=0.0, argp=0.0, m0=0.0)
    el2 = KeplerElements(a=7001.0, e=0.001, i=math.radians(55), raan=0.0, argp=0.0, m0=1e-4)
    return OrbitalElementsArray.from_elements([el1, el2])


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(99)
