"""Multi-device orchestration: exactness and accounting."""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.parallel.multidevice import partition_steps, screen_grid_multidevice
from repro.population.generator import generate_population

CFG = ScreeningConfig(threshold_km=5.0, duration_s=1200.0, seconds_per_sample=2.0)


class TestPartition:
    def test_round_robin_covers_all_steps(self):
        shards = partition_steps(10, 3)
        merged = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(merged, np.arange(10))
        assert [len(s) for s in shards] == [4, 3, 3]

    def test_single_device(self):
        shards = partition_steps(5, 1)
        np.testing.assert_array_equal(shards[0], np.arange(5))

    def test_more_devices_than_steps(self):
        shards = partition_steps(2, 4)
        assert sum(len(s) for s in shards) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_steps(10, 0)


class TestMultideviceScreening:
    def test_matches_single_device_exactly(self, crossing_pair):
        single = screen(crossing_pair, CFG, method="grid", backend="vectorized")
        for n_devices in (1, 2, 4):
            multi, reports = screen_grid_multidevice(crossing_pair, CFG, n_devices)
            assert multi.unique_pairs() == single.unique_pairs()
            assert multi.n_conjunctions == single.n_conjunctions
            np.testing.assert_allclose(
                np.sort(multi.pca_km), np.sort(single.pca_km), atol=1e-9
            )
            assert len(reports) == n_devices

    def test_matches_on_population(self):
        pop = generate_population(300, seed=17)
        cfg = ScreeningConfig(threshold_km=10.0, duration_s=600.0, seconds_per_sample=2.0)
        single = screen(pop, cfg, method="grid", backend="vectorized")
        multi, reports = screen_grid_multidevice(pop, cfg, n_devices=3)
        assert multi.unique_pairs() == single.unique_pairs()
        assert sum(r.records for r in reports) == multi.candidates_refined

    def test_device_reports(self, crossing_pair):
        _, reports = screen_grid_multidevice(
            crossing_pair, CFG, n_devices=2, device_budget_bytes=2**30
        )
        total_steps = sum(r.steps_processed for r in reports)
        assert total_steps == len(CFG.sample_times())
        for r in reports:
            assert r.plan is not None
            assert r.plan.parallel_steps > 0
            assert r.peak_bytes > 0

    def test_step_counts_balanced(self):
        pop = generate_population(100, seed=3)
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=300.0, seconds_per_sample=2.0)
        _, reports = screen_grid_multidevice(pop, cfg, n_devices=4)
        counts = [r.steps_processed for r in reports]
        assert max(counts) - min(counts) <= 1
