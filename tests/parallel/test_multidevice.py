"""Multi-device orchestration: exactness and accounting."""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.obs import MetricsRegistry, Tracer, to_chrome_trace
from repro.parallel.multidevice import (
    EXECUTORS,
    partition_steps,
    resolve_executor,
    screen_grid_multidevice,
)
from repro.perfmodel.memory import device_conjunction_capacity, grid_instance_bytes
from repro.population.generator import generate_population
from tests.obs.schema import validate_chrome_trace, validate_funnel, validate_nesting

CFG = ScreeningConfig(threshold_km=5.0, duration_s=1200.0, seconds_per_sample=2.0)


class TestPartition:
    def test_round_robin_covers_all_steps(self):
        shards = partition_steps(10, 3)
        merged = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(merged, np.arange(10))
        assert [len(s) for s in shards] == [4, 3, 3]

    def test_single_device(self):
        shards = partition_steps(5, 1)
        np.testing.assert_array_equal(shards[0], np.arange(5))

    def test_more_devices_than_steps(self):
        shards = partition_steps(2, 4)
        assert sum(len(s) for s in shards) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_steps(10, 0)


class TestMultideviceScreening:
    def test_matches_single_device_exactly(self, crossing_pair):
        single = screen(crossing_pair, CFG, method="grid", backend="vectorized")
        for n_devices in (1, 2, 4):
            multi, reports = screen_grid_multidevice(crossing_pair, CFG, n_devices)
            assert multi.unique_pairs() == single.unique_pairs()
            assert multi.n_conjunctions == single.n_conjunctions
            np.testing.assert_allclose(
                np.sort(multi.pca_km), np.sort(single.pca_km), atol=1e-9
            )
            assert len(reports) == n_devices

    def test_matches_on_population(self):
        pop = generate_population(300, seed=17)
        cfg = ScreeningConfig(threshold_km=10.0, duration_s=600.0, seconds_per_sample=2.0)
        single = screen(pop, cfg, method="grid", backend="vectorized")
        multi, reports = screen_grid_multidevice(pop, cfg, n_devices=3)
        assert multi.unique_pairs() == single.unique_pairs()
        assert sum(r.records for r in reports) == multi.candidates_refined

    def test_device_reports(self, crossing_pair):
        _, reports = screen_grid_multidevice(
            crossing_pair, CFG, n_devices=2, device_budget_bytes=2**30
        )
        total_steps = sum(r.steps_processed for r in reports)
        assert total_steps == len(CFG.sample_times())
        for r in reports:
            assert r.plan is not None
            assert r.plan.parallel_steps > 0
            assert r.peak_bytes > 0

    def test_step_counts_balanced(self):
        pop = generate_population(100, seed=3)
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=300.0, seconds_per_sample=2.0)
        _, reports = screen_grid_multidevice(pop, cfg, n_devices=4)
        counts = [r.steps_processed for r in reports]
        assert max(counts) - min(counts) <= 1


class TestExecutors:
    def test_resolve_known(self):
        for name in EXECUTORS:
            assert resolve_executor(name) == name

    def test_resolve_unknown(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("threads")

    def test_screen_rejects_unknown_executor(self, crossing_pair):
        with pytest.raises(ValueError, match="unknown executor"):
            screen_grid_multidevice(crossing_pair, CFG, 2, executor="mpi")


class TestSerialExecutorBitIdentity:
    @pytest.mark.parametrize("n_devices", [1, 2, 4])
    def test_bit_identical_to_single_device(self, crossing_pair, n_devices):
        single = screen(crossing_pair, CFG, method="grid", backend="vectorized")
        multi, _ = screen_grid_multidevice(
            crossing_pair, CFG, n_devices, executor="serial"
        )
        np.testing.assert_array_equal(multi.i, single.i)
        np.testing.assert_array_equal(multi.j, single.j)
        np.testing.assert_array_equal(multi.tca_s, single.tca_s)
        np.testing.assert_array_equal(multi.pca_km, single.pca_km)

    def test_bit_identical_on_population(self):
        pop = generate_population(300, seed=17)
        cfg = ScreeningConfig(threshold_km=10.0, duration_s=600.0, seconds_per_sample=2.0)
        single = screen(pop, cfg, method="grid", backend="vectorized")
        multi, _ = screen_grid_multidevice(pop, cfg, n_devices=3)
        np.testing.assert_array_equal(multi.i, single.i)
        np.testing.assert_array_equal(multi.j, single.j)
        np.testing.assert_array_equal(multi.tca_s, single.tca_s)
        np.testing.assert_array_equal(multi.pca_km, single.pca_km)


class TestObservability:
    def test_tracer_and_metrics_thread_through(self, crossing_pair):
        tracer = Tracer()
        metrics = MetricsRegistry()
        result, _ = screen_grid_multidevice(
            crossing_pair, CFG, 2, tracer=tracer, metrics=metrics
        )
        (window,) = tracer.spans("window")
        assert window.attrs["method"] == "grid-multidevice"
        assert window.attrs["n_devices"] == 2
        assert window.attrs["executor"] == "serial"
        devices = tracer.spans("device")
        assert sorted(s.attrs["device"] for s in devices) == [0, 1]
        for dev in devices:
            assert dev.parent_id == window.span_id
        trace = to_chrome_trace(tracer, metrics)
        assert validate_chrome_trace(trace) == []
        assert validate_nesting(trace) == []
        funnel = metrics.funnels["screen"]
        assert funnel.check() == []
        assert funnel.stages[-1].n_out == result.n_conjunctions
        snapshot = metrics.as_dict()["funnels"]["screen"]
        assert validate_funnel(snapshot, result.n_conjunctions) == []

    def test_untraced_run_has_no_instruments(self, crossing_pair):
        result, _ = screen_grid_multidevice(crossing_pair, CFG, 2)
        assert result.metrics is None


class TestMemoryAccounting:
    def test_peak_bytes_derive_from_the_planner_constants(self, crossing_pair):
        """Each shard's peak is its conjunction map plus one fused round's
        grid instances, all priced by ``perfmodel.memory`` — not hardcoded."""
        _, reports = screen_grid_multidevice(crossing_pair, CFG, n_devices=2)
        n = len(crossing_pair)
        for r in reports:
            # No regrows here: the map never grew, so the peak is exactly
            # final-capacity slots plus one round's grid footprint.
            assert r.regrows == 0
            assert r.round_size >= 1
            assert r.rounds * r.round_size >= r.steps_processed
            assert r.peak_bytes == (
                r.conjunction_map_capacity * 16
                + r.round_size * grid_instance_bytes(n)
            )

    def test_device_capacity_matches_runtime_allocation(self, crossing_pair):
        _, reports = screen_grid_multidevice(crossing_pair, CFG, n_devices=2)
        expected = device_conjunction_capacity(
            len(crossing_pair), CFG.seconds_per_sample, CFG.duration_s,
            CFG.threshold_km, "grid", 2,
        )
        for r in reports:
            assert r.conjunction_map_capacity == expected

    def test_device_plans_reflect_actual_shards(self, crossing_pair):
        """The plan of device d uses d's round-robin shard length, not
        ``duration_s / n_devices`` pushed back through the sampling formula."""
        n_devices = 3
        _, reports = screen_grid_multidevice(
            crossing_pair, CFG, n_devices, device_budget_bytes=2**30
        )
        shards = partition_steps(len(CFG.sample_times()), n_devices)
        for r in reports:
            assert r.plan is not None
            assert r.plan.total_samples == len(shards[r.device]) == r.steps_processed
            assert r.plan.conjunction_map_slots == r.conjunction_map_capacity
            assert r.plan.computation_rounds * r.plan.parallel_steps >= r.plan.total_samples


class TestOverflowRecovery:
    def test_starved_shard_regrows_and_replays(self, crossing_pair):
        baseline, _ = screen_grid_multidevice(crossing_pair, CFG, 2)
        starved, reports = screen_grid_multidevice(
            crossing_pair, CFG, 2, initial_capacity=8
        )
        assert any(r.regrows > 0 for r in reports)
        np.testing.assert_array_equal(starved.i, baseline.i)
        np.testing.assert_array_equal(starved.j, baseline.j)
        np.testing.assert_array_equal(starved.tca_s, baseline.tca_s)
        np.testing.assert_array_equal(starved.pca_km, baseline.pca_km)
        # Replays are idempotent: no record is double-counted.
        assert starved.candidates_refined == baseline.candidates_refined
