"""The ``processes`` executor: shared-memory publication, bit-identity
with the serial executor, observability re-parenting, and in-shard
overflow recovery — all against real spawned OS processes."""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.obs import MetricsRegistry, Tracer, to_chrome_trace
from repro.parallel.multidevice import screen_grid_multidevice
from repro.parallel.processes import (
    ELEMENT_FIELDS,
    PersistentShardPool,
    SharedPopulation,
    attach_population,
)
from tests.obs.schema import validate_chrome_trace, validate_funnel, validate_nesting

CFG = ScreeningConfig(threshold_km=5.0, duration_s=1200.0, seconds_per_sample=2.0)


class TestSharedPopulation:
    def test_publish_attach_round_trip(self, crossing_pair):
        shared = SharedPopulation(crossing_pair)
        try:
            shm, pop = attach_population(shared.name, shared.n)
            try:
                assert len(pop) == len(crossing_pair)
                for name in ELEMENT_FIELDS:
                    np.testing.assert_array_equal(
                        getattr(pop, name), getattr(crossing_pair, name)
                    )
            finally:
                del pop
                shm.close()
        finally:
            shared.close()

    def test_attached_arrays_are_views_into_the_block(self, crossing_pair):
        """The worker-side population must be zero-copy: mutating the block
        through the segment must show through the element arrays."""
        shared = SharedPopulation(crossing_pair)
        try:
            shm, pop = attach_population(shared.name, shared.n)
            try:
                block = np.ndarray(
                    (len(ELEMENT_FIELDS), shared.n), dtype=np.float64, buffer=shm.buf
                )
                block[0, 0] = 12345.0
                assert pop.a[0] == 12345.0
                del block
            finally:
                del pop
                shm.close()
        finally:
            shared.close()

    def test_close_is_idempotent(self, crossing_pair):
        shared = SharedPopulation(crossing_pair)
        shared.close()
        shared.close()  # second close/unlink must not raise

    def test_in_place_update_bumps_version_and_rewrites(self, crossing_pair):
        shared = SharedPopulation(crossing_pair)
        try:
            v0 = shared.version
            shifted = type(crossing_pair)(
                a=crossing_pair.a + 1.0, e=crossing_pair.e, i=crossing_pair.i,
                raan=crossing_pair.raan, argp=crossing_pair.argp,
                m0=crossing_pair.m0,
            )
            shared.update(shifted)
            assert shared.version == v0 + 1
            shm, pop = attach_population(shared.name, shared.n)
            try:
                np.testing.assert_array_equal(pop.a, crossing_pair.a + 1.0)
            finally:
                del pop
                shm.close()
        finally:
            shared.close()

    def test_update_rejects_resized_population(self, crossing_pair):
        shared = SharedPopulation(crossing_pair)
        try:
            smaller = type(crossing_pair)(
                a=crossing_pair.a[:-1], e=crossing_pair.e[:-1],
                i=crossing_pair.i[:-1], raan=crossing_pair.raan[:-1],
                argp=crossing_pair.argp[:-1], m0=crossing_pair.m0[:-1],
            )
            with pytest.raises(ValueError, match="size changed"):
                shared.update(smaller)
        finally:
            shared.close()


class TestProcessesBitIdentity:
    """Acceptance gate: the processes executor is bit-identical to the
    serial executor and to plain ``screen_grid`` for every device count."""

    @pytest.mark.parametrize("n_devices", [1, 2, 4])
    def test_matches_serial_and_single_device(self, crossing_pair, n_devices):
        single = screen(crossing_pair, CFG, method="grid", backend="vectorized")
        serial, _ = screen_grid_multidevice(
            crossing_pair, CFG, n_devices, executor="serial"
        )
        procs, reports = screen_grid_multidevice(
            crossing_pair, CFG, n_devices, executor="processes"
        )
        for result in (serial, procs):
            np.testing.assert_array_equal(result.i, single.i)
            np.testing.assert_array_equal(result.j, single.j)
            np.testing.assert_array_equal(result.tca_s, single.tca_s)
            np.testing.assert_array_equal(result.pca_km, single.pca_km)
        assert procs.extra["executor"] == "processes"
        assert len(reports) == n_devices
        assert sum(r.steps_processed for r in reports) == len(CFG.sample_times())

    def test_reports_match_serial_executor(self, crossing_pair):
        _, serial_reports = screen_grid_multidevice(
            crossing_pair, CFG, 2, executor="serial"
        )
        _, procs_reports = screen_grid_multidevice(
            crossing_pair, CFG, 2, executor="processes"
        )
        assert procs_reports == serial_reports


class TestProcessesObservability:
    @pytest.fixture(scope="class")
    def traced_run(self, crossing_pair):
        tracer = Tracer()
        metrics = MetricsRegistry()
        result, reports = screen_grid_multidevice(
            crossing_pair, CFG, 2, executor="processes",
            tracer=tracer, metrics=metrics,
        )
        return result, reports, tracer, metrics

    def test_trace_schema_valid_with_device_spans(self, traced_run):
        _, _, tracer, metrics = traced_run
        trace = to_chrome_trace(tracer, metrics)
        assert validate_chrome_trace(trace) == []
        assert validate_nesting(trace) == []
        devices = tracer.spans("device")
        assert sorted(s.attrs["device"] for s in devices) == [0, 1]

    def test_worker_spans_reparent_under_the_window(self, traced_run):
        _, _, tracer, _ = traced_run
        (window,) = tracer.spans("window")
        assert window.attrs["executor"] == "processes"
        for dev in tracer.spans("device"):
            assert dev.parent_id == window.span_id
        # The workers' phase spans hang off their device span, never float.
        for span in tracer.records():
            if span.name.startswith("phase:") and span.parent_id != window.span_id:
                names = [a.name for a in tracer.ancestry(span)]
                assert "device" in names and "window" in names

    def test_funnel_merges_to_conjunction_count(self, traced_run):
        result, _, _, metrics = traced_run
        funnel = metrics.funnels["screen"]
        assert funnel.check() == []
        assert funnel.stages[-1].n_out == result.n_conjunctions
        snapshot = metrics.as_dict()["funnels"]["screen"]
        assert validate_funnel(snapshot, result.n_conjunctions) == []

    def test_metrics_match_serial_executor(self, traced_run, crossing_pair):
        """Counter merging across processes is lossless: the pipeline-level
        counters equal the serial executor's bit for bit."""
        _, _, _, metrics = traced_run
        serial_metrics = MetricsRegistry()
        screen_grid_multidevice(
            crossing_pair, CFG, 2, executor="serial", metrics=serial_metrics
        )
        procs = metrics.as_dict()
        serial = serial_metrics.as_dict()
        for key in ("cd.pairs_emitted", "cd.rounds", "grid.lanes"):
            assert procs["counters"][key] == serial["counters"][key]
        assert procs["funnels"]["screen"] == serial["funnels"]["screen"]

    def test_worker_phase_timers_merge(self, traced_run):
        result, _, _, _ = traced_run
        assert result.timers.totals["INS"] > 0.0
        assert result.timers.totals["CD"] > 0.0
        assert "REF" in result.timers.totals


class TestProcessesOverflowRecovery:
    def test_regrow_replay_inside_a_worker(self, crossing_pair):
        """A starved conjunction map inside a spawned shard must overflow,
        regrow, replay — and still merge to the identical result with no
        duplicated records."""
        baseline, _ = screen_grid_multidevice(
            crossing_pair, CFG, 2, executor="processes"
        )
        starved, reports = screen_grid_multidevice(
            crossing_pair, CFG, 2, executor="processes", initial_capacity=8
        )
        assert any(r.regrows > 0 for r in reports)
        np.testing.assert_array_equal(starved.i, baseline.i)
        np.testing.assert_array_equal(starved.j, baseline.j)
        np.testing.assert_array_equal(starved.tca_s, baseline.tca_s)
        np.testing.assert_array_equal(starved.pca_km, baseline.pca_km)
        assert starved.candidates_refined == baseline.candidates_refined


class TestPersistentPool:
    """Pool reuse across windows: resident worker state must never leak
    between windows (stale warm-start, grid or coherence caches)."""

    def test_two_windows_on_one_pool_match_fresh_serial_runs(self, crossing_pair):
        """The satellite acceptance test: two consecutive campaign windows
        through one persistent pool, bit-identical to two fresh serial
        windows over the same advancing epochs."""
        from repro.ops.campaign import ScreeningCampaign

        cfg = ScreeningConfig(threshold_km=5.0, duration_s=600.0, seconds_per_sample=2.0)
        with ScreeningCampaign(
            crossing_pair, cfg, method="grid",
            n_devices=2, executor="processes",
        ) as pooled:
            pooled_days = pooled.run(2)
            assert pooled._pool is not None
            assert pooled._pool.windows == 2
        serial = ScreeningCampaign(
            crossing_pair, cfg, method="grid", n_devices=2, executor="serial"
        )
        serial_days = serial.run(2)
        for dp, ds in zip(pooled_days, serial_days):
            np.testing.assert_array_equal(dp.result.i, ds.result.i)
            np.testing.assert_array_equal(dp.result.j, ds.result.j)
            np.testing.assert_array_equal(dp.result.tca_s, ds.result.tca_s)
            np.testing.assert_array_equal(dp.result.pca_km, ds.result.pca_km)
            assert dp.result.candidates_refined == ds.result.candidates_refined

    def test_reused_pool_windows_match_one_shot_runs(self, crossing_pair):
        """Dispatching the same window twice over one pool returns the
        identical records both times (resident propagator/emitter reset)."""
        one_shot, one_reports = screen_grid_multidevice(
            crossing_pair, CFG, 2, executor="processes"
        )
        with PersistentShardPool(2) as pool:
            first, first_reports = screen_grid_multidevice(
                crossing_pair, CFG, 2, executor="processes", pool=pool
            )
            second, second_reports = screen_grid_multidevice(
                crossing_pair, CFG, 2, executor="processes", pool=pool
            )
            assert pool.windows == 2
        for result, reports in ((first, first_reports), (second, second_reports)):
            np.testing.assert_array_equal(result.i, one_shot.i)
            np.testing.assert_array_equal(result.j, one_shot.j)
            np.testing.assert_array_equal(result.tca_s, one_shot.tca_s)
            np.testing.assert_array_equal(result.pca_km, one_shot.pca_km)
            assert reports == one_reports

    def test_pool_metrics_account_resident_rounds_and_merge(self, crossing_pair):
        metrics = MetricsRegistry()
        with PersistentShardPool(2) as pool:
            _, reports = screen_grid_multidevice(
                crossing_pair, CFG, 2, executor="processes",
                pool=pool, metrics=metrics,
            )
        snapshot = metrics.as_dict()
        assert snapshot["counters"]["procs.rounds_resident"] == sum(
            r.rounds for r in reports
        )
        assert snapshot["counters"]["procs.windows"] == 1
        assert snapshot["gauges"]["procs.merge_seconds"] >= 0.0

    def test_closed_pool_refuses_windows(self, crossing_pair):
        pool = PersistentShardPool(2)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            screen_grid_multidevice(
                crossing_pair, CFG, 2, executor="processes", pool=pool
            )

    def test_pool_device_count_must_match_run(self, crossing_pair):
        with PersistentShardPool(2) as pool:
            with pytest.raises(ValueError, match="devices"):
                screen_grid_multidevice(
                    crossing_pair, CFG, 3, executor="processes", pool=pool
                )

    def test_pool_requires_processes_executor(self, crossing_pair):
        with PersistentShardPool(2) as pool:
            with pytest.raises(ValueError, match="processes"):
                screen_grid_multidevice(
                    crossing_pair, CFG, 2, executor="serial", pool=pool
                )
