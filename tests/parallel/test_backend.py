"""Execution backends: partitioning, thread pools, phase timers."""
from __future__ import annotations

import threading
import time

import pytest

from repro.parallel.backend import (
    BACKENDS,
    PhaseTimer,
    chunk_ranges,
    default_process_count,
    default_thread_count,
    parallel_for,
    resolve_backend,
)


class TestChunkRanges:
    def test_even_split(self):
        assert chunk_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split_distributes_remainder(self):
        ranges = chunk_ranges(10, 3)
        sizes = [e - s for s, e in ranges]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        ranges = chunk_ranges(2, 8)
        assert [r for r in ranges if r[0] < r[1]] == [(0, 1), (1, 2)]

    def test_contiguous_cover(self):
        ranges = chunk_ranges(97, 7)
        assert ranges[0][0] == 0 and ranges[-1][1] == 97
        for (s0, e0), (s1, e1) in zip(ranges, ranges[1:]):
            assert e0 == s1

    def test_zero_items(self):
        assert chunk_ranges(0, 4) == [(0, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_ranges(10, 0)


class TestParallelFor:
    def test_covers_all_indices(self):
        seen = []
        lock = threading.Lock()

        def work(s, e):
            with lock:
                seen.extend(range(s, e))

        parallel_for(work, 100, n_threads=4)
        assert sorted(seen) == list(range(100))

    def test_results_in_chunk_order(self):
        out = parallel_for(lambda s, e: (s, e), 10, n_threads=3)
        assert out == chunk_ranges(10, 3)

    def test_single_thread_runs_inline(self):
        tid = []

        def work(s, e):
            tid.append(threading.get_ident())

        parallel_for(work, 5, n_threads=1)
        assert tid == [threading.get_ident()]

    def test_exception_propagates(self):
        def bad(s, e):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            parallel_for(bad, 10, n_threads=2)


class TestBackendNames:
    def test_known(self):
        for b in BACKENDS:
            assert resolve_backend(b) == b

    def test_unknown(self):
        with pytest.raises(ValueError):
            resolve_backend("cuda")

    def test_env_thread_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "5")
        assert default_thread_count() == 5
        monkeypatch.setenv("REPRO_NUM_THREADS", "0")
        with pytest.raises(ValueError):
            default_thread_count()

    def test_env_thread_count_non_integer(self, monkeypatch):
        """A non-numeric value must raise a clear error naming the env var,
        not crash with a bare int() traceback."""
        monkeypatch.setenv("REPRO_NUM_THREADS", "auto")
        with pytest.raises(ValueError, match="REPRO_NUM_THREADS.*'auto'"):
            default_thread_count()

    def test_env_thread_count_whitespace_and_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", " 4 ")
        assert default_thread_count() == 4
        # Empty / blank values fall back to the CPU count.
        monkeypatch.setenv("REPRO_NUM_THREADS", "")
        assert default_thread_count() >= 1
        monkeypatch.setenv("REPRO_NUM_THREADS", "  ")
        assert default_thread_count() >= 1

    def test_env_thread_count_negative(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "-2")
        with pytest.raises(ValueError, match="REPRO_NUM_THREADS"):
            default_thread_count()

    def test_env_process_count(self, monkeypatch):
        """REPRO_NUM_PROCS mirrors REPRO_NUM_THREADS' validation exactly."""
        monkeypatch.setenv("REPRO_NUM_PROCS", "3")
        assert default_process_count() == 3
        monkeypatch.setenv("REPRO_NUM_PROCS", " 4 ")
        assert default_process_count() == 4
        monkeypatch.setenv("REPRO_NUM_PROCS", "")
        assert default_process_count() >= 1
        monkeypatch.setenv("REPRO_NUM_PROCS", "0")
        with pytest.raises(ValueError, match="REPRO_NUM_PROCS"):
            default_process_count()
        monkeypatch.setenv("REPRO_NUM_PROCS", "-1")
        with pytest.raises(ValueError, match="REPRO_NUM_PROCS"):
            default_process_count()
        monkeypatch.setenv("REPRO_NUM_PROCS", "many")
        with pytest.raises(ValueError, match="REPRO_NUM_PROCS.*'many'"):
            default_process_count()

    def test_env_process_and_thread_counts_are_independent(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "7")
        monkeypatch.setenv("REPRO_NUM_PROCS", "2")
        assert default_thread_count() == 7
        assert default_process_count() == 2


class TestPhaseTimer:
    def test_accumulates(self):
        t = PhaseTimer()
        with t.phase("A"):
            time.sleep(0.01)
        with t.phase("A"):
            time.sleep(0.01)
        with t.phase("B"):
            pass
        assert t.totals["A"] >= 0.02
        assert t.total == pytest.approx(sum(t.totals.values()))

    def test_fractions_sum_to_one(self):
        t = PhaseTimer()
        t.add("A", 3.0)
        t.add("B", 1.0)
        fr = t.fractions()
        assert fr["A"] == pytest.approx(0.75)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert PhaseTimer().fractions() == {}

    def test_merge(self):
        a = PhaseTimer()
        a.add("X", 1.0)
        b = PhaseTimer()
        b.add("X", 2.0)
        b.add("Y", 1.0)
        a.merge(b)
        assert a.totals == {"X": 3.0, "Y": 1.0}

    def test_phase_records_on_exception(self):
        t = PhaseTimer()
        with pytest.raises(RuntimeError):
            with t.phase("A"):
                raise RuntimeError()
        assert "A" in t.totals

    def test_phase_span_closes_clean_on_success(self):
        from repro.obs import Tracer

        tracer = Tracer()
        t = PhaseTimer(tracer=tracer)
        with t.phase("CD"):
            pass
        (span,) = tracer.spans("phase:CD")
        assert "error" not in span.attrs

    def test_phase_span_marked_errored_on_exception(self):
        """A phase that blows up must close its span with the live
        exception info — the trace shows an errored phase, not a phase
        that silently 'succeeded' (the old ``(None, None, None)`` exit)."""
        from repro.obs import Tracer

        tracer = Tracer()
        t = PhaseTimer(tracer=tracer)
        with pytest.raises(RuntimeError, match="boom"):
            with t.phase("CD"):
                raise RuntimeError("boom")
        (span,) = tracer.spans("phase:CD")
        assert span.attrs["error"] == "RuntimeError"
        assert t.totals["CD"] >= 0.0  # elapsed time still accumulated
