"""Terminal report rendering."""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.types import ScreeningResult, empty_result
from repro.obs import MetricsRegistry
from repro.obs.analysis import critical_path, overlap_report
from repro.obs.metrics import Funnel
from repro.obs.tracer import SpanRecord
from repro.parallel.backend import PhaseTimer
from repro.report import (
    busiest_objects,
    critical_path_table,
    full_report,
    funnel_table,
    histogram,
    metrics_table,
    overlap_table,
    phase_budget,
    timeline,
)


@pytest.fixture()
def result():
    timers = PhaseTimer()
    timers.add("INS", 1.0)
    timers.add("CD", 2.0)
    timers.add("REF", 1.0)
    return ScreeningResult(
        method="grid",
        backend="vectorized",
        i=np.array([1, 1, 3, 5]),
        j=np.array([2, 4, 4, 6]),
        tca_s=np.array([10.0, 500.0, 550.0, 900.0]),
        pca_km=np.array([0.5, 1.5, 1.8, 0.2]),
        candidates_refined=9,
        timers=timers,
    )


def test_histogram_bins_and_counts(result):
    text = histogram(result.pca_km, bins=4, label="PCA")
    assert text.startswith("PCA:")
    assert len(text.splitlines()) == 5
    # Total count across bins equals the sample count.
    total = sum(int(line.rsplit(" ", 1)[1]) for line in text.splitlines()[1:])
    assert total == 4


def test_histogram_empty():
    assert "(no data)" in histogram(np.empty(0), label="x")


def test_histogram_validation(result):
    with pytest.raises(ValueError):
        histogram(result.pca_km, bins=0)


def test_timeline_slots(result):
    text = timeline(result, duration_s=1000.0, slots=10)
    lines = text.splitlines()
    assert len(lines) == 11
    total = sum(int(line.rsplit(" ", 1)[1]) for line in lines[1:])
    assert total == 4


def test_timeline_empty():
    assert "(no conjunctions)" in timeline(empty_result("grid", "serial"), 100.0)


def test_busiest_objects_ranking(result):
    text = busiest_objects(result, top=3)
    lines = text.splitlines()
    # Objects 1 and 4 appear twice each.
    assert "2 conjunctions" in lines[1]
    assert "2 conjunctions" in lines[2]


def test_phase_budget_percentages(result):
    text = phase_budget(result)
    assert "CD" in text and "50.0%" in text


def test_phase_budget_empty():
    assert "(no timings)" in phase_budget(empty_result("grid", "serial"))


def test_full_report_combines_everything(result):
    text = full_report(result, duration_s=1000.0)
    for fragment in ("grid/vectorized", "phase budget", "PCA distribution", "busiest objects"):
        assert fragment in text


def test_histogram_constant_values_single_bin():
    # All-identical values collapse to one populated bin; np.histogram
    # widens the range itself, and the renderer must not divide by zero.
    text = histogram(np.full(7, 3.25), bins=1, label="constant")
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[1].rstrip().endswith("7")
    # Same values over several bins: every value lands in one bin.
    multi = histogram(np.full(7, 3.25), bins=5)
    counts = [int(line.rsplit(" ", 1)[1]) for line in multi.splitlines()]
    assert sum(counts) == 7 and max(counts) == 7


def test_timeline_empty_result():
    text = timeline(empty_result("hybrid", "vectorized"), duration_s=500.0, slots=8)
    assert "(no conjunctions)" in text


def test_funnel_table_with_full_rejection_stage():
    f = Funnel("screen")
    f.record("pairs", 100, 100)
    f.record("filter", 100, 0)  # 100% rejection
    f.record("scan", 0, 0)
    text = funnel_table(f)
    lines = text.splitlines()
    assert "funnel 'screen'" in lines[0]
    assert "100 -> 0" in text and "0.0%" in text
    assert "100.0%" in text  # the zero-input stage renders as full survival
    assert "!" not in text  # consistent chain -> no violation rows


def test_funnel_table_reports_violations():
    f = Funnel("bad")
    f.record("a", 10, 5)
    f.record("b", 4, 4)
    assert "!" in funnel_table(f)


def test_funnel_table_empty():
    assert "(no stages)" in funnel_table(Funnel("empty"))


def test_metrics_table_renders_all_instruments():
    m = MetricsRegistry()
    m.counter("cd.pairs_emitted").add(42)
    m.gauge("hashmap.load_factor").record(0.5)
    m.histogram("hashmap.probe_length", (1.0, 2.0)).observe([1.0, 1.0, 5.0])
    m.funnel("screen").record("emit", 42, 10)
    text = metrics_table(m)
    for fragment in ("cd.pairs_emitted", "42", "hashmap.load_factor", "0.5000",
                     "histogram hashmap.probe_length", "> 2", "funnel 'screen'"):
        assert fragment in text


def test_metrics_table_none():
    assert "(not collected)" in metrics_table(None)


def test_full_report_includes_metrics_when_collected(result):
    m = MetricsRegistry()
    m.counter("cd.rounds").add(3)
    result.metrics = m
    assert "cd.rounds" in full_report(result, duration_s=1000.0)


def _populate(m: MetricsRegistry, names) -> MetricsRegistry:
    """Create identical instruments in the caller's chosen order."""
    for name in names:
        m.counter(f"count.{name}").add(1)
        m.gauge(f"gauge.{name}").record(0.5)
        m.timeseries(f"res.{name}").record(1.0, 2.0)
        m.funnel(name).record("emit", 10, 5)
    return m


def test_metrics_table_deterministic_across_creation_order():
    # Worker shards create instruments in whatever order their phases
    # run; the rendered report must not depend on that order, or run
    # reports stop diffing cleanly.
    a = _populate(MetricsRegistry(), ["beta", "alpha", "gamma"])
    b = _populate(MetricsRegistry(), ["gamma", "beta", "alpha"])
    assert metrics_table(a) == metrics_table(b)
    text = metrics_table(a)
    # Funnel sections render in name order.
    assert text.index("funnel 'alpha'") < text.index("funnel 'beta'") < text.index("funnel 'gamma'")


def test_metrics_table_series_block():
    m = MetricsRegistry()
    m.timeseries("res.rss_bytes").record(0.0, 100.0)
    m.timeseries("res.rss_bytes").record(1.0, 250.0)
    text = metrics_table(m)
    assert "series:" in text
    assert "res.rss_bytes" in text and "n=2" in text and "max=250" in text


def test_phase_budget_equal_shares_sort_by_name():
    timers = PhaseTimer()
    timers.add("REF", 1.0)
    timers.add("CD", 1.0)
    timers.add("INS", 2.0)
    r = empty_result("grid", "serial")
    r.timers = timers
    lines = phase_budget(r).splitlines()
    assert [line.split()[0] for line in lines[1:]] == ["INS", "CD", "REF"]


def _span(sid, parent, name, start, dur, thread=0):
    return SpanRecord(span_id=sid, parent_id=parent, name=name,
                      start_s=start, duration_s=dur, thread=thread)


def test_overlap_table_renders_tracks_and_summary():
    records = [
        _span(0, -1, "window", 0.0, 10.0),
        _span(1, 0, "shard", 0.0, 8.0, thread=1),
        _span(2, 0, "shard", 2.0, 8.0, thread=2),
    ]
    text = overlap_table(overlap_report(records))
    assert "wall 10.000 s" in text and "3 tracks" in text
    assert "track   1" in text and "80.0%" in text
    assert ">= 2 busy" in text
    assert "parallel efficiency" in text and "effective parallelism" in text


def test_overlap_table_empty():
    assert "(no spans)" in overlap_table(overlap_report([]))


def test_critical_path_table_accounting_and_truncation():
    records = [_span(k, -1, f"leaf{k:02d}", float(k), 1.0) for k in range(15)]
    path = critical_path(records)
    text = critical_path_table(path, top=12)
    assert "wall 15.000 s = 15.000 s on-path + 0.000 s idle" in text
    assert "... 3 more span names" in text


def test_critical_path_table_empty():
    assert "(no spans)" in critical_path_table(critical_path([]))
