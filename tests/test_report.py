"""Terminal report rendering."""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.types import ScreeningResult, empty_result
from repro.parallel.backend import PhaseTimer
from repro.report import busiest_objects, full_report, histogram, phase_budget, timeline


@pytest.fixture()
def result():
    timers = PhaseTimer()
    timers.add("INS", 1.0)
    timers.add("CD", 2.0)
    timers.add("REF", 1.0)
    return ScreeningResult(
        method="grid",
        backend="vectorized",
        i=np.array([1, 1, 3, 5]),
        j=np.array([2, 4, 4, 6]),
        tca_s=np.array([10.0, 500.0, 550.0, 900.0]),
        pca_km=np.array([0.5, 1.5, 1.8, 0.2]),
        candidates_refined=9,
        timers=timers,
    )


def test_histogram_bins_and_counts(result):
    text = histogram(result.pca_km, bins=4, label="PCA")
    assert text.startswith("PCA:")
    assert len(text.splitlines()) == 5
    # Total count across bins equals the sample count.
    total = sum(int(line.rsplit(" ", 1)[1]) for line in text.splitlines()[1:])
    assert total == 4


def test_histogram_empty():
    assert "(no data)" in histogram(np.empty(0), label="x")


def test_histogram_validation(result):
    with pytest.raises(ValueError):
        histogram(result.pca_km, bins=0)


def test_timeline_slots(result):
    text = timeline(result, duration_s=1000.0, slots=10)
    lines = text.splitlines()
    assert len(lines) == 11
    total = sum(int(line.rsplit(" ", 1)[1]) for line in lines[1:])
    assert total == 4


def test_timeline_empty():
    assert "(no conjunctions)" in timeline(empty_result("grid", "serial"), 100.0)


def test_busiest_objects_ranking(result):
    text = busiest_objects(result, top=3)
    lines = text.splitlines()
    # Objects 1 and 4 appear twice each.
    assert "2 conjunctions" in lines[1]
    assert "2 conjunctions" in lines[2]


def test_phase_budget_percentages(result):
    text = phase_budget(result)
    assert "CD" in text and "50.0%" in text


def test_phase_budget_empty():
    assert "(no timings)" in phase_budget(empty_result("grid", "serial"))


def test_full_report_combines_everything(result):
    text = full_report(result, duration_s=1000.0)
    for fragment in ("grid/vectorized", "phase budget", "PCA distribution", "busiest objects"):
        assert fragment in text
