"""Orbit-path filter: node geometry and the conservativeness invariant."""
from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.orbit_path import orbit_path_filter
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.geometry import sampled_orbit_distance


def _pop(els):
    return OrbitalElementsArray.from_elements(els)


def _el(a=7000.0, e=0.0, i=0.0, raan=0.0, argp=0.0):
    return KeplerElements(a=a, e=e, i=i, raan=raan, argp=argp, m0=0.0)


def test_crossing_circular_orbits_survive():
    pop = _pop([_el(i=math.radians(30)), _el(a=7001.0, i=math.radians(60))])
    keep = orbit_path_filter(pop, np.array([0]), np.array([1]), 2.0)
    assert keep.tolist() == [True]


def test_radially_separated_at_nodes_excluded():
    # Same planes angle, but radii at the node differ by 60 km.
    pop = _pop([_el(a=7000.0, i=math.radians(30)), _el(a=7060.0, i=math.radians(60))])
    keep = orbit_path_filter(pop, np.array([0]), np.array([1]), 2.0)
    assert keep.tolist() == [False]


def test_coplanar_pairs_always_survive():
    # Identical planes: the filter cannot exclude them.
    pop = _pop([_el(a=7000.0, i=0.4), _el(a=7500.0, i=0.4)])
    keep = orbit_path_filter(pop, np.array([0]), np.array([1]), 2.0)
    assert keep.tolist() == [True]


def test_eccentric_orbit_close_at_one_node_only():
    # Eccentric orbit whose radius matches the circular one at the
    # ascending node but not the descending node: must survive.
    e = 0.05
    a_ecc = 7000.0 / (1.0 - e**2)  # radius at nu=pi/2 equals 7000
    ecc_orbit = KeplerElements(
        a=a_ecc, e=e, i=math.radians(50), raan=0.0, argp=math.pi / 2 + 0.0, m0=0.0
    )
    # Node line of (i=0) vs (i=50deg, raan=0) is the +x axis; the eccentric
    # orbit crosses +x at nu = -argp = -pi/2 -> radius = p/(1+e*cos(-pi/2)) = p.
    circular = _el(a=7000.0, i=0.0)
    pop = _pop([circular, ecc_orbit])
    keep = orbit_path_filter(pop, np.array([0]), np.array([1]), 2.0)
    assert keep.tolist() == [True]


def test_empty_input():
    pop = _pop([_el()])
    keep = orbit_path_filter(pop, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 2.0)
    assert keep.shape == (0,)


def test_threshold_validation():
    pop = _pop([_el(), _el(a=7100.0)])
    with pytest.raises(ValueError):
        orbit_path_filter(pop, np.array([0]), np.array([1]), 0.0)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_conservative_property(seed):
    """The filter must never exclude a pair whose orbits actually come
    within the screening threshold (checked against the sampled-distance
    oracle)."""
    rng = np.random.default_rng(seed)
    els = []
    for _ in range(8):
        e = rng.uniform(0.0, 0.3)
        a = rng.uniform(6800.0, 9000.0)
        els.append(
            KeplerElements(
                a=a,
                e=e,
                i=rng.uniform(0.0, math.pi),
                raan=rng.uniform(0.0, 2 * math.pi),
                argp=rng.uniform(0.0, 2 * math.pi),
                m0=0.0,
            )
        )
    pop = _pop(els)
    pair_i, pair_j = np.triu_indices(len(els), k=1)
    keep = orbit_path_filter(pop, pair_i, pair_j, 5.0)
    for k in np.nonzero(~keep)[0]:
        d = sampled_orbit_distance(els[int(pair_i[k])], els[int(pair_j[k])], samples=360)
        assert d > 5.0, f"filter wrongly excluded a pair with orbit distance {d:.3f} km"


def test_survivor_rate_is_meaningful(small_population):
    """On a realistic population the filter must actually exclude a large
    share of the shell-overlapping pairs (otherwise it is useless)."""
    pop = small_population
    pair_i, pair_j = np.triu_indices(len(pop), k=1)
    from repro.filters.apogee_perigee import apogee_perigee_filter

    shell = apogee_perigee_filter(pop, pair_i, pair_j, 2.0)
    pi, pj = pair_i[shell], pair_j[shell]
    keep = orbit_path_filter(pop, pi, pj, 2.0)
    assert 0 < keep.sum() < len(keep)
    assert keep.mean() < 0.8  # excludes a substantial fraction
