"""FilterChain composition and statistics."""
from __future__ import annotations

import numpy as np
import pytest

from repro.filters.chain import FilterChain, FilterStage
from repro.orbits.elements import KeplerElements, OrbitalElementsArray


@pytest.fixture()
def pop():
    return OrbitalElementsArray.from_elements(
        [KeplerElements(a=7000.0 + 10 * k, e=0.0, i=0.1, raan=0.0, argp=0.0, m0=0.0) for k in range(6)]
    )


def test_stages_apply_in_order(pop):
    calls = []

    def stage_a(p, i, j):
        calls.append("a")
        return i < 3  # keep pairs whose first index < 3

    def stage_b(p, i, j):
        calls.append("b")
        return j % 2 == 0

    chain = FilterChain().add("a", stage_a).add("b", stage_b)
    pair_i = np.array([0, 1, 4, 2])
    pair_j = np.array([5, 2, 5, 3])
    out_i, out_j = chain.apply(pop, pair_i, pair_j)
    assert calls == ["a", "b"]
    assert out_i.tolist() == [1]
    assert out_j.tolist() == [2]


def test_stats_count_seen_and_excluded(pop):
    chain = FilterChain().add("half", lambda p, i, j: i % 2 == 0)
    chain.apply(pop, np.array([0, 1, 2, 3]), np.array([4, 4, 4, 4]))
    stats = chain.stats()
    assert stats["half"] == {"seen": 4, "excluded": 2}
    chain.reset_stats()
    assert chain.stats()["half"] == {"seen": 0, "excluded": 0}


def test_early_exit_on_empty(pop):
    calls = []

    def never_called(p, i, j):
        calls.append("x")
        return np.ones(len(i), dtype=bool)

    chain = FilterChain().add("kill", lambda p, i, j: np.zeros(len(i), dtype=bool))
    chain.add("next", never_called)
    out_i, out_j = chain.apply(pop, np.array([0]), np.array([1]))
    assert len(out_i) == 0
    assert calls == []


def test_bad_stage_output_rejected(pop):
    chain = FilterChain().add("bad", lambda p, i, j: np.zeros(len(i), dtype=np.int64))
    with pytest.raises(TypeError, match="boolean mask"):
        chain.apply(pop, np.array([0]), np.array([1]))


def test_stage_dataclass_direct():
    stage = FilterStage("s", lambda p, i, j: np.array([True, False]))
    mask = stage.apply(None, np.array([0, 1]), np.array([2, 3]))
    assert mask.tolist() == [True, False]
    assert stage.seen == 2 and stage.excluded == 1
