"""Smart sieve: kinematic step-segment exclusion."""
from __future__ import annotations

import numpy as np
import pytest

from repro.filters.smart_sieve import (
    curvature_pad_km,
    relative_linear_minimum,
    smart_sieve,
)
from repro.orbits.propagation import Propagator


class TestLinearMinimum:
    def test_head_on_pass(self):
        dr = np.array([[10.0, 0.0, 0.0]])
        dv = np.array([[-1.0, 0.0, 0.0]])
        d_min, tau = relative_linear_minimum(dr, dv, dt=20.0)
        assert d_min[0] == pytest.approx(0.0, abs=1e-12)
        assert tau[0] == pytest.approx(10.0)

    def test_minimum_outside_step_clamped(self):
        dr = np.array([[10.0, 0.0, 0.0]])
        dv = np.array([[-1.0, 0.0, 0.0]])
        d_min, tau = relative_linear_minimum(dr, dv, dt=3.0)
        assert tau[0] == 3.0
        assert d_min[0] == pytest.approx(7.0)

    def test_receding_pair_minimum_at_start(self):
        dr = np.array([[5.0, 0.0, 0.0]])
        dv = np.array([[1.0, 0.0, 0.0]])
        d_min, tau = relative_linear_minimum(dr, dv, dt=10.0)
        assert tau[0] == 0.0
        assert d_min[0] == pytest.approx(5.0)

    def test_zero_relative_velocity(self):
        dr = np.array([[3.0, 4.0, 0.0]])
        dv = np.zeros((1, 3))
        d_min, tau = relative_linear_minimum(dr, dv, dt=10.0)
        assert d_min[0] == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_linear_minimum(np.zeros((1, 3)), np.zeros((1, 3)), dt=0.0)


class TestCurvaturePad:
    def test_leo_magnitude(self):
        # g ~ 8.2e-3 km/s^2 at 7000 km; over 10 s the pad is under a km.
        pad = curvature_pad_km(np.array([7000.0]), dt=10.0)
        assert 0.5 < pad[0] < 1.0

    def test_shrinks_with_altitude(self):
        pads = curvature_pad_km(np.array([7000.0, 42164.0]), dt=10.0)
        assert pads[1] < pads[0]


class TestSmartSieve:
    def test_far_pair_excluded(self):
        pos_i = np.array([[7000.0, 0.0, 0.0]])
        pos_j = np.array([[-7000.0, 0.0, 0.0]])
        vel = np.array([[0.0, 7.5, 0.0]])
        keep = smart_sieve(pos_i, pos_j, vel, -vel, dt=10.0, threshold_km=2.0)
        assert not keep[0]

    def test_closing_pair_kept(self):
        pos_i = np.array([[7000.0, 0.0, 0.0]])
        pos_j = np.array([[7000.0, 30.0, 0.0]])
        vel_i = np.array([[0.0, 7.5, 0.0]])
        vel_j = np.array([[0.0, 2.0, 0.0]])  # closing at 5.5 km/s
        keep = smart_sieve(pos_i, pos_j, vel_i, vel_j, dt=10.0, threshold_km=2.0)
        assert keep[0]

    def test_parallel_pair_outside_threshold_excluded(self):
        pos_i = np.array([[7000.0, 0.0, 0.0]])
        pos_j = np.array([[7000.0, 50.0, 0.0]])
        vel = np.array([[0.0, 7.5, 0.0]])
        keep = smart_sieve(pos_i, pos_j, vel, vel, dt=5.0, threshold_km=2.0)
        assert not keep[0]

    def test_conservative_against_real_propagation(self, crossing_pair):
        """Every sampled step of the engineered conjunction pair during its
        encounter must survive the sieve."""
        prop = Propagator(crossing_pair)
        dt = 5.0
        kept_any = False
        for t in np.arange(-30.0, 30.0, dt):
            pos, vel = prop.states(float(t))
            keep = smart_sieve(pos[:1], pos[1:], vel[:1], vel[1:], dt=dt, threshold_km=5.0)
            # During the close-approach window (distance < 5 km happens at
            # t~0) the sieve must keep the step containing the minimum.
            if t <= 0.0 < t + dt:
                assert keep[0], "sieve dropped the segment containing the conjunction"
                kept_any = True
        assert kept_any

    def test_sieve_reduces_work_on_population(self, small_population):
        """On a random population most pair-steps are provably clean."""
        prop = Propagator(small_population)
        pos, vel = prop.states(0.0)
        n = len(small_population)
        rng = np.random.default_rng(0)
        i = rng.integers(0, n, 500)
        j = (i + 1 + rng.integers(0, n - 1, 500)) % n
        keep = smart_sieve(pos[i], pos[j], vel[i], vel[j], dt=10.0, threshold_km=2.0)
        assert keep.mean() < 0.05

    def test_validation(self):
        z = np.zeros((1, 3))
        with pytest.raises(ValueError):
            smart_sieve(z, z, z, z, dt=1.0, threshold_km=0.0)


class TestSieveProperty:
    def test_never_drops_truly_close_segments(self, rng):
        """Property: whenever the true propagated minimum over a step
        segment is below the threshold, the sieve keeps the pair."""
        from repro.orbits.elements import KeplerElements, OrbitalElementsArray
        from repro.detection.pca_tca import PairDistanceScalar

        for seed in range(8):
            local = np.random.default_rng(seed)
            a = float(local.uniform(6900, 7300))
            els = [
                KeplerElements(
                    a=a + float(local.uniform(-2, 2)), e=float(local.uniform(0, 0.01)),
                    i=float(local.uniform(0.2, 2.9)), raan=float(local.uniform(0, 6.28)),
                    argp=float(local.uniform(0, 6.28)), m0=float(local.uniform(0, 6.28)),
                )
                for _ in range(2)
            ]
            pop = OrbitalElementsArray.from_elements(els)
            from repro.orbits.propagation import Propagator

            prop = Propagator(pop)
            dist = PairDistanceScalar(pop, 0, 1)
            dt = 10.0
            threshold = 25.0
            for t0 in np.arange(0.0, 600.0, dt):
                true_min = min(dist(float(t)) for t in np.linspace(t0, t0 + dt, 25))
                pos, vel = prop.states(float(t0))
                keep = smart_sieve(
                    pos[:1], pos[1:], vel[:1], vel[1:], dt=dt, threshold_km=threshold
                )
                if true_min <= threshold:
                    assert keep[0], (seed, t0, true_min)


class TestSieveRecordsGrouping:
    """The argsort/CSR grouping of ``sieve_records`` must reproduce the old
    per-unique-time ``centers == t`` scan loop exactly — same keep mask,
    same per-group math (including the shared ``r.max()`` curvature pad)."""

    @staticmethod
    def _reference_sieve(propagator, rec_i, rec_j, centers, radii, threshold_km):
        keep = np.ones(len(rec_i), dtype=bool)
        for t in np.unique(centers):
            sel = np.nonzero(centers == t)[0]
            pos, vel = propagator.states(float(t))
            ii = rec_i[sel]
            jj = rec_j[sel]
            dr = pos[ii] - pos[jj]
            dv = vel[ii] - vel[jj]
            r = radii[sel]
            vv = np.einsum("ij,ij->i", dv, dv)
            rv = np.einsum("ij,ij->i", dr, dv)
            tau = np.clip(
                np.where(vv > 1e-300, -rv / np.maximum(vv, 1e-300), 0.0), -r, r
            )
            closest = dr + dv * tau[:, None]
            d_min = np.sqrt(np.einsum("ij,ij->i", closest, closest))
            r_orbit = np.minimum(
                np.sqrt(np.einsum("ij,ij->i", pos[ii], pos[ii])),
                np.sqrt(np.einsum("ij,ij->i", pos[jj], pos[jj])),
            )
            pad = 1.5 * curvature_pad_km(r_orbit, float(r.max()))
            keep[sel] = d_min <= threshold_km + pad
        return keep

    def test_matches_reference_loop_on_real_records(self, small_population):
        from repro.detection.gridbased import sieve_records

        prop = Propagator(small_population)
        n = len(small_population)
        rng = np.random.default_rng(17)
        n_rec = 400
        rec_i = rng.integers(0, n, n_rec)
        rec_j = (rec_i + 1 + rng.integers(0, n - 1, n_rec)) % n
        # Unsorted, duplicated sample times — the case the argsort groups.
        centers = rng.choice(np.arange(0.0, 120.0, 7.5), size=n_rec)
        radii = rng.uniform(2.0, 6.0, n_rec)
        got = sieve_records(prop, rec_i, rec_j, centers, radii, threshold_km=5.0)
        want = self._reference_sieve(prop, rec_i, rec_j, centers, radii, 5.0)
        np.testing.assert_array_equal(got, want)

    def test_keeps_engineered_conjunction(self, crossing_pair):
        """The kept branch: records straddling a real conjunction survive
        both the new grouping and the reference loop identically."""
        from repro.detection.gridbased import sieve_records

        prop = Propagator(crossing_pair)
        centers = np.array([-10.0, 0.0, 0.0, 10.0, 300.0])
        rec_i = np.zeros(len(centers), dtype=np.int64)
        rec_j = np.ones(len(centers), dtype=np.int64)
        radii = np.full(len(centers), 5.0)
        got = sieve_records(prop, rec_i, rec_j, centers, radii, threshold_km=5.0)
        want = self._reference_sieve(prop, rec_i, rec_j, centers, radii, 5.0)
        np.testing.assert_array_equal(got, want)
        assert got[1] and got[2]  # the steps containing the encounter survive

    def test_single_group_and_empty(self, small_population):
        from repro.detection.gridbased import sieve_records

        prop = Propagator(small_population)
        empty = np.empty(0, dtype=np.int64)
        keep = sieve_records(prop, empty, empty, empty.astype(float), empty.astype(float), 2.0)
        assert keep.shape == (0,)
        rec_i = np.array([0, 1, 2])
        rec_j = np.array([3, 4, 5])
        centers = np.full(3, 30.0)
        radii = np.full(3, 4.0)
        got = sieve_records(prop, rec_i, rec_j, centers, radii, 2.0)
        want = self._reference_sieve(prop, rec_i, rec_j, centers, radii, 2.0)
        np.testing.assert_array_equal(got, want)
