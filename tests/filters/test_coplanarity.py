"""Coplanarity classification."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.filters.coplanarity import coplanar_mask, plane_angles
from repro.orbits.elements import KeplerElements, OrbitalElementsArray


def _pop(incls_raans):
    return OrbitalElementsArray.from_elements(
        [
            KeplerElements(a=7000.0, e=0.001, i=i, raan=r, argp=0.0, m0=0.0)
            for i, r in incls_raans
        ]
    )


def test_plane_angles_known_values():
    pop = _pop([(0.0, 0.0), (math.pi / 2, 0.0), (math.pi / 4, 0.0)])
    ang = plane_angles(pop, np.array([0, 0]), np.array([1, 2]))
    np.testing.assert_allclose(ang, [math.pi / 2, math.pi / 4], atol=1e-12)


def test_coplanar_same_plane():
    pop = _pop([(0.5, 1.0), (0.5, 1.0)])
    assert coplanar_mask(pop, np.array([0]), np.array([1])).tolist() == [True]


def test_coplanar_antiparallel_plane():
    # Prograde vs retrograde in the same geometric plane.
    pop = _pop([(0.2, 0.0), (math.pi - 0.2, math.pi)])
    assert coplanar_mask(pop, np.array([0]), np.array([1])).tolist() == [True]


def test_non_coplanar():
    pop = _pop([(0.2, 0.0), (0.9, 2.0)])
    assert coplanar_mask(pop, np.array([0]), np.array([1])).tolist() == [False]


def test_tolerance_is_respected():
    delta = math.radians(0.8)
    pop = _pop([(0.5, 0.0), (0.5 + delta, 0.0)])
    assert coplanar_mask(pop, np.array([0]), np.array([1]), tol_rad=math.radians(1.0)).tolist() == [True]
    assert coplanar_mask(pop, np.array([0]), np.array([1]), tol_rad=math.radians(0.5)).tolist() == [False]


def test_raan_irrelevant_for_equatorial():
    # i=0 orbits share the equatorial plane regardless of RAAN.
    pop = _pop([(0.0, 0.0), (1e-9, 3.0)])
    assert coplanar_mask(pop, np.array([0]), np.array([1])).tolist() == [True]
