"""Time filter: node passage windows and pair overlap."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.filters.time_filter import (
    intersect_windows,
    merge_windows,
    node_passage_windows,
    pair_overlap_windows,
)
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.kepler import mean_to_true
from repro.orbits.propagation import Propagator


def _el(a=7000.0, e=0.001, i=0.5, m0=0.0):
    return KeplerElements(a=a, e=e, i=i, raan=0.0, argp=0.0, m0=m0)


class TestNodeWindows:
    def test_windows_repeat_with_period(self):
        el = _el()
        wins = node_passage_windows(el, node_anomaly=1.0, half_width=0.05, span_s=3 * el.period)
        assert len(wins) == 3
        starts = [w[0] for w in wins]
        np.testing.assert_allclose(np.diff(starts), el.period, rtol=1e-9)

    def test_object_is_inside_window(self):
        """At every time inside a window, the true anomaly is in range."""
        el = _el(e=0.05)
        nu0, w = 1.2, 0.08
        wins = node_passage_windows(el, nu0, w, span_s=2 * el.period)
        assert wins
        for lo, hi in wins:
            for t in np.linspace(lo, hi, 7):
                m = el.mean_anomaly_at(float(t))
                nu = float(mean_to_true(m, el.e))
                delta = (nu - nu0 + math.pi) % (2 * math.pi) - math.pi
                assert abs(delta) <= w + 1e-6

    def test_object_outside_window_between(self):
        el = _el(e=0.05)
        nu0, w = 1.2, 0.05
        wins = node_passage_windows(el, nu0, w, span_s=2 * el.period)
        assert len(wins) >= 2
        mid_gap = 0.5 * (wins[0][1] + wins[1][0])
        nu = float(mean_to_true(el.mean_anomaly_at(mid_gap), el.e))
        delta = (nu - nu0 + math.pi) % (2 * math.pi) - math.pi
        assert abs(delta) > w

    def test_wide_window_covers_span(self):
        el = _el()
        assert node_passage_windows(el, 0.0, math.pi, 100.0) == [(0.0, 100.0)]

    def test_window_open_at_start(self):
        # m0 puts the object inside the window at t=0.
        el = _el(m0=1.0)
        wins = node_passage_windows(el, node_anomaly=1.0, half_width=0.1, span_s=el.period)
        assert wins[0][0] == 0.0

    def test_validation(self):
        el = _el()
        with pytest.raises(ValueError):
            node_passage_windows(el, 0.0, 0.1, 0.0)
        with pytest.raises(ValueError):
            node_passage_windows(el, 0.0, 0.0, 100.0)


class TestWindowAlgebra:
    def test_intersection(self):
        a = [(0.0, 10.0), (20.0, 30.0)]
        b = [(5.0, 25.0)]
        assert intersect_windows(a, b) == [(5.0, 10.0), (20.0, 25.0)]

    def test_intersection_empty(self):
        assert intersect_windows([(0.0, 1.0)], [(2.0, 3.0)]) == []

    def test_merge_with_slack(self):
        wins = [(0.0, 1.0), (1.5, 2.0), (5.0, 6.0)]
        assert merge_windows(wins, slack_s=0.6) == [(0.0, 2.0), (5.0, 6.0)]

    def test_merge_unsorted_input(self):
        assert merge_windows([(5.0, 6.0), (0.0, 1.0), (0.5, 2.0)]) == [(0.0, 2.0), (5.0, 6.0)]

    def test_merge_empty(self):
        assert merge_windows([]) == []


class TestPairOverlap:
    def test_conjunction_time_is_inside_a_window(self, crossing_pair):
        """The engineered conjunction at t~0 must fall inside the overlap
        windows computed from the pair's node geometry."""
        pop = crossing_pair
        from repro.filters.orbit_path import _node_anomalies

        nu_i, nu_j = _node_anomalies(pop, np.array([0]), np.array([1]))
        span = 6000.0
        wins = pair_overlap_windows(
            pop[0], pop[1], float(nu_i[0]), float(nu_j[0]),
            half_width_i=0.05, half_width_j=0.05, span_s=span, pad_s=10.0,
        )
        assert wins
        # t=0 conjunction (PCA 1.2 km) and the later one near t=2914.5 s.
        for t_conj in (0.5, 2914.5):
            assert any(lo <= t_conj <= hi for lo, hi in wins), (t_conj, wins)

    def test_overlap_windows_shrink_search_space(self, crossing_pair):
        pop = crossing_pair
        from repro.filters.orbit_path import _node_anomalies

        nu_i, nu_j = _node_anomalies(pop, np.array([0]), np.array([1]))
        span = 6000.0
        wins = pair_overlap_windows(
            pop[0], pop[1], float(nu_i[0]), float(nu_j[0]),
            half_width_i=0.05, half_width_j=0.05, span_s=span,
        )
        covered = sum(hi - lo for lo, hi in wins)
        assert covered < 0.5 * span


class TestConservativenessProperty:
    """The windows fed to the hybrid's non-coplanar refinement must always
    contain the true conjunction times (otherwise the hybrid could clip a
    real event)."""

    def test_random_crossing_geometries(self):
        import math

        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.detection.scan import scan_pair_windows
        from repro.filters.coplanarity import plane_angles
        from repro.filters.orbit_path import _node_anomalies

        @settings(max_examples=15, deadline=None)
        @given(st.integers(min_value=0, max_value=2**31 - 1))
        def check(seed):
            rng = np.random.default_rng(seed)
            a = float(rng.uniform(6900.0, 7400.0))
            el1 = KeplerElements(
                a=a, e=float(rng.uniform(0, 0.02)),
                i=float(rng.uniform(0.3, math.pi - 0.3)),
                raan=float(rng.uniform(0, 2 * math.pi)),
                argp=float(rng.uniform(0, 2 * math.pi)), m0=float(rng.uniform(0, 2 * math.pi)),
            )
            el2 = KeplerElements(
                a=a + float(rng.uniform(-3.0, 3.0)), e=float(rng.uniform(0, 0.02)),
                i=float(rng.uniform(0.3, math.pi - 0.3)),
                raan=float(rng.uniform(0, 2 * math.pi)),
                argp=float(rng.uniform(0, 2 * math.pi)), m0=float(rng.uniform(0, 2 * math.pi)),
            )
            pop = OrbitalElementsArray.from_elements([el1, el2])
            span = 6000.0
            threshold = 20.0
            # Ground truth: all sub-threshold minima over the span.
            truth = scan_pair_windows(pop, 0, 1, [(0.0, span)], threshold,
                                      samples_per_period=60)
            if not truth:
                return
            ang = float(plane_angles(pop, np.array([0]), np.array([1]))[0])
            if ang < math.radians(1.0) or math.pi - ang < math.radians(1.0):
                return  # coplanar pairs take the other refinement path
            nu_i, nu_j = _node_anomalies(pop, np.array([0]), np.array([1]))
            s_alpha = max(math.sin(ang), 1e-12)
            w_i = math.asin(min(threshold / (pop.perigee[0] * s_alpha), 1.0))
            w_j = math.asin(min(threshold / (pop.perigee[1] * s_alpha), 1.0))
            w_i = max(2.0 * w_i, math.radians(0.5))
            w_j = max(2.0 * w_j, math.radians(0.5))
            windows = pair_overlap_windows(
                pop[0], pop[1], float(nu_i[0]), float(nu_j[0]), w_i, w_j,
                span_s=span, pad_s=30.0,
            )
            for tca, _pca in truth:
                if 0.0 < tca < span:
                    assert any(lo - 1.0 <= tca <= hi + 1.0 for lo, hi in windows), (
                        seed, tca, windows
                    )

        check()
