"""Apogee/perigee filter: shell-overlap logic and conservativeness."""
from __future__ import annotations

import numpy as np
import pytest

from repro.filters.apogee_perigee import apogee_perigee_filter
from repro.orbits.elements import KeplerElements, OrbitalElementsArray


def _pop(specs):
    return OrbitalElementsArray.from_elements(
        [KeplerElements(a=a, e=e, i=0.5, raan=0.1, argp=0.2, m0=0.3) for a, e in specs]
    )


def test_overlapping_shells_survive():
    pop = _pop([(7000.0, 0.0), (7001.0, 0.0)])
    keep = apogee_perigee_filter(pop, np.array([0]), np.array([1]), threshold_km=2.0)
    assert keep.tolist() == [True]


def test_separated_shells_excluded():
    pop = _pop([(7000.0, 0.0), (7100.0, 0.0)])
    keep = apogee_perigee_filter(pop, np.array([0]), np.array([1]), threshold_km=2.0)
    assert keep.tolist() == [False]


def test_threshold_padding_is_inclusive():
    # Gap exactly equal to the threshold must survive (boundary counts).
    pop = _pop([(7000.0, 0.0), (7002.0, 0.0)])
    keep = apogee_perigee_filter(pop, np.array([0]), np.array([1]), threshold_km=2.0)
    assert keep.tolist() == [True]


def test_eccentric_shells_use_apogee_perigee():
    # Orbit 1: [6500, 7500]; orbit 2: [7499, 8500]-ish -> overlap.
    pop = _pop([(7000.0, 1.0 / 14.0), (8000.0, 0.0626)])
    keep = apogee_perigee_filter(pop, np.array([0]), np.array([1]), threshold_km=2.0)
    assert keep.tolist() == [True]


def test_vectorised_over_many_pairs(small_population):
    pop = small_population
    n = len(pop)
    pair_i = np.repeat(np.arange(10), n - 10)
    pair_j = np.tile(np.arange(10, n), 10)
    keep = apogee_perigee_filter(pop, pair_i, pair_j, threshold_km=2.0)
    # Cross-check a few entries against the scalar definition.
    for k in (0, 57, 444):
        i, j = int(pair_i[k]), int(pair_j[k])
        gap = max(pop.perigee[i], pop.perigee[j]) - min(pop.apogee[i], pop.apogee[j])
        assert keep[k] == (gap <= 2.0)


def test_conservative_against_sampled_distance(small_population):
    """Excluded pairs can truly never come within the threshold."""
    from repro.orbits.geometry import sampled_orbit_distance

    pop = small_population
    rng = np.random.default_rng(1)
    pair_i = rng.integers(0, len(pop), 60)
    pair_j = (pair_i + 1 + rng.integers(0, len(pop) - 1, 60)) % len(pop)
    swap = pair_i > pair_j
    pair_i[swap], pair_j[swap] = pair_j[swap], pair_i[swap]
    ok = pair_i < pair_j
    pair_i, pair_j = pair_i[ok], pair_j[ok]
    keep = apogee_perigee_filter(pop, pair_i, pair_j, threshold_km=2.0)
    for k in np.nonzero(~keep)[0][:15]:
        d = sampled_orbit_distance(pop[int(pair_i[k])], pop[int(pair_j[k])], samples=180)
        assert d > 2.0


def test_negative_threshold_rejected(small_population):
    with pytest.raises(ValueError):
        apogee_perigee_filter(small_population, np.array([0]), np.array([1]), -1.0)


def test_empty_pair_list(small_population):
    keep = apogee_perigee_filter(
        small_population, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 2.0
    )
    assert keep.shape == (0,)
