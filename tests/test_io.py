"""Result interchange: CSV / JSON / CDM round trips."""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.types import ScreeningResult, empty_result
from repro.io import format_cdm, from_json, read_csv, to_json, write_csv
from repro.parallel.backend import PhaseTimer


@pytest.fixture()
def result():
    timers = PhaseTimer()
    timers.add("INS", 1.0)
    timers.add("CD", 3.0)
    return ScreeningResult(
        method="hybrid",
        backend="vectorized",
        i=np.array([1, 5]),
        j=np.array([2, 9]),
        tca_s=np.array([10.5, 300.25]),
        pca_km=np.array([0.75, 1.9]),
        candidates_refined=12,
        timers=timers,
        filter_stats={"apogee_perigee": {"seen": 10, "excluded": 4}},
    )


class TestCsv:
    def test_round_trip(self, result, tmp_path):
        path = tmp_path / "conj.csv"
        assert write_csv(result, path) == 2
        i, j, tca, pca = read_csv(path)
        np.testing.assert_array_equal(i, [1, 5])
        np.testing.assert_array_equal(j, [2, 9])
        np.testing.assert_allclose(tca, [10.5, 300.25])
        np.testing.assert_allclose(pca, [0.75, 1.9])

    def test_empty_result(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_csv(empty_result("grid", "serial"), path) == 0
        i, j, tca, pca = read_csv(path)
        assert len(i) == 0

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "junk.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="bad header"):
            read_csv(path)


class TestJson:
    def test_round_trip(self, result):
        back = from_json(to_json(result))
        assert back.method == "hybrid"
        assert back.backend == "vectorized"
        assert back.candidates_refined == 12
        assert back.unique_pairs() == result.unique_pairs()
        assert back.timers.totals == {"INS": 1.0, "CD": 3.0}
        assert back.filter_stats == result.filter_stats

    def test_conjunctions_sorted(self, result):
        back = from_json(to_json(result))
        assert [c.tca_s for c in back.conjunctions()] == [10.5, 300.25]


class TestCdm:
    def test_one_block_per_conjunction(self, result):
        text = format_cdm(result)
        assert text.count("CDM_ID") == 2
        assert "OBJECT1_DESIGNATOR  = 1" in text
        assert "COLLISION_PROBABILITY" in text

    def test_probability_ordering(self, result):
        # Closer approach (0.75 km) must carry a higher P_c than 1.9 km.
        text = format_cdm(result)
        probs = [
            float(line.split("=")[1]) for line in text.splitlines()
            if line.startswith("COLLISION_PROBABILITY")
        ]
        assert probs[0] > probs[1]

    def test_empty(self):
        assert format_cdm(empty_result("grid", "serial")) == ""
